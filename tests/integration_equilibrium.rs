//! Equilibrium integration: every exploitation round the mechanism plays
//! must be a Stackelberg Equilibrium (Def. 13 / Theorem 20), and the
//! closed-form solution must agree with independent numeric maximization
//! on randomly-drawn games.

use cdt_core::Scenario;
use cdt_game::{
    best_response::{all_seller_best_responses, platform_best_response},
    equilibrium::profits_at,
    numeric::grid_then_golden,
    solve_equilibrium, verify_equilibrium, Aggregates, GameContext, SelectedSeller,
};
use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, SellerId, ValuationParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_context(rng: &mut StdRng) -> GameContext {
    let k = rng.gen_range(1..=12);
    let sellers = (0..k)
        .map(|i| {
            SelectedSeller::new(
                SellerId(i),
                // Learned estimates of the sellers a converged CMAB-HS
                // actually selects — moderate-to-high quality. Very low
                // estimates can push a seller below its reservation price
                // and out of the interior regime the paper's closed forms
                // assume (see StackelbergSolution::is_interior).
                rng.gen_range(0.2..1.0),
                SellerCostParams {
                    a: rng.gen_range(0.1..0.5),
                    b: rng.gen_range(0.1..1.0),
                },
            )
        })
        .collect();
    GameContext::new(
        sellers,
        PlatformCostParams {
            theta: rng.gen_range(0.1..1.0),
            lambda: rng.gen_range(0.5..2.0),
        },
        ValuationParams {
            omega: rng.gen_range(600.0..1400.0),
        },
        PriceBounds::unbounded(),
        PriceBounds::unbounded(),
        f64::MAX,
    )
    .unwrap()
}

#[test]
fn random_games_all_reach_equilibrium() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut interior_trials = 0;
    for trial in 0..50 {
        let ctx = random_context(&mut rng);
        let eq = solve_equilibrium(&ctx);
        if !eq.is_interior(&ctx) {
            // The closed forms are exact only for interior equilibria
            // (the paper's implicit regime); boundary games are checked
            // by `boundary_games_stay_close_to_equilibrium` below.
            continue;
        }
        interior_trials += 1;
        let tol = 1e-3 * eq.profits.consumer.abs().max(1.0);
        let report = verify_equilibrium(&ctx, &eq, 1500, tol);
        assert!(
            report.is_equilibrium(),
            "trial {trial}: max gain {} (K = {})",
            report.max_gain(),
            ctx.k()
        );
    }
    assert!(
        interior_trials >= 35,
        "only {interior_trials}/50 interior games — generator drifted from the paper regime"
    );
}

#[test]
fn boundary_games_stay_close_to_equilibrium() {
    // Even when a seller opts out (non-interior), the best unilateral
    // deviation should gain only a small fraction of the consumer profit.
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..50 {
        let ctx = random_context(&mut rng);
        let eq = solve_equilibrium(&ctx);
        if eq.is_interior(&ctx) {
            continue;
        }
        let report = verify_equilibrium(&ctx, &eq, 1500, f64::INFINITY);
        let rel_gain = report.max_gain() / eq.profits.consumer.abs().max(1.0);
        assert!(
            rel_gain < 0.02,
            "boundary game deviates too far from SE: relative gain {rel_gain}"
        );
    }
}

#[test]
fn closed_form_consumer_price_matches_global_numeric_optimum() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..25 {
        let ctx = random_context(&mut rng);
        let agg = Aggregates::from_context(&ctx);
        let eq = solve_equilibrium(&ctx);
        if !eq.is_interior(&ctx) {
            continue;
        }
        let numeric = grid_then_golden(
            |pj| {
                let p = platform_best_response(&ctx, pj, &agg);
                let taus = all_seller_best_responses(&ctx, p);
                profits_at(&ctx, pj, p, &taus).consumer
            },
            0.0,
            5.0 * eq.service_price.max(1.0),
            4001,
            1e-9,
        );
        assert!(
            (eq.service_price - numeric.argmax).abs() / eq.service_price.max(1.0) < 2e-3,
            "closed {} vs numeric {}",
            eq.service_price,
            numeric.argmax
        );
    }
}

#[test]
fn mechanism_rounds_play_equilibria() {
    // Take the strategies the running mechanism actually produced and
    // verify Def. 13 on each exploitation round.
    let mut rng = StdRng::seed_from_u64(11);
    let scenario = Scenario::paper_defaults(10, 3, 4, 12, &mut rng).unwrap();
    let mut mech = cdt_core::CmabHs::new(scenario.config.clone()).unwrap();
    let ledger = mech
        .run_to_completion(&scenario.observer(), &mut rng)
        .unwrap();
    for o in &ledger.outcomes()[1..] {
        // Rebuild the context the round was played under (same estimates).
        let sellers: Vec<SelectedSeller> = o
            .strategy
            .seller_ids
            .iter()
            .map(|&id| {
                // The quality the game saw is recoverable from the solution:
                // τ* = (p − q b)/(2 q a) ⇒ q = p / (2 a τ* + b).
                let cost = scenario.config.seller_cost(id);
                let tau = o.strategy.sensing_time_of(id).unwrap();
                let q = o.strategy.collection_price / (2.0 * cost.a * tau + cost.b);
                SelectedSeller::new(id, q, cost)
            })
            .collect();
        let ctx = GameContext::new(
            sellers,
            scenario.config.platform_cost,
            scenario.config.valuation,
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap();
        let report = verify_equilibrium(
            &ctx,
            &o.strategy,
            800,
            1e-3 * o.strategy.profits.consumer.abs().max(1.0),
        );
        assert!(
            report.is_equilibrium(),
            "round {} strategy is not a SE (max gain {})",
            o.round.index(),
            report.max_gain()
        );
    }
}

#[test]
fn equilibrium_profits_scale_with_omega() {
    // More valuable data ⇒ every party earns (weakly) more at equilibrium.
    let mut rng = StdRng::seed_from_u64(13);
    let base = random_context(&mut rng);
    let omegas = [600.0, 1000.0, 1400.0];
    let mut last_poc = f64::NEG_INFINITY;
    for omega in omegas {
        let mut ctx = base.clone();
        ctx.valuation = ValuationParams { omega };
        let eq = solve_equilibrium(&ctx);
        assert!(eq.profits.consumer > last_poc, "PoC must grow with omega");
        last_poc = eq.profits.consumer;
    }
}
