//! Segment-rotation and compaction crash-matrix tests.
//!
//! The segmented journal's durability contract, pinned end to end:
//!
//! 1. **Byte identity** — the concatenation of a rotated run's sealed
//!    segments is byte-identical to the single-file journal of the same
//!    event stream, and the strict loader sees the same view either way.
//! 2. **Crash matrix** — a kill at *any* window (mid-segment, mid-line,
//!    torn index, sealed-but-unindexed segment, interrupted compaction)
//!    leaves a journal that `recover_journal` lands on a settlement
//!    boundary, while `load_journal` refuses loudly rather than serving
//!    a silently incomplete history.
//! 3. **Compaction equivalence** — verify / seek / diff answers are
//!    identical before and after folding settled segments into a
//!    checkpoint, across chained generations.

use cdt_protocol::segment::{checkpoint_path, index_path, segment_partial_path, segment_path};
use cdt_protocol::{
    compact_journal, diff_settlement_rows, load_journal, recover_journal, replay_to_round,
    EventLog, JournalReport, JournalSink, MarketEvent, RotationConfig,
};
use cdt_types::{JobSpec, Round, SellerId};
use std::path::{Path, PathBuf};

/// A fresh scratch directory in the system temp dir, unique per test.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdt_segments_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn job_event() -> MarketEvent {
    MarketEvent::JobPublished {
        job: JobSpec::new(4, 2, 10.0).unwrap(),
    }
}

/// The five Fig. 2 events of one settled round, with payments consistent
/// with the strategy (p^J·Στ = 4·5 = 20, p·τ_i = 1.5·{2,3}).
fn round_events(t: usize) -> Vec<MarketEvent> {
    vec![
        MarketEvent::SellersSelected {
            round: Round(t),
            sellers: vec![SellerId(0), SellerId(1)],
        },
        MarketEvent::StrategyDetermined {
            round: Round(t),
            service_price: 4.0,
            collection_price: 1.5,
            sensing_times: vec![2.0, 3.0],
        },
        MarketEvent::DataCollected {
            round: Round(t),
            observed_revenue: 5.5,
        },
        MarketEvent::StatisticsDelivered { round: Round(t) },
        MarketEvent::PaymentsSettled {
            round: Round(t),
            consumer_payment: 20.0,
            seller_payments: vec![3.0, 4.5],
        },
    ]
}

/// Writes a complete journal of `rounds` settled rounds at `path`.
fn write_journal(path: &Path, rounds: usize, rotation: Option<RotationConfig>) -> JournalReport {
    let mut sink = JournalSink::create_with(path, rotation).unwrap();
    sink.append(&job_event()).unwrap();
    for t in 0..rounds {
        for e in round_events(t) {
            sink.append(&e).unwrap();
        }
    }
    sink.append(&MarketEvent::JobCompleted { rounds }).unwrap();
    sink.finish().unwrap()
}

/// Writes a segmented journal that "dies" mid-round: `settled` full
/// rounds, then `extra_events` events of the next round, then drop.
fn write_crashed_journal(path: &Path, settled: usize, extra_events: usize, segment_rounds: usize) {
    let mut sink = JournalSink::create_with(path, Some(RotationConfig { segment_rounds })).unwrap();
    sink.append(&job_event()).unwrap();
    for t in 0..settled {
        for e in round_events(t) {
            sink.append(&e).unwrap();
        }
    }
    for e in round_events(settled).into_iter().take(extra_events) {
        sink.append(&e).unwrap();
    }
    // Dropping without `finish()` is the simulated kill.
}

/// Truncates the file at `path` by `cut` bytes (a torn tail write).
fn truncate_tail(path: &Path, cut: usize) {
    let bytes = std::fs::read(path).unwrap();
    assert!(
        bytes.len() > cut,
        "{} too short to truncate",
        path.display()
    );
    std::fs::write(path, &bytes[..bytes.len() - cut]).unwrap();
}

#[test]
fn rotated_segments_match_single_file_and_seek_reports_provenance() {
    let dir = scratch_dir("byte_identity");
    let single = dir.join("single.jsonl");
    let seg = dir.join("seg.jsonl");
    write_journal(&single, 5, None);
    let report = write_journal(&seg, 5, Some(RotationConfig { segment_rounds: 2 }));
    assert_eq!(report.segments, 3, "5 rounds at 2/segment: 0-1, 2-3, 4+end");
    assert!(!seg.exists(), "rotation must not create a base file");

    // cat seg-* == the single-file journal, byte for byte.
    let mut concat = String::new();
    for seq in 0..3 {
        concat.push_str(&std::fs::read_to_string(segment_path(&seg, seq)).unwrap());
    }
    let single_text = std::fs::read_to_string(&single).unwrap();
    assert_eq!(concat, single_text, "segments must concatenate exactly");

    // The strict loader serves the same view from either layout.
    let seg_view = load_journal(&seg).unwrap();
    let single_view = load_journal(&single).unwrap();
    assert!(seg_view.segmented && !single_view.segmented);
    assert_eq!(seg_view.events, single_view.events);
    assert_eq!(seg_view.settlements, single_view.settlements);
    assert_eq!(seg_view.state, single_view.state);
    assert!(diff_settlement_rows(&seg_view.settlements, &single_view.settlements).is_zero());

    // Point lookups: the single file scans everything; the segmented
    // layout replays exactly one indexed segment.
    let flat = replay_to_round(&single, 3).unwrap();
    assert!(!flat.from_checkpoint);
    assert_eq!(flat.segment, None);
    let seek = replay_to_round(&seg, 3).unwrap();
    assert!(!seek.from_checkpoint);
    assert_eq!(seek.segment, Some(1), "round 3 lives in seg-0001");
    assert_eq!(seek.row, flat.row);
    assert!(seek.events_scanned < flat.events_scanned);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_mid_segment_recovers_to_settlement_boundary() {
    let dir = scratch_dir("kill_mid_segment");
    let base = dir.join("j.jsonl");
    // seg-0000 sealed (rounds 0-1); partial seg-0001 holds round 2 plus
    // two events of the never-settled round 3.
    write_crashed_journal(&base, 3, 2, 2);
    assert!(segment_path(&base, 0).exists());
    assert!(segment_partial_path(&base, 1).exists());

    // Strict loads must refuse the unfinished journal…
    let err = load_journal(&base).unwrap_err().to_string();
    assert!(err.contains("active segment"), "{err}");
    assert!(err.contains("journal recover"), "{err}");

    // …and recovery lands exactly on the round-2 settlement boundary.
    let rec = recover_journal(&base).unwrap();
    assert!(rec.segmented);
    assert_eq!(rec.settled_rounds(), 3);
    assert!(rec.state.at_round_boundary());
    assert!(!rec.completed());
    let stop = rec.stop.expect("the in-flight round must be reported");
    assert!(stop.reason.contains("mid-round"), "{}", stop.reason);
    // The kept prefix is itself a valid journal ending at the boundary.
    let log = EventLog::from_json_lines(&rec.kept_text).unwrap();
    assert_eq!(log.state().settled_rounds(), 3);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_partial_write_recovers_to_settlement_boundary() {
    let dir = scratch_dir("torn_partial");
    let base = dir.join("j.jsonl");
    write_crashed_journal(&base, 3, 2, 2);
    // The crash also tore the last buffered line in half.
    truncate_tail(&segment_partial_path(&base, 1), 7);

    let rec = recover_journal(&base).unwrap();
    assert_eq!(rec.settled_rounds(), 3);
    assert!(rec.state.at_round_boundary());
    assert!(rec.stop.is_some(), "the torn tail must be reported");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_sealed_segment_fails_strict_load_but_recovers_prefix() {
    let dir = scratch_dir("torn_segment");
    let base = dir.join("j.jsonl");
    write_journal(&base, 5, Some(RotationConfig { segment_rounds: 2 }));
    // Tear the middle segment (rounds 2-3): its digest no longer matches.
    truncate_tail(&segment_path(&base, 1), 10);

    let err = load_journal(&base).unwrap_err().to_string();
    assert!(err.contains("digest mismatch"), "{err}");

    // Recovery keeps rounds 0-2 (round 3's settlement was torn off) and
    // refuses to leap the hole to the still-valid seg-0002.
    let rec = recover_journal(&base).unwrap();
    assert_eq!(rec.settled_rounds(), 3);
    assert!(rec.state.at_round_boundary());
    assert!(!rec.completed());
    assert!(rec.stop.is_some(), "the torn segment must be reported");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lost_index_is_rebuilt_by_segment_scan() {
    let dir = scratch_dir("lost_index");
    let base = dir.join("j.jsonl");
    write_journal(&base, 5, Some(RotationConfig { segment_rounds: 2 }));
    std::fs::remove_file(index_path(&base)).unwrap();

    let err = load_journal(&base).unwrap_err().to_string();
    assert!(
        err.contains("no journal file or segment index found"),
        "{err}"
    );

    // Phase-2 recovery walks seg-0000, seg-0001, … by sequence number and
    // gets the whole history back without any index at all.
    let rec = recover_journal(&base).unwrap();
    assert_eq!(rec.settled_rounds(), 5);
    assert!(rec.completed());
    assert!(rec.stop.is_none(), "{:?}", rec.stop);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_index_recovers_from_its_valid_prefix_plus_scan() {
    let dir = scratch_dir("torn_index");
    let base = dir.join("j.jsonl");
    write_journal(&base, 5, Some(RotationConfig { segment_rounds: 2 }));
    // Tear the index mid-line: the last segment entry is lost, the rest
    // parse fine.
    truncate_tail(&index_path(&base), 15);

    let rec = recover_journal(&base).unwrap();
    assert_eq!(rec.settled_rounds(), 5);
    assert!(rec.completed());
    assert!(rec.stop.is_none(), "{:?}", rec.stop);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sealed_but_unindexed_segment_is_detected_and_recovered() {
    let dir = scratch_dir("unindexed_segment");
    let base = dir.join("j.jsonl");
    write_journal(&base, 5, Some(RotationConfig { segment_rounds: 2 }));
    // Simulate a crash inside rotation — after the seg-0002 rename, before
    // the index rewrite — by dropping the last entry from the index.
    let idx = index_path(&base);
    let text = std::fs::read_to_string(&idx).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "header + 3 segment entries");
    lines.pop();
    std::fs::write(&idx, format!("{}\n", lines.join("\n"))).unwrap();

    let err = load_journal(&base).unwrap_err().to_string();
    assert!(err.contains("not in the index"), "{err}");
    assert!(err.contains("journal recover"), "{err}");

    let rec = recover_journal(&base).unwrap();
    assert_eq!(rec.settled_rounds(), 5);
    assert!(rec.completed());
    assert!(rec.stop.is_none(), "{:?}", rec.stop);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_preserves_answers_and_survives_its_crash_windows() {
    let dir = scratch_dir("compaction");
    let compacted = dir.join("a.jsonl");
    let pristine = dir.join("b.jsonl");
    write_journal(&compacted, 5, Some(RotationConfig { segment_rounds: 2 }));
    write_journal(&pristine, 5, Some(RotationConfig { segment_rounds: 2 }));
    let before = load_journal(&compacted).unwrap();

    // Keep the bytes of the segments about to fold, to replant later as
    // the "crash before deletion" window.
    let folded_bytes: Vec<Vec<u8>> = (0..2)
        .map(|seq| std::fs::read(segment_path(&compacted, seq)).unwrap())
        .collect();

    let report = compact_journal(&compacted, 1).unwrap();
    assert_eq!(report.folded_segments, 2);
    assert_eq!(report.folded_rounds, 4);
    assert_eq!(report.kept_segments, 1);
    assert_eq!(report.generation, 1);
    assert_eq!(report.checkpoint_rounds, 4);
    assert!(checkpoint_path(&compacted, 1).exists());
    assert!(!segment_path(&compacted, 0).exists(), "folded segments go");

    // Same answers from the checkpointed history as from the full one.
    let after = load_journal(&compacted).unwrap();
    assert_eq!(after.compacted_rounds, 4);
    assert_eq!(after.segments, 1);
    assert_eq!(after.settlements, before.settlements);
    assert_eq!(after.state, before.state);
    assert!(after.completed());
    assert!(diff_settlement_rows(&after.settlements, &before.settlements).is_zero());

    // Seeks: a folded round answers straight from the checkpoint ledger;
    // a kept round still replays its one segment.
    let folded = replay_to_round(&compacted, 1).unwrap();
    assert!(folded.from_checkpoint);
    assert_eq!(folded.events_scanned, 0);
    assert_eq!(folded.row, replay_to_round(&pristine, 1).unwrap().row);
    let kept = replay_to_round(&compacted, 4).unwrap();
    assert!(!kept.from_checkpoint);
    assert_eq!(kept.segment, Some(2));
    assert_eq!(kept.row, replay_to_round(&pristine, 4).unwrap().row);

    // Crash window A: checkpoint written, index never flipped. The orphan
    // checkpoint beside an un-flipped index must change nothing.
    std::fs::copy(
        checkpoint_path(&compacted, 1),
        checkpoint_path(&pristine, 1),
    )
    .unwrap();
    let orphaned = load_journal(&pristine).unwrap();
    assert_eq!(orphaned.compacted_rounds, 0, "orphan checkpoint ignored");
    assert_eq!(orphaned.settlements, before.settlements);
    let rec = recover_journal(&pristine).unwrap();
    assert_eq!(rec.settled_rounds(), 5);
    assert!(rec.stop.is_none(), "{:?}", rec.stop);

    // Crash window B: index flipped, folded segments never deleted. The
    // leftovers sit below the checkpoint and are ignored by both paths.
    for (seq, bytes) in folded_bytes.iter().enumerate() {
        std::fs::write(segment_path(&compacted, seq as u64), bytes).unwrap();
    }
    let leftover = load_journal(&compacted).unwrap();
    assert_eq!(leftover.settlements, before.settlements);
    let rec = recover_journal(&compacted).unwrap();
    assert_eq!(rec.settled_rounds(), 5);
    assert!(rec.completed());
    assert!(rec.stop.is_none(), "{:?}", rec.stop);

    // Generations chain: a second compaction folds the kept segment into
    // a gen-2 checkpoint covering the whole history.
    let report = compact_journal(&compacted, 0).unwrap();
    assert_eq!(report.folded_segments, 1);
    assert_eq!(report.generation, 2);
    assert_eq!(report.checkpoint_rounds, 5);
    assert!(!checkpoint_path(&compacted, 1).exists(), "old gen goes");
    let full = load_journal(&compacted).unwrap();
    assert_eq!(full.segments, 0);
    assert_eq!(full.compacted_rounds, 5);
    assert_eq!(full.settlements, before.settlements);
    assert!(full.completed());
    assert!(replay_to_round(&compacted, 4).unwrap().from_checkpoint);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tampered_checkpoint_is_refused_by_load_and_recover() {
    let dir = scratch_dir("tampered_ckpt");
    let base = dir.join("j.jsonl");
    write_journal(&base, 5, Some(RotationConfig { segment_rounds: 2 }));
    compact_journal(&base, 1).unwrap();

    // Nudge a digit inside the checkpoint: the content digest must catch
    // it, and with the folded events gone nothing can replay past it.
    let ckpt = checkpoint_path(&base, 1);
    let text = std::fs::read_to_string(&ckpt).unwrap();
    let tampered = text.replacen("20.0", "21.0", 1);
    assert_ne!(text, tampered, "fixture must actually change a payment");
    std::fs::write(&ckpt, tampered).unwrap();

    let err = load_journal(&base).unwrap_err().to_string();
    assert!(err.contains("checkpoint"), "{err}");
    assert!(err.contains("digest"), "{err}");
    let err = recover_journal(&base).unwrap_err().to_string();
    assert!(err.contains("checkpoint"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}
