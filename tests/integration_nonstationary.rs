//! Non-stationary integration: drifting qualities through the full
//! selection + Stackelberg loop, with the SW-UCB extension.

use cdt_bandit::{CmabUcbPolicy, SelectionPolicy, SlidingWindowUcbPolicy};
use cdt_game::{solve_equilibrium, GameContext, SelectedSeller};
use cdt_quality::{DriftModel, DriftingObserver, SellerPopulation};
use cdt_types::{PlatformCostParams, PriceBounds, Round, SellerCostParams, ValuationParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 12;
const K: usize = 3;
const L: usize = 5;
const N: usize = 800;
const CHANGE: usize = 400;

fn setup(seed: u64) -> (DriftingObserver, Vec<SellerCostParams>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let population = SellerPopulation::generate_paper_defaults(M, 0.1, &mut rng);
    let costs = population.cost_params();
    // The top-K sellers all *degrade* at the change point — the adversarial
    // case for a stationary estimator: their counters hold ~CHANGE·L stale
    // high observations, so the cumulative mean decays only at rate L per
    // round while the windowed mean flips within window/L rounds. (The
    // reverse drift — a bad seller improving — is actually easy for
    // stationary UCB: an under-explored arm has few observations and its
    // optimism bonus re-tries it quickly.)
    let ranking = population.ranking_by_true_quality();
    let degraded: std::collections::HashSet<usize> =
        ranking.iter().take(K).map(|s| s.index()).collect();
    let drifts = (0..M)
        .map(|i| {
            if degraded.contains(&i) {
                DriftModel::Abrupt {
                    at_round: CHANGE,
                    new_mean: 0.05,
                }
            } else {
                DriftModel::None
            }
        })
        .collect();
    (DriftingObserver::new(population, drifts, 0.1, L), costs)
}

/// Runs the full trading loop (selection + equilibrium pricing) against
/// the drifting environment; returns total post-change dynamic regret.
fn run_full_loop(policy: &mut dyn SelectionPolicy, seed: u64) -> f64 {
    let (observer, costs) = setup(seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let mut post_change_regret = 0.0;
    for t in 0..N {
        let round = Round(t);
        let selected = policy.select(round, &mut rng);
        // Price the round with the policy's current estimates — the game
        // must stay solvable throughout the drift.
        let sellers: Vec<SelectedSeller> = selected
            .iter()
            .map(|&id| SelectedSeller::new(id, policy.game_quality(id), costs[id.index()]))
            .collect();
        let ctx = GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap();
        if !round.is_initial() {
            let eq = solve_equilibrium(&ctx);
            assert!(eq.service_price.is_finite() && eq.service_price > 0.0);
            assert!(eq.profits.consumer.is_finite());
        }

        if t >= CHANGE {
            let selected_sum: f64 = selected.iter().map(|&id| observer.mean_at(id, round)).sum();
            post_change_regret +=
                (observer.optimal_quality_sum_at(round, K) - selected_sum) * L as f64;
        }
        let obs = observer.observe_round(round, &selected, &mut rng);
        policy.observe(round, &obs);
    }
    post_change_regret
}

#[test]
fn sliding_window_recovers_from_drift_in_the_full_loop() {
    let mut sw = SlidingWindowUcbPolicy::new(M, K, 60);
    let mut stationary = CmabUcbPolicy::new(M, K);
    let sw_regret = run_full_loop(&mut sw, 42);
    let stationary_regret = run_full_loop(&mut stationary, 42);
    assert!(
        sw_regret < stationary_regret,
        "SW-UCB post-change regret {sw_regret} should beat stationary {stationary_regret}"
    );
}

#[test]
fn sliding_window_matches_stationary_without_drift() {
    // No drift: both policies face the paper's setting; SW-UCB's
    // forgetting must not be catastrophic (within 3× of stationary
    // regret over a short horizon).
    let mut rng = StdRng::seed_from_u64(7);
    let population = SellerPopulation::generate_paper_defaults(M, 0.1, &mut rng);
    let observer = DriftingObserver::new(population, vec![DriftModel::None; M], 0.1, L);

    let run = |policy: &mut dyn SelectionPolicy, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut regret = 0.0;
        for t in 0..N {
            let round = Round(t);
            let selected = policy.select(round, &mut rng);
            let sum: f64 = selected.iter().map(|&id| observer.mean_at(id, round)).sum();
            regret += (observer.optimal_quality_sum_at(round, K) - sum) * L as f64;
            let obs = observer.observe_round(round, &selected, &mut rng);
            policy.observe(round, &obs);
        }
        regret
    };

    let mut sw = SlidingWindowUcbPolicy::new(M, K, 200);
    let mut stationary = CmabUcbPolicy::new(M, K);
    let sw_regret = run(&mut sw, 11);
    let st_regret = run(&mut stationary, 11);
    assert!(
        sw_regret < 3.0 * st_regret.max(1.0),
        "stationary {st_regret} vs SW {sw_regret}"
    );
}

#[test]
fn drifted_quality_prices_shift_the_equilibrium() {
    // The game priced with post-drift estimates must ask the improved
    // seller for more sensing time than the pre-drift pricing did.
    let cost = SellerCostParams { a: 0.2, b: 0.3 };
    let make_ctx = |q: f64| {
        GameContext::new(
            vec![SelectedSeller::new(cdt_types::SellerId(0), q, cost)],
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap()
    };
    let low = solve_equilibrium(&make_ctx(0.3));
    let high = solve_equilibrium(&make_ctx(0.9));
    // Higher quality: the same total value needs less time and lower unit
    // price; consumer profit rises.
    assert!(high.profits.consumer > low.profits.consumer);
}
