//! Protocol-journal contract tests.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Byte identity** — the streaming [`JournalObserver`] produces, for
//!    the same seed, exactly the bytes the historical whole-buffer path
//!    (manual stepping + [`events_for_round`] + [`EventLog::to_json_lines`])
//!    used to write, and the journaled run's ledger is bit-identical to an
//!    unjournaled run (the observer is passive).
//! 2. **Crash safety** — a run that dies mid-round leaves a
//!    `<path>.partial` whose settled-round prefix recovers cleanly.
//! 3. **Budget semantics** — a budgeted run journals exactly the rounds
//!    the consumer settled; the budget-rejected final round never reaches
//!    the journal.

use cdt_core::{BudgetedCmabHs, CmabHs, LedgerMode, Scenario, StopReason};
use cdt_protocol::{
    events_for_round, recover_json_lines, EventLog, JournalObserver, JournalSink, MarketEvent,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(seed: u64, m: usize, k: usize, n: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    Scenario::paper_defaults(m, k, 4, n, &mut rng).unwrap()
}

/// A throwaway path in the system temp dir, unique per test name.
fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cdt_journal_{}_{name}.jsonl", std::process::id()))
}

/// The historical buffered path: step the mechanism, collect every Fig. 2
/// event in memory, serialize once at the end.
fn buffered_journal(seed: u64, m: usize, k: usize, n: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = Scenario::paper_defaults(m, k, 4, n, &mut rng).unwrap();
    let mut mech = CmabHs::new(s.config.clone()).unwrap();
    let observer = s.observer();
    let mut log = EventLog::new();
    log.append(MarketEvent::JobPublished {
        job: s.config.job.clone(),
    })
    .unwrap();
    let mut rounds = 0;
    while !mech.is_finished() {
        let outcome = mech.step(&observer, &mut rng).unwrap();
        for event in events_for_round(&outcome) {
            log.append(event).unwrap();
        }
        rounds += 1;
    }
    log.append(MarketEvent::JobCompleted { rounds }).unwrap();
    log.to_json_lines()
}

#[test]
fn streamed_journal_is_byte_identical_to_buffered_path() {
    let (seed, m, k, n) = (42, 16, 3, 60);
    let reference = buffered_journal(seed, m, k, n);

    let path = temp_path("byte_identity");
    let mut rng = StdRng::seed_from_u64(seed);
    let s = Scenario::paper_defaults(m, k, 4, n, &mut rng).unwrap();
    let mut mech = CmabHs::new(s.config.clone()).unwrap();
    let mut journal = JournalObserver::create(&path, s.config.job.clone()).unwrap();
    let observed = mech
        .run_with_mode_observed(&s.observer(), &mut rng, LedgerMode::Summary, &mut journal)
        .unwrap();
    let report = journal.finish().unwrap();
    assert!(report.completed);
    assert_eq!(report.settled_rounds, n);
    assert_eq!(report.events as usize, 2 + 5 * n);

    let streamed = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        streamed, reference,
        "streamed journal bytes diverge from the buffered serialization"
    );

    // The journal observer is passive: same seed without it gives a
    // bit-identical ledger.
    let mut rng2 = StdRng::seed_from_u64(seed);
    let s2 = Scenario::paper_defaults(m, k, 4, n, &mut rng2).unwrap();
    let mut plain = CmabHs::new(s2.config.clone()).unwrap();
    let unobserved = plain
        .run_with_mode(&s2.observer(), &mut rng2, LedgerMode::Summary)
        .unwrap();
    assert_eq!(observed, unobserved, "journaling changed the run");

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn journal_bytes_identical_with_spans_and_watchdog() {
    let (seed, m, k, n) = (42, 14, 3, 50);

    // Reference journal: no observability pipeline installed at all.
    cdt_obs::uninstall();
    let path_off = temp_path("spans_off");
    let mut rng = StdRng::seed_from_u64(seed);
    let s = Scenario::paper_defaults(m, k, 4, n, &mut rng).unwrap();
    let mut mech = CmabHs::new(s.config.clone()).unwrap();
    let mut journal = JournalObserver::create(&path_off, s.config.job.clone()).unwrap();
    let ledger_off = mech
        .run_with_mode_observed(&s.observer(), &mut rng, LedgerMode::Summary, &mut journal)
        .unwrap();
    journal.finish().unwrap();

    // Same seed with span tracing and the watchdog on: spans and health
    // records go to their own events file, so the journal bytes — and the
    // ledger — must be bit-for-bit identical to the untraced run.
    let events = temp_path("spans_events");
    let path_on = temp_path("spans_on");
    cdt_obs::global().reset();
    cdt_obs::install(cdt_obs::ObsConfig {
        events_path: Some(events.clone()),
        spans: true,
        watchdog_ms: Some(1),
        ..cdt_obs::ObsConfig::default()
    })
    .unwrap();
    let mut rng2 = StdRng::seed_from_u64(seed);
    let s2 = Scenario::paper_defaults(m, k, 4, n, &mut rng2).unwrap();
    let mut mech2 = CmabHs::new(s2.config.clone()).unwrap();
    let mut journal2 = JournalObserver::create(&path_on, s2.config.job.clone()).unwrap();
    let ledger_on = mech2
        .run_with_mode_observed(
            &s2.observer(),
            &mut rng2,
            LedgerMode::Summary,
            &mut journal2,
        )
        .unwrap();
    journal2.finish().unwrap();
    cdt_obs::flush().unwrap();
    cdt_obs::uninstall();

    assert_eq!(ledger_off, ledger_on, "spans+watchdog changed the ledger");
    let bytes_off = std::fs::read(&path_off).unwrap();
    let bytes_on = std::fs::read(&path_on).unwrap();
    assert_eq!(
        bytes_off, bytes_on,
        "spans+watchdog changed the journal bytes"
    );

    std::fs::remove_file(&path_off).unwrap();
    std::fs::remove_file(&path_on).unwrap();
    std::fs::remove_file(&events).ok();
}

#[test]
fn killed_run_leaves_recoverable_partial() {
    let path = temp_path("crash");
    let partial = {
        let mut rng = StdRng::seed_from_u64(7);
        let s = Scenario::paper_defaults(12, 3, 4, 40, &mut rng).unwrap();
        let mut mech = CmabHs::new(s.config.clone()).unwrap();
        let observer = s.observer();
        let mut sink = JournalSink::create(&path).unwrap();
        sink.append(&MarketEvent::JobPublished {
            job: s.config.job.clone(),
        })
        .unwrap();
        for _ in 0..5 {
            let outcome = mech.step(&observer, &mut rng).unwrap();
            for event in events_for_round(&outcome) {
                sink.append(&event).unwrap();
            }
        }
        // Begin round 5 but never settle it, then drop (simulated kill).
        let outcome = mech.step(&observer, &mut rng).unwrap();
        let events = events_for_round(&outcome);
        sink.append(&events[0]).unwrap();
        sink.append(&events[1]).unwrap();
        sink.partial_path().to_path_buf()
    };
    assert!(!path.exists(), "no finished journal should appear");
    assert!(partial.exists(), "the kill must leave the partial behind");

    let text = std::fs::read_to_string(&partial).unwrap();
    let rec = recover_json_lines(&text);
    assert_eq!(rec.settled_rounds(), 5);
    assert!(!rec.completed);
    assert_eq!(rec.dropped_events(), 2);
    let stop = rec.stop.expect("mid-round truncation must be reported");
    assert!(stop.reason.contains("mid-round"), "{}", stop.reason);
    // The recovered prefix is itself a valid journal.
    EventLog::from_json_lines(&rec.log.to_json_lines()).unwrap();
    std::fs::remove_file(&partial).unwrap();
}

#[test]
fn stale_partial_is_refused_and_preserved() {
    // A crashed run's `<path>.partial` is recoverable evidence; starting a
    // new journal at the same path must refuse loudly, not clobber it.
    let path = temp_path("stale_partial");
    let partial = path.with_extension("jsonl.partial");
    let evidence = "this is the dead run's history\n";
    std::fs::write(&partial, evidence).unwrap();

    let err = JournalSink::create(&path).expect_err("stale partial must refuse");
    let msg = err.to_string();
    assert!(msg.contains("refusing to start journal"), "{msg}");
    assert!(msg.contains("journal recover"), "{msg}");
    assert_eq!(
        std::fs::read_to_string(&partial).unwrap(),
        evidence,
        "the stale partial must be untouched"
    );

    // Once the partial is cleared, the same path works again.
    std::fs::remove_file(&partial).unwrap();
    let sink = JournalSink::create(&path).unwrap();
    drop(sink);
    std::fs::remove_file(path.with_extension("jsonl.partial")).unwrap();
}

#[test]
fn budget_journal_records_only_settled_rounds() {
    // Probe a typical per-round payment, then cap at ~6 rounds.
    let s = scenario(3, 10, 3, 400);
    let mut rng = StdRng::seed_from_u64(11);
    let mut probe = BudgetedCmabHs::new(s.config.clone(), 1e12).unwrap();
    let full = probe.run(&s.observer(), &mut rng).unwrap();
    let per_round = full.spent / full.ledger.rounds() as f64;

    let path = temp_path("budget");
    let s2 = scenario(3, 10, 3, 400);
    let mut rng2 = StdRng::seed_from_u64(11);
    let mut mech = BudgetedCmabHs::new(s2.config.clone(), per_round * 6.0).unwrap();
    let mut sink = JournalSink::create(&path).unwrap();
    sink.append(&MarketEvent::JobPublished {
        job: s2.config.job.clone(),
    })
    .unwrap();
    let run = mech
        .run_with(&s2.observer(), &mut rng2, |outcome| {
            for event in events_for_round(outcome) {
                sink.append(&event).unwrap();
            }
        })
        .unwrap();
    assert_eq!(run.stop_reason, StopReason::BudgetExhausted);
    let rounds = sink.state().settled_rounds();
    sink.append(&MarketEvent::JobCompleted { rounds }).unwrap();
    let report = sink.finish().unwrap();

    assert!(report.completed);
    assert_eq!(report.settled_rounds, run.ledger.rounds());
    let text = std::fs::read_to_string(&path).unwrap();
    let log = EventLog::from_json_lines(&text).unwrap();
    // The journal's settled money equals the ledger's spend: the rejected
    // round is absent from both.
    let journaled: f64 = log.settlements().map(|(_, c, _)| c).sum();
    assert!((journaled - run.spent).abs() < 1e-9);
    std::fs::remove_file(&path).unwrap();
}
