//! Observability contract tests.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Passivity** — recording every event (in memory or through the
//!    installed pipeline) leaves `RunResult` / `ReplicatedRun` bit-for-bit
//!    identical to the uninstrumented null path, at any thread count.
//! 2. **Schema stability** — the JSONL trace written by the sink carries
//!    exactly the documented key set per event type (the golden schema).
//! 3. **Timing sanity** — per-phase nanosecond laps nest inside the
//!    measured wall clock of the run that produced them.

use cdt_core::Scenario;
use cdt_obs::{EventRecord, ObsConfig, RecordingObserver};
use cdt_sim::{replicate, run_policy, run_policy_observed, set_thread_override, PolicySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// The observability pipeline and the thread override are process-global;
/// serialize every test that touches either.
static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

fn scenario(seed: u64, m: usize, k: usize, n: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    Scenario::paper_defaults(m, k, 4, n, &mut rng).unwrap()
}

/// A throwaway path in the system temp dir, unique per test name.
fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cdt_obs_{}_{name}.jsonl", std::process::id()))
}

#[test]
fn recording_observer_is_bit_identical_to_null_path() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cdt_obs::uninstall();
    let s = scenario(42, 16, 3, 100);
    let spec = PolicySpec::paper_set()[0];

    let plain = run_policy(&s, spec, 7, &[25, 100]).unwrap();
    let mut rec = RecordingObserver::new("identity");
    let observed = run_policy_observed(&s, spec, 7, &[25, 100], &mut rec).unwrap();

    assert_eq!(plain, observed, "recording a run changed its result");
    // 6 events per round: start, selection, equilibrium, observation,
    // round_end, regret.
    assert_eq!(rec.records.len(), 100 * 6);
}

#[test]
fn installed_pipeline_leaves_replication_bit_identical() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cdt_obs::uninstall();
    let specs = PolicySpec::paper_set();

    set_thread_override(Some(1));
    let baseline = replicate(12, 3, 3, 60, &specs, 2, 99).unwrap();

    // Same workload, pipeline on, four workers: still identical.
    let events = temp_path("replicate");
    cdt_obs::global().reset();
    cdt_obs::install(ObsConfig {
        events_path: Some(events.clone()),
        summary: false,
        events_sample: 0,
        ..ObsConfig::default()
    })
    .unwrap();
    set_thread_override(Some(4));
    let instrumented = replicate(12, 3, 3, 60, &specs, 2, 99).unwrap();
    set_thread_override(None);
    cdt_obs::flush().unwrap();
    cdt_obs::uninstall();

    assert_eq!(
        baseline, instrumented,
        "the installed pipeline perturbed replication results"
    );
    let text = std::fs::read_to_string(&events).unwrap();
    assert!(!text.is_empty(), "pipeline wrote no events");
    std::fs::remove_file(&events).ok();
}

#[test]
fn jsonl_trace_matches_golden_schema() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cdt_obs::uninstall();
    let events = temp_path("golden");
    cdt_obs::global().reset();
    cdt_obs::install(ObsConfig {
        events_path: Some(events.clone()),
        summary: false,
        events_sample: 0,
        ..ObsConfig::default()
    })
    .unwrap();
    let s = scenario(5, 12, 3, 20);
    run_policy(&s, PolicySpec::paper_set()[0], 3, &[]).unwrap();
    cdt_obs::flush().unwrap();
    cdt_obs::uninstall();

    let golden: &[(&str, &[&str])] = &[
        ("round_start", &["event", "run", "round"]),
        (
            "selection",
            &["event", "run", "round", "selected", "scores"],
        ),
        (
            "equilibrium",
            &[
                "event",
                "run",
                "round",
                "service_price",
                "collection_price",
                "sensing_times",
                "consumer_profit",
                "platform_profit",
                "seller_profit",
                "cached",
            ],
        ),
        (
            "observation",
            &["event", "run", "round", "observed_revenue", "samples"],
        ),
        (
            "round_end",
            &[
                "event",
                "run",
                "round",
                "observed_revenue",
                "consumer_profit",
                "platform_profit",
                "seller_profit",
                "selection_ns",
                "solve_ns",
                "observe_ns",
            ],
        ),
        (
            "regret",
            &["event", "run", "round", "cumulative_regret", "account_ns"],
        ),
    ];

    let text = std::fs::read_to_string(&events).unwrap();
    let mut seen_types = BTreeSet::new();
    let mut lines = 0usize;
    for line in text.lines() {
        let value: serde_json::Value = serde_json::from_str(line).unwrap();
        let obj = value.as_object().expect("every line is a JSON object");
        let tag = obj["event"].as_str().expect("`event` tag is a string");
        let expected = golden
            .iter()
            .find(|(t, _)| *t == tag)
            .unwrap_or_else(|| panic!("unknown event type `{tag}`"))
            .1;
        let keys: BTreeSet<&str> = obj.keys().map(String::as_str).collect();
        let wanted: BTreeSet<&str> = expected.iter().copied().collect();
        assert_eq!(keys, wanted, "schema drift in `{tag}`");
        // Round-trip through the typed enum: the schema really is the code.
        // Lines carrying a non-finite float (the +∞ UCB index of a
        // never-sampled seller) serialize it as `null`, which has no f64
        // round-trip — skip those.
        if !line.contains("null") {
            let _typed: EventRecord = serde_json::from_str(line).unwrap();
        }
        seen_types.insert(tag.to_owned());
        lines += 1;
    }
    assert_eq!(lines, 20 * 6, "one line per hook per round");
    assert_eq!(
        seen_types.len(),
        golden.len(),
        "every event type appears in a full run"
    );
    std::fs::remove_file(&events).ok();
}

#[test]
fn phase_laps_nest_inside_run_wall_clock() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cdt_obs::uninstall();
    let s = scenario(9, 14, 3, 50);
    let mut rec = RecordingObserver::new("timing");
    let started = std::time::Instant::now();
    run_policy_observed(&s, PolicySpec::paper_set()[0], 11, &[], &mut rec).unwrap();
    let wall_ns = started.elapsed().as_nanos() as u64;

    let mut phase_total = 0u64;
    for record in &rec.records {
        match record {
            EventRecord::RoundEnd {
                selection_ns,
                solve_ns,
                observe_ns,
                ..
            } => phase_total += selection_ns + solve_ns + observe_ns,
            EventRecord::Regret { account_ns, .. } => phase_total += account_ns,
            _ => {}
        }
    }
    assert!(phase_total > 0, "phase laps were never recorded");
    assert!(
        phase_total <= wall_ns,
        "summed phase laps ({phase_total}ns) exceed run wall clock ({wall_ns}ns)"
    );
}

#[test]
fn prometheus_dump_covers_rounds_phases_and_pool() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cdt_obs::uninstall();
    cdt_obs::global().reset();
    cdt_obs::install(ObsConfig::default()).unwrap();
    set_thread_override(Some(2));
    replicate(10, 3, 3, 40, &PolicySpec::paper_set(), 2, 17).unwrap();
    set_thread_override(None);
    let dump = cdt_obs::render(cdt_obs::global());
    cdt_obs::uninstall();

    for family in [
        "cdt_obs_rounds_total",
        "cdt_obs_events_total",
        "cdt_obs_round_phase_ns_bucket",
        "cdt_obs_round_phase_ns_count",
        "cdt_obs_pool_threads",
        "cdt_obs_pool_worker_jobs_total",
        "cdt_obs_pool_worker_chunks_total",
        "cdt_obs_pool_job_ns_bucket",
        "cdt_obs_pool_chunk_size_bucket",
    ] {
        assert!(dump.contains(family), "missing `{family}` in:\n{dump}");
    }
    assert!(
        dump.contains("le=\"+Inf\""),
        "histograms must end with an +Inf bucket"
    );
}

#[test]
fn eq_cache_counters_reach_registry_and_summary() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cdt_obs::uninstall();
    cdt_obs::global().reset();
    cdt_obs::install(ObsConfig::default()).unwrap();
    // A frozen-mean (oracle) policy picks the same selection with the same
    // q̄ snapshot every post-initial round, so the equilibrium is solved
    // exactly once: round 0 plays the initial strategy, round 1 misses,
    // rounds 2..N hit the cache.
    let s = scenario(77, 14, 3, 40);
    run_policy(&s, PolicySpec::Optimal, 21, &[]).unwrap();
    let registry = cdt_obs::global();
    let hits = registry.counter_value("cdt_obs_eq_cache_hits_total", &[]);
    let misses = registry.counter_value("cdt_obs_eq_cache_misses_total", &[]);
    let summary = cdt_obs::render_summary(registry);
    cdt_obs::uninstall();

    assert_eq!(misses, 1, "one distinct selection -> one solve");
    assert_eq!(hits, 38, "rounds 2..40 reuse the cached equilibrium");
    assert!(
        summary.contains("eq-cache: 38 hits / 1 misses"),
        "got:\n{summary}"
    );
}
