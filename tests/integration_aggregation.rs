//! Aggregation-service integration: the platform's statistics bundle
//! (Def. 2) computed over the live trading loop.

use cdt_aggregate::{aggregate_round, P2Quantile, StreamingSummary};
use cdt_bandit::SelectionPolicy;
use cdt_core::{execute_round, Scenario};
use cdt_types::Round;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn aggregated_statistics_track_true_population_quality() {
    let mut rng = StdRng::seed_from_u64(1);
    let scenario = Scenario::paper_defaults(15, 5, 6, 200, &mut rng).unwrap();
    let observer = scenario.observer();
    let mut policy = cdt_bandit::CmabUcbPolicy::new(15, 5);

    let mut job_summary = StreamingSummary::new();
    let mut median = P2Quantile::new(0.5);
    let mut selected_quality_sum = 0.0;
    let mut selected_count = 0usize;

    for t in 0..scenario.config.n() {
        let outcome =
            execute_round(&mut policy, &scenario.config, &observer, Round(t), &mut rng).unwrap();
        // Re-observe via the aggregation path: pull the same data the
        // estimator saw out of the policy's state is not possible (the
        // matrix is consumed), so aggregate a fresh draw of the same
        // selection — statistically identical.
        let obs = observer.observe_round(&outcome.selected, &mut rng);
        let weights: Vec<f64> = outcome
            .selected
            .iter()
            .map(|&id| policy.game_quality(id).max(1e-6))
            .collect();
        let stats = aggregate_round(&obs, &weights);

        assert_eq!(stats.per_poi.len(), scenario.config.l());
        assert_eq!(
            stats.overall.count(),
            (outcome.selected.len() * scenario.config.l()) as u64
        );
        job_summary.merge(&stats.overall);
        for (s, _) in outcome.selected.iter().enumerate() {
            for l in 0..scenario.config.l() {
                median.push(obs.get(s, cdt_types::PoiId(l)));
            }
        }
        let truth = scenario.population.expected_qualities();
        for &id in &outcome.selected {
            selected_quality_sum += truth[id.index()];
            selected_count += 1;
        }
    }

    // The job-level aggregate mean must match the mean true quality of the
    // sellers that were actually selected (the observations are unbiased).
    let expected_mean = selected_quality_sum / selected_count as f64;
    assert!(
        (job_summary.mean() - expected_mean).abs() < 0.01,
        "aggregate mean {} vs selected-truth mean {}",
        job_summary.mean(),
        expected_mean
    );
    // Median and mean agree loosely for the near-symmetric noise.
    let med = median.estimate().unwrap();
    assert!(
        (med - job_summary.mean()).abs() < 0.1,
        "median {med} vs mean {}",
        job_summary.mean()
    );
}

#[test]
fn quality_weighting_raises_the_bundle_mean_when_good_sellers_read_higher() {
    // Construct a matrix by hand where the high-quality seller observes
    // higher values; quality weighting must tilt the weighted mean up.
    use cdt_quality::ObservationMatrix;
    use cdt_types::SellerId;
    let obs = ObservationMatrix::new(
        vec![SellerId(0), SellerId(1)],
        vec![vec![0.9, 0.85], vec![0.3, 0.25]],
    );
    let weighted = aggregate_round(&obs, &[0.9, 0.2]);
    let unweighted = aggregate_round(&obs, &[0.5, 0.5]);
    for l in 0..2 {
        assert!(
            weighted.per_poi[l].weighted_mean > unweighted.per_poi[l].weighted_mean,
            "PoI {l}"
        );
    }
}

#[test]
fn histogram_mass_matches_summary_count() {
    let mut rng = StdRng::seed_from_u64(3);
    let scenario = Scenario::paper_defaults(8, 3, 5, 10, &mut rng).unwrap();
    let observer = scenario.observer();
    let selected: Vec<cdt_types::SellerId> = (0..3).map(cdt_types::SellerId).collect();
    let obs = observer.observe_round(&selected, &mut rng);
    let stats = aggregate_round(&obs, &[1.0; 3]);
    assert_eq!(stats.histogram.total(), stats.overall.count());
    let d: f64 = stats.histogram.densities().iter().sum();
    assert!((d - 1.0).abs() < 1e-12);
    // The interpolated median lies within the observed range.
    let med = stats.median().unwrap();
    assert!(med >= stats.overall.min().unwrap() - 0.1);
    assert!(med <= stats.overall.max().unwrap() + 0.1);
}
