//! Span-tracing and watchdog contract tests.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Golden span schema** — every `"event":"span"` line carries exactly
//!    the documented 14-key set, with `null` for absent attributes, across
//!    every producer (pipeline run/round/phase spans, pool and chunk spans,
//!    lane-group spans, per-cell attribution spans).
//! 2. **Parent-link integrity** — every non-null parent id resolves to a
//!    span written in the same trace: the causal tree has no dangling
//!    edges.
//! 3. **Flame reconciliation** — the root `run` span's inclusive time sits
//!    within 5% of the measured wall clock of the traced call, and the
//!    signed exclusive self-times telescope exactly to the root inclusive
//!    time (the invariant `cdt obs flame` reports per root).
//! 4. **Watchdog liveness** — a watchdog with an explicit 1 ns slow-round
//!    floor emits at least one well-formed `"event":"health"` record for a
//!    real run.

use cdt_core::Scenario;
use cdt_obs::ObsConfig;
use cdt_sim::{
    replicate, run_policy, set_batch_override, set_chunk_override, set_thread_override, PolicySpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Mutex;

/// The observability pipeline and the pool overrides are process-global;
/// serialize every test that touches either.
static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn scenario(seed: u64, m: usize, k: usize, n: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    Scenario::paper_defaults(m, k, 4, n, &mut rng).unwrap()
}

/// A throwaway path in the system temp dir, unique per test name.
fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cdt_span_{}_{name}.jsonl", std::process::id()))
}

/// Parses the span lines out of a mixed JSONL events file.
fn span_values(text: &str) -> Vec<serde_json::Value> {
    text.lines()
        .filter_map(|line| serde_json::from_str::<serde_json::Value>(line).ok())
        .filter(|v| v.get("event").and_then(serde_json::Value::as_str) == Some("span"))
        .collect()
}

#[test]
fn span_jsonl_matches_golden_schema_with_intact_parent_links() {
    let _guard = lock();
    cdt_obs::uninstall();
    let events = temp_path("golden");

    // A threaded, batched replication exercises every span producer at
    // once: pool + chunk spans from the worker pool, lane_group spans from
    // the batched engine, and run/round/phase spans from the pipeline
    // observer inside each job.
    cdt_obs::global().reset();
    cdt_obs::install(ObsConfig {
        events_path: Some(events.clone()),
        spans: true,
        ..ObsConfig::default()
    })
    .unwrap();
    set_thread_override(Some(2));
    set_chunk_override(Some(1));
    set_batch_override(Some(2));
    replicate(12, 3, 3, 30, &PolicySpec::paper_set(), 2, 2024).unwrap();
    set_thread_override(None);
    set_chunk_override(None);
    set_batch_override(None);
    cdt_obs::flush().unwrap();
    cdt_obs::uninstall();

    let text = std::fs::read_to_string(&events).unwrap();
    let spans = span_values(&text);
    assert!(!spans.is_empty(), "no span lines were written");

    // Golden schema: exactly these keys, always present (absent attributes
    // are null, never omitted).
    let wanted: BTreeSet<&str> = [
        "event", "trace", "span", "parent", "name", "run", "round", "start_ns", "dur_ns", "worker",
        "lane", "batch", "chunk", "cell",
    ]
    .into_iter()
    .collect();
    for value in &spans {
        let obj = value.as_object().expect("every span line is an object");
        let keys: BTreeSet<&str> = obj.keys().map(String::as_str).collect();
        assert_eq!(keys, wanted, "span schema drift in: {value}");
        // Round-trip through the typed record: the schema really is the code.
        let _typed: cdt_obs::SpanRecord = serde_json::from_str(&value.to_string()).unwrap();
    }

    // Every producer showed up.
    let names: HashSet<&str> = spans
        .iter()
        .filter_map(|v| v.get("name").and_then(serde_json::Value::as_str))
        .collect();
    // `cell` spans appear because the batched replication packs both
    // replications (distinct scenario cells) into each lockstep group.
    for name in ["run", "round", "pool", "chunk", "lane_group", "cell"] {
        assert!(
            names.contains(name),
            "missing `{name}` spans; got {names:?}"
        );
    }

    // Parent-link integrity: every non-null parent resolves to a span id
    // written in the same trace.
    let mut ids_by_trace: HashMap<u64, HashSet<u64>> = HashMap::new();
    for value in &spans {
        let trace = value["trace"].as_u64().unwrap();
        let id = value["span"].as_u64().unwrap();
        ids_by_trace.entry(trace).or_default().insert(id);
    }
    assert_eq!(ids_by_trace.len(), 1, "one install means one trace id");
    for value in &spans {
        if let Some(parent) = value["parent"].as_u64() {
            let trace = value["trace"].as_u64().unwrap();
            assert!(
                ids_by_trace[&trace].contains(&parent),
                "dangling parent {parent} in: {value}"
            );
        }
    }
    std::fs::remove_file(&events).ok();
}

#[test]
fn flame_root_matches_wall_clock_and_exclusive_sum_is_exact() {
    let _guard = lock();
    cdt_obs::uninstall();
    let events = temp_path("flame");
    cdt_obs::global().reset();
    // Sample the trace sparsely: the drop-time publication of the buffered
    // JSONL lines happens after the `run` span closes but inside the wall
    // clock, so keeping the trace small (and the run long) pins the 5%
    // reconciliation bound on tracing itself, not on serialization volume.
    cdt_obs::install(ObsConfig {
        events_path: Some(events.clone()),
        spans: true,
        events_sample: 100,
        ..ObsConfig::default()
    })
    .unwrap();

    // One serial traced run, timed tightly: the `run` span must cover
    // nearly all of it. 2000 rounds keep the fixed per-call setup (label
    // formatting, observer construction) far under the 5% tolerance.
    let s = scenario(33, 14, 3, 2000);
    let started = std::time::Instant::now();
    run_policy(&s, PolicySpec::paper_set()[0], 5, &[]).unwrap();
    let wall_ns = started.elapsed().as_nanos() as u64;
    cdt_obs::flush().unwrap();
    cdt_obs::uninstall();

    let text = std::fs::read_to_string(&events).unwrap();
    let spans = span_values(&text);
    let roots: Vec<&serde_json::Value> = spans
        .iter()
        .filter(|v| v["parent"].is_null() && v["name"] == "run")
        .collect();
    assert_eq!(roots.len(), 1, "one serial run means one root `run` span");
    let root_incl = roots[0]["dur_ns"].as_u64().unwrap();
    assert!(
        root_incl <= wall_ns,
        "root span ({root_incl}ns) exceeds the wall clock ({wall_ns}ns)"
    );
    assert!(
        root_incl * 100 >= wall_ns * 95,
        "root span ({root_incl}ns) covers less than 95% of the wall clock ({wall_ns}ns)"
    );

    // Σ exclusive == root inclusive, exactly: each span's signed self time
    // is its duration minus its children's durations, so summing over the
    // single-rooted tree telescopes to the root duration.
    let mut child_ns: HashMap<u64, i128> = HashMap::new();
    for value in &spans {
        if let Some(parent) = value["parent"].as_u64() {
            *child_ns.entry(parent).or_default() += i128::from(value["dur_ns"].as_u64().unwrap());
        }
    }
    let exclusive_sum: i128 = spans
        .iter()
        .map(|v| {
            let id = v["span"].as_u64().unwrap();
            i128::from(v["dur_ns"].as_u64().unwrap()) - child_ns.get(&id).copied().unwrap_or(0)
        })
        .sum();
    assert_eq!(
        exclusive_sum,
        i128::from(root_incl),
        "exclusive self-times do not telescope to the root inclusive time"
    );

    // The offline tools agree: the flame report's per-root reconciliation
    // line states the same identity, and the critical path is non-empty.
    let set = cdt_obs::SpanSet::from_jsonl(&text);
    assert_eq!(set.len(), spans.len());
    let flame = cdt_obs::render_flame(&set);
    let reconciliation = flame
        .lines()
        .find(|l| l.contains("[root run:"))
        .unwrap_or_else(|| panic!("no reconciliation line in:\n{flame}"));
    let (lhs, rhs) = reconciliation
        .split_once(" == ")
        .expect("reconciliation line states an equality");
    let inclusive = lhs.rsplit("inclusive ").next().unwrap();
    let exclusive = rhs
        .trim_end_matches(']')
        .trim_start_matches("exclusive-sum ");
    assert_eq!(inclusive, exclusive, "flame report failed to reconcile");
    assert!(
        !cdt_obs::render_critical_path(&set).is_empty(),
        "critical path report is empty"
    );
    std::fs::remove_file(&events).ok();
}

#[test]
fn watchdog_emits_well_formed_health_events() {
    let _guard = lock();
    cdt_obs::uninstall();
    let events = temp_path("watchdog");
    cdt_obs::global().reset();
    // An explicit 1 ns slow-round floor: every settled round is "slow", so
    // the 1 ms monitor must flag at least one during a real run (and
    // `uninstall` takes one final sample before the sink goes away).
    cdt_obs::install(ObsConfig {
        events_path: Some(events.clone()),
        watchdog_ms: Some(1),
        slow_round_ns: Some(1),
        ..ObsConfig::default()
    })
    .unwrap();
    let s = scenario(21, 14, 3, 80);
    run_policy(&s, PolicySpec::paper_set()[0], 9, &[]).unwrap();
    cdt_obs::flush().unwrap();
    cdt_obs::uninstall();

    let text = std::fs::read_to_string(&events).unwrap();
    let health: Vec<serde_json::Value> = text
        .lines()
        .filter_map(|line| serde_json::from_str::<serde_json::Value>(line).ok())
        .filter(|v| v.get("event").and_then(serde_json::Value::as_str) == Some("health"))
        .collect();
    assert!(
        !health.is_empty(),
        "watchdog with a 1 ns floor emitted no health events"
    );

    let wanted: BTreeSet<&str> = [
        "event",
        "kind",
        "t_ns",
        "worker",
        "observed_ns",
        "threshold_ns",
    ]
    .into_iter()
    .collect();
    for value in &health {
        let obj = value.as_object().expect("every health line is an object");
        let keys: BTreeSet<&str> = obj.keys().map(String::as_str).collect();
        assert_eq!(keys, wanted, "health schema drift in: {value}");
    }
    assert!(
        health.iter().any(|v| v["kind"] == "slow_round"),
        "no slow_round event despite the 1 ns floor: {health:?}"
    );
    // The registry counted them too (this is what `--obs-summary` and the
    // Prometheus render surface).
    let counted =
        cdt_obs::global().counter_value("cdt_obs_health_events_total", &[("kind", "slow_round")]);
    assert!(counted >= 1, "health events missing from the registry");
    std::fs::remove_file(&events).ok();
}
