//! End-to-end pipeline integration: synthetic Chicago trace → PoIs →
//! sellers → scenario → CMAB-HS trading → settlement, across crates.

use cdt_core::prelude::*;
use cdt_core::{LedgerMode, Scenario};
use cdt_trace::{csv, Dataset, TraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trace_to_trading_pipeline() {
    let mut rng = StdRng::seed_from_u64(1);
    let dataset = Dataset::build(&TraceConfig::small(), 5, 40, &mut rng);
    assert_eq!(dataset.l(), 5);
    assert!(dataset.m() > 10);

    let scenario = Scenario::from_dataset(&dataset, 4, 100, &mut rng).unwrap();
    let mut mech = CmabHs::new(scenario.config.clone()).unwrap();
    let ledger = mech
        .run_with_mode(&scenario.observer(), &mut rng, LedgerMode::Full)
        .unwrap();

    assert_eq!(ledger.rounds(), 100);
    assert_eq!(ledger.outcomes().len(), 100);
    assert!(ledger.total_observed_revenue() > 0.0);
    // Round 0 selects all M; every other round selects K = 4.
    assert_eq!(ledger.outcomes()[0].selection_size(), dataset.m());
    for o in &ledger.outcomes()[1..] {
        assert_eq!(o.selection_size(), 4);
    }
}

#[test]
fn full_run_is_deterministic_across_processes() {
    // Two completely independent reconstructions from the same seed must
    // agree bit-for-bit — this is the reproducibility contract of the
    // whole evaluation.
    let run = || {
        let mut rng = StdRng::seed_from_u64(99);
        let dataset = Dataset::build(&TraceConfig::small(), 5, 30, &mut rng);
        let scenario = Scenario::from_dataset(&dataset, 3, 60, &mut rng).unwrap();
        let mut mech = CmabHs::new(scenario.config.clone()).unwrap();
        let ledger = mech
            .run_with_mode(&scenario.observer(), &mut rng, LedgerMode::Summary)
            .unwrap();
        (
            ledger.total_observed_revenue(),
            ledger.total_consumer_profit(),
            ledger.total_platform_profit(),
            ledger.total_seller_profit(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn trace_csv_round_trips_through_the_pipeline() {
    let mut rng = StdRng::seed_from_u64(3);
    let dataset = Dataset::build(&TraceConfig::small(), 5, 30, &mut rng);
    let exported = csv::to_csv(&dataset.records);
    let reimported = csv::from_csv(&exported).unwrap();
    assert_eq!(reimported.len(), dataset.records.len());
    // PoI extraction on the re-imported trace matches the original.
    let pois = cdt_trace::extract_pois(&reimported, 5);
    assert_eq!(pois, dataset.pois);
}

#[test]
fn money_flows_are_conserved_each_round() {
    // Consumer payment = platform income; platform payment + aggregation
    // cost + platform profit = consumer payment. All of it must reconcile
    // from the public ledger.
    let mut rng = StdRng::seed_from_u64(4);
    let scenario = Scenario::paper_defaults(15, 4, 5, 30, &mut rng).unwrap();
    let theta = scenario.config.platform_cost.theta;
    let lambda = scenario.config.platform_cost.lambda;
    let mut mech = CmabHs::new(scenario.config.clone()).unwrap();
    let ledger = mech
        .run_to_completion(&scenario.observer(), &mut rng)
        .unwrap();
    for o in ledger.outcomes() {
        let total_tau = o.strategy.total_sensing_time();
        let aggregation_cost = theta * total_tau * total_tau + lambda * total_tau;
        let lhs = o.strategy.consumer_payment();
        let rhs = o.strategy.seller_payment() + aggregation_cost + o.strategy.profits.platform;
        assert!(
            (lhs - rhs).abs() < 1e-6,
            "round {}: payment {lhs} != outflow {rhs}",
            o.round.index()
        );
    }
}

#[test]
fn estimates_converge_to_truth_with_long_horizons() {
    let mut rng = StdRng::seed_from_u64(5);
    let scenario = Scenario::paper_defaults(12, 4, 8, 600, &mut rng).unwrap();
    let mut mech = CmabHs::new(scenario.config.clone()).unwrap();
    mech.run_with_mode(&scenario.observer(), &mut rng, LedgerMode::Summary)
        .unwrap();
    let truth = scenario.population.expected_qualities();
    // The top-K sellers are selected almost every round; their estimates
    // must be tight.
    for &id in scenario.population.ranking_by_true_quality().iter().take(4) {
        let est = mech.policy().estimator().mean(id);
        assert!(
            (est - truth[id.index()]).abs() < 0.04,
            "{id}: {est} vs {}",
            truth[id.index()]
        );
    }
}

#[test]
fn selection_concentrates_on_true_top_k() {
    let mut rng = StdRng::seed_from_u64(6);
    let scenario = Scenario::paper_defaults(12, 3, 6, 1_000, &mut rng).unwrap();
    let mut mech = CmabHs::new(scenario.config.clone()).unwrap();
    let ledger = mech
        .run_to_completion(&scenario.observer(), &mut rng)
        .unwrap();
    let optimal: std::collections::HashSet<usize> = scenario
        .population
        .ranking_by_true_quality()
        .iter()
        .take(3)
        .map(|s| s.index())
        .collect();
    // UCB's K+1-weighted width keeps deliberate exploration pressure (that
    // is Eq. 19's design), so the *exact* optimal set is not selected every
    // round at small N. Measure the mean overlap with S* instead — it must
    // be high in the late rounds.
    let late = &ledger.outcomes()[ledger.rounds() / 2..];
    let mean_overlap: f64 = late
        .iter()
        .map(|o| {
            o.selected
                .iter()
                .filter(|x| optimal.contains(&x.index()))
                .count() as f64
                / 3.0
        })
        .sum::<f64>()
        / late.len() as f64;
    assert!(
        mean_overlap > 0.7,
        "late-round mean overlap with S* is only {mean_overlap}"
    );
}
