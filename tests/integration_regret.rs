//! Regret integration: the orderings of Figs. 7–11 and the Theorem 19
//! bound, exercised through the full multi-crate stack.

use cdt_bandit::{gap_statistics, theoretical_regret_bound};
use cdt_core::Scenario;
use cdt_sim::{compare_policies, run_policy, PolicySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(m: usize, k: usize, l: usize, n: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    Scenario::paper_defaults(m, k, l, n, &mut rng).unwrap()
}

#[test]
fn paper_regret_ordering() {
    // Fig. 7(b): optimal ≈ 0 < CMAB-HS ≤ 0.1-first < 0.5-first < random.
    let s = scenario(30, 5, 5, 800, 1);
    let cmp = compare_policies(&s, &PolicySpec::paper_set(), 17, &[]).unwrap();
    let reg = |name: &str| cmp.run(name).unwrap().regret;
    assert!(reg("optimal").abs() < 1e-9);
    assert!(reg("CMAB-HS") < reg("0.5-first"), "CMAB vs 0.5-first");
    assert!(reg("0.1-first") < reg("0.5-first"), "0.1 vs 0.5-first");
    assert!(reg("0.5-first") < reg("random"), "0.5-first vs random");
    assert!(reg("CMAB-HS") < 0.25 * reg("random"), "CMAB ≪ random");
}

#[test]
fn cmab_regret_is_sublinear_in_n() {
    // Theorem 19 promises O(ln N) regret: doubling the horizon must add
    // far less than double the regret once learning has kicked in.
    let s1 = scenario(20, 4, 5, 500, 2);
    let s2 = scenario(20, 4, 5, 2_000, 2); // same seed ⇒ same population
    let r1 = run_policy(&s1, PolicySpec::CmabHs, 5, &[]).unwrap().regret;
    let r2 = run_policy(&s2, PolicySpec::CmabHs, 5, &[]).unwrap().regret;
    // 4× the rounds should yield well under 4× the regret.
    assert!(
        r2 < 2.5 * r1.max(1.0),
        "regret grew superlinearly: {r1} → {r2}"
    );
}

#[test]
fn random_regret_is_linear_in_n() {
    let s1 = scenario(20, 4, 5, 500, 3);
    let s2 = scenario(20, 4, 5, 2_000, 3);
    let r1 = run_policy(&s1, PolicySpec::Random, 5, &[]).unwrap().regret;
    let r2 = run_policy(&s2, PolicySpec::Random, 5, &[]).unwrap().regret;
    let ratio = r2 / r1;
    assert!(
        (3.0..5.0).contains(&ratio),
        "random regret should scale ~4x: ratio {ratio}"
    );
}

#[test]
fn theorem19_bound_holds() {
    let s = scenario(20, 4, 5, 2_000, 4);
    let truth = s.population.expected_qualities();
    let gaps = gap_statistics(&truth, 4).expect("continuous qualities never tie");
    let bound = theoretical_regret_bound(2_000, 20, 4, 5, gaps);
    let measured = run_policy(&s, PolicySpec::CmabHs, 5, &[]).unwrap().regret;
    assert!(
        measured <= bound,
        "measured regret {measured} exceeds the Theorem 19 bound {bound}"
    );
}

#[test]
fn revenue_identity_holds_for_all_policies() {
    // expected_revenue + regret == optimal revenue, for every policy.
    let s = scenario(25, 5, 4, 400, 5);
    let cmp = compare_policies(&s, &PolicySpec::paper_set(), 23, &[]).unwrap();
    let opt_rev = cmp.run("optimal").unwrap().expected_revenue;
    for r in &cmp.runs {
        let identity = r.expected_revenue + r.regret - opt_rev;
        assert!(
            identity.abs() < 1e-6,
            "{}: revenue {} + regret {} != optimal {}",
            r.name,
            r.expected_revenue,
            r.regret,
            opt_rev
        );
    }
}

#[test]
fn observed_revenue_tracks_expected_revenue() {
    // The sampled (truncated-Gaussian) revenue concentrates on the
    // expected revenue over long horizons.
    let s = scenario(20, 5, 6, 1_000, 6);
    let r = run_policy(&s, PolicySpec::CmabHs, 5, &[]).unwrap();
    let rel = (r.observed_revenue - r.expected_revenue).abs() / r.expected_revenue;
    assert!(rel < 0.01, "observed vs expected drift {rel}");
}

#[test]
fn extension_policies_also_learn() {
    let s = scenario(24, 4, 5, 600, 7);
    let cmp = compare_policies(
        &s,
        &[
            PolicySpec::Random,
            PolicySpec::Thompson,
            PolicySpec::Cucb,
            PolicySpec::EpsilonGreedy(0.1),
        ],
        31,
        &[],
    )
    .unwrap();
    let random = cmp.run("random").unwrap().regret;
    for name in ["thompson", "CUCB", "0.1-greedy"] {
        let r = cmp.run(name).unwrap().regret;
        assert!(r < random, "{name} regret {r} should beat random {random}");
    }
}
