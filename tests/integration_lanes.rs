//! Lane-kernel divergence contracts, validated end to end through the
//! protocol journal (`cdt journal diff`).
//!
//! The contracts under test:
//!
//! - **Deterministic path**: settled payments are bit-identical at every
//!   supported lane width — the chunked kernels preserve the serial float
//!   expression trees, so the journal diff is exactly zero.
//! - **Fast-math**: reassociated lane reductions may diverge from the
//!   serial order, but only within a bound that `--tol` makes explicit,
//!   and reproducibly — the same width and input always journal the same
//!   bytes.
//! - **Different runs stay distinguishable**: the zero-tolerance diff
//!   must fail for journals of different scenarios, so a passing diff is
//!   evidence of identity, not of a vacuous comparator.

use cdt_cli::args::{parse_flags, FlagMap};
use cdt_cli::commands::{journal_diff_cmd, run_mechanism};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The lane configuration is process-global; serialize every test.
static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn reset_overrides() {
    cdt_sim::set_thread_override(None);
    cdt_sim::set_chunk_override(None);
    cdt_sim::set_batch_override(None);
    cdt_sim::set_lanes_override(None);
    cdt_sim::set_fast_math_override(None);
}

fn flags(args: &[&str]) -> FlagMap {
    parse_flags(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()).unwrap()
}

/// Journals one `cdt run` of the shared scenario (L=10 sellers, so every
/// lane width up to 8 runs full lane bodies) with `extra` flags appended.
fn journal_run(dir: &Path, name: &str, extra: &[&str]) -> PathBuf {
    let path = dir.join(name);
    let path_str = path.to_str().unwrap().to_owned();
    let mut args = vec!["--m", "20", "--k", "5", "--l", "10", "--n", "6"];
    args.extend_from_slice(extra);
    args.extend_from_slice(&["--journal", &path_str]);
    run_mechanism(&flags(&args)).unwrap();
    reset_overrides();
    cdt_sim::sync_lane_config();
    path
}

fn load(path: &Path) -> cdt_protocol::EventLog {
    let text = std::fs::read_to_string(path).unwrap();
    cdt_protocol::EventLog::from_json_lines(&text).unwrap()
}

#[test]
fn deterministic_journals_are_bit_identical_at_every_lane_width() {
    let _guard = lock();
    let dir = std::env::temp_dir().join("cdt_lanes_identity_test");
    std::fs::create_dir_all(&dir).unwrap();

    let reference = journal_run(&dir, "w1.jsonl", &["--lanes", "1"]);
    for width in ["2", "4", "8"] {
        let other = journal_run(&dir, &format!("w{width}.jsonl"), &["--lanes", width]);
        let d = cdt_protocol::diff_settlements(&load(&reference), &load(&other));
        assert!(d.is_zero(), "width {width} diverged from width 1: {d:?}");
        assert_eq!(d.rounds_compared, 6);
        // The CLI validator agrees at zero tolerance.
        journal_diff_cmd(
            reference.to_str().unwrap(),
            other.to_str().unwrap(),
            &flags(&[]),
        )
        .unwrap();
        std::fs::remove_file(other).unwrap();
    }
    std::fs::remove_file(reference).unwrap();
}

#[test]
fn fast_math_journals_diverge_within_bound_and_reproducibly() {
    let _guard = lock();
    let dir = std::env::temp_dir().join("cdt_lanes_fast_math_test");
    std::fs::create_dir_all(&dir).unwrap();

    let reference = journal_run(&dir, "det.jsonl", &[]);
    let fast_a = journal_run(&dir, "fm_a.jsonl", &["--fast-math"]);
    let fast_b = journal_run(&dir, "fm_b.jsonl", &["--fast-math"]);

    // Reproducible: two fast-math runs of one scenario journal the same
    // settled bits.
    let repeat = cdt_protocol::diff_settlements(&load(&fast_a), &load(&fast_b));
    assert!(repeat.is_zero(), "fast-math not reproducible: {repeat:?}");

    // Bounded: against the deterministic reference, divergence stays
    // within the documented reassociation bound. Payments are O(1e3), so
    // 1e-6 absolute is ~1e-9 relative — vastly above the handful of ULPs
    // reassociating ~10-element sums can move, and vastly below any
    // real numerical difference.
    let d = cdt_protocol::diff_settlements(&load(&reference), &load(&fast_a));
    assert!(d.structural.is_none(), "{d:?}");
    assert!(d.within(1e-6), "fast-math out of bound: {d:?}");
    journal_diff_cmd(
        reference.to_str().unwrap(),
        fast_a.to_str().unwrap(),
        &flags(&["--tol", "1e-6"]),
    )
    .unwrap();

    for p in [reference, fast_a, fast_b] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn journal_diff_rejects_runs_of_different_scenarios() {
    let _guard = lock();
    let dir = std::env::temp_dir().join("cdt_lanes_mismatch_test");
    std::fs::create_dir_all(&dir).unwrap();

    let a = journal_run(&dir, "seed_default.jsonl", &[]);
    let b = journal_run(&dir, "seed_7.jsonl", &["--seed", "7"]);
    let err = journal_diff_cmd(a.to_str().unwrap(), b.to_str().unwrap(), &flags(&[])).unwrap_err();
    assert!(
        err.contains("diverge") || err.contains("structural"),
        "unexpected diff error: {err}"
    );
    for p in [a, b] {
        std::fs::remove_file(p).unwrap();
    }
}
