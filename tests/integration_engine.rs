//! Resident engine runtime contract tests.
//!
//! The engine is a scheduling change only: for any workers × chunk ×
//! batch × lanes combination, `Engine::submit` must return bit-for-bit
//! the output of the per-call `run_cells` path, concurrent submissions
//! must demux to their own results in job order, same-shape concurrent
//! submissions must share cross-request lockstep groups, drain must
//! dispatch every queued lane (no job left behind), and a warm engine's
//! persistent workers must recycle their scratch arenas across
//! submissions instead of rebuilding them.

use cdt_core::Scenario;
use cdt_sim::{
    arena_counters, run_cells, set_batch_override, set_chunk_override, set_engine_override,
    set_fast_math_override, set_lanes_override, set_thread_override, CellJob, Engine, PolicySpec,
};
use cdt_types::mix_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::Duration;

/// The thread/chunk/batch/lane overrides are process-global; serialize
/// every test that sets them (the arena counters are process-global too,
/// so the warm-reuse test needs the same serialization).
static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    let guard = GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Pin `run_cells` to the per-call pool (even under an exported
    // `CDT_ENGINE`): these tests contrast it, as the identity oracle,
    // against explicit `Engine` instances.
    set_engine_override(Some(false));
    guard
}

fn reset_overrides() {
    set_thread_override(None);
    set_chunk_override(None);
    set_batch_override(None);
    set_lanes_override(None);
    set_fast_math_override(None);
    set_engine_override(None);
}

fn scenario(seed: u64, m: usize, k: usize, l: usize, n: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    Scenario::paper_defaults(m, k, l, n, &mut rng).unwrap()
}

/// A small sweep shaped like `cdt sweep --engine`: grid points varying
/// `K` (distinct ShapeKeys) × replications (same-shape cells) × the paper
/// policy set.
fn sweep_cells(base_seed: u64) -> Vec<(u64, Scenario)> {
    let grid = [2usize, 3];
    let reps = 2;
    let mut cells = Vec::new();
    for (i, k) in grid.iter().enumerate() {
        for rep in 0..reps {
            let cell_seed = mix_seed(mix_seed(base_seed, i as u64), rep);
            cells.push((cell_seed, scenario(cell_seed, 10, *k, 3, 40)));
        }
    }
    cells
}

fn sweep_jobs<'a>(cells: &'a [(u64, Scenario)], specs: &[PolicySpec]) -> Vec<CellJob<'a>> {
    cells
        .iter()
        .enumerate()
        .flat_map(|(c, (cell_seed, scenario))| {
            specs
                .iter()
                .enumerate()
                .map(move |(j, &spec)| CellJob {
                    cell: c as u64,
                    scenario,
                    spec,
                    seed: mix_seed(*cell_seed, 1 + j as u64),
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

fn cells_of(scenario: &Scenario, spec: PolicySpec, count: u64, seed0: u64) -> Vec<CellJob<'_>> {
    (0..count)
        .map(|i| CellJob {
            cell: i,
            scenario,
            spec,
            seed: seed0 + i,
        })
        .collect()
}

#[test]
fn engine_submit_is_bit_identical_across_the_batch_chunk_thread_grid() {
    let _guard = lock();
    let specs = PolicySpec::paper_set();
    let cells = sweep_cells(7);
    let jobs = sweep_jobs(&cells, &specs);
    let checkpoints = [10usize, 20];

    // Serial per-call reference: one thread, unbatched.
    set_thread_override(Some(1));
    set_chunk_override(Some(1));
    set_batch_override(Some(1));
    set_lanes_override(Some(1));
    let baseline = run_cells(&jobs, &checkpoints).unwrap();

    for lanes in [1usize, 4] {
        for batch in [1usize, 2, 3, 8] {
            for (threads, chunk) in [(1, 1), (2, 1), (4, 3)] {
                set_thread_override(Some(threads));
                set_chunk_override(Some(chunk));
                set_batch_override(Some(batch));
                set_lanes_override(Some(lanes));
                let engine = Engine::new(threads, Duration::from_micros(150));
                let run = engine.submit(&jobs, &checkpoints).unwrap();
                engine.shutdown();
                assert_eq!(
                    baseline, run,
                    "engine diverged from the per-call path at lanes={lanes} \
                     batch={batch} workers={threads} chunk={chunk}"
                );
            }
        }
    }
    reset_overrides();
}

#[test]
fn interleaved_concurrent_submissions_demux_to_their_own_results() {
    let _guard = lock();
    set_thread_override(Some(2));
    set_batch_override(Some(3));
    let a = scenario(21, 10, 2, 3, 30);
    let b = scenario(22, 12, 3, 3, 30);
    let jobs_a = cells_of(&a, PolicySpec::CmabHs, 4, 300);
    let jobs_b = cells_of(&b, PolicySpec::Random, 3, 400);
    let expect_a = run_cells(&jobs_a, &[]).unwrap();
    let expect_b = run_cells(&jobs_b, &[]).unwrap();

    let engine = Engine::new(2, Duration::from_micros(200));
    std::thread::scope(|s| {
        let eng = &engine;
        let (ja, jb) = (&jobs_a, &jobs_b);
        let ta = s.spawn(move || {
            (0..3)
                .map(|_| eng.submit(ja, &[]).unwrap())
                .collect::<Vec<_>>()
        });
        let tb = s.spawn(move || {
            (0..3)
                .map(|_| eng.submit(jb, &[]).unwrap())
                .collect::<Vec<_>>()
        });
        for got in ta.join().unwrap() {
            assert_eq!(
                got, expect_a,
                "submission A results corrupted by interleaving"
            );
        }
        for got in tb.join().unwrap() {
            assert_eq!(
                got, expect_b,
                "submission B results corrupted by interleaving"
            );
        }
    });
    assert_eq!(engine.submissions_total(), 6);
    assert_eq!(engine.jobs_total(), 21);
    engine.shutdown();
    reset_overrides();
}

#[test]
fn concurrent_same_shape_submissions_share_a_cross_request_batch() {
    let _guard = lock();
    set_thread_override(Some(1));
    set_batch_override(Some(4));
    let s = scenario(31, 10, 2, 3, 30);
    let jobs_a = cells_of(&s, PolicySpec::CmabHs, 2, 50);
    let jobs_b: Vec<CellJob> = cells_of(&s, PolicySpec::CmabHs, 2, 60)
        .into_iter()
        .map(|job| CellJob { cell: 9, ..job })
        .collect();
    let expect_a = run_cells(&jobs_a, &[]).unwrap();
    let expect_b = run_cells(&jobs_b, &[]).unwrap();

    // One worker, saturation threshold batch × workers = 4: submission A's
    // 2 lanes park inside the generous gather window until submission B's
    // 2 same-shape lanes saturate the queue, so both ride one group.
    let engine = Engine::new(1, Duration::from_millis(500));
    let handle_a = engine.enqueue(&jobs_a, &[]);
    let handle_b = engine.enqueue(&jobs_b, &[]);
    let (got_a, stats_a) = handle_a.wait().unwrap();
    let (got_b, stats_b) = handle_b.wait().unwrap();
    assert_eq!(got_a, expect_a);
    assert_eq!(got_b, expect_b);
    assert_eq!(
        engine.cross_request_batches_total(),
        1,
        "same-shape concurrent submissions never shared a lockstep group"
    );
    assert_eq!(stats_a.groups, 1);
    assert_eq!(stats_b.groups, 1);
    assert_eq!(stats_a.mean_occupancy, 2.0);
    assert!(
        stats_a.coalesced_groups >= 1,
        "the shared group spans two sweep cells and must count as coalesced"
    );
    engine.shutdown();
    reset_overrides();
}

#[test]
fn drain_dispatches_queued_lanes_and_leaves_the_queue_empty() {
    let _guard = lock();
    set_thread_override(Some(1));
    set_batch_override(Some(8));
    let s = scenario(41, 10, 2, 3, 30);
    let jobs = cells_of(&s, PolicySpec::Random, 3, 70);
    let expect = run_cells(&jobs, &[]).unwrap();

    // 3 lanes < the saturation threshold (8 × 1) and the gather window is
    // far in the future, so the lanes sit queued until drain forces the
    // dispatch.
    let engine = Engine::new(1, Duration::from_secs(30));
    let handle = engine.enqueue(&jobs, &[]);
    while engine.queue_depth() < jobs.len() {
        std::thread::yield_now();
    }
    engine.drain();
    let (got, _) = handle.wait().unwrap();
    assert_eq!(
        got, expect,
        "drained lanes must still produce exact results"
    );
    assert_eq!(engine.queue_depth(), 0, "drain left lanes in the queue");
    let err = engine.submit(&jobs, &[]).unwrap_err();
    assert!(
        err.to_string().contains("shut down"),
        "a draining engine must reject new submissions, got {err:?}"
    );
    engine.shutdown();
    reset_overrides();
}

#[test]
fn warm_engine_reuses_worker_scratch_arenas_across_submissions() {
    let _guard = lock();
    set_thread_override(Some(1));
    set_batch_override(Some(2));
    let s = scenario(51, 10, 2, 3, 30);
    let jobs = cells_of(&s, PolicySpec::CmabHs, 3, 80);

    let engine = Engine::new(1, Duration::from_micros(100));
    // Cold submission: the worker's first batched group allocates its
    // scratch; later groups within the call already recycle it.
    engine.submit(&jobs, &[]).unwrap();
    let (hits_cold, misses_cold) = arena_counters();
    // Warm submission: the persistent worker still holds its scratch, so
    // every claim is a hit — zero new misses.
    engine.submit(&jobs, &[]).unwrap();
    let (hits_warm, misses_warm) = arena_counters();
    engine.shutdown();
    reset_overrides();

    assert_eq!(
        misses_warm, misses_cold,
        "a warm engine submission rebuilt a scratch arena"
    );
    assert!(
        hits_warm > hits_cold,
        "a warm engine submission never recycled a scratch arena"
    );
}
