//! Experiment-harness integration: every figure's experiment runs at test
//! scale, produces well-formed tables, and exports to CSV.

use cdt_sim::experiments::{all_experiment_ids, run_experiment, Scale};
use cdt_sim::report::Cell;

#[test]
fn every_experiment_runs_at_test_scale() {
    for id in all_experiment_ids() {
        let tables = run_experiment(id, Scale::Test)
            .unwrap_or_else(|e| panic!("experiment {id} failed: {e}"));
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in &tables {
            assert!(!t.columns.is_empty(), "{id}: empty header");
            assert!(!t.rows.is_empty(), "{id}: empty table {}", t.title);
            for row in &t.rows {
                assert_eq!(row.len(), t.columns.len(), "{id}: ragged row");
                for cell in row {
                    if let Cell::Num(x) = cell {
                        assert!(x.is_finite(), "{id}: non-finite value in {}", t.title);
                    }
                }
            }
        }
    }
}

#[test]
fn experiments_export_csv() {
    let tables = run_experiment("fig13", Scale::Test).unwrap();
    for t in &tables {
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), t.rows.len() + 1);
        assert_eq!(
            lines[0].split(',').count(),
            t.columns.len(),
            "CSV header width"
        );
    }
}

#[test]
fn figure_ids_map_to_expected_table_counts() {
    // Figs with sub-panels produce one table per panel.
    let expect = [
        ("fig7", 2), // revenue, regret
        ("fig8", 3), // Δ-PoC, Δ-PoP, Δ-PoS
        ("fig9", 2),
        ("fig10", 3),
        ("fig11", 2),
        ("fig12", 3),
        ("fig13", 2), // (a), (b)
        ("fig14", 1),
        ("fig15", 1),
        ("fig16", 2), // (a), (b)
        ("fig17", 1),
        ("fig18", 2), // (a), (b)
        ("nonstat", 1),
        ("replicate", 1),
    ];
    for (id, n) in expect {
        let tables = run_experiment(id, Scale::Test).unwrap();
        assert_eq!(tables.len(), n, "{id} table count");
    }
}

#[test]
fn experiment_reruns_are_deterministic() {
    let a = run_experiment("fig11", Scale::Test).unwrap();
    let b = run_experiment("fig11", Scale::Test).unwrap();
    assert_eq!(a, b);
}
