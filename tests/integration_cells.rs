//! Cell-packing scheduler contract tests.
//!
//! Shape-bucketed cell batching must be a scheduling change only: for any
//! batch width, chunk size, thread count, and lane width, `run_cells`
//! returns bit-for-bit the output of running every job through the serial
//! per-cell path. The packing plan itself must preserve every job exactly
//! once, and coalesced ragged tails must recycle the worker's batch
//! scratch arena instead of rebuilding it per group.

use cdt_core::Scenario;
use cdt_sim::{
    arena_counters, pack_cells, run_cells, run_cells_observed, set_batch_override,
    set_chunk_override, set_fast_math_override, set_lanes_override, set_thread_override, CellJob,
    PolicySpec, ShapeKey,
};
use cdt_types::mix_seed;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// The thread/chunk/batch/lane overrides are process-global; serialize
/// every test that sets them.
static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn reset_overrides() {
    set_thread_override(None);
    set_chunk_override(None);
    set_batch_override(None);
    set_lanes_override(None);
    set_fast_math_override(None);
}

fn scenario(seed: u64, m: usize, k: usize, l: usize, n: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    Scenario::paper_defaults(m, k, l, n, &mut rng).unwrap()
}

/// A small sweep shaped like `cdt sweep`: grid points varying `K`
/// (different ShapeKeys, so buckets stay per-point) × replications
/// (same-shape cells whose ragged tails coalesce) × the paper policy set.
fn sweep_cells(base_seed: u64) -> Vec<(u64, Scenario)> {
    let grid = [2usize, 3];
    let reps = 2;
    let mut cells = Vec::new();
    for (i, k) in grid.iter().enumerate() {
        for rep in 0..reps {
            let cell_seed = mix_seed(mix_seed(base_seed, i as u64), rep);
            cells.push((cell_seed, scenario(cell_seed, 10, *k, 3, 40)));
        }
    }
    cells
}

fn sweep_jobs<'a>(cells: &'a [(u64, Scenario)], specs: &[PolicySpec]) -> Vec<CellJob<'a>> {
    cells
        .iter()
        .enumerate()
        .flat_map(|(c, (cell_seed, scenario))| {
            specs
                .iter()
                .enumerate()
                .map(move |(j, &spec)| CellJob {
                    cell: c as u64,
                    scenario,
                    spec,
                    seed: mix_seed(*cell_seed, 1 + j as u64),
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn packed_sweep_is_bit_identical_across_the_batch_chunk_thread_grid() {
    let _guard = lock();
    let specs = PolicySpec::paper_set();
    let cells = sweep_cells(7);
    let jobs = sweep_jobs(&cells, &specs);

    // Serial reference: one thread, unbatched, one pool job per cell job.
    set_thread_override(Some(1));
    set_chunk_override(Some(1));
    set_batch_override(Some(1));
    set_lanes_override(Some(1));
    let baseline = run_cells(&jobs, &[]).unwrap();

    // Batch 3 leaves ragged tails on the 2-rep buckets; batch 8 packs each
    // whole bucket into one group.
    for lanes in [1usize, 4] {
        for batch in [1usize, 2, 3, 8] {
            for (threads, chunk) in [(1, 1), (2, 1), (4, 3)] {
                set_thread_override(Some(threads));
                set_chunk_override(Some(chunk));
                set_batch_override(Some(batch));
                set_lanes_override(Some(lanes));
                let run = run_cells(&jobs, &[]).unwrap();
                assert_eq!(
                    baseline, run,
                    "packed sweep diverged at lanes={lanes} batch={batch} \
                     threads={threads} chunk={chunk}"
                );
            }
        }
    }
    reset_overrides();
}

#[test]
fn coalesced_ragged_tails_recycle_the_worker_scratch_arena() {
    let _guard = lock();
    let s = scenario(11, 10, 2, 3, 40);
    // Three same-shape cells of 3 jobs each: batch 2 packs the 9 jobs into
    // 5 lockstep groups (one shared ragged tail instead of one per cell).
    let jobs: Vec<CellJob> = (0..9)
        .map(|i| CellJob {
            cell: i / 3,
            scenario: &s,
            spec: PolicySpec::CmabHs,
            seed: 100 + i,
        })
        .collect();

    set_thread_override(Some(1));
    set_batch_override(Some(2));
    let (hits_before, misses_before) = arena_counters();
    let (_, stats) = run_cells_observed(&jobs, &[]).unwrap();
    let (hits_after, misses_after) = arena_counters();
    reset_overrides();

    assert_eq!(stats.lanes, 9);
    assert_eq!(stats.groups, 5);
    assert!(
        stats.coalesced_groups >= 1,
        "no group coalesced lanes across cells"
    );
    assert!(stats.mean_occupancy > 1.0);
    // All 5 groups run on the single worker: at most the first claim may
    // build a scratch; every later group must recycle it.
    assert!(
        misses_after <= misses_before + 1,
        "packed groups rebuilt the batch scratch instead of recycling it"
    );
    assert!(
        hits_after >= hits_before + 4,
        "consecutive packed groups never recycled the scratch arena"
    );
}

proptest! {
    /// The packing plan is a partition: every job index lands in exactly
    /// one group, groups respect the batch bound, all lanes of a group
    /// share its ShapeKey, and job order is preserved within each group.
    #[test]
    fn pack_cells_partitions_any_job_stream(
        picks in proptest::collection::vec((0..2usize, 0..2usize, 0..5u64), 0..40),
        batch in 1..10usize,
    ) {
        // Two shapes × two policies = four distinct ShapeKeys to scatter
        // jobs across; populations are irrelevant to the plan.
        let a = scenario(1, 10, 2, 3, 30);
        let b = scenario(2, 12, 3, 3, 30);
        let jobs: Vec<CellJob> = picks
            .iter()
            .enumerate()
            .map(|(i, &(shape, policy, cell))| CellJob {
                cell,
                scenario: if shape == 0 { &a } else { &b },
                spec: if policy == 0 { PolicySpec::CmabHs } else { PolicySpec::Random },
                seed: i as u64,
            })
            .collect();

        let groups = pack_cells(&jobs, batch);
        let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.jobs.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..jobs.len()).collect::<Vec<_>>());
        for group in &groups {
            prop_assert!(!group.jobs.is_empty());
            prop_assert!(group.jobs.len() <= batch);
            prop_assert!(
                group.jobs.windows(2).all(|w| w[0] < w[1]),
                "job order not preserved within a group"
            );
            for &ix in &group.jobs {
                prop_assert_eq!(ShapeKey::of(&jobs[ix]), group.key);
            }
        }
    }
}
