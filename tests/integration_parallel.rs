//! Determinism contract of the parallel evaluation engine: every fan-out
//! gathers results by job index and every job owns its seed, so output is
//! bit-for-bit identical at any thread count and any cursor-claim chunk
//! size.
//!
//! These tests run the same workloads pinned to one worker (the exact
//! serial path) and to a four-worker pool, and require `==` on the full
//! result structures — not approximate equality.

use cdt_core::Scenario;
use cdt_sim::{
    compare_policies, compare_policies_grid, replicate, set_chunk_override, set_thread_override,
    ComparisonResult, PolicySpec, ReplicatedRun,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// The thread/chunk overrides are process-global; serialize the tests that
/// set them.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn scenario(seed: u64, m: usize, k: usize, n: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    Scenario::paper_defaults(m, k, 4, n, &mut rng).unwrap()
}

/// One full evaluation workload: a checkpointed comparison, a sweep grid,
/// and a replication, all at the given thread count.
fn workload(threads: usize) -> (ComparisonResult, Vec<ComparisonResult>, Vec<ReplicatedRun>) {
    set_thread_override(Some(threads));
    let specs = PolicySpec::paper_set();
    let single = scenario(11, 20, 4, 120);
    let cmp = compare_policies(&single, &specs, 7, &[40, 120]).unwrap();

    let grid: Vec<Scenario> = [(16, 3), (20, 4), (24, 5)]
        .iter()
        .map(|&(m, k)| scenario(31, m, k, 90))
        .collect();
    let seeds = [5u64, 6, 7];
    let swept = compare_policies_grid(&grid, &specs, &seeds, &[]).unwrap();

    let reps = replicate(12, 3, 3, 80, &specs, 3, 99).unwrap();
    set_thread_override(None);
    (cmp, swept, reps)
}

#[test]
fn serial_and_parallel_results_are_bit_identical() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = workload(1);
    let parallel = workload(4);
    assert_eq!(
        serial.0, parallel.0,
        "compare_policies diverged across thread counts"
    );
    assert_eq!(
        serial.1, parallel.1,
        "compare_policies_grid diverged across thread counts"
    );
    assert_eq!(
        serial.2, parallel.2,
        "replicate diverged across thread counts"
    );
}

#[test]
fn oversubscribed_pool_is_still_identical() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // More workers than jobs: the pool must behave exactly like the
    // serial path even when most workers find the queue already drained.
    set_thread_override(Some(32));
    let s = scenario(17, 18, 3, 60);
    let wide = compare_policies(&s, &PolicySpec::paper_set(), 3, &[]).unwrap();
    set_thread_override(Some(1));
    let narrow = compare_policies(&s, &PolicySpec::paper_set(), 3, &[]).unwrap();
    set_thread_override(None);
    assert_eq!(wide, narrow);
}

#[test]
fn chunk_sizes_and_thread_counts_are_bit_identical() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The cursor-claim chunk size only changes the scheduling, never the
    // gather: sweep fixed chunks from job-at-a-time (1) past the whole
    // queue (1024) across thread counts, against the serial reference.
    let specs = PolicySpec::paper_set();
    let s = scenario(23, 16, 3, 70);
    set_thread_override(Some(1));
    let reference = compare_policies(&s, &specs, 13, &[30, 70]).unwrap();
    for chunk in [1usize, 2, 7, 1024] {
        set_chunk_override(Some(chunk));
        for threads in [2usize, 4, 8] {
            set_thread_override(Some(threads));
            let run = compare_policies(&s, &specs, 13, &[30, 70]).unwrap();
            assert_eq!(
                reference, run,
                "diverged at chunk = {chunk}, threads = {threads}"
            );
        }
    }
    // The adaptive default (no fixed chunk) must agree too.
    set_chunk_override(None);
    set_thread_override(Some(4));
    let adaptive = compare_policies(&s, &specs, 13, &[30, 70]).unwrap();
    set_thread_override(None);
    assert_eq!(reference, adaptive, "adaptive chunking diverged");
}

#[test]
fn replicate_is_chunk_invariant() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let specs = PolicySpec::paper_set();
    set_thread_override(Some(1));
    let reference = replicate(12, 3, 3, 60, &specs, 3, 77).unwrap();
    set_thread_override(Some(4));
    for chunk in [1usize, 3, 64] {
        set_chunk_override(Some(chunk));
        let run = replicate(12, 3, 3, 60, &specs, 3, 77).unwrap();
        assert_eq!(reference, run, "diverged at chunk = {chunk}");
    }
    set_chunk_override(None);
    set_thread_override(None);
}
