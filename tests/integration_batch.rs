//! Lockstep-batch determinism contract tests.
//!
//! The batched replication engine must be a scheduling change only: for
//! any batch width, chunk size, thread count, and lane width, `replicate`
//! (and every experiment built on it) returns bit-for-bit the output of
//! the serial one-thread, unbatched, width-1 path. The per-worker scratch
//! arenas must recycle buffers without perturbing that identity, and
//! fast-math — which is allowed to diverge from the serial reference —
//! must still be exactly reproducible per lane width.

use cdt_sim::experiments::{run_experiment, Scale};
use cdt_sim::{
    arena_counters, replicate, set_batch_override, set_chunk_override, set_fast_math_override,
    set_lanes_override, set_thread_override, PolicySpec,
};
use std::sync::Mutex;

/// The thread/chunk/batch/lane overrides are process-global; serialize
/// every test that sets them.
static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_STATE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn reset_overrides() {
    set_thread_override(None);
    set_chunk_override(None);
    set_batch_override(None);
    set_lanes_override(None);
    set_fast_math_override(None);
}

#[test]
fn replicate_is_bit_identical_across_the_batch_chunk_thread_grid() {
    let _guard = lock();
    let specs = PolicySpec::paper_set();
    let reps = 5;

    // Serial reference: one thread, unbatched, job-at-a-time claiming.
    set_thread_override(Some(1));
    set_chunk_override(Some(1));
    set_batch_override(Some(1));
    let baseline = replicate(12, 3, 3, 50, &specs, reps, 2024).unwrap();

    // `reps` collapses each policy's replications into one full-width job;
    // 7 > reps exercises the clamped final group.
    for batch in [1usize, 2, 7, reps] {
        for (threads, chunk) in [(1, 1), (2, 1), (4, 3)] {
            set_thread_override(Some(threads));
            set_chunk_override(Some(chunk));
            set_batch_override(Some(batch));
            let run = replicate(12, 3, 3, 50, &specs, reps, 2024).unwrap();
            assert_eq!(
                baseline, run,
                "replicate diverged at batch={batch} threads={threads} chunk={chunk}"
            );
        }
    }
    reset_overrides();
}

#[test]
fn replicate_experiment_is_bit_identical_at_any_batch_width() {
    let _guard = lock();

    set_thread_override(Some(1));
    set_batch_override(Some(1));
    let baseline: Vec<String> = run_experiment("replicate", Scale::Test)
        .unwrap()
        .iter()
        .map(ToString::to_string)
        .collect();

    for batch in [2usize, 3] {
        set_thread_override(Some(2));
        set_batch_override(Some(batch));
        let run: Vec<String> = run_experiment("replicate", Scale::Test)
            .unwrap()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(baseline, run, "experiment diverged at batch={batch}");
    }
    reset_overrides();
}

#[test]
fn replicate_is_bit_identical_at_every_lane_width_and_batch() {
    let _guard = lock();
    let specs = PolicySpec::paper_set();
    let reps = 4;

    // Serial reference: width-1 lanes are literally the scalar loops.
    // L=10 sellers exceed the widest lane (8), so the chunked game and
    // estimator kernels run full lane bodies, not just their tails.
    set_thread_override(Some(1));
    set_chunk_override(Some(1));
    set_batch_override(Some(1));
    set_lanes_override(Some(1));
    let baseline = replicate(12, 3, 10, 40, &specs, reps, 2024).unwrap();

    for lanes in [1usize, 2, 4, 8] {
        for batch in [1usize, 2, reps] {
            for (threads, chunk) in [(1, 1), (4, 3)] {
                set_thread_override(Some(threads));
                set_chunk_override(Some(chunk));
                set_batch_override(Some(batch));
                set_lanes_override(Some(lanes));
                let run = replicate(12, 3, 10, 40, &specs, reps, 2024).unwrap();
                assert_eq!(
                    baseline, run,
                    "replicate diverged at lanes={lanes} batch={batch} \
                     threads={threads} chunk={chunk}"
                );
            }
        }
    }
    reset_overrides();
}

#[test]
fn fast_math_replication_is_deterministic_per_lane_width() {
    let _guard = lock();
    let specs = PolicySpec::paper_set();

    // Fast-math reassociates reductions, so it need not match the serial
    // reference — but for a fixed lane width and input it must be exactly
    // reproducible regardless of threads, chunking, or batching.
    set_fast_math_override(Some(true));
    set_lanes_override(Some(4));
    set_thread_override(Some(1));
    set_chunk_override(Some(1));
    set_batch_override(Some(1));
    let first = replicate(12, 3, 10, 40, &specs, 4, 2024).unwrap();

    for (threads, chunk, batch) in [(1, 1, 2), (4, 3, 1), (4, 3, 4)] {
        set_thread_override(Some(threads));
        set_chunk_override(Some(chunk));
        set_batch_override(Some(batch));
        let run = replicate(12, 3, 10, 40, &specs, 4, 2024).unwrap();
        assert_eq!(
            first, run,
            "fast-math run not reproducible at threads={threads} \
             chunk={chunk} batch={batch}"
        );
    }
    reset_overrides();
}

#[test]
fn spans_and_watchdog_do_not_perturb_results_across_the_grid() {
    let _guard = lock();
    cdt_obs::uninstall();
    let specs = PolicySpec::paper_set();
    let reps = 4;

    // Untraced serial reference (no pipeline installed at all).
    set_thread_override(Some(1));
    set_chunk_override(Some(1));
    set_batch_override(Some(1));
    set_lanes_override(Some(1));
    let baseline = replicate(12, 3, 10, 40, &specs, reps, 2024).unwrap();

    // Span tracing + watchdog on, across the full lanes × batch × chunk ×
    // threads grid: both are passive (spans read clocks, the watchdog
    // reads atomics on its own thread), so every combination must stay
    // bit-for-bit on the untraced serial reference.
    let events = std::env::temp_dir().join(format!(
        "cdt_batch_spans_watchdog_{}.jsonl",
        std::process::id()
    ));
    for lanes in [1usize, 2, 4, 8] {
        for batch in [1usize, 2, reps] {
            for (threads, chunk) in [(1, 1), (4, 3)] {
                set_thread_override(Some(threads));
                set_chunk_override(Some(chunk));
                set_batch_override(Some(batch));
                set_lanes_override(Some(lanes));
                cdt_obs::global().reset();
                cdt_obs::install(cdt_obs::ObsConfig {
                    events_path: Some(events.clone()),
                    spans: true,
                    watchdog_ms: Some(1),
                    ..cdt_obs::ObsConfig::default()
                })
                .unwrap();
                let run = replicate(12, 3, 10, 40, &specs, reps, 2024).unwrap();
                cdt_obs::flush().unwrap();
                cdt_obs::uninstall();
                assert_eq!(
                    baseline, run,
                    "spans+watchdog perturbed results at lanes={lanes} \
                     batch={batch} threads={threads} chunk={chunk}"
                );
            }
        }
    }
    std::fs::remove_file(&events).ok();
    reset_overrides();
}

#[test]
fn batched_replication_recycles_worker_scratch() {
    let _guard = lock();

    set_thread_override(Some(1));
    set_batch_override(Some(2));
    let (hits_before, misses_before) = arena_counters();
    // 5 policies × ⌈4 reps / batch 2⌉ = 10 batch jobs on one worker: the
    // first claim on the thread builds a scratch, the rest recycle it.
    replicate(10, 3, 3, 40, &PolicySpec::paper_set(), 4, 7).unwrap();
    let (hits_after, misses_after) = arena_counters();
    reset_overrides();

    assert!(
        misses_after > misses_before,
        "a fresh worker thread must miss on its first claim"
    );
    assert!(
        hits_after > hits_before,
        "consecutive jobs on one worker never recycled the scratch arena"
    );
}
