//! End-of-run human summary: a plain-text table over the metrics registry.

use crate::event::Phase;
use crate::metrics::{Metric, MetricKey, MetricsRegistry};
use std::fmt::Write as _;

fn label_value<'a>(key: &'a MetricKey, name: &str) -> Option<&'a str> {
    key.labels
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

pub(crate) fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Renders the human-readable end-of-run summary of `registry`.
#[must_use]
pub fn render_summary(registry: &MetricsRegistry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::new();
    let _ = writeln!(out, "== observability summary ==");

    let counter = |family: &str| {
        snapshot
            .iter()
            .filter(|(k, _)| k.family == family)
            .filter_map(|(_, m)| match m {
                Metric::Counter(c) => Some(*c),
                _ => None,
            })
            .sum::<u64>()
    };
    let _ = writeln!(
        out,
        "rounds: {}   events: {}",
        counter("cdt_obs_rounds_total"),
        counter("cdt_obs_events_total")
    );

    // Event-trace sampling factor (`--obs-events-sample`): qualifies the
    // events count above — metrics still cover every round.
    let sample = snapshot.iter().find_map(|(k, m)| match m {
        Metric::Gauge(v) if k.family == "cdt_obs_events_sample" => Some(*v),
        _ => None,
    });
    if let Some(s) = sample.filter(|&s| s > 1.0) {
        let _ = writeln!(out, "event trace sampled: every {s:.0}th round");
    }

    // Active kernel configuration (process state, matching what
    // bench_history.jsonl records): lane width + fast-math gate.
    let _ = writeln!(
        out,
        "lane kernels: width {}, fast-math {}",
        cdt_types::lanes::lane_width(),
        if cdt_types::lanes::fast_math() {
            "on"
        } else {
            "off"
        }
    );

    // Watchdog health events, by kind (only after at least one fired).
    let mut health: Vec<(&str, u64)> = snapshot
        .iter()
        .filter(|(k, _)| k.family == "cdt_obs_health_events_total")
        .filter_map(|(k, m)| match m {
            Metric::Counter(c) => label_value(k, "kind").map(|kind| (kind, *c)),
            _ => None,
        })
        .collect();
    if !health.is_empty() {
        health.sort_by(|a, b| a.0.cmp(b.0));
        let parts: Vec<String> = health
            .iter()
            .map(|(kind, count)| format!("{count} {kind}"))
            .collect();
        let _ = writeln!(out, "health events: {}", parts.join(", "));
    }

    // Equilibrium-cache effectiveness (the round hot path's solve-skip).
    let eq_hits = counter("cdt_obs_eq_cache_hits_total");
    let eq_misses = counter("cdt_obs_eq_cache_misses_total");
    if eq_hits + eq_misses > 0 {
        let _ = writeln!(
            out,
            "eq-cache: {} hits / {} misses ({:.1}% hit rate)",
            eq_hits,
            eq_misses,
            100.0 * eq_hits as f64 / (eq_hits + eq_misses) as f64
        );
    }

    // Per-worker scratch-arena effectiveness (round/batch scratch reuse
    // across consecutive jobs on a thread).
    let arena_hits = counter("cdt_obs_pool_arena_hits_total");
    let arena_misses = counter("cdt_obs_pool_arena_misses_total");
    if arena_hits + arena_misses > 0 {
        let _ = writeln!(
            out,
            "scratch arena: {} reused / {} fresh ({:.1}% reuse)",
            arena_hits,
            arena_misses,
            100.0 * arena_hits as f64 / (arena_hits + arena_misses) as f64
        );
    }

    // Cell-packing effectiveness (sweep grids riding the lockstep SoA
    // engine): mean lane occupancy is total lanes over lockstep groups —
    // above 1.0 means grid cells actually shared batched round loops.
    let cell_batches = counter("cdt_obs_cell_batches_total");
    let cell_lanes = counter("cdt_obs_cell_lanes_total");
    if cell_batches > 0 {
        let _ = writeln!(
            out,
            "cell packing: {} lanes over {} lockstep groups ({} mixed-cell), mean occupancy {:.2}",
            cell_lanes,
            cell_batches,
            counter("cdt_obs_cell_coalesced_batches_total"),
            cell_lanes as f64 / cell_batches as f64
        );
    }

    // Resident engine runtime (`--engine`): submissions accepted, jobs
    // queued, and how many dispatched lockstep groups mixed lanes from
    // more than one submission (the cross-request packing win).
    let engine_submissions = counter("cdt_obs_engine_submissions_total");
    if engine_submissions > 0 {
        let _ = writeln!(
            out,
            "engine: {} submissions / {} queued jobs, {} cross-request batches",
            engine_submissions,
            counter("cdt_obs_engine_queued_jobs_total"),
            counter("cdt_obs_engine_cross_request_batches_total"),
        );
    }

    // Protocol journal (the JournalSink member of the sink family).
    let protocol_events = counter("cdt_obs_protocol_events_total");
    let settled = counter("cdt_obs_protocol_settled_rounds");
    let violations = counter("cdt_obs_protocol_violations_total");
    if protocol_events + settled + violations > 0 {
        let _ = write!(
            out,
            "protocol journal: {protocol_events} events / {settled} settled rounds"
        );
        if violations > 0 {
            let _ = write!(out, ", {violations} violations rejected");
        }
        let _ = writeln!(out);
    }
    let journal_hist = snapshot.iter().find_map(|(k, m)| match m {
        Metric::Histogram(h) if k.family == "cdt_obs_journal_write_ns" => Some(h),
        _ => None,
    });
    if let Some(h) = journal_hist {
        let _ = writeln!(
            out,
            "journal writes: {} in {} (mean {}, p50 {}, p99 {})",
            h.count(),
            fmt_ns(h.sum_ns() as f64),
            fmt_ns(h.mean_ns()),
            fmt_ns(h.quantile_ns(0.5).unwrap_or(0) as f64),
            fmt_ns(h.quantile_ns(0.99).unwrap_or(0) as f64),
        );
    }

    // Journal segment rotation and compaction (only once either ticked).
    let segments = counter("cdt_obs_journal_segments_total");
    let compactions = counter("cdt_obs_journal_compactions_total");
    if segments + compactions > 0 {
        let _ = write!(out, "journal segments: {segments} sealed");
        if compactions > 0 {
            let _ = write!(
                out,
                ", {compactions} compaction{} ({} rounds folded)",
                if compactions == 1 { "" } else { "s" },
                counter("cdt_obs_journal_compacted_rounds_total")
            );
        }
        let _ = writeln!(out);
    }

    // Per-phase latency table.
    let mut phase_rows = Vec::new();
    for phase in Phase::ALL {
        let hist = snapshot.iter().find_map(|(k, m)| match m {
            Metric::Histogram(h)
                if k.family == "cdt_obs_round_phase_ns"
                    && label_value(k, "phase") == Some(phase.as_str()) =>
            {
                Some(h)
            }
            _ => None,
        });
        if let Some(h) = hist {
            phase_rows.push((
                phase.as_str(),
                fmt_ns(h.sum_ns() as f64),
                fmt_ns(h.mean_ns()),
                fmt_ns(h.quantile_ns(0.5).unwrap_or(0) as f64),
                fmt_ns(h.quantile_ns(0.99).unwrap_or(0) as f64),
            ));
        }
    }
    if !phase_rows.is_empty() {
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>10} {:>10}",
            "phase", "total", "mean", "p50", "p99"
        );
        for (name, total, mean, p50, p99) in phase_rows {
            let _ = writeln!(out, "{name:<10} {total:>10} {mean:>10} {p50:>10} {p99:>10}");
        }
    }

    // Per-worker pool table.
    let mut workers: Vec<(String, u64, u64, u64, u64, u64)> = Vec::new();
    for (key, metric) in &snapshot {
        if key.family != "cdt_obs_pool_worker_jobs_total" {
            continue;
        }
        let Some(worker) = label_value(key, "worker") else {
            continue;
        };
        let Metric::Counter(jobs) = metric else {
            continue;
        };
        let lookup = |family: &str| {
            snapshot
                .iter()
                .find_map(|(k, m)| match m {
                    Metric::Counter(c)
                        if k.family == family && label_value(k, "worker") == Some(worker) =>
                    {
                        Some(*c)
                    }
                    _ => None,
                })
                .unwrap_or(0)
        };
        workers.push((
            worker.to_owned(),
            *jobs,
            lookup("cdt_obs_pool_worker_chunks_total"),
            lookup("cdt_obs_pool_worker_steals_total"),
            lookup("cdt_obs_pool_worker_busy_ns_total"),
            lookup("cdt_obs_pool_worker_idle_ns_total"),
        ));
    }
    if !workers.is_empty() {
        workers.sort_by_key(|(w, ..)| w.parse::<usize>().unwrap_or(usize::MAX));
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>8} {:>8} {:>10} {:>10}",
            "worker", "jobs", "chunks", "steals", "busy", "idle"
        );
        for (worker, jobs, chunks, steals, busy, idle) in workers {
            let _ = writeln!(
                out,
                "{:<8} {:>8} {:>8} {:>8} {:>10} {:>10}",
                worker,
                jobs,
                chunks,
                steals,
                fmt_ns(busy as f64),
                fmt_ns(idle as f64)
            );
        }
    }

    // Warnings, by kind.
    for (key, metric) in &snapshot {
        if key.family == "cdt_obs_warnings_total" {
            if let (Metric::Counter(c), Some(kind)) = (metric, label_value(key, "kind")) {
                let _ = writeln!(out, "warning[{kind}]: {c}x");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyHistogram;

    #[test]
    fn renders_rounds_phases_and_workers() {
        let r = MetricsRegistry::new();
        r.add_counter("cdt_obs_rounds_total", &[], 100);
        r.add_counter("cdt_obs_events_total", &[], 600);
        let mut h = LatencyHistogram::new();
        h.record_ns(10_000);
        h.record_ns(20_000);
        r.merge_histogram("cdt_obs_round_phase_ns", &[("phase", "solve")], &h);
        r.add_counter("cdt_obs_pool_worker_jobs_total", &[("worker", "0")], 7);
        r.add_counter(
            "cdt_obs_pool_worker_busy_ns_total",
            &[("worker", "0")],
            5_000_000,
        );
        r.add_counter("cdt_obs_warnings_total", &[("kind", "cdt-threads")], 2);

        let text = render_summary(&r);
        assert!(text.contains("rounds: 100   events: 600"));
        assert!(text.contains("solve"), "got:\n{text}");
        assert!(text.contains("worker"), "got:\n{text}");
        assert!(text.contains("warning[cdt-threads]: 2x"));
    }

    #[test]
    fn empty_registry_still_renders_header() {
        let text = render_summary(&MetricsRegistry::new());
        assert!(text.starts_with("== observability summary =="));
        assert!(text.contains("rounds: 0"));
        // The eq-cache line only appears once the counters have ticked.
        assert!(!text.contains("eq-cache"));
    }

    #[test]
    fn eq_cache_line_renders_hit_rate() {
        let r = MetricsRegistry::new();
        r.add_counter("cdt_obs_eq_cache_hits_total", &[], 18);
        r.add_counter("cdt_obs_eq_cache_misses_total", &[], 2);
        let text = render_summary(&r);
        assert!(
            text.contains("eq-cache: 18 hits / 2 misses (90.0% hit rate)"),
            "got:\n{text}"
        );
    }

    #[test]
    fn protocol_journal_lines_render_counts_and_latency() {
        let r = MetricsRegistry::new();
        assert!(!render_summary(&r).contains("protocol journal"));
        r.add_counter("cdt_obs_protocol_events_total", &[], 42);
        r.add_counter("cdt_obs_protocol_settled_rounds", &[], 8);
        let mut h = LatencyHistogram::new();
        h.record_ns(1_000);
        h.record_ns(3_000);
        r.merge_histogram("cdt_obs_journal_write_ns", &[], &h);
        let text = render_summary(&r);
        assert!(
            text.contains("protocol journal: 42 events / 8 settled rounds"),
            "got:\n{text}"
        );
        assert!(text.contains("journal writes: 2 in"), "got:\n{text}");
        r.add_counter("cdt_obs_protocol_violations_total", &[], 3);
        let text = render_summary(&r);
        assert!(text.contains("3 violations rejected"), "got:\n{text}");
    }

    #[test]
    fn journal_segments_line_renders_rotation_and_compaction() {
        let r = MetricsRegistry::new();
        assert!(!render_summary(&r).contains("journal segments"));
        r.add_counter("cdt_obs_journal_segments_total", &[], 5);
        let text = render_summary(&r);
        assert!(text.contains("journal segments: 5 sealed"), "got:\n{text}");
        assert!(!text.contains("compaction"), "got:\n{text}");
        r.add_counter("cdt_obs_journal_compactions_total", &[], 1);
        r.add_counter("cdt_obs_journal_compacted_rounds_total", &[], 12);
        let text = render_summary(&r);
        assert!(
            text.contains("journal segments: 5 sealed, 1 compaction (12 rounds folded)"),
            "got:\n{text}"
        );
    }

    #[test]
    fn arena_line_renders_reuse_rate() {
        let r = MetricsRegistry::new();
        r.add_counter("cdt_obs_pool_arena_hits_total", &[], 3);
        r.add_counter("cdt_obs_pool_arena_misses_total", &[], 1);
        let text = render_summary(&r);
        assert!(
            text.contains("scratch arena: 3 reused / 1 fresh (75.0% reuse)"),
            "got:\n{text}"
        );
    }

    #[test]
    fn cell_packing_line_renders_mean_occupancy() {
        let r = MetricsRegistry::new();
        assert!(!render_summary(&r).contains("cell packing"));
        r.add_counter("cdt_obs_cell_batches_total", &[], 4);
        r.add_counter("cdt_obs_cell_lanes_total", &[], 9);
        r.add_counter("cdt_obs_cell_coalesced_batches_total", &[], 1);
        let text = render_summary(&r);
        assert!(
            text.contains(
                "cell packing: 9 lanes over 4 lockstep groups (1 mixed-cell), mean occupancy 2.25"
            ),
            "got:\n{text}"
        );
    }

    #[test]
    fn engine_line_renders_only_after_a_submission() {
        let r = MetricsRegistry::new();
        assert!(!render_summary(&r).contains("engine:"));
        r.add_counter("cdt_obs_engine_submissions_total", &[], 3);
        r.add_counter("cdt_obs_engine_queued_jobs_total", &[], 24);
        r.add_counter("cdt_obs_engine_cross_request_batches_total", &[], 2);
        let text = render_summary(&r);
        assert!(
            text.contains("engine: 3 submissions / 24 queued jobs, 2 cross-request batches"),
            "got:\n{text}"
        );
    }

    #[test]
    fn engine_workers_sort_after_numeric_pool_workers() {
        // Engine workers publish into the same pool families with an
        // "e<idx>" label; the worker table sorts them after the numeric
        // per-call pool workers (non-numeric labels sort last).
        let r = MetricsRegistry::new();
        r.add_counter("cdt_obs_pool_worker_jobs_total", &[("worker", "e0")], 4);
        r.add_counter("cdt_obs_pool_worker_jobs_total", &[("worker", "1")], 9);
        let text = render_summary(&r);
        let pool_pos = text.find("\n1 ").expect("pool worker row");
        let engine_pos = text.find("\ne0 ").expect("engine worker row");
        assert!(pool_pos < engine_pos, "got:\n{text}");
    }

    #[test]
    fn sampling_line_renders_only_when_thinning() {
        let r = MetricsRegistry::new();
        assert!(!render_summary(&r).contains("sampled"));
        r.set_gauge("cdt_obs_events_sample", &[], 5.0);
        let text = render_summary(&r);
        assert!(
            text.contains("event trace sampled: every 5th round"),
            "got:\n{text}"
        );
    }

    #[test]
    fn lane_kernel_line_always_renders() {
        let text = render_summary(&MetricsRegistry::new());
        let expected = format!(
            "lane kernels: width {}, fast-math {}",
            cdt_types::lanes::lane_width(),
            if cdt_types::lanes::fast_math() {
                "on"
            } else {
                "off"
            }
        );
        assert!(text.contains(&expected), "got:\n{text}");
    }

    #[test]
    fn health_line_renders_counts_by_kind() {
        let r = MetricsRegistry::new();
        assert!(!render_summary(&r).contains("health events"));
        r.add_counter("cdt_obs_health_events_total", &[("kind", "slow_round")], 2);
        r.add_counter(
            "cdt_obs_health_events_total",
            &[("kind", "stalled_worker")],
            1,
        );
        let text = render_summary(&r);
        assert!(
            text.contains("health events: 2 slow_round, 1 stalled_worker"),
            "got:\n{text}"
        );
    }

    #[test]
    fn human_units_scale() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(2_500.0), "2.50us");
        assert_eq!(fmt_ns(3_000_000.0), "3.00ms");
        assert_eq!(fmt_ns(1.5e9), "1.50s");
    }
}
