//! Pool health and liveness: shared progress counters, latency trackers,
//! and the opt-in watchdog thread that turns them into [`HealthRecord`]s.
//!
//! The engine's workers already count their own progress (jobs, chunks);
//! this module gives those counters a process-wide home the watchdog can
//! sample from outside the pool (`cdt-obs` sits *below* `cdt-sim` in the
//! dependency graph, so the slots live here and the pool bumps them). The
//! watchdog — started by the pipeline when `--watchdog-ms N` is set —
//! samples every `N` ms and emits a [`HealthRecord`] into the same JSONL
//! sink family when it sees:
//!
//! - **`stalled_worker`** — a registered worker whose progress counter did
//!   not advance across a full sampling interval;
//! - **`slow_round`** — a completed round slower than the configured
//!   threshold (an explicit `--watchdog-slow-round-ns` floor, or
//!   p99 × [`SLOW_FACTOR`] over the rounds seen so far);
//! - **`flush_spike`** — a journal write/flush slower than
//!   p99 × [`SLOW_FACTOR`] of the writes seen so far.
//!
//! Every event also ticks `cdt_obs_health_events_total{kind=…}`, so the
//! Prometheus render and `--obs-summary` surface the counts with no extra
//! wiring. Like every observer here, the watchdog is passive: it reads
//! atomics and the clock, never engine state, so results are bit-identical
//! with it on or off.

use crate::latency::LatencyHistogram;
use crate::metrics;
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Worker slots the watchdog can observe. Pool workers beyond this many
/// simply go unmonitored (the pool itself is unaffected).
pub const MAX_WORKERS: usize = 64;

/// Slow-round / flush-spike multiplier over the observed p99.
pub const SLOW_FACTOR: f64 = 4.0;

/// Minimum samples before a p99-relative threshold is trusted.
const MIN_SAMPLES: u64 = 16;

/// Floor for p99-relative thresholds, so micro-benchmarks with
/// nanosecond-scale rounds do not page on scheduler noise.
const MIN_THRESHOLD_NS: u64 = 1_000_000;

#[derive(Debug)]
struct WorkerSlot {
    active: AtomicBool,
    progress: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: WorkerSlot = WorkerSlot {
    active: AtomicBool::new(false),
    progress: AtomicU64::new(0),
};
static WORKERS: [WorkerSlot; MAX_WORKERS] = [EMPTY_SLOT; MAX_WORKERS];

/// Fast gate the producers check before feeding the trackers.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Max observed round duration since the watchdog's last sample.
static MAX_ROUND_NS: AtomicU64 = AtomicU64::new(0);
/// Max observed journal write/flush duration since the last sample.
static MAX_FLUSH_NS: AtomicU64 = AtomicU64::new(0);

/// Round-duration / flush-duration distributions feeding the p99
/// thresholds (`None` until the first observation — the constructor is
/// not `const`). Producers batch via the max atomics above; these are
/// only touched once per completed round / journal write while a
/// watchdog runs.
static ROUND_HIST: Mutex<Option<LatencyHistogram>> = Mutex::new(None);
static FLUSH_HIST: Mutex<Option<LatencyHistogram>> = Mutex::new(None);

fn record_into(hist: &Mutex<Option<LatencyHistogram>>, ns: u64) {
    hist.lock()
        .unwrap_or_else(|e| e.into_inner())
        .get_or_insert_with(LatencyHistogram::new)
        .record_ns(ns);
}

/// Whether a watchdog is running — the producers' single relaxed load.
#[must_use]
pub fn watchdog_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Marks pool worker `w` live (its progress is now expected to advance).
pub fn worker_begin(w: usize) {
    if let Some(slot) = WORKERS.get(w) {
        slot.active.store(true, Ordering::Relaxed);
    }
}

/// Marks pool worker `w` done (no more progress expected).
pub fn worker_end(w: usize) {
    if let Some(slot) = WORKERS.get(w) {
        slot.active.store(false, Ordering::Relaxed);
    }
}

/// Bumps worker `w`'s progress counter (one tick per cursor claim).
pub fn worker_progress(w: usize) {
    if let Some(slot) = WORKERS.get(w) {
        slot.progress.fetch_add(1, Ordering::Relaxed);
    }
}

/// Feeds one completed round's duration to the slow-round tracker.
/// Producers gate on [`watchdog_active`] so idle runs pay nothing.
pub fn record_round_ns(ns: u64) {
    MAX_ROUND_NS.fetch_max(ns, Ordering::Relaxed);
    record_into(&ROUND_HIST, ns);
}

/// Feeds one journal write/flush duration to the flush-spike tracker.
pub fn record_flush_ns(ns: u64) {
    MAX_FLUSH_NS.fetch_max(ns, Ordering::Relaxed);
    record_into(&FLUSH_HIST, ns);
}

/// The literal `"health"` discriminant (see [`crate::span::SpanTag`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthTag;

impl Serialize for HealthTag {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str("health")
    }
}

impl<'de> Deserialize<'de> for HealthTag {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let tag = String::deserialize(deserializer)?;
        if tag == "health" {
            Ok(HealthTag)
        } else {
            Err(D::Error::custom(format!(
                "expected \"health\", got {tag:?}"
            )))
        }
    }
}

/// What went wrong, as sampled by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum HealthKind {
    /// An active pool worker made no progress for a full interval.
    StalledWorker,
    /// A round exceeded the slow-round threshold.
    SlowRound,
    /// A journal write/flush exceeded the spike threshold.
    FlushSpike,
}

impl HealthKind {
    /// The snake_case label used in metrics and the JSONL trace.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::StalledWorker => "stalled_worker",
            Self::SlowRound => "slow_round",
            Self::FlushSpike => "flush_spike",
        }
    }
}

/// One watchdog observation, as written to the JSONL trace
/// (`"event":"health"`; every key always present).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthRecord {
    /// Always `"health"`.
    pub event: HealthTag,
    /// What was observed.
    pub kind: HealthKind,
    /// When, nanoseconds on the span timebase ([`crate::span::now_ns`]).
    pub t_ns: u64,
    /// The stalled worker's index ([`HealthKind::StalledWorker`] only).
    pub worker: Option<u64>,
    /// The offending duration (round or flush), where applicable.
    pub observed_ns: Option<u64>,
    /// The threshold it exceeded, where applicable.
    pub threshold_ns: Option<u64>,
}

impl HealthRecord {
    fn new(kind: HealthKind) -> Self {
        Self {
            event: HealthTag,
            kind,
            t_ns: crate::span::now_ns(),
            worker: None,
            observed_ns: None,
            threshold_ns: None,
        }
    }
}

/// Watchdog tuning, resolved from `--watchdog-ms` /
/// `--watchdog-slow-round-ns` by the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Sampling interval in milliseconds (≥ 1).
    pub interval_ms: u64,
    /// Explicit slow-round floor in nanoseconds; `None` derives
    /// p99 × [`SLOW_FACTOR`] from the rounds seen so far.
    pub slow_round_ns: Option<u64>,
}

struct Watchdog {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

static WATCHDOG: Mutex<Option<Watchdog>> = Mutex::new(None);

fn watchdog_slot() -> std::sync::MutexGuard<'static, Option<Watchdog>> {
    WATCHDOG.lock().unwrap_or_else(|e| e.into_inner())
}

/// Starts the monitor thread (replacing any prior one) and resets every
/// tracker. Called by the pipeline when `--watchdog-ms` is set.
pub fn start_watchdog(config: WatchdogConfig) {
    stop_watchdog();
    for slot in &WORKERS {
        slot.active.store(false, Ordering::Relaxed);
        slot.progress.store(0, Ordering::Relaxed);
    }
    MAX_ROUND_NS.store(0, Ordering::Relaxed);
    MAX_FLUSH_NS.store(0, Ordering::Relaxed);
    *ROUND_HIST.lock().unwrap_or_else(|e| e.into_inner()) = None;
    *FLUSH_HIST.lock().unwrap_or_else(|e| e.into_inner()) = None;

    let stop = Arc::new(AtomicBool::new(false));
    let stop_seen = Arc::clone(&stop);
    ACTIVE.store(true, Ordering::Relaxed);
    let thread = std::thread::Builder::new()
        .name("cdt-watchdog".to_owned())
        .spawn(move || monitor(&config, &stop_seen))
        .expect("spawn watchdog thread");
    *watchdog_slot() = Some(Watchdog { stop, thread });
}

/// Stops and joins the monitor thread (idempotent). The thread takes one
/// final sample on the way out, so short runs still surface their events.
pub fn stop_watchdog() {
    let Some(watchdog) = watchdog_slot().take() else {
        return;
    };
    watchdog.stop.store(true, Ordering::Relaxed);
    let _ = watchdog.thread.join();
    ACTIVE.store(false, Ordering::Relaxed);
}

fn emit(record: &HealthRecord) {
    metrics::global().add_counter(
        "cdt_obs_health_events_total",
        &[("kind", record.kind.as_str())],
        1,
    );
    crate::pipeline::publish_health(record);
}

/// p99 × [`SLOW_FACTOR`] over `hist`, floored; `None` below
/// [`MIN_SAMPLES`] (not enough history to call anything an outlier).
fn p99_threshold(hist: &Mutex<Option<LatencyHistogram>>) -> Option<u64> {
    let slot = hist.lock().unwrap_or_else(|e| e.into_inner());
    let hist = slot.as_ref()?;
    if hist.count() < MIN_SAMPLES {
        return None;
    }
    let p99 = hist.quantile_ns(0.99)?;
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    Some(((p99 as f64 * SLOW_FACTOR) as u64).max(MIN_THRESHOLD_NS))
}

/// One watchdog sample over every tracker.
fn sample(
    config: &WatchdogConfig,
    last_progress: &mut [u64; MAX_WORKERS],
    primed: &mut [bool; MAX_WORKERS],
) {
    // Stalled workers: active across two consecutive samples with no
    // progress in between.
    for (w, slot) in WORKERS.iter().enumerate() {
        let active = slot.active.load(Ordering::Relaxed);
        let progress = slot.progress.load(Ordering::Relaxed);
        if active && primed[w] && progress == last_progress[w] {
            let mut record = HealthRecord::new(HealthKind::StalledWorker);
            record.worker = Some(w as u64);
            record.observed_ns = Some(config.interval_ms.saturating_mul(1_000_000));
            emit(&record);
        }
        primed[w] = active;
        last_progress[w] = progress;
    }

    // Slow rounds: the worst round since the last sample against the
    // explicit floor, or p99 × SLOW_FACTOR once enough rounds are seen.
    let worst_round = MAX_ROUND_NS.swap(0, Ordering::Relaxed);
    if worst_round > 0 {
        let threshold = config.slow_round_ns.or_else(|| p99_threshold(&ROUND_HIST));
        if let Some(threshold) = threshold {
            if worst_round > threshold {
                let mut record = HealthRecord::new(HealthKind::SlowRound);
                record.observed_ns = Some(worst_round);
                record.threshold_ns = Some(threshold);
                emit(&record);
            }
        }
    }

    // Journal flush spikes, same shape (always p99-relative).
    let worst_flush = MAX_FLUSH_NS.swap(0, Ordering::Relaxed);
    if worst_flush > 0 {
        if let Some(threshold) = p99_threshold(&FLUSH_HIST) {
            if worst_flush > threshold {
                let mut record = HealthRecord::new(HealthKind::FlushSpike);
                record.observed_ns = Some(worst_flush);
                record.threshold_ns = Some(threshold);
                emit(&record);
            }
        }
    }
}

fn monitor(config: &WatchdogConfig, stop: &AtomicBool) {
    let interval = Duration::from_millis(config.interval_ms.max(1));
    let mut last_progress = [0u64; MAX_WORKERS];
    let mut primed = [false; MAX_WORKERS];
    loop {
        // Sleep the interval in small slices so stop_watchdog joins
        // promptly even with a long interval.
        let mut slept = Duration::ZERO;
        let mut stopping = stop.load(Ordering::Relaxed);
        while !stopping && slept < interval {
            let slice = (interval - slept).min(Duration::from_millis(20));
            std::thread::sleep(slice);
            slept += slice;
            stopping = stop.load(Ordering::Relaxed);
        }
        sample(config, &mut last_progress, &mut primed);
        if stopping {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Watchdog state (trackers, the global registry, the monitor slot) is
    // process-wide; serialize the tests that exercise it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn health_count(kind: &str) -> u64 {
        metrics::global().counter_value("cdt_obs_health_events_total", &[("kind", kind)])
    }

    #[test]
    fn record_round_trips_with_stable_keys() {
        let mut rec = HealthRecord::new(HealthKind::SlowRound);
        rec.observed_ns = Some(42);
        rec.threshold_ns = Some(7);
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"event\":\"health\""), "{json}");
        assert!(json.contains("\"kind\":\"slow_round\""), "{json}");
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let keys: Vec<&str> = value
            .as_object()
            .unwrap()
            .keys()
            .map(String::as_str)
            .collect();
        assert_eq!(
            keys,
            [
                "event",
                "kind",
                "t_ns",
                "worker",
                "observed_ns",
                "threshold_ns"
            ]
        );
        let back: HealthRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn explicit_slow_round_floor_fires_on_first_sample() {
        let _guard = lock();
        let before = health_count("slow_round");
        start_watchdog(WatchdogConfig {
            interval_ms: 5,
            slow_round_ns: Some(1),
        });
        record_round_ns(10_000);
        // The final stop-time sample sees the round even if no interval
        // elapsed.
        stop_watchdog();
        assert!(health_count("slow_round") > before);
    }

    #[test]
    fn stalled_worker_needs_two_quiet_samples() {
        let _guard = lock();
        let before = health_count("stalled_worker");
        start_watchdog(WatchdogConfig {
            interval_ms: 5,
            slow_round_ns: None,
        });
        worker_begin(0);
        // Two full intervals with no progress: the first sample primes,
        // a later one fires.
        std::thread::sleep(Duration::from_millis(40));
        worker_end(0);
        stop_watchdog();
        assert!(health_count("stalled_worker") > before);
    }

    #[test]
    fn advancing_worker_never_reports_stalled() {
        let _guard = lock();
        let before = health_count("stalled_worker");
        start_watchdog(WatchdogConfig {
            interval_ms: 10,
            slow_round_ns: None,
        });
        worker_begin(1);
        for _ in 0..8 {
            worker_progress(1);
            std::thread::sleep(Duration::from_millis(5));
        }
        worker_end(1);
        stop_watchdog();
        assert_eq!(health_count("stalled_worker"), before);
    }

    #[test]
    fn p99_threshold_needs_history() {
        let hist = Mutex::new(None);
        assert_eq!(p99_threshold(&hist), None);
        for _ in 0..MIN_SAMPLES {
            record_into(&hist, 1_000);
        }
        let threshold = p99_threshold(&hist).unwrap();
        assert!(threshold >= MIN_THRESHOLD_NS);
    }

    #[test]
    fn out_of_range_worker_indices_are_ignored() {
        worker_begin(MAX_WORKERS + 5);
        worker_progress(MAX_WORKERS + 5);
        worker_end(MAX_WORKERS + 5);
    }

    #[test]
    fn stop_is_idempotent() {
        let _guard = lock();
        stop_watchdog();
        stop_watchdog();
        assert!(!watchdog_active());
    }
}
