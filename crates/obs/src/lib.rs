//! Zero-dependency observability for the CDT engine: structured round
//! events, a metrics registry with log-bucketed latency histograms, phase
//! timing, and sinks (JSONL traces, Prometheus text, a human summary).
//!
//! # Design
//!
//! - **Static dispatch, zero default cost.** Instrumented code is generic
//!   over [`RoundObserver`]; the default [`NullObserver`] sets
//!   [`RoundObserver::ENABLED`] to `false`, so event construction and every
//!   `Instant` read compile away and the hot path stays allocation-free.
//! - **Passive by contract.** Observers never touch RNG streams or mutate
//!   engine state: results are bit-for-bit identical with sinks on or off,
//!   at any thread count.
//! - **Batch, then publish.** Per-run observers ([`PipelineObserver`]) and
//!   pool workers accumulate locally and publish to the global
//!   [`MetricsRegistry`] / JSONL sink once, bounding lock contention.
//! - **No new dependencies.** Histograms reuse `cdt_aggregate`'s fixed
//!   bucketing through a log₂ mapping; serialization reuses the workspace's
//!   existing serde/serde_json.
//!
//! # Wiring
//!
//! The CLI and bench binaries call [`install`] with an [`ObsConfig`] built
//! from `--obs-events`/`--metrics-out`/`--obs-summary`; evaluation loops ask
//! [`observer_for_run`] for a per-run observer and hand it to the
//! instrumented engine entry points (`execute_round_observed_into`,
//! `run_policy_observed`). With no pipeline installed everything stays on
//! the null path.

pub mod analyze;
pub mod event;
pub mod flame;
pub mod health;
pub mod latency;
pub mod metrics;
pub mod pipeline;
pub mod prometheus;
pub mod record;
pub mod sink;
pub mod span;
pub mod summary;
pub mod timing;
pub mod warn;

pub use analyze::{registry_from_trace, summarize_trace, TraceStats};
pub use event::{
    EquilibriumEvent, NullObserver, ObservationEvent, Phase, RoundEndEvent, RoundObserver,
    SelectionEvent,
};
pub use flame::{critical_paths, render_critical_path, render_flame, SpanSet};
pub use health::{HealthKind, HealthRecord, WatchdogConfig};
pub use latency::LatencyHistogram;
pub use metrics::{global, Metric, MetricKey, MetricsRegistry};
pub use pipeline::{
    active_trace, flush, install, is_enabled, observer_for_run, publish_health, publish_spans,
    spans_enabled, summary_requested, uninstall, ObsConfig, PipelineObserver,
};
pub use prometheus::render;
pub use record::{EventRecord, RecordingObserver};
pub use sink::JsonlSink;
pub use span::{SpanId, SpanRecord, TraceId};
pub use summary::render_summary;
pub use timing::{PhaseTimer, PhaseTotals};
pub use warn::warn_once;
