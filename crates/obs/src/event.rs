//! The [`RoundObserver`] trait: structured hooks into the trading-round
//! lifecycle.
//!
//! The hooks mirror the phases of Algorithm 1's loop body — selection,
//! Stackelberg solve, observation, accounting — and carry borrowed payloads
//! so that emitting an event never allocates on its own. Every hook has a
//! no-op default, and [`NullObserver`] sets [`RoundObserver::ENABLED`] to
//! `false`, so instrumented code can skip event construction *and* clock
//! reads entirely when nobody is listening: the null path monomorphizes to
//! exactly the uninstrumented code.

use cdt_types::{Round, SellerId};

/// The phases of one trading round, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Seller selection (UCB index + top-K, Alg. 1 steps 7–10).
    Selection,
    /// Stackelberg equilibrium solve (step 11) including game-context setup.
    Solve,
    /// Quality observation sampling plus estimator update (steps 5 / 12).
    Observe,
    /// Caller-side accounting: regret bookkeeping, profit sums, checkpoints.
    Account,
}

impl Phase {
    /// All phases, in execution order.
    pub const ALL: [Phase; 4] = [
        Phase::Selection,
        Phase::Solve,
        Phase::Observe,
        Phase::Account,
    ];

    /// Stable lower-case name (used as the `phase` metric label).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Selection => "selection",
            Phase::Solve => "solve",
            Phase::Observe => "observe",
            Phase::Account => "account",
        }
    }
}

/// Payload of the [`RoundObserver::selection`] hook.
#[derive(Debug, Clone, Copy)]
pub struct SelectionEvent<'a> {
    /// The sellers selected this round, in selection order.
    pub selected: &'a [SellerId],
    /// The policy's ranking score for each selected seller, parallel to
    /// `selected` — the extended-UCB index `q̂_i` (Eq. 19) for CMAB-HS,
    /// the plain quality estimate for policies without an index.
    pub scores: &'a [f64],
}

/// Payload of the [`RoundObserver::equilibrium`] hook: the Stackelberg
/// strategy `⟨p^{J*}, p*, τ*⟩` and the profits it induces.
#[derive(Debug, Clone, Copy)]
pub struct EquilibriumEvent<'a> {
    /// Consumer's service price `p^{J*}`.
    pub service_price: f64,
    /// Platform's collection price `p*`.
    pub collection_price: f64,
    /// Sellers' sensing times `τ_i*`, in selection order.
    pub sensing_times: &'a [f64],
    /// Consumer profit at the equilibrium.
    pub consumer_profit: f64,
    /// Platform profit at the equilibrium.
    pub platform_profit: f64,
    /// Total seller profit at the equilibrium.
    pub seller_profit: f64,
    /// Whether the strategy was served from the equilibrium cache (the
    /// game context repeated verbatim, so the Stage-1/2/3 solve was
    /// skipped). Always `false` for initial rounds, whose strategy is the
    /// fixed exploration profile rather than a solve.
    pub cached: bool,
}

/// Payload of the [`RoundObserver::observation`] hook.
#[derive(Debug, Clone, Copy)]
pub struct ObservationEvent {
    /// Realized revenue `Σ_i Σ_l q_{i,l}` of the round's observations.
    pub observed_revenue: f64,
    /// Number of quality samples drawn (`|selected| × L`).
    pub samples: usize,
}

/// Payload of the [`RoundObserver::round_end`] hook: the round's outcome
/// plus the monotonic phase timings measured inside the round.
#[derive(Debug, Clone, Copy)]
pub struct RoundEndEvent {
    /// Realized (sampled) revenue of the round.
    pub observed_revenue: f64,
    /// Consumer profit of the round's strategy.
    pub consumer_profit: f64,
    /// Platform profit of the round's strategy.
    pub platform_profit: f64,
    /// Total seller profit of the round's strategy.
    pub seller_profit: f64,
    /// Nanoseconds spent selecting sellers ([`Phase::Selection`]).
    pub selection_ns: u64,
    /// Nanoseconds spent solving the game ([`Phase::Solve`]).
    pub solve_ns: u64,
    /// Nanoseconds spent sampling + learning ([`Phase::Observe`]).
    pub observe_ns: u64,
}

/// Structured hooks into the round lifecycle.
///
/// Implementations must be *passive*: a hook must never touch the RNG
/// streams or mutate anything the trading loop reads, so that results stay
/// bit-for-bit identical with any observer attached (enforced by the
/// `integration_obs` tests).
pub trait RoundObserver {
    /// Whether this observer wants events at all. Instrumented code gates
    /// event construction and every `Instant` read on this constant, so a
    /// `false` observer compiles down to the uninstrumented hot path.
    const ENABLED: bool = true;

    /// The round is about to execute.
    fn round_start(&mut self, round: Round) {
        let _ = round;
    }

    /// Sellers have been selected.
    fn selection(&mut self, round: Round, event: &SelectionEvent<'_>) {
        let _ = (round, event);
    }

    /// The incentive strategy for the round has been determined.
    fn equilibrium(&mut self, round: Round, event: &EquilibriumEvent<'_>) {
        let _ = (round, event);
    }

    /// The selected sellers' qualities have been observed.
    fn observation(&mut self, round: Round, event: &ObservationEvent) {
        let _ = (round, event);
    }

    /// The round finished (selection/solve/observe timings included).
    fn round_end(&mut self, round: Round, event: &RoundEndEvent) {
        let _ = (round, event);
    }

    /// Cumulative expected regret after the caller's accounting phase.
    /// Emitted by evaluation loops that track regret (not by the bare
    /// mechanism, which has no clairvoyant reference).
    fn regret(&mut self, round: Round, cumulative_regret: f64, account_ns: u64) {
        let _ = (round, cumulative_regret, account_ns);
    }
}

/// The default observer: statically disabled, zero overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RoundObserver for NullObserver {
    const ENABLED: bool = false;
}

/// Two observers driven in lockstep — e.g. a protocol journal alongside
/// the metrics pipeline. Enabled when either member is; each hook fans
/// out to both, first member first.
impl<A: RoundObserver, B: RoundObserver> RoundObserver for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn round_start(&mut self, round: Round) {
        self.0.round_start(round);
        self.1.round_start(round);
    }

    fn selection(&mut self, round: Round, event: &SelectionEvent<'_>) {
        self.0.selection(round, event);
        self.1.selection(round, event);
    }

    fn equilibrium(&mut self, round: Round, event: &EquilibriumEvent<'_>) {
        self.0.equilibrium(round, event);
        self.1.equilibrium(round, event);
    }

    fn observation(&mut self, round: Round, event: &ObservationEvent) {
        self.0.observation(round, event);
        self.1.observation(round, event);
    }

    fn round_end(&mut self, round: Round, event: &RoundEndEvent) {
        self.0.round_end(round, event);
        self.1.round_end(round, event);
    }

    fn regret(&mut self, round: Round, cumulative_regret: f64, account_ns: u64) {
        self.0.regret(round, cumulative_regret, account_ns);
        self.1.regret(round, cumulative_regret, account_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver::ENABLED);
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        assert_eq!(names, ["selection", "solve", "observe", "account"]);
    }

    #[test]
    fn pair_observer_fans_out_to_both_members() {
        #[derive(Default)]
        struct Counting(usize);
        impl RoundObserver for Counting {
            fn round_start(&mut self, _round: Round) {
                self.0 += 1;
            }
            fn round_end(&mut self, _round: Round, _event: &RoundEndEvent) {
                self.0 += 1;
            }
        }
        let mut pair = (Counting::default(), Counting::default());
        pair.round_start(Round(0));
        pair.round_end(
            Round(0),
            &RoundEndEvent {
                observed_revenue: 1.0,
                consumer_profit: 0.5,
                platform_profit: 0.3,
                seller_profit: 0.2,
                selection_ns: 1,
                solve_ns: 2,
                observe_ns: 3,
            },
        );
        assert_eq!(pair.0 .0, 2);
        assert_eq!(pair.1 .0, 2);
        assert!(<(Counting, NullObserver) as RoundObserver>::ENABLED);
        assert!(!<(NullObserver, NullObserver) as RoundObserver>::ENABLED);
    }

    #[test]
    fn default_hooks_are_no_ops() {
        struct Plain;
        impl RoundObserver for Plain {}
        assert!(Plain::ENABLED);
        let mut p = Plain;
        p.round_start(Round(0));
        p.observation(
            Round(0),
            &ObservationEvent {
                observed_revenue: 1.0,
                samples: 4,
            },
        );
        p.regret(Round(0), 0.5, 10);
    }
}
