//! Monotonic phase timing for the round hot path.
//!
//! A [`PhaseTimer`] is a lap counter over [`Instant`]: each [`lap`] returns
//! the nanoseconds since the previous lap (or construction) and re-arms the
//! baseline. Constructed disabled it never reads the clock, so the
//! `NullObserver` path pays nothing.
//!
//! [`lap`]: PhaseTimer::lap

use std::time::Instant;

/// A monotonic lap timer; disabled instances never touch the clock.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer {
    last: Option<Instant>,
}

impl PhaseTimer {
    /// Starts the timer. With `enabled == false` every lap reports 0 and no
    /// clock is ever read.
    #[must_use]
    pub fn start(enabled: bool) -> Self {
        Self {
            last: if enabled { Some(Instant::now()) } else { None },
        }
    }

    /// Nanoseconds since the previous lap (or start); re-arms the baseline.
    pub fn lap(&mut self) -> u64 {
        match &mut self.last {
            Some(last) => {
                let now = Instant::now();
                let ns = now.duration_since(*last).as_nanos();
                *last = now;
                u64::try_from(ns).unwrap_or(u64::MAX)
            }
            None => 0,
        }
    }

    /// Re-arms the baseline without reporting a span. Used to exclude
    /// observer-hook time from the next phase's measurement.
    pub fn skip(&mut self) {
        if let Some(last) = &mut self.last {
            *last = Instant::now();
        }
    }
}

/// Accumulated nanoseconds per phase of [`crate::Phase::ALL`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTotals {
    ns: [u64; 4],
}

impl PhaseTotals {
    /// A zeroed accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` to `phase`'s total.
    pub fn add(&mut self, phase: crate::Phase, ns: u64) {
        self.ns[phase as usize] = self.ns[phase as usize].saturating_add(ns);
    }

    /// Total nanoseconds recorded for `phase`.
    #[must_use]
    pub fn get(&self, phase: crate::Phase) -> u64 {
        self.ns[phase as usize]
    }

    /// Sum over all phases.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ns.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    /// A little deterministic busy work the optimizer cannot elide.
    fn spin(iterations: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..iterations {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(acc)
    }

    #[test]
    fn disabled_timer_reports_zero() {
        let mut t = PhaseTimer::start(false);
        spin(10_000);
        assert_eq!(t.lap(), 0);
        t.skip();
        assert_eq!(t.lap(), 0);
    }

    #[test]
    fn laps_are_monotone_and_reset() {
        let mut t = PhaseTimer::start(true);
        spin(50_000);
        let a = t.lap();
        let b = t.lap();
        assert!(a > 0, "busy work must take measurable time");
        // The second lap covers (almost) nothing.
        assert!(
            b <= a + 1_000_000,
            "lap must re-arm the baseline: {a} vs {b}"
        );
    }

    /// Satellite requirement: nested phase laps must sum to the enclosing
    /// wall-clock within tolerance — the inner spans partition the outer
    /// one, so their sum can never exceed it, and the gap is only the
    /// lap-bookkeeping overhead itself.
    #[test]
    fn nested_phase_laps_sum_to_outer_wall_clock() {
        let outer = std::time::Instant::now();
        let mut inner = PhaseTimer::start(true);
        let mut totals = PhaseTotals::new();
        for phase in Phase::ALL {
            spin(200_000);
            totals.add(phase, inner.lap());
        }
        let wall = u64::try_from(outer.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let sum = totals.total();
        assert!(sum > 0);
        assert!(sum <= wall, "inner spans cannot exceed the wall clock");
        // Generous tolerance: anything within 100ms covers scheduler noise
        // on a loaded CI box while still catching a lost/double-counted span
        // (each spin block is far shorter than that individually but the
        // relationship sum ≤ wall ≤ sum + slack pins the partition).
        let slack = 100_000_000u64;
        assert!(
            wall <= sum + slack,
            "phase spans must partition the round: wall {wall} ns vs sum {sum} ns"
        );
    }

    #[test]
    fn totals_accumulate_per_phase() {
        let mut totals = PhaseTotals::new();
        totals.add(Phase::Solve, 5);
        totals.add(Phase::Solve, 7);
        totals.add(Phase::Account, 1);
        assert_eq!(totals.get(Phase::Solve), 12);
        assert_eq!(totals.get(Phase::Selection), 0);
        assert_eq!(totals.total(), 13);
    }
}
