//! One-time warnings, counted in the metrics registry.
//!
//! `warn_once(kind, message)` always increments
//! `cdt_obs_warnings_total{kind=...}` but prints the message to stderr only
//! the first time that `kind` fires in the process — configuration mistakes
//! (an unparseable `CDT_THREADS`, say) surface exactly once instead of
//! spamming every parallel fan-out, while the counter still shows how often
//! the bad path was hit.

use crate::metrics;
use std::collections::BTreeSet;
use std::sync::Mutex;

static SEEN: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Counts a warning under `kind`; prints `message` only on `kind`'s first
/// occurrence. Returns `true` when the message was printed.
pub fn warn_once(kind: &'static str, message: &str) -> bool {
    metrics::global().add_counter("cdt_obs_warnings_total", &[("kind", kind)], 1);
    let mut seen = SEEN.lock().unwrap_or_else(|e| e.into_inner());
    if seen.insert(kind) {
        eprintln!("warning: {message}");
        true
    } else {
        false
    }
}

/// Forgets which kinds already warned (tests only).
#[doc(hidden)]
pub fn reset_warnings_for_test() {
    SEEN.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_once_but_counts_every_time() {
        reset_warnings_for_test();
        let kind = "warn-unit-test";
        let before = metrics::global().counter_value("cdt_obs_warnings_total", &[("kind", kind)]);
        assert!(warn_once(kind, "first"));
        assert!(!warn_once(kind, "second"));
        assert!(!warn_once(kind, "third"));
        let after = metrics::global().counter_value("cdt_obs_warnings_total", &[("kind", kind)]);
        assert_eq!(after - before, 3);
    }
}
