//! Prometheus text-format exposition of the metrics registry.
//!
//! Renders counters, gauges, and latency histograms in the standard
//! `# TYPE` + sample-line layout. Histograms expand into cumulative
//! `_bucket{le="…"}` series plus `_sum` and `_count`, with bucket bounds in
//! nanoseconds (the power-of-two uppers of [`crate::LatencyHistogram`]).

use crate::metrics::{Metric, MetricKey, MetricsRegistry};
use std::fmt::Write as _;

fn type_line(out: &mut String, family: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {family} {kind}");
}

/// Formats a float the way Prometheus expects (no exponent for ordinary
/// magnitudes, `+Inf`/`-Inf`/`NaN` spelled out).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

fn labels_with_le(key: &MetricKey, le: &str) -> String {
    let mut parts: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    parts.push(format!("le=\"{le}\""));
    format!("{{{}}}", parts.join(","))
}

/// Renders every metric in `registry` as Prometheus text exposition.
#[must_use]
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_family: Option<String> = None;
    for (key, metric) in registry.snapshot() {
        let new_family = last_family.as_deref() != Some(key.family.as_str());
        match metric {
            Metric::Counter(c) => {
                if new_family {
                    type_line(&mut out, &key.family, "counter");
                }
                let _ = writeln!(out, "{}{} {}", key.family, key.label_suffix(), c);
            }
            Metric::Gauge(v) => {
                if new_family {
                    type_line(&mut out, &key.family, "gauge");
                }
                let _ = writeln!(out, "{}{} {}", key.family, key.label_suffix(), fmt_value(v));
            }
            Metric::Histogram(h) => {
                if new_family {
                    type_line(&mut out, &key.family, "histogram");
                }
                for (upper, cum) in h.cumulative_buckets() {
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        key.family,
                        labels_with_le(&key, &upper.to_string()),
                        cum
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    key.family,
                    labels_with_le(&key, "+Inf"),
                    h.count()
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    key.family,
                    key.label_suffix(),
                    h.sum_ns()
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    key.family,
                    key.label_suffix(),
                    h.count()
                );
            }
        }
        last_family = Some(key.family);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyHistogram;

    #[test]
    fn renders_counters_and_gauges() {
        let r = MetricsRegistry::new();
        r.add_counter("cdt_obs_rounds_total", &[], 12);
        r.set_gauge("cdt_obs_pool_threads", &[], 4.0);
        let text = render(&r);
        assert!(text.contains("# TYPE cdt_obs_rounds_total counter"));
        assert!(text.contains("cdt_obs_rounds_total 12"));
        assert!(text.contains("# TYPE cdt_obs_pool_threads gauge"));
        assert!(text.contains("cdt_obs_pool_threads 4"));
    }

    #[test]
    fn histogram_expands_to_bucket_sum_count() {
        let r = MetricsRegistry::new();
        let mut h = LatencyHistogram::new();
        h.record_ns(100);
        h.record_ns(100);
        h.record_ns(1_000_000);
        r.merge_histogram("cdt_obs_round_phase_ns", &[("phase", "solve")], &h);
        let text = render(&r);
        assert!(text.contains("# TYPE cdt_obs_round_phase_ns histogram"));
        assert!(
            text.contains("cdt_obs_round_phase_ns_bucket{phase=\"solve\",le=\"+Inf\"} 3"),
            "got:\n{text}"
        );
        assert!(text.contains("cdt_obs_round_phase_ns_sum{phase=\"solve\"} 1000200"));
        assert!(text.contains("cdt_obs_round_phase_ns_count{phase=\"solve\"} 3"));
    }

    #[test]
    fn health_counters_render_with_kind_labels() {
        let r = MetricsRegistry::new();
        r.add_counter("cdt_obs_health_events_total", &[("kind", "slow_round")], 2);
        r.add_counter(
            "cdt_obs_health_events_total",
            &[("kind", "stalled_worker")],
            1,
        );
        let text = render(&r);
        assert!(text.contains("# TYPE cdt_obs_health_events_total counter"));
        assert!(
            text.contains("cdt_obs_health_events_total{kind=\"slow_round\"} 2"),
            "got:\n{text}"
        );
        assert!(
            text.contains("cdt_obs_health_events_total{kind=\"stalled_worker\"} 1"),
            "got:\n{text}"
        );
    }

    #[test]
    fn type_line_appears_once_per_family() {
        let r = MetricsRegistry::new();
        r.add_counter("jobs_total", &[("worker", "0")], 1);
        r.add_counter("jobs_total", &[("worker", "1")], 2);
        let text = render(&r);
        assert_eq!(text.matches("# TYPE jobs_total counter").count(), 1);
    }

    #[test]
    fn special_floats_render_prometheus_style() {
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(2.5), "2.5");
    }
}
