//! A process-wide metrics registry: counters, gauges, and log-bucketed
//! latency histograms, keyed by `(family, labels)`.
//!
//! The registry is deliberately tiny — a mutex around a sorted map — because
//! every hot path batches locally and publishes once (per worker, per run),
//! never per round. Families follow the Prometheus naming convention and are
//! all prefixed `cdt_obs_`.

use crate::latency::LatencyHistogram;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A metric identity: family name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric family, e.g. `cdt_obs_pool_worker_jobs_total`.
    pub family: String,
    /// Label pairs, e.g. `[("worker", "3")]`. Empty for unlabeled metrics.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(family: &str, labels: &[(&str, &str)]) -> Self {
        Self {
            family: family.to_owned(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_owned(), v.to_owned()))
                .collect(),
        }
    }

    /// Renders the labels as `{k="v",…}` (empty string when unlabeled).
    #[must_use]
    pub fn label_suffix(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let parts: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{{{}}}", parts.join(","))
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A log-bucketed latency distribution (nanoseconds).
    Histogram(LatencyHistogram),
}

/// A threadsafe registry of named metrics.
#[derive(Debug)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<MetricKey, Metric>> {
        // Observability must never take the process down: a poisoned lock
        // just means a panicking thread died mid-update; the map is still
        // structurally sound.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `by` to a counter (creating it at 0).
    pub fn add_counter(&self, family: &str, labels: &[(&str, &str)], by: u64) {
        let key = MetricKey::new(family, labels);
        let mut map = self.lock();
        match map.entry(key).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c = c.saturating_add(by),
            other => debug_assert!(false, "{family} is not a counter: {other:?}"),
        }
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&self, family: &str, labels: &[(&str, &str)], value: f64) {
        let key = MetricKey::new(family, labels);
        self.lock().insert(key, Metric::Gauge(value));
    }

    /// Records one latency observation into a histogram (creating it).
    pub fn observe_ns(&self, family: &str, labels: &[(&str, &str)], ns: u64) {
        let key = MetricKey::new(family, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(LatencyHistogram::new()))
        {
            Metric::Histogram(h) => h.record_ns(ns),
            other => debug_assert!(false, "{family} is not a histogram: {other:?}"),
        }
    }

    /// Merges a locally accumulated histogram into a registry histogram —
    /// the batched publish hot paths use instead of per-event locking.
    pub fn merge_histogram(&self, family: &str, labels: &[(&str, &str)], h: &LatencyHistogram) {
        if h.count() == 0 {
            return;
        }
        let key = MetricKey::new(family, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(LatencyHistogram::new()))
        {
            Metric::Histogram(existing) => existing.merge(h),
            other => debug_assert!(false, "{family} is not a histogram: {other:?}"),
        }
    }

    /// A sorted snapshot of every metric (family, then labels).
    #[must_use]
    pub fn snapshot(&self) -> Vec<(MetricKey, Metric)> {
        self.lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// The current value of a counter (0 when absent).
    #[must_use]
    pub fn counter_value(&self, family: &str, labels: &[(&str, &str)]) -> u64 {
        match self.lock().get(&MetricKey::new(family, labels)) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Clears every metric (tests and fresh CLI runs).
    pub fn reset(&self) {
        self.lock().clear();
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide registry all instrumentation publishes into.
static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide metrics registry.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.add_counter("cdt_obs_test_total", &[], 2);
        r.add_counter("cdt_obs_test_total", &[], 3);
        assert_eq!(r.counter_value("cdt_obs_test_total", &[]), 5);
    }

    #[test]
    fn labels_separate_series() {
        let r = MetricsRegistry::new();
        r.add_counter("jobs", &[("worker", "0")], 1);
        r.add_counter("jobs", &[("worker", "1")], 7);
        assert_eq!(r.counter_value("jobs", &[("worker", "0")]), 1);
        assert_eq!(r.counter_value("jobs", &[("worker", "1")]), 7);
        assert_eq!(r.counter_value("jobs", &[]), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.set_gauge("threads", &[], 4.0);
        r.set_gauge("threads", &[], 8.0);
        match &r.snapshot()[0].1 {
            Metric::Gauge(v) => assert_eq!(*v, 8.0),
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn histograms_record_and_merge() {
        let r = MetricsRegistry::new();
        r.observe_ns("lat", &[], 1_000);
        let mut local = LatencyHistogram::new();
        local.record_ns(2_000);
        local.record_ns(3_000);
        r.merge_histogram("lat", &[], &local);
        match &r.snapshot()[0].1 {
            Metric::Histogram(h) => {
                assert_eq!(h.count(), 3);
                assert_eq!(h.sum_ns(), 6_000);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_sorted_and_reset_clears() {
        let r = MetricsRegistry::new();
        r.add_counter("b_total", &[], 1);
        r.add_counter("a_total", &[], 1);
        let snap = r.snapshot();
        assert_eq!(snap[0].0.family, "a_total");
        assert_eq!(snap[1].0.family, "b_total");
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn label_suffix_renders() {
        let key = MetricKey::new("x", &[("phase", "solve"), ("worker", "2")]);
        assert_eq!(key.label_suffix(), "{phase=\"solve\",worker=\"2\"}");
        assert_eq!(MetricKey::new("x", &[]).label_suffix(), "");
    }
}
