//! Offline span-tree analysis: flame-style self-time profiles and
//! per-round critical paths, rebuilt from a `--obs-events` JSONL trace.
//!
//! Two renderers sit on the same parsed tree:
//!
//! - [`render_flame`] (`cdt obs flame TRACE`) merges spans by name along
//!   each root-to-leaf path and prints a sorted text flame: inclusive time
//!   (span duration), exclusive self time (inclusive minus the children's
//!   inclusive), and call counts. The identity `Σ exclusive == root
//!   inclusive` holds *exactly* per root because exclusive time is kept as
//!   a signed quantity internally — a child that overhangs its parent
//!   (clock skew between producers) debits the parent below zero rather
//!   than silently inflating the total; display clamps at zero.
//! - [`render_critical_path`] (`cdt obs critical-path TRACE`) walks each
//!   `round` span's heaviest-child chain — the longest causal chain from
//!   the round down to the deepest contributor — and reports the slowest
//!   rounds with their chains.

use crate::span::SpanRecord;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Spans grouped per trace id, parsed out of a JSONL trace. Non-span lines
/// are skipped silently (the trace interleaves event/protocol/health
/// records); `malformed` counts lines tagged `"span"` that fail to parse.
#[derive(Debug, Default)]
pub struct SpanSet {
    /// trace id → spans (file order).
    pub traces: BTreeMap<u64, Vec<SpanRecord>>,
    /// Lines that look like spans but did not deserialize.
    pub malformed: usize,
}

impl SpanSet {
    /// Parses the span lines out of a JSONL trace.
    #[must_use]
    pub fn from_jsonl(contents: &str) -> Self {
        let mut set = Self::default();
        for line in contents.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match serde_json::from_str::<SpanRecord>(line) {
                Ok(span) => set.traces.entry(span.trace).or_default().push(span),
                Err(_) => {
                    // Only count it malformed if it claimed to be a span.
                    if looks_like_span(line) {
                        set.malformed += 1;
                    }
                }
            }
        }
        set
    }

    /// Total spans across all traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.values().map(Vec::len).sum()
    }

    /// Whether no spans were found.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

fn looks_like_span(line: &str) -> bool {
    serde_json::from_str::<serde_json::Value>(line)
        .ok()
        .and_then(|v| v.get("event").and_then(|e| e.as_str().map(String::from)))
        .is_some_and(|tag| tag == "span")
}

/// One name-merged node of the flame tree.
#[derive(Debug)]
struct FlameNode {
    /// Spans merged into this node.
    count: u64,
    /// Σ duration of the merged spans.
    incl_ns: u64,
    /// Inclusive minus Σ(children inclusive); signed so reconciliation
    /// stays exact even when a child overhangs its parent.
    excl_ns: i128,
    children: BTreeMap<String, FlameNode>,
}

impl FlameNode {
    fn new() -> Self {
        Self {
            count: 0,
            incl_ns: 0,
            excl_ns: 0,
            children: BTreeMap::new(),
        }
    }
}

/// Index: span id → position, children adjacency from parent links.
struct TraceIndex<'a> {
    spans: &'a [SpanRecord],
    children: HashMap<u64, Vec<usize>>,
    roots: Vec<usize>,
}

impl<'a> TraceIndex<'a> {
    fn build(spans: &'a [SpanRecord]) -> Self {
        let ids: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.span, i)).collect();
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut roots = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent {
                // A parent outside the trace file (dangling) makes the
                // span a root so its time is still accounted somewhere.
                Some(p) if ids.contains_key(&p) => children.entry(p).or_default().push(i),
                _ => roots.push(i),
            }
        }
        Self {
            spans,
            children,
            roots,
        }
    }

    fn children_of(&self, span_id: u64) -> &[usize] {
        self.children.get(&span_id).map_or(&[], Vec::as_slice)
    }
}

fn accumulate(index: &TraceIndex<'_>, node: &mut FlameNode, i: usize) {
    let span = &index.spans[i];
    node.count += 1;
    node.incl_ns += span.dur_ns;
    node.excl_ns += i128::from(span.dur_ns);
    for &child in index.children_of(span.span) {
        let child_span = &index.spans[child];
        node.excl_ns -= i128::from(child_span.dur_ns);
        let child_node = node
            .children
            .entry(child_span.name.clone())
            .or_insert_with(FlameNode::new);
        accumulate(index, child_node, child);
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_node(out: &mut String, name: &str, node: &FlameNode, depth: usize, root_incl: u64) {
    let indent = "  ".repeat(depth);
    let excl = node.excl_ns.max(0) as u64;
    let pct = if root_incl > 0 {
        node.incl_ns as f64 * 100.0 / root_incl as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "{indent}{name:<24} incl {:>12}  excl {:>12}  count {:>7}  {pct:5.1}%",
        fmt_ns(node.incl_ns),
        fmt_ns(excl),
        node.count,
    );
    // Heaviest children first; stable name tiebreak from the BTreeMap.
    let mut kids: Vec<(&String, &FlameNode)> = node.children.iter().collect();
    kids.sort_by(|a, b| b.1.incl_ns.cmp(&a.1.incl_ns).then_with(|| a.0.cmp(b.0)));
    for (child_name, child) in kids {
        render_node(out, child_name, child, depth + 1, root_incl);
    }
}

/// Σ exclusive over a merged tree, unclamped (used for reconciliation).
fn sum_exclusive(node: &FlameNode) -> i128 {
    node.excl_ns + node.children.values().map(sum_exclusive).sum::<i128>()
}

/// Renders the sorted text flame for every trace in the set.
///
/// Per root the report states both the inclusive root time and the
/// exclusive-sum total; they agree exactly by construction.
#[must_use]
pub fn render_flame(set: &SpanSet) -> String {
    let mut out = String::new();
    if set.is_empty() {
        out.push_str("no spans in trace\n");
        return out;
    }
    for (trace, spans) in &set.traces {
        let index = TraceIndex::build(spans);
        let _ = writeln!(out, "== trace {trace}: flame ({} spans) ==", spans.len());
        // Merge all roots of the trace by name (several runs under one
        // CLI root merge; a missing CLI root leaves runs as peers).
        let mut root_nodes: BTreeMap<String, FlameNode> = BTreeMap::new();
        for &r in &index.roots {
            let name = index.spans[r].name.clone();
            accumulate(
                &index,
                root_nodes.entry(name).or_insert_with(FlameNode::new),
                r,
            );
        }
        let mut roots: Vec<(&String, &FlameNode)> = root_nodes.iter().collect();
        roots.sort_by(|a, b| b.1.incl_ns.cmp(&a.1.incl_ns).then_with(|| a.0.cmp(b.0)));
        for (name, node) in roots {
            render_node(&mut out, name, node, 0, node.incl_ns);
            let excl_sum = sum_exclusive(node);
            let _ = writeln!(
                out,
                "  [root {name}: inclusive {} == exclusive-sum {}]",
                fmt_ns(node.incl_ns),
                fmt_ns(u64::try_from(excl_sum.max(0)).unwrap_or(u64::MAX)),
            );
        }
    }
    if set.malformed > 0 {
        let _ = writeln!(out, "({} malformed span lines skipped)", set.malformed);
    }
    out
}

/// One step of a critical path.
#[derive(Debug)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// Span duration.
    pub dur_ns: u64,
}

/// The critical path of one round: the chain of heaviest children from the
/// round span down.
#[derive(Debug)]
pub struct RoundPath {
    /// Round index (from the round span's attribute).
    pub round: Option<u64>,
    /// Run label, when the round span carries one.
    pub run: Option<String>,
    /// Wall duration of the round span.
    pub dur_ns: u64,
    /// The chain, starting at the round span itself.
    pub steps: Vec<PathStep>,
}

/// Walks the heaviest-child chain from span `i` down to a leaf.
fn heaviest_chain(index: &TraceIndex<'_>, i: usize) -> Vec<PathStep> {
    let mut steps = Vec::new();
    let mut cur = i;
    loop {
        let span = &index.spans[cur];
        steps.push(PathStep {
            name: span.name.clone(),
            dur_ns: span.dur_ns,
        });
        let next = index
            .children_of(span.span)
            .iter()
            .copied()
            .max_by_key(|&c| {
                (
                    index.spans[c].dur_ns,
                    std::cmp::Reverse(index.spans[c].span),
                )
            });
        match next {
            Some(c) => cur = c,
            None => break,
        }
    }
    steps
}

/// Computes per-round critical paths for every trace, slowest rounds first.
#[must_use]
pub fn critical_paths(set: &SpanSet) -> Vec<RoundPath> {
    let mut paths = Vec::new();
    for spans in set.traces.values() {
        let index = TraceIndex::build(spans);
        for (i, span) in spans.iter().enumerate() {
            if span.name != "round" {
                continue;
            }
            paths.push(RoundPath {
                round: span.round,
                run: span.run.clone(),
                dur_ns: span.dur_ns,
                steps: heaviest_chain(&index, i),
            });
        }
    }
    paths.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then_with(|| a.round.cmp(&b.round)));
    paths
}

/// How many rounds `render_critical_path` prints in full.
const CRITICAL_PATH_TOP: usize = 10;

/// Renders the per-round critical-path report.
#[must_use]
pub fn render_critical_path(set: &SpanSet) -> String {
    let mut out = String::new();
    let paths = critical_paths(set);
    if paths.is_empty() {
        out.push_str("no round spans in trace\n");
        return out;
    }
    let total: u64 = paths.iter().map(|p| p.dur_ns).sum();
    let _ = writeln!(
        out,
        "== critical paths: {} rounds, {} total round time ==",
        paths.len(),
        fmt_ns(total)
    );
    for path in paths.iter().take(CRITICAL_PATH_TOP) {
        let round = path.round.map_or_else(|| "?".to_owned(), |r| r.to_string());
        let run = path.run.as_deref().unwrap_or("?");
        let chain = path
            .steps
            .iter()
            .map(|s| format!("{} {}", s.name, fmt_ns(s.dur_ns)))
            .collect::<Vec<_>>()
            .join(" -> ");
        let _ = writeln!(out, "round {round:>6}  {:>12}  {run}", fmt_ns(path.dur_ns));
        let _ = writeln!(out, "    {chain}");
    }
    if paths.len() > CRITICAL_PATH_TOP {
        let _ = writeln!(out, "({} more rounds)", paths.len() - CRITICAL_PATH_TOP);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, TraceId};

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        name: &str,
        start: u64,
        dur: u64,
    ) -> SpanRecord {
        SpanRecord::new(
            TraceId(trace),
            SpanId(id),
            parent.map(SpanId),
            name,
            start,
            dur,
        )
    }

    fn jsonl(spans: &[SpanRecord]) -> String {
        spans
            .iter()
            .map(|s| serde_json::to_string(s).unwrap())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn parses_only_span_lines() {
        let mut text = jsonl(&[span(1, 1, None, "run", 0, 100)]);
        text.push_str("\n{\"event\":\"round_start\",\"run\":\"a\",\"round\":0}\n");
        text.push_str("{\"settle\":{}}\nnot json\n");
        let set = SpanSet::from_jsonl(&text);
        assert_eq!(set.len(), 1);
        assert_eq!(set.malformed, 0);
    }

    #[test]
    fn malformed_span_lines_are_counted() {
        let set = SpanSet::from_jsonl("{\"event\":\"span\",\"trace\":\"oops\"}\n");
        assert_eq!(set.len(), 0);
        assert_eq!(set.malformed, 1);
    }

    #[test]
    fn exclusive_sums_to_root_inclusive_exactly() {
        // root 100 = child_a 30 + child_b 50 + self 20; child_a has a
        // grandchild of 10.
        let spans = [
            span(1, 1, None, "run", 0, 100),
            span(1, 2, Some(1), "round", 0, 30),
            span(1, 3, Some(1), "pool", 40, 50),
            span(1, 4, Some(2), "solve", 5, 10),
        ];
        let set = SpanSet::from_jsonl(&jsonl(&spans));
        let index = TraceIndex::build(&set.traces[&1]);
        let mut root = FlameNode::new();
        accumulate(&index, &mut root, index.roots[0]);
        assert_eq!(root.incl_ns, 100);
        assert_eq!(sum_exclusive(&root), 100);
        // Node-level exclusive values: run 100-30-50=20, round 30-10=20.
        assert_eq!(root.excl_ns, 20);
        assert_eq!(root.children["round"].excl_ns, 20);
    }

    #[test]
    fn overhanging_child_keeps_reconciliation_exact() {
        // Child (120ns) longer than its parent (100ns): parent exclusive
        // goes negative internally, but the unclamped sum still equals the
        // root inclusive of the merged tree.
        let spans = [
            span(1, 1, None, "run", 0, 100),
            span(1, 2, Some(1), "pool", 0, 120),
        ];
        let set = SpanSet::from_jsonl(&jsonl(&spans));
        let index = TraceIndex::build(&set.traces[&1]);
        let mut root = FlameNode::new();
        accumulate(&index, &mut root, index.roots[0]);
        assert_eq!(root.excl_ns, -20);
        assert_eq!(sum_exclusive(&root), 100);
    }

    #[test]
    fn dangling_parents_become_roots() {
        let spans = [span(1, 7, Some(999), "orphan", 0, 10)];
        let set = SpanSet::from_jsonl(&jsonl(&spans));
        let out = render_flame(&set);
        assert!(out.contains("orphan"), "{out}");
    }

    #[test]
    fn flame_render_mentions_reconciliation() {
        let spans = [
            span(1, 1, None, "run", 0, 1_000_000),
            span(1, 2, Some(1), "round", 0, 600_000),
        ];
        let set = SpanSet::from_jsonl(&jsonl(&spans));
        let out = render_flame(&set);
        assert!(out.contains("flame (2 spans)"), "{out}");
        assert!(
            out.contains("inclusive 1.000ms == exclusive-sum 1.000ms"),
            "{out}"
        );
    }

    #[test]
    fn critical_path_follows_heaviest_child() {
        let spans = [
            span(1, 1, None, "run", 0, 1000),
            span(1, 2, Some(1), "round", 0, 500),
            span(1, 3, Some(2), "selection", 0, 100),
            span(1, 4, Some(2), "solve", 100, 300),
            span(1, 5, Some(1), "round", 500, 200),
        ];
        let set = SpanSet::from_jsonl(&jsonl(&spans));
        let paths = critical_paths(&set);
        assert_eq!(paths.len(), 2);
        // Slowest round first.
        assert_eq!(paths[0].dur_ns, 500);
        let names: Vec<&str> = paths[0].steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["round", "solve"]);
        let out = render_critical_path(&set);
        assert!(out.contains("round -> solve"), "{out}");
    }

    #[test]
    fn empty_trace_renders_gracefully() {
        let set = SpanSet::from_jsonl("");
        assert!(render_flame(&set).contains("no spans"));
        assert!(render_critical_path(&set).contains("no round spans"));
    }
}
