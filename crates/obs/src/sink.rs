//! Event sinks: where serialized records go.
//!
//! The only sink today is [`JsonlSink`], a buffered line-per-record writer.
//! It takes anything serde-serializable, so one `--obs-events` file carries
//! [`crate::EventRecord`] round events, [`crate::SpanRecord`] spans, and
//! [`crate::HealthRecord`] watchdog lines side by side. It is shared across
//! worker threads through a mutex; contention stays low because observers
//! batch records locally and write per run, not per event.

use serde::Serialize;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A buffered JSON-lines sink: one JSON object per line, one line per event.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BufWriter<File>> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Serializes and writes one record as a line.
    pub fn write_record<T: Serialize>(&self, record: &T) -> io::Result<()> {
        // Serialize outside the lock; only the write itself is serialized.
        let mut line = serde_json::to_vec(record)?;
        line.push(b'\n');
        self.lock().write_all(&line)
    }

    /// Writes a batch of records under a single lock acquisition.
    pub fn write_batch<T: Serialize>(&self, records: &[T]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::with_capacity(records.len() * 128);
        for record in records {
            serde_json::to_writer(&mut buf, record)?;
            buf.push(b'\n');
        }
        self.lock().write_all(&buf)
    }

    /// Flushes buffered lines to the file.
    pub fn flush(&self) -> io::Result<()> {
        self.lock().flush()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        // Best effort: never panic in drop over an I/O error.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::EventRecord;
    use std::fs;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "cdt_obs_sink_{}_{}.jsonl",
            std::process::id(),
            name
        ));
        p
    }

    #[test]
    fn writes_one_line_per_record() {
        let path = temp_path("single");
        let sink = JsonlSink::create(&path).unwrap();
        sink.write_record(&EventRecord::RoundStart {
            run: "a".into(),
            round: 0,
        })
        .unwrap();
        sink.write_record(&EventRecord::RoundStart {
            run: "a".into(),
            round: 1,
        })
        .unwrap();
        sink.flush().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let parsed: EventRecord = serde_json::from_str(line).unwrap();
            assert_eq!(parsed.run(), "a");
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_writes_every_record() {
        let path = temp_path("batch");
        let sink = JsonlSink::create(&path).unwrap();
        let batch: Vec<EventRecord> = (0..5)
            .map(|round| EventRecord::Observation {
                run: "b".into(),
                round,
                observed_revenue: round as f64,
                samples: 2,
            })
            .collect();
        sink.write_batch(&batch).unwrap();
        sink.flush().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_flushes() {
        let path = temp_path("drop");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.write_record(&EventRecord::RoundStart {
                run: "c".into(),
                round: 9,
            })
            .unwrap();
        }
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"round\":9"));
        fs::remove_file(&path).ok();
    }
}
