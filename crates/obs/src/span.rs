//! Causal span tracing: process-unique trace/span identities, a shared
//! monotonic timebase, and the JSONL span record the sink family writes.
//!
//! A span is a named interval `[start_ns, start_ns + dur_ns)` on the
//! process-wide timebase, linked to its causal parent by id. Spans join the
//! same JSONL event family as [`crate::EventRecord`] (tagged
//! `"event":"span"`), so one `--obs-events` trace carries round events,
//! protocol journal lines, and the causal span tree side by side; the
//! offline analyzers (`cdt obs flame` / `cdt obs critical-path` in
//! [`crate::flame`]) rebuild the tree from that file.
//!
//! Like every observer in this crate, span emission is passive: producers
//! read the clock and buffer records, never touching RNG streams or engine
//! state, so results are bit-identical with tracing on or off.
//!
//! # Parentage
//!
//! Cross-thread parent links flow through an explicit *scope stack*: a
//! producer that opens a long-lived span (the CLI command, a pool
//! fan-out, a lane group) pushes its id with [`enter_scope`]; spans opened
//! below it on the same thread parent to [`current_scope`]. Worker threads
//! do not inherit the spawner's stack — the pool passes its call-span id
//! into each worker, which re-enters it, so run spans created inside jobs
//! still chain back to the fan-out that scheduled them.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A process-unique trace identity (one per pipeline install).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// A process-unique span identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Allocates the next trace id (never reused within a process).
#[must_use]
pub fn next_trace_id() -> TraceId {
    TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
}

/// Allocates the next span id (never reused within a process).
#[must_use]
pub fn next_span_id() -> SpanId {
    SpanId(NEXT_SPAN.fetch_add(1, Ordering::Relaxed))
}

/// The process-wide timebase origin, pinned on first use so span
/// timestamps are comparable across threads.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process timebase origin (monotonic).
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The literal `"span"` discriminant, so [`SpanRecord`] serializes flat
/// with the same `"event"` tag the [`crate::EventRecord`] family uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanTag;

impl Serialize for SpanTag {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str("span")
    }
}

impl<'de> Deserialize<'de> for SpanTag {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let tag = String::deserialize(deserializer)?;
        if tag == "span" {
            Ok(SpanTag)
        } else {
            Err(D::Error::custom(format!("expected \"span\", got {tag:?}")))
        }
    }
}

/// One closed span, as written to the JSONL trace.
///
/// Every key is always present (absent attributes serialize as `null`), so
/// the line schema is golden-stable and greppable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Always `"span"`.
    pub event: SpanTag,
    /// The trace this span belongs to.
    pub trace: u64,
    /// This span's identity.
    pub span: u64,
    /// The causal parent's span id; `null` for a root.
    pub parent: Option<u64>,
    /// What the interval covers (`"run"`, `"round"`, `"solve"`,
    /// `"pool"`, `"chunk"`, `"lane_group"`, `"journal_write"`, …).
    pub name: String,
    /// The run label (`"cmab-hs/seed42"`) for run-scoped spans.
    pub run: Option<String>,
    /// The round index for round-scoped spans.
    pub round: Option<u64>,
    /// Start, nanoseconds on the process timebase ([`now_ns`]).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Pool worker index, for pool-side spans.
    pub worker: Option<u64>,
    /// Lane index / lane count, for batched-engine spans.
    pub lane: Option<u64>,
    /// Lockstep batch width, for batched-engine spans.
    pub batch: Option<u64>,
    /// Cursor chunk size (jobs), for pool chunk spans.
    pub chunk: Option<u64>,
    /// Scenario-cell identity, for cell-packed sweep spans (`lane_group`
    /// and its per-cell `cell` children). `#[serde(default)]` keeps traces
    /// written before cell packing parseable.
    #[serde(default)]
    pub cell: Option<u64>,
}

impl SpanRecord {
    /// A span record with no attributes set.
    #[must_use]
    pub fn new(
        trace: TraceId,
        span: SpanId,
        parent: Option<SpanId>,
        name: &str,
        start_ns: u64,
        dur_ns: u64,
    ) -> Self {
        Self {
            event: SpanTag,
            trace: trace.0,
            span: span.0,
            parent: parent.map(|p| p.0),
            name: name.to_owned(),
            run: None,
            round: None,
            start_ns,
            dur_ns,
            worker: None,
            lane: None,
            batch: None,
            chunk: None,
            cell: None,
        }
    }

    /// Sets the run label.
    #[must_use]
    pub fn with_run(mut self, run: &str) -> Self {
        self.run = Some(run.to_owned());
        self
    }

    /// Sets the round index.
    #[must_use]
    pub fn with_round(mut self, round: u64) -> Self {
        self.round = Some(round);
        self
    }

    /// Sets the pool worker index.
    #[must_use]
    pub fn with_worker(mut self, worker: u64) -> Self {
        self.worker = Some(worker);
        self
    }

    /// Sets the lane attribute.
    #[must_use]
    pub fn with_lane(mut self, lane: u64) -> Self {
        self.lane = Some(lane);
        self
    }

    /// Sets the batch-width attribute.
    #[must_use]
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Sets the chunk-size attribute.
    #[must_use]
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        self.chunk = Some(chunk);
        self
    }

    /// Sets the scenario-cell attribute.
    #[must_use]
    pub fn with_cell(mut self, cell: u64) -> Self {
        self.cell = Some(cell);
        self
    }
}

thread_local! {
    /// The scope stack: ids of the open ancestor spans on this thread.
    static SCOPE: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
    /// The innermost open *round* span on this thread (span id, round),
    /// so nested producers that only see wall time (journal writes) can
    /// still attribute themselves to the settling round.
    static ROUND_SCOPE: Cell<Option<(SpanId, u64)>> = const { Cell::new(None) };
}

/// The innermost scope span on the current thread, if any.
#[must_use]
pub fn current_scope() -> Option<SpanId> {
    SCOPE.with(|s| s.borrow().last().copied())
}

/// Pushes `id` onto this thread's scope stack; popped when the returned
/// guard drops. Spans opened below (on this thread) parent to `id`.
#[must_use]
pub fn enter_scope(id: SpanId) -> ScopeGuard {
    SCOPE.with(|s| s.borrow_mut().push(id));
    ScopeGuard { id }
}

/// Pops its scope span on drop (LIFO; mismatches are dropped defensively).
#[derive(Debug)]
pub struct ScopeGuard {
    id: SpanId,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                // Out-of-order teardown: remove our id wherever it is so
                // the stack never grows without bound.
                stack.retain(|&other| other != self.id);
            }
        });
    }
}

/// Marks `(span, round)` as the open round span on this thread.
pub fn set_round_scope(span: SpanId, round: u64) {
    ROUND_SCOPE.with(|r| r.set(Some((span, round))));
}

/// Clears the open round span, but only if it is still `span` (lanes on
/// one thread overwrite each other; never clear a successor's mark).
pub fn clear_round_scope(span: SpanId) {
    ROUND_SCOPE.with(|r| {
        if r.get().map(|(id, _)| id) == Some(span) {
            r.set(None);
        }
    });
}

/// The innermost open round span on this thread: `(span id, round)`.
#[must_use]
pub fn current_round_scope() -> Option<(SpanId, u64)> {
    ROUND_SCOPE.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotone() {
        let a = next_span_id();
        let b = next_span_id();
        assert!(b.0 > a.0);
        let t1 = next_trace_id();
        let t2 = next_trace_id();
        assert!(t2.0 > t1.0);
    }

    #[test]
    fn timebase_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn scope_stack_nests_and_unwinds() {
        assert_eq!(current_scope(), None);
        let outer = next_span_id();
        let inner = next_span_id();
        {
            let _g1 = enter_scope(outer);
            assert_eq!(current_scope(), Some(outer));
            {
                let _g2 = enter_scope(inner);
                assert_eq!(current_scope(), Some(inner));
            }
            assert_eq!(current_scope(), Some(outer));
        }
        assert_eq!(current_scope(), None);
    }

    #[test]
    fn out_of_order_guard_drop_removes_only_its_id() {
        let a = next_span_id();
        let b = next_span_id();
        let g1 = enter_scope(a);
        let g2 = enter_scope(b);
        drop(g1); // a removed from the middle
        assert_eq!(current_scope(), Some(b));
        drop(g2);
        assert_eq!(current_scope(), None);
    }

    #[test]
    fn round_scope_is_overwrite_safe() {
        let a = next_span_id();
        let b = next_span_id();
        set_round_scope(a, 3);
        assert_eq!(current_round_scope(), Some((a, 3)));
        set_round_scope(b, 4); // the next lane's round overwrites
        clear_round_scope(a); // a stale clear must not drop b's mark
        assert_eq!(current_round_scope(), Some((b, 4)));
        clear_round_scope(b);
        assert_eq!(current_round_scope(), None);
    }

    #[test]
    fn record_serializes_with_stable_tag_and_full_key_set() {
        let rec = SpanRecord::new(TraceId(1), SpanId(2), Some(SpanId(1)), "solve", 10, 20)
            .with_run("cmab-hs/seed1")
            .with_round(5);
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"event\":\"span\""), "{json}");
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let keys: Vec<&str> = value
            .as_object()
            .unwrap()
            .keys()
            .map(String::as_str)
            .collect();
        assert_eq!(
            keys,
            [
                "event", "trace", "span", "parent", "name", "run", "round", "start_ns", "dur_ns",
                "worker", "lane", "batch", "chunk", "cell"
            ]
        );
        let back: SpanRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn pre_cell_trace_lines_still_deserialize() {
        // Traces written before the `cell` attribute existed omit the key
        // entirely; `#[serde(default)]` must accept them as `cell: null`.
        let old = r#"{"event":"span","trace":1,"span":2,"parent":null,"name":"run",
            "run":null,"round":null,"start_ns":0,"dur_ns":1,"worker":null,
            "lane":null,"batch":null,"chunk":null}"#;
        let rec: SpanRecord = serde_json::from_str(old).unwrap();
        assert_eq!(rec.cell, None);
    }

    #[test]
    fn non_span_lines_do_not_deserialize() {
        assert!(serde_json::from_str::<SpanRecord>(
            r#"{"event":"round_start","run":"a","round":0}"#
        )
        .is_err());
    }
}
