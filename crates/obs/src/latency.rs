//! Log₂-bucketed latency histograms over nanoseconds.
//!
//! Reuses [`cdt_aggregate::Histogram`]'s fixed-range `[0, 1]` bucketing by
//! mapping a nanosecond value through `x = log₂(1 + ns) / 64`: with 64
//! equal-width buckets on `[0, 1]`, bucket `i` then covers exactly the
//! power-of-two latency range `[2^i − 1, 2^{i+1} − 1)` ns — the classic
//! log-bucket layout, 64 buckets spanning 1 ns to ~584 years.

use cdt_aggregate::Histogram;
use serde::{Deserialize, Serialize};

/// Number of log₂ buckets (covers the full `u64` nanosecond range).
const BINS: usize = 64;

/// A latency histogram with power-of-two nanosecond buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    hist: Histogram,
    sum_ns: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            hist: Histogram::new(BINS),
            sum_ns: 0,
        }
    }

    /// Maps a nanosecond value into the `[0, 1]` quality domain.
    fn to_unit(ns: u64) -> f64 {
        ((ns as f64) + 1.0).log2() / BINS as f64
    }

    /// Inverts [`LatencyHistogram::to_unit`].
    fn from_unit(x: f64) -> u64 {
        let ns = (x * BINS as f64).exp2() - 1.0;
        if ns >= u64::MAX as f64 {
            u64::MAX
        } else if ns <= 0.0 {
            0
        } else {
            ns as u64
        }
    }

    /// Upper bound (exclusive, in ns) of log₂ bucket `i`: bucket `i`
    /// covers `[2^i − 1, 2^{i+1} − 1)`. The top bucket saturates at
    /// `u64::MAX` — `2^64 − 1` is not representable, so its bound is the
    /// inclusive ceiling of the nanosecond domain rather than one past it.
    #[must_use]
    pub fn bucket_upper_ns(i: usize) -> u64 {
        if i + 1 >= BINS {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Records one latency observation.
    pub fn record_ns(&mut self, ns: u64) {
        self.hist.record(Self::to_unit(ns));
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.hist.total()
    }

    /// Sum of all recorded nanoseconds (saturating).
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean latency in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count() as f64
        }
    }

    /// Approximate `q`-quantile in nanoseconds (`None` when empty).
    ///
    /// # Panics
    /// Panics unless `q ∈ [0, 1]`.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        self.hist.quantile(q).map(Self::from_unit)
    }

    /// Merges another latency histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.hist.merge(&other.hist);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// The non-empty buckets as `(upper_bound_ns, cumulative_count)` pairs
    /// in ascending order — the shape a Prometheus `_bucket{le=...}` series
    /// wants. The final implicit `+Inf` bucket is [`LatencyHistogram::count`].
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for i in 0..self.hist.num_bins() {
            let c = self.hist.bin_count(i);
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((Self::bucket_upper_ns(i), cum));
        }
        out
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_unit_mapping() {
        for ns in [0u64, 1, 7, 1_000, 1_000_000, 123_456_789_000] {
            let x = LatencyHistogram::to_unit(ns);
            assert!((0.0..=1.0).contains(&x), "ns {ns} mapped to {x}");
            let back = LatencyHistogram::from_unit(x);
            // Inverse is exact up to float rounding: within 1 part in 2^40.
            let err = (back as f64 - ns as f64).abs();
            assert!(err <= 1.0 + ns as f64 * 1e-9, "ns {ns} came back as {back}");
        }
    }

    #[test]
    fn records_and_counts() {
        let mut h = LatencyHistogram::new();
        h.record_ns(100);
        h.record_ns(200);
        h.record_ns(100_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 100_300);
        assert!((h.mean_ns() - 100_300.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record_ns(1_000);
        }
        for _ in 0..100 {
            h.record_ns(1_000_000);
        }
        let p25 = h.quantile_ns(0.25).unwrap();
        let p99 = h.quantile_ns(0.99).unwrap();
        // Log buckets are coarse (powers of two): check the right octaves.
        assert!((500..=2_100).contains(&p25), "p25 = {p25}");
        assert!((500_000..=2_100_000).contains(&p99), "p99 = {p99}");
        assert!(h.quantile_ns(0.0).unwrap() <= p99);
    }

    #[test]
    fn empty_quantile_is_none() {
        assert!(LatencyHistogram::new().quantile_ns(0.5).is_none());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        a.record_ns(10);
        let mut b = LatencyHistogram::new();
        b.record_ns(1_000_000);
        b.record_ns(2_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_ns(), 3_000_010);
    }

    /// The bucket index `record_ns(ns)` lands in (mirrors the clamp in
    /// `cdt_aggregate::Histogram::record`).
    fn bucket_index(ns: u64) -> usize {
        let x = LatencyHistogram::to_unit(ns);
        ((x * BINS as f64).floor() as isize).clamp(0, BINS as isize - 1) as usize
    }

    #[test]
    fn edge_values_land_in_edge_buckets() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BINS - 1);
        let mut h = LatencyHistogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.first().unwrap().0, 1); // bucket 0: [0, 1) ns
        assert_eq!(buckets.last().unwrap(), &(u64::MAX, 2));
    }

    proptest::proptest! {
        /// Bucketing is monotone: a smaller latency never lands in a
        /// higher bucket (log₂(1 + ns) is non-decreasing, and so is every
        /// float step in the mapping).
        #[test]
        fn prop_bucketing_is_monotone(a in proptest::prelude::any::<u64>(), b in proptest::prelude::any::<u64>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            proptest::prop_assert!(bucket_index(lo) <= bucket_index(hi));
        }

        /// Every recorded observation is counted exactly once: the total,
        /// the per-bin sum, and the final cumulative count all equal the
        /// number of records — including 0 and u64::MAX edge values.
        #[test]
        fn prop_bucketing_preserves_total_count(
            mut values in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..200),
            zeros in 0usize..3,
            maxes in 0usize..3,
        ) {
            values.resize(values.len() + zeros, 0);
            values.resize(values.len() + maxes, u64::MAX);
            let mut h = LatencyHistogram::new();
            for &ns in &values {
                h.record_ns(ns);
            }
            let n = values.len() as u64;
            proptest::prop_assert_eq!(h.count(), n);
            let bin_sum: u64 = (0..h.hist.num_bins()).map(|i| h.hist.bin_count(i)).sum();
            proptest::prop_assert_eq!(bin_sum, n);
            if n > 0 {
                proptest::prop_assert_eq!(h.cumulative_buckets().last().unwrap().1, n);
            } else {
                proptest::prop_assert!(h.cumulative_buckets().is_empty());
            }
        }

        /// A recorded value's bucket upper bound is never below the value
        /// (up to the one-count float rounding at 2^53-scale boundaries):
        /// cumulative counts at or above the value's bucket include it.
        #[test]
        fn prop_recorded_value_is_within_its_bucket(ns in proptest::prelude::any::<u64>()) {
            let mut h = LatencyHistogram::new();
            h.record_ns(ns);
            let buckets = h.cumulative_buckets();
            proptest::prop_assert_eq!(buckets.len(), 1);
            let idx = bucket_index(ns);
            proptest::prop_assert_eq!(buckets[0], (LatencyHistogram::bucket_upper_ns(idx), 1));
        }

        /// Saturation pin: every latency at or above the top bucket's
        /// lower bound (2^63 − 1 ns) lands in bucket 63, whose upper
        /// bound saturates at u64::MAX — never a wrapped or zero bound.
        #[test]
        fn prop_top_bucket_saturates(offset in proptest::prelude::any::<u64>()) {
            let lower = (1u64 << 63) - 1;
            let ns = lower.saturating_add(offset % (u64::MAX - lower + 1));
            proptest::prop_assert_eq!(bucket_index(ns), BINS - 1);
            let mut h = LatencyHistogram::new();
            h.record_ns(ns);
            proptest::prop_assert_eq!(h.cumulative_buckets(), vec![(u64::MAX, 1)]);
            proptest::prop_assert_eq!(h.quantile_ns(1.0), Some(u64::MAX));
        }
    }

    /// Saturation round-trip pin: `u64::MAX` maps to unit 1.0 exactly
    /// (2^64 is representable; 2^64 − 1 is not, so `+ 1.0` rounds onto
    /// it) and the inverse saturates back to `u64::MAX` rather than
    /// overflowing the `f64 → u64` cast to 0.
    #[test]
    fn saturation_boundary_round_trips_exactly() {
        assert_eq!(LatencyHistogram::to_unit(u64::MAX), 1.0);
        assert_eq!(LatencyHistogram::from_unit(1.0), u64::MAX);
        assert_eq!(
            LatencyHistogram::from_unit(LatencyHistogram::to_unit(u64::MAX)),
            u64::MAX
        );
        // The helper agrees with the mapping at both edges of the range.
        assert_eq!(LatencyHistogram::bucket_upper_ns(0), 1);
        assert_eq!(LatencyHistogram::bucket_upper_ns(BINS - 1), u64::MAX);
        assert_eq!(LatencyHistogram::bucket_upper_ns(BINS), u64::MAX);
    }

    #[test]
    fn cumulative_buckets_are_ascending() {
        let mut h = LatencyHistogram::new();
        for ns in [3u64, 3, 40, 5_000, 5_000, 5_000] {
            h.record_ns(ns);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        for w in buckets.windows(2) {
            assert!(w[1].0 > w[0].0, "upper bounds ascend");
            assert!(w[1].1 >= w[0].1, "cumulative counts ascend");
        }
        assert_eq!(buckets.last().unwrap().1, h.count());
    }
}
