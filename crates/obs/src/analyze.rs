//! Offline trace analysis: rebuild summary metrics from a JSONL event
//! trace (`cdt obs summarize <trace.jsonl>`).
//!
//! A live run publishes phase histograms and cache counters to the global
//! registry as it goes; this module reconstructs the same registry shape
//! from a trace written earlier (`--obs-events`), so the one summary
//! renderer ([`render_summary`]) serves both the live `--obs-summary` path
//! and post-hoc analysis of a file.

use crate::event::Phase;
use crate::health::HealthRecord;
use crate::latency::LatencyHistogram;
use crate::metrics::MetricsRegistry;
use crate::record::EventRecord;
use crate::span::SpanRecord;
use crate::summary::{fmt_ns, render_summary};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// Aggregate statistics parsed out of one JSONL trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Records that parsed as [`EventRecord`]s.
    pub events: u64,
    /// Non-empty lines that did not parse (skipped, not fatal).
    pub malformed: u64,
    /// Distinct run labels seen.
    pub runs: usize,
    /// Completed rounds (`round_end` records).
    pub rounds: u64,
    /// Engine busy time summed over every phase sample, in nanoseconds.
    pub busy_ns: u64,
    /// Market-protocol journal events (`cdt-protocol` `MarketEvent` lines,
    /// as written by a `--journal` run) found in the file.
    pub protocol_events: u64,
    /// Settled rounds among those journal events (`PaymentsSettled` lines).
    pub settled_rounds: u64,
    /// Causal spans (`"event":"span"` lines from an `--obs-spans` run).
    pub spans: u64,
    /// Watchdog health events (`"event":"health"` lines).
    pub health_events: u64,
    /// Lockstep `lane_group` spans seen (batched-engine groups).
    pub lane_groups: u64,
    /// Lanes summed over those groups (the `batch` span attribute), so
    /// `lane_group_lanes / lane_groups` is the mean lane occupancy.
    pub lane_group_lanes: u64,
    /// Wall-clock each scenario cell spent resident in lockstep groups,
    /// keyed by cell id. Uniform groups attribute their whole duration to
    /// their single cell; coalesced (mixed-cell) groups emit one `cell`
    /// child span per distinct cell covering the group interval, so a
    /// cell's total counts every group interval it was resident in.
    pub cell_resident_ns: BTreeMap<u64, u64>,
}

/// The `MarketEvent` kind tags of the cdt-protocol journal. Recognized
/// structurally (externally tagged single-key objects) so this crate
/// stays dependency-free while `cdt obs summarize` still understands a
/// journal file.
const PROTOCOL_KINDS: [&str; 7] = [
    "JobPublished",
    "SellersSelected",
    "StrategyDetermined",
    "DataCollected",
    "StatisticsDelivered",
    "PaymentsSettled",
    "JobCompleted",
];

/// The journal kind of a non-`EventRecord` line, if it is one.
fn protocol_kind(line: &str) -> Option<&'static str> {
    let value: serde_json::Value = serde_json::from_str(line).ok()?;
    let object = value.as_object()?;
    if object.len() != 1 {
        return None;
    }
    let key = object.keys().next()?.as_str();
    PROTOCOL_KINDS.iter().find(|&&k| k == key).copied()
}

impl TraceStats {
    /// Completed rounds per second of summed engine busy time. Zero when
    /// the trace carries no timing samples.
    #[must_use]
    pub fn rounds_per_sec(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.rounds as f64 * 1e9 / self.busy_ns as f64
        }
    }
}

/// Parses the JSONL trace at `path` into a fresh [`MetricsRegistry`] with
/// the same metric families a live run publishes (round/event counters,
/// per-phase latency histograms, eq-cache counters), plus [`TraceStats`].
///
/// Malformed lines are counted and skipped so a truncated trace (e.g. from
/// a killed run) still summarizes.
///
/// # Errors
/// Propagates I/O errors opening or reading the file.
pub fn registry_from_trace(path: &Path) -> io::Result<(MetricsRegistry, TraceStats)> {
    let reader = BufReader::new(File::open(path)?);

    let mut runs = BTreeSet::new();
    let mut events = 0u64;
    let mut malformed = 0u64;
    let mut rounds = 0u64;
    let mut eq_hits = 0u64;
    let mut eq_misses = 0u64;
    let mut protocol_events = 0u64;
    let mut settled_rounds = 0u64;
    let mut spans = 0u64;
    let mut health_events = 0u64;
    let mut lane_groups = 0u64;
    let mut lane_group_lanes = 0u64;
    let mut mixed_groups = 0u64;
    let mut cell_resident_ns: BTreeMap<u64, u64> = BTreeMap::new();
    let mut health_by_kind: Vec<(&'static str, u64)> = Vec::new();
    let mut phase_hists: [LatencyHistogram; 4] = std::array::from_fn(|_| LatencyHistogram::new());

    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record: EventRecord = match serde_json::from_str(line) {
            Ok(record) => record,
            Err(_) => {
                if let Ok(span) = serde_json::from_str::<SpanRecord>(line) {
                    spans += 1;
                    if span.name == "lane_group" {
                        lane_groups += 1;
                        lane_group_lanes += span.batch.unwrap_or(1);
                        if span.cell.is_none() {
                            mixed_groups += 1;
                        }
                    }
                    // Per-cell resident wall-clock: the whole group interval
                    // for uniform groups (`lane_group` with a cell), one
                    // `cell` child per distinct cell for coalesced groups.
                    if let Some(cell) = span.cell {
                        if span.name == "lane_group" || span.name == "cell" {
                            *cell_resident_ns.entry(cell).or_insert(0) += span.dur_ns;
                        }
                    }
                } else if let Ok(health) = serde_json::from_str::<HealthRecord>(line) {
                    health_events += 1;
                    let kind = health.kind.as_str();
                    match health_by_kind.iter_mut().find(|(k, _)| *k == kind) {
                        Some((_, count)) => *count += 1,
                        None => health_by_kind.push((kind, 1)),
                    }
                } else {
                    match protocol_kind(line) {
                        Some(kind) => {
                            protocol_events += 1;
                            if kind == "PaymentsSettled" {
                                settled_rounds += 1;
                            }
                        }
                        None => malformed += 1,
                    }
                }
                continue;
            }
        };
        events += 1;
        runs.insert(record.run().to_owned());
        match &record {
            EventRecord::RoundEnd {
                selection_ns,
                solve_ns,
                observe_ns,
                ..
            } => {
                rounds += 1;
                phase_hists[Phase::Selection as usize].record_ns(*selection_ns);
                phase_hists[Phase::Solve as usize].record_ns(*solve_ns);
                phase_hists[Phase::Observe as usize].record_ns(*observe_ns);
            }
            EventRecord::Regret { account_ns, .. } => {
                phase_hists[Phase::Account as usize].record_ns(*account_ns);
            }
            EventRecord::Equilibrium { round, cached, .. } => {
                // Mirror the engine's counters: the initial round assigns a
                // strategy without consulting the cache, so it is neither a
                // hit nor a miss.
                if *cached {
                    eq_hits += 1;
                } else if *round != 0 {
                    eq_misses += 1;
                }
            }
            _ => {}
        }
    }

    let registry = MetricsRegistry::new();
    registry.add_counter("cdt_obs_rounds_total", &[], rounds);
    registry.add_counter("cdt_obs_events_total", &[], events);
    if eq_hits + eq_misses > 0 {
        registry.add_counter("cdt_obs_eq_cache_hits_total", &[], eq_hits);
        registry.add_counter("cdt_obs_eq_cache_misses_total", &[], eq_misses);
    }
    if protocol_events > 0 {
        registry.add_counter("cdt_obs_protocol_events_total", &[], protocol_events);
        registry.add_counter("cdt_obs_protocol_settled_rounds", &[], settled_rounds);
    }
    if spans > 0 {
        registry.add_counter("cdt_obs_spans_total", &[], spans);
    }
    // A cell-aware trace (some span carried a cell id) reconstructs the
    // cell-packing counters the live run publishes, so the one summary
    // renderer reports mean lane occupancy offline too. Traces from
    // direct `run_policy_batch` calls or pre-cell builds carry no cell
    // attributes and skip this.
    if !cell_resident_ns.is_empty() && lane_groups > 0 {
        registry.add_counter("cdt_obs_cell_batches_total", &[], lane_groups);
        registry.add_counter("cdt_obs_cell_lanes_total", &[], lane_group_lanes);
        registry.add_counter("cdt_obs_cell_coalesced_batches_total", &[], mixed_groups);
    }
    for (kind, count) in &health_by_kind {
        registry.add_counter("cdt_obs_health_events_total", &[("kind", kind)], *count);
    }
    let mut busy_ns = 0u64;
    for phase in Phase::ALL {
        let hist = &phase_hists[phase as usize];
        if hist.count() > 0 {
            busy_ns += hist.sum_ns();
            registry.merge_histogram("cdt_obs_round_phase_ns", &[("phase", phase.as_str())], hist);
        }
    }

    let stats = TraceStats {
        events,
        malformed,
        runs: runs.len(),
        rounds,
        busy_ns,
        protocol_events,
        settled_rounds,
        spans,
        health_events,
        lane_groups,
        lane_group_lanes,
        cell_resident_ns,
    };
    Ok((registry, stats))
}

/// Renders the human summary of the trace at `path`: the standard
/// [`render_summary`] table over the reconstructed registry, framed by the
/// trace provenance and a rounds-per-second throughput line.
///
/// # Errors
/// Propagates I/O errors from [`registry_from_trace`].
pub fn summarize_trace(path: &Path) -> io::Result<String> {
    let (registry, stats) = registry_from_trace(path)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} ({} events / {} runs)",
        path.display(),
        stats.events,
        stats.runs
    );
    if stats.malformed > 0 {
        let _ = writeln!(out, "skipped {} malformed lines", stats.malformed);
    }
    if stats.spans > 0 {
        let _ = writeln!(
            out,
            "spans: {} (analyze with `cdt obs flame` / `cdt obs critical-path`)",
            stats.spans
        );
    }
    if !stats.cell_resident_ns.is_empty() {
        let _ = writeln!(out, "cell wall-clock (resident in lockstep groups):");
        const CAP: usize = 12;
        for (i, (cell, ns)) in stats.cell_resident_ns.iter().enumerate() {
            if stats.cell_resident_ns.len() > CAP && i >= CAP {
                let _ = writeln!(
                    out,
                    "  ... ({} more cells)",
                    stats.cell_resident_ns.len() - CAP
                );
                break;
            }
            let _ = writeln!(out, "  cell {cell}: {}", fmt_ns(*ns as f64));
        }
    }
    out.push_str(&render_summary(&registry));
    if stats.rounds > 0 && stats.busy_ns > 0 {
        let _ = writeln!(
            out,
            "throughput: {:.0} rounds/sec (engine busy time)",
            stats.rounds_per_sec()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "cdt-obs-analyze-{}-{name}.jsonl",
            std::process::id()
        ));
        p
    }

    fn write_trace(name: &str, lines: &[String]) -> PathBuf {
        let path = temp_path(name);
        std::fs::write(&path, lines.join("\n")).unwrap();
        path
    }

    fn round_end(run: &str, round: usize) -> String {
        serde_json::to_string(&EventRecord::RoundEnd {
            run: run.into(),
            round,
            observed_revenue: 1.0,
            consumer_profit: 0.4,
            platform_profit: 0.3,
            seller_profit: 0.3,
            selection_ns: 1_000,
            solve_ns: 2_000,
            observe_ns: 3_000,
        })
        .unwrap()
    }

    fn equilibrium(run: &str, round: usize, cached: bool) -> String {
        serde_json::to_string(&EventRecord::Equilibrium {
            run: run.into(),
            round,
            service_price: 1.0,
            collection_price: 0.5,
            sensing_times: vec![0.1],
            consumer_profit: 0.4,
            platform_profit: 0.3,
            seller_profit: 0.3,
            cached,
        })
        .unwrap()
    }

    #[test]
    fn rebuilds_counters_histograms_and_cache_stats() {
        let path = write_trace(
            "full",
            &[
                equilibrium("a/seed1", 0, false),
                round_end("a/seed1", 0),
                equilibrium("a/seed1", 1, false),
                round_end("a/seed1", 1),
                equilibrium("a/seed1", 2, true),
                round_end("a/seed1", 2),
                equilibrium("b/seed2", 0, false),
                round_end("b/seed2", 0),
            ],
        );
        let (registry, stats) = registry_from_trace(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(stats.events, 8);
        assert_eq!(stats.malformed, 0);
        assert_eq!(stats.runs, 2);
        assert_eq!(stats.rounds, 4);
        // 4 round_end records × (1000 + 2000 + 3000) ns.
        assert_eq!(stats.busy_ns, 24_000);
        assert!(stats.rounds_per_sec() > 0.0);

        assert_eq!(registry.counter_value("cdt_obs_rounds_total", &[]), 4);
        // Initial rounds are neither hits nor misses: 1 hit, 1 miss.
        assert_eq!(
            registry.counter_value("cdt_obs_eq_cache_hits_total", &[]),
            1
        );
        assert_eq!(
            registry.counter_value("cdt_obs_eq_cache_misses_total", &[]),
            1
        );
    }

    #[test]
    fn summary_text_includes_phases_and_throughput() {
        let path = write_trace(
            "render",
            &[
                round_end("a/seed1", 0),
                round_end("a/seed1", 1),
                "not json at all".to_owned(),
            ],
        );
        let text = summarize_trace(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        assert!(text.contains("(2 events / 1 runs)"), "got:\n{text}");
        assert!(text.contains("skipped 1 malformed lines"), "got:\n{text}");
        assert!(text.contains("rounds: 2"), "got:\n{text}");
        assert!(text.contains("selection"), "got:\n{text}");
        assert!(text.contains("throughput:"), "got:\n{text}");
    }

    #[test]
    fn protocol_journal_lines_are_recognized_not_malformed() {
        let path = write_trace(
            "journal",
            &[
                r#"{"JobPublished":{"job":{"l":4,"n":2,"t":10.0}}}"#.to_owned(),
                r#"{"SellersSelected":{"round":0,"sellers":[0,1]}}"#.to_owned(),
                r#"{"PaymentsSettled":{"round":0,"consumer_payment":20.0,"seller_payments":[3.0,4.5]}}"#
                    .to_owned(),
                r#"{"JobCompleted":{"rounds":1}}"#.to_owned(),
                "really not json".to_owned(),
                r#"{"two":"keys","so":"not a MarketEvent"}"#.to_owned(),
            ],
        );
        let (registry, stats) = registry_from_trace(&path).unwrap();
        let text = summarize_trace(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(stats.protocol_events, 4);
        assert_eq!(stats.settled_rounds, 1);
        assert_eq!(stats.malformed, 2);
        assert_eq!(
            registry.counter_value("cdt_obs_protocol_events_total", &[]),
            4
        );
        assert_eq!(
            registry.counter_value("cdt_obs_protocol_settled_rounds", &[]),
            1
        );
        assert!(
            text.contains("protocol journal: 4 events / 1 settled rounds"),
            "got:\n{text}"
        );
    }

    #[test]
    fn span_and_health_lines_are_recognized_not_malformed() {
        use crate::span::{SpanId, TraceId};
        let span = serde_json::to_string(&SpanRecord::new(
            TraceId(1),
            SpanId(2),
            None,
            "run",
            0,
            1_000,
        ))
        .unwrap();
        let health = r#"{"event":"health","kind":"slow_round","t_ns":9,"worker":null,"observed_ns":50,"threshold_ns":10}"#;
        let path = write_trace(
            "spans",
            &[
                span.clone(),
                span,
                health.to_owned(),
                round_end("a/seed1", 0),
            ],
        );
        let (registry, stats) = registry_from_trace(&path).unwrap();
        let text = summarize_trace(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(stats.spans, 2);
        assert_eq!(stats.health_events, 1);
        assert_eq!(stats.malformed, 0);
        assert_eq!(stats.events, 1);
        assert_eq!(registry.counter_value("cdt_obs_spans_total", &[]), 2);
        assert_eq!(
            registry.counter_value("cdt_obs_health_events_total", &[("kind", "slow_round")]),
            1
        );
        assert!(text.contains("spans: 2"), "got:\n{text}");
        assert!(text.contains("health events"), "got:\n{text}");
    }

    #[test]
    fn cell_spans_rebuild_occupancy_and_per_cell_wall_clock() {
        use crate::span::{SpanId, TraceId};
        // One uniform group (cell 7 across both lanes) and one coalesced
        // group whose two `cell` children (cells 7 and 8) cover the full
        // group interval.
        let uniform = serde_json::to_string(
            &SpanRecord::new(TraceId(1), SpanId(10), None, "lane_group", 0, 5_000)
                .with_batch(2)
                .with_cell(7),
        )
        .unwrap();
        let mixed = serde_json::to_string(
            &SpanRecord::new(TraceId(1), SpanId(11), None, "lane_group", 5_000, 3_000)
                .with_batch(3),
        )
        .unwrap();
        let child7 = serde_json::to_string(
            &SpanRecord::new(
                TraceId(1),
                SpanId(12),
                Some(SpanId(11)),
                "cell",
                5_000,
                3_000,
            )
            .with_batch(2)
            .with_cell(7),
        )
        .unwrap();
        let child8 = serde_json::to_string(
            &SpanRecord::new(
                TraceId(1),
                SpanId(13),
                Some(SpanId(11)),
                "cell",
                5_000,
                3_000,
            )
            .with_batch(1)
            .with_cell(8),
        )
        .unwrap();
        let path = write_trace("cells", &[uniform, mixed, child7, child8]);
        let (registry, stats) = registry_from_trace(&path).unwrap();
        let text = summarize_trace(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(stats.lane_groups, 2);
        assert_eq!(stats.lane_group_lanes, 5);
        assert_eq!(stats.cell_resident_ns.get(&7), Some(&8_000));
        assert_eq!(stats.cell_resident_ns.get(&8), Some(&3_000));
        assert_eq!(registry.counter_value("cdt_obs_cell_batches_total", &[]), 2);
        assert_eq!(registry.counter_value("cdt_obs_cell_lanes_total", &[]), 5);
        assert_eq!(
            registry.counter_value("cdt_obs_cell_coalesced_batches_total", &[]),
            1
        );
        assert!(text.contains("cell wall-clock"), "got:\n{text}");
        assert!(text.contains("cell 7: 8.00us"), "got:\n{text}");
        assert!(text.contains("cell 8: 3.00us"), "got:\n{text}");
        assert!(text.contains("mean occupancy 2.50"), "got:\n{text}");
    }

    #[test]
    fn empty_trace_summarizes_without_throughput_line() {
        let path = write_trace("empty", &[String::new()]);
        let text = summarize_trace(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("rounds: 0"));
        assert!(!text.contains("throughput:"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = temp_path("definitely-not-created");
        assert!(summarize_trace(&path).is_err());
    }
}
