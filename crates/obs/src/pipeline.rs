//! The process-wide observability pipeline.
//!
//! Experiments fan out through many layers (CLI → compare grid → replicate →
//! `run_policy`), so instead of threading an observer through every
//! signature, a run-level choke point asks the globally installed pipeline
//! for an observer: [`observer_for_run`] returns `None` (and the caller
//! stays on the statically disabled [`crate::NullObserver`] path) unless
//! [`install`] was called. A [`PipelineObserver`] buffers records and phase
//! histograms locally and publishes once when dropped, so concurrent runs
//! contend on the sink/registry once per run, not per event.
//!
//! With [`ObsConfig::spans`] set the same observer synthesizes the causal
//! span tree for its run — a `run` span opened at creation, a `round` span
//! per sampled round, and phase child spans laid out from the round's
//! measured laps — and engine-side producers (the pool, the batch engine,
//! the journal sink) attach their own spans through [`active_trace`] /
//! [`publish_spans`]. With [`ObsConfig::watchdog_ms`] set the pipeline
//! also runs the [`crate::health`] monitor thread for its lifetime.

use crate::event::{
    EquilibriumEvent, ObservationEvent, Phase, RoundEndEvent, RoundObserver, SelectionEvent,
};
use crate::health::{HealthRecord, WatchdogConfig};
use crate::latency::LatencyHistogram;
use crate::metrics;
use crate::record::RecordingObserver;
use crate::sink::JsonlSink;
use crate::span::{self, SpanId, SpanRecord, TraceId};
use cdt_types::Round;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// What the pipeline should produce.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Write one JSON object per event to this file (`--obs-events`).
    pub events_path: Option<PathBuf>,
    /// Print the end-of-run human summary table (`--obs-summary`).
    pub summary: bool,
    /// Record only every k-th round's events (`--obs-events-sample`);
    /// `0` and `1` both mean "record every round". Sampling thins the
    /// JSONL trace only — metrics (round counts, phase histograms,
    /// eq-cache counters) still cover every round, and the summary
    /// reports the factor.
    pub events_sample: usize,
    /// Emit causal spans (`--obs-spans`) into the events sink: run/round/
    /// phase spans from the observer, pool and journal spans from the
    /// engine. Round-level spans obey `events_sample` like records.
    pub spans: bool,
    /// Run the health watchdog, sampling every this-many milliseconds
    /// (`--watchdog-ms`). `None` disables it.
    pub watchdog_ms: Option<u64>,
    /// Explicit slow-round threshold for the watchdog in nanoseconds
    /// (`--watchdog-slow-round-ns`); `None` derives p99 ×
    /// [`crate::health::SLOW_FACTOR`] from observed rounds.
    pub slow_round_ns: Option<u64>,
}

#[derive(Debug)]
struct Pipeline {
    sink: Option<JsonlSink>,
    summary: bool,
    events_sample: usize,
    /// The trace every span of this install belongs to (`None` when span
    /// tracing is off).
    trace: Option<TraceId>,
}

/// Fast gate: one relaxed atomic load on the hot paths.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Fast gate for span producers (subset of `ENABLED`).
static SPANS: AtomicBool = AtomicBool::new(false);
static PIPELINE: Mutex<Option<Arc<Pipeline>>> = Mutex::new(None);

fn pipeline_slot() -> std::sync::MutexGuard<'static, Option<Arc<Pipeline>>> {
    PIPELINE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs the pipeline for the rest of the process (replacing any prior
/// one). Metrics collection turns on even with no sink configured.
pub fn install(config: ObsConfig) -> io::Result<()> {
    let sink = match &config.events_path {
        Some(path) => Some(JsonlSink::create(path)?),
        None => None,
    };
    if config.events_sample > 1 {
        metrics::global().set_gauge("cdt_obs_events_sample", &[], config.events_sample as f64);
    }
    let trace = config.spans.then(span::next_trace_id);
    *pipeline_slot() = Some(Arc::new(Pipeline {
        sink,
        summary: config.summary,
        events_sample: config.events_sample,
        trace,
    }));
    SPANS.store(config.spans, Ordering::Release);
    ENABLED.store(true, Ordering::Release);
    if let Some(interval_ms) = config.watchdog_ms {
        crate::health::start_watchdog(WatchdogConfig {
            interval_ms,
            slow_round_ns: config.slow_round_ns,
        });
    }
    Ok(())
}

/// Tears the pipeline down (tests; flushes the sink via drop). Stops the
/// watchdog, if one is running, before the sink goes away.
pub fn uninstall() {
    crate::health::stop_watchdog();
    ENABLED.store(false, Ordering::Release);
    SPANS.store(false, Ordering::Release);
    *pipeline_slot() = None;
}

/// Whether a pipeline is installed. Single relaxed atomic load — this is
/// the only cost observability adds to uninstrumented parallel code.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether span tracing is on. Single relaxed atomic load.
#[must_use]
pub fn spans_enabled() -> bool {
    SPANS.load(Ordering::Relaxed)
}

/// The installed pipeline's trace id, when span tracing is on — engine
/// producers (pool, batch engine, journal) stamp their spans with it.
#[must_use]
pub fn active_trace() -> Option<TraceId> {
    if !spans_enabled() {
        return None;
    }
    pipeline_slot().as_ref().and_then(|p| p.trace)
}

/// Whether the installed pipeline wants the end-of-run summary printed.
#[must_use]
pub fn summary_requested() -> bool {
    pipeline_slot().as_ref().is_some_and(|p| p.summary)
}

/// Writes finished spans to the events sink (counting them in
/// `cdt_obs_spans_total`). Producers batch locally — once per pool call,
/// once per run — so this locks the sink once per batch.
pub fn publish_spans(spans: &[SpanRecord]) {
    if spans.is_empty() {
        return;
    }
    metrics::global().add_counter("cdt_obs_spans_total", &[], spans.len() as u64);
    if let Some(pipeline) = pipeline_slot().as_ref() {
        if let Some(sink) = &pipeline.sink {
            if sink.write_batch(spans).is_err() {
                crate::warn::warn_once(
                    "obs-sink-write",
                    "failed to write observability events; trace is incomplete",
                );
            }
        }
    }
}

/// Writes one watchdog health event to the events sink, flushing so the
/// line is visible immediately (health events are rare and urgent).
pub fn publish_health(record: &HealthRecord) {
    if let Some(pipeline) = pipeline_slot().as_ref() {
        if let Some(sink) = &pipeline.sink {
            if sink.write_record(record).is_ok() {
                let _ = sink.flush();
            } else {
                crate::warn::warn_once(
                    "obs-sink-write",
                    "failed to write observability events; trace is incomplete",
                );
            }
        }
    }
}

/// An observer for one evaluation run, or `None` when no pipeline is
/// installed. `run` labels every record (e.g. `"cmab-hs/seed42"`).
#[must_use]
pub fn observer_for_run(run: &str) -> Option<PipelineObserver> {
    if !is_enabled() {
        return None;
    }
    let pipeline = pipeline_slot().as_ref().map(Arc::clone)?;
    let events_sample = pipeline.events_sample.max(1);
    let run_span = pipeline.trace.map(|trace| RunSpan {
        trace,
        span: span::next_span_id(),
        parent: span::current_scope(),
        start_ns: span::now_ns(),
        round: None,
    });
    Some(PipelineObserver {
        recorder: RecordingObserver::new(run),
        phase_ns: [const { None }; 4],
        rounds: 0,
        events_sample,
        pipeline,
        run_span,
        spans: Vec::new(),
    })
}

/// Flushes the sink (if any) so readers see every line written so far.
pub fn flush() -> io::Result<()> {
    if let Some(pipeline) = pipeline_slot().as_ref() {
        if let Some(sink) = &pipeline.sink {
            sink.flush()?;
        }
    }
    Ok(())
}

/// The open `run` span of a [`PipelineObserver`] (span tracing only).
#[derive(Debug)]
struct RunSpan {
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
    start_ns: u64,
    /// The currently open round span, if any.
    round: Option<RoundSpan>,
}

/// An open `round` span awaiting its phase laps and close.
#[derive(Debug)]
struct RoundSpan {
    span: SpanId,
    round: u64,
    start_ns: u64,
    /// Phase laps stashed at `round_end`, awaiting the `regret` hook's
    /// account lap (the account phase runs between the two hooks).
    phases: Option<[u64; 3]>,
}

/// A per-run observer wired to the installed pipeline.
///
/// Buffers everything locally; publishes records (and spans) to the sink
/// and phase histograms to the global registry when dropped.
#[derive(Debug)]
pub struct PipelineObserver {
    recorder: RecordingObserver,
    phase_ns: [Option<LatencyHistogram>; 4],
    rounds: u64,
    events_sample: usize,
    pipeline: Arc<Pipeline>,
    /// `Some` while span tracing is on: the open run span.
    run_span: Option<RunSpan>,
    /// Closed spans, buffered like records and written once on drop.
    spans: Vec<SpanRecord>,
}

impl PipelineObserver {
    fn phase_hist(&mut self, phase: Phase) -> &mut LatencyHistogram {
        self.phase_ns[phase as usize].get_or_insert_with(LatencyHistogram::new)
    }

    /// Whether this round's events land in the trace. Metrics (the rounds
    /// counter, phase histograms) deliberately bypass this gate.
    fn sampled(&self, round: Round) -> bool {
        round.0 % self.events_sample == 0
    }

    /// Closes the open round span (if any): emits the `round` span plus
    /// its phase children, laid out back-to-back from the round's start.
    /// The laps were measured inside the round wall interval (hook time is
    /// excluded by `PhaseTimer::skip`), so children always nest.
    fn close_round_span(&mut self, account_ns: Option<u64>) {
        let Some(ctx) = &mut self.run_span else {
            return;
        };
        let Some(round) = ctx.round.take() else {
            return;
        };
        let end_ns = span::now_ns();
        let run = self.recorder.run.clone();
        self.spans.push(
            SpanRecord::new(
                ctx.trace,
                round.span,
                Some(ctx.span),
                "round",
                round.start_ns,
                end_ns.saturating_sub(round.start_ns),
            )
            .with_run(&run)
            .with_round(round.round),
        );
        let mut cursor = round.start_ns;
        let phases = round.phases.unwrap_or([0; 3]);
        let children = [
            ("selection", phases[0]),
            ("solve", phases[1]),
            ("observe", phases[2]),
            ("account", account_ns.unwrap_or(0)),
        ];
        for (name, ns) in children {
            if ns == 0 {
                continue;
            }
            self.spans.push(
                SpanRecord::new(
                    ctx.trace,
                    span::next_span_id(),
                    Some(round.span),
                    name,
                    cursor,
                    ns,
                )
                .with_run(&run)
                .with_round(round.round),
            );
            cursor = cursor.saturating_add(ns);
        }
        span::clear_round_scope(round.span);
    }
}

impl RoundObserver for PipelineObserver {
    fn round_start(&mut self, round: Round) {
        if self.sampled(round) {
            self.recorder.round_start(round);
            if self.run_span.is_some() {
                // A round left open (regret hook never fired) closes here.
                self.close_round_span(None);
                if let Some(ctx) = &mut self.run_span {
                    let id = span::next_span_id();
                    ctx.round = Some(RoundSpan {
                        span: id,
                        round: round.0 as u64,
                        start_ns: span::now_ns(),
                        phases: None,
                    });
                    span::set_round_scope(id, round.0 as u64);
                }
            }
        }
    }

    fn selection(&mut self, round: Round, event: &SelectionEvent<'_>) {
        if self.sampled(round) {
            self.recorder.selection(round, event);
        }
    }

    fn equilibrium(&mut self, round: Round, event: &EquilibriumEvent<'_>) {
        if self.sampled(round) {
            self.recorder.equilibrium(round, event);
        }
    }

    fn observation(&mut self, round: Round, event: &ObservationEvent) {
        if self.sampled(round) {
            self.recorder.observation(round, event);
        }
    }

    fn round_end(&mut self, round: Round, event: &RoundEndEvent) {
        if self.sampled(round) {
            self.recorder.round_end(round, event);
            if let Some(ctx) = &mut self.run_span {
                if let Some(open) = &mut ctx.round {
                    if open.round == round.0 as u64 {
                        open.phases = Some([event.selection_ns, event.solve_ns, event.observe_ns]);
                    }
                }
            }
        }
        self.rounds += 1;
        self.phase_hist(Phase::Selection)
            .record_ns(event.selection_ns);
        self.phase_hist(Phase::Solve).record_ns(event.solve_ns);
        self.phase_hist(Phase::Observe).record_ns(event.observe_ns);
        if crate::health::watchdog_active() {
            // Engine time of the round (phase laps partition it); good
            // enough for the slow-round tracker and available for every
            // round, sampled or not.
            crate::health::record_round_ns(
                event
                    .selection_ns
                    .saturating_add(event.solve_ns)
                    .saturating_add(event.observe_ns),
            );
        }
    }

    fn regret(&mut self, round: Round, cumulative_regret: f64, account_ns: u64) {
        if self.sampled(round) {
            self.recorder.regret(round, cumulative_regret, account_ns);
            let matches = self
                .run_span
                .as_ref()
                .and_then(|ctx| ctx.round.as_ref())
                .is_some_and(|open| open.round == round.0 as u64);
            if matches {
                self.close_round_span(Some(account_ns));
            }
        }
        self.phase_hist(Phase::Account).record_ns(account_ns);
    }
}

impl Drop for PipelineObserver {
    fn drop(&mut self) {
        self.close_round_span(None);
        if let Some(ctx) = &self.run_span {
            let end_ns = span::now_ns();
            let record = SpanRecord::new(
                ctx.trace,
                ctx.span,
                ctx.parent,
                "run",
                ctx.start_ns,
                end_ns.saturating_sub(ctx.start_ns),
            )
            .with_run(&self.recorder.run);
            self.spans.push(record);
        }
        let registry = metrics::global();
        registry.add_counter("cdt_obs_rounds_total", &[], self.rounds);
        registry.add_counter(
            "cdt_obs_events_total",
            &[],
            self.recorder.records.len() as u64,
        );
        if !self.spans.is_empty() {
            registry.add_counter("cdt_obs_spans_total", &[], self.spans.len() as u64);
        }
        for phase in Phase::ALL {
            if let Some(hist) = &self.phase_ns[phase as usize] {
                registry.merge_histogram(
                    "cdt_obs_round_phase_ns",
                    &[("phase", phase.as_str())],
                    hist,
                );
            }
        }
        if let Some(sink) = &self.pipeline.sink {
            let records_ok = sink.write_batch(&self.recorder.records).is_ok();
            let spans_ok = sink.write_batch(&self.spans).is_ok();
            if !(records_ok && spans_ok) {
                crate::warn::warn_once(
                    "obs-sink-write",
                    "failed to write observability events; trace is incomplete",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;

    // The pipeline and the metrics registry are process-wide; serialize the
    // tests that install/uninstall or read counter deltas.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn end_event() -> RoundEndEvent {
        RoundEndEvent {
            observed_revenue: 1.0,
            consumer_profit: 0.5,
            platform_profit: 0.3,
            seller_profit: 0.2,
            selection_ns: 100,
            solve_ns: 200,
            observe_ns: 300,
        }
    }

    #[test]
    fn no_pipeline_means_no_observer() {
        let _guard = lock();
        uninstall();
        assert!(!is_enabled());
        assert!(!spans_enabled());
        assert!(observer_for_run("x").is_none());
    }

    #[test]
    fn observer_publishes_on_drop() {
        let _guard = lock();
        install(ObsConfig::default()).unwrap();
        let before = metrics::global().counter_value("cdt_obs_rounds_total", &[]);
        {
            let mut obs = observer_for_run("pipeline-unit").unwrap();
            obs.round_start(Round(0));
            obs.round_end(Round(0), &end_event());
            obs.regret(Round(0), 0.0, 50);
        }
        let after = metrics::global().counter_value("cdt_obs_rounds_total", &[]);
        assert_eq!(after - before, 1);
        uninstall();
    }

    #[test]
    fn sampling_thins_the_trace_but_not_the_metrics() {
        let _guard = lock();
        install(ObsConfig {
            events_sample: 3,
            ..ObsConfig::default()
        })
        .unwrap();
        let before = metrics::global().counter_value("cdt_obs_rounds_total", &[]);
        let mut obs = observer_for_run("sampling-unit").unwrap();
        for t in 0..6 {
            obs.round_start(Round(t));
            obs.round_end(Round(t), &end_event());
        }
        // Only rounds 0 and 3 are recorded (2 events each) …
        assert_eq!(obs.recorder.records.len(), 4);
        drop(obs);
        // … but the rounds counter still covers all 6.
        let after = metrics::global().counter_value("cdt_obs_rounds_total", &[]);
        assert_eq!(after - before, 6);
        let sample = metrics::global()
            .snapshot()
            .into_iter()
            .find_map(|(k, m)| match m {
                Metric::Gauge(v) if k.family == "cdt_obs_events_sample" => Some(v),
                _ => None,
            });
        assert_eq!(sample, Some(3.0));
        uninstall();
    }

    #[test]
    fn spans_off_means_no_span_buffer() {
        let _guard = lock();
        install(ObsConfig::default()).unwrap();
        assert!(!spans_enabled());
        assert!(active_trace().is_none());
        let mut obs = observer_for_run("no-spans").unwrap();
        obs.round_start(Round(0));
        obs.round_end(Round(0), &end_event());
        obs.regret(Round(0), 0.0, 50);
        assert!(obs.spans.is_empty());
        assert!(obs.run_span.is_none());
        drop(obs);
        uninstall();
    }

    #[test]
    fn spans_on_builds_a_parented_tree() {
        let _guard = lock();
        install(ObsConfig {
            spans: true,
            ..ObsConfig::default()
        })
        .unwrap();
        assert!(spans_enabled());
        let trace = active_trace().expect("trace id while spans are on");
        let before = metrics::global().counter_value("cdt_obs_spans_total", &[]);
        let spans = {
            let mut obs = observer_for_run("span-unit").unwrap();
            for t in 0..2 {
                obs.round_start(Round(t));
                obs.round_end(Round(t), &end_event());
                obs.regret(Round(t), 0.0, 50);
            }
            // Peek before drop: the buffered spans minus the run span.
            let mut spans = obs.spans.clone();
            let run_ctx = obs.run_span.as_ref().unwrap();
            spans.push(SpanRecord::new(
                trace,
                run_ctx.span,
                run_ctx.parent,
                "run",
                run_ctx.start_ns,
                0,
            ));
            spans
        };
        let after = metrics::global().counter_value("cdt_obs_spans_total", &[]);
        uninstall();

        // 2 rounds × (round + selection + solve + observe + account) + run.
        assert_eq!(spans.len(), 2 * 5 + 1);
        assert_eq!(after - before, spans.len() as u64);
        let run = spans.iter().find(|s| s.name == "run").unwrap();
        assert_eq!(run.parent, None);
        for s in &spans {
            assert_eq!(s.trace, trace.0);
            if s.name == "round" {
                assert_eq!(s.parent, Some(run.span));
            }
            if s.name == "solve" {
                let parent = s.parent.unwrap();
                assert!(spans.iter().any(|p| p.span == parent && p.name == "round"));
            }
        }
    }

    #[test]
    fn phase_children_nest_inside_their_round_span() {
        let _guard = lock();
        install(ObsConfig {
            spans: true,
            ..ObsConfig::default()
        })
        .unwrap();
        let spans = {
            let mut obs = observer_for_run("nest-unit").unwrap();
            obs.round_start(Round(0));
            std::thread::sleep(std::time::Duration::from_millis(2));
            obs.round_end(Round(0), &end_event());
            obs.regret(Round(0), 0.0, 50);
            obs.spans.clone()
        };
        uninstall();
        let round = spans.iter().find(|s| s.name == "round").unwrap();
        for child in spans.iter().filter(|s| s.parent == Some(round.span)) {
            assert!(child.start_ns >= round.start_ns);
            assert!(
                child.start_ns + child.dur_ns <= round.start_ns + round.dur_ns,
                "{} escapes its round span",
                child.name
            );
        }
    }
}
