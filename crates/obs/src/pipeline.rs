//! The process-wide observability pipeline.
//!
//! Experiments fan out through many layers (CLI → compare grid → replicate →
//! `run_policy`), so instead of threading an observer through every
//! signature, a run-level choke point asks the globally installed pipeline
//! for an observer: [`observer_for_run`] returns `None` (and the caller
//! stays on the statically disabled [`crate::NullObserver`] path) unless
//! [`install`] was called. A [`PipelineObserver`] buffers records and phase
//! histograms locally and publishes once when dropped, so concurrent runs
//! contend on the sink/registry once per run, not per event.

use crate::event::{
    EquilibriumEvent, ObservationEvent, Phase, RoundEndEvent, RoundObserver, SelectionEvent,
};
use crate::latency::LatencyHistogram;
use crate::metrics;
use crate::record::RecordingObserver;
use crate::sink::JsonlSink;
use cdt_types::Round;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// What the pipeline should produce.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Write one JSON object per event to this file (`--obs-events`).
    pub events_path: Option<PathBuf>,
    /// Print the end-of-run human summary table (`--obs-summary`).
    pub summary: bool,
    /// Record only every k-th round's events (`--obs-events-sample`);
    /// `0` and `1` both mean "record every round". Sampling thins the
    /// JSONL trace only — metrics (round counts, phase histograms,
    /// eq-cache counters) still cover every round, and the summary
    /// reports the factor.
    pub events_sample: usize,
}

#[derive(Debug)]
struct Pipeline {
    sink: Option<JsonlSink>,
    summary: bool,
    events_sample: usize,
}

/// Fast gate: one relaxed atomic load on the hot paths.
static ENABLED: AtomicBool = AtomicBool::new(false);
static PIPELINE: Mutex<Option<Arc<Pipeline>>> = Mutex::new(None);

fn pipeline_slot() -> std::sync::MutexGuard<'static, Option<Arc<Pipeline>>> {
    PIPELINE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs the pipeline for the rest of the process (replacing any prior
/// one). Metrics collection turns on even with no sink configured.
pub fn install(config: ObsConfig) -> io::Result<()> {
    let sink = match &config.events_path {
        Some(path) => Some(JsonlSink::create(path)?),
        None => None,
    };
    if config.events_sample > 1 {
        metrics::global().set_gauge("cdt_obs_events_sample", &[], config.events_sample as f64);
    }
    *pipeline_slot() = Some(Arc::new(Pipeline {
        sink,
        summary: config.summary,
        events_sample: config.events_sample,
    }));
    ENABLED.store(true, Ordering::Release);
    Ok(())
}

/// Tears the pipeline down (tests; flushes the sink via drop).
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *pipeline_slot() = None;
}

/// Whether a pipeline is installed. Single relaxed atomic load — this is
/// the only cost observability adds to uninstrumented parallel code.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the installed pipeline wants the end-of-run summary printed.
#[must_use]
pub fn summary_requested() -> bool {
    pipeline_slot().as_ref().is_some_and(|p| p.summary)
}

/// An observer for one evaluation run, or `None` when no pipeline is
/// installed. `run` labels every record (e.g. `"cmab-hs/seed42"`).
#[must_use]
pub fn observer_for_run(run: &str) -> Option<PipelineObserver> {
    if !is_enabled() {
        return None;
    }
    let pipeline = pipeline_slot().as_ref().map(Arc::clone)?;
    let events_sample = pipeline.events_sample.max(1);
    Some(PipelineObserver {
        recorder: RecordingObserver::new(run),
        phase_ns: [const { None }; 4],
        rounds: 0,
        events_sample,
        pipeline,
    })
}

/// Flushes the sink (if any) so readers see every line written so far.
pub fn flush() -> io::Result<()> {
    if let Some(pipeline) = pipeline_slot().as_ref() {
        if let Some(sink) = &pipeline.sink {
            sink.flush()?;
        }
    }
    Ok(())
}

/// A per-run observer wired to the installed pipeline.
///
/// Buffers everything locally; publishes records to the sink and phase
/// histograms to the global registry when dropped.
#[derive(Debug)]
pub struct PipelineObserver {
    recorder: RecordingObserver,
    phase_ns: [Option<LatencyHistogram>; 4],
    rounds: u64,
    events_sample: usize,
    pipeline: Arc<Pipeline>,
}

impl PipelineObserver {
    fn phase_hist(&mut self, phase: Phase) -> &mut LatencyHistogram {
        self.phase_ns[phase as usize].get_or_insert_with(LatencyHistogram::new)
    }

    /// Whether this round's events land in the trace. Metrics (the rounds
    /// counter, phase histograms) deliberately bypass this gate.
    fn sampled(&self, round: Round) -> bool {
        round.0 % self.events_sample == 0
    }
}

impl RoundObserver for PipelineObserver {
    fn round_start(&mut self, round: Round) {
        if self.sampled(round) {
            self.recorder.round_start(round);
        }
    }

    fn selection(&mut self, round: Round, event: &SelectionEvent<'_>) {
        if self.sampled(round) {
            self.recorder.selection(round, event);
        }
    }

    fn equilibrium(&mut self, round: Round, event: &EquilibriumEvent<'_>) {
        if self.sampled(round) {
            self.recorder.equilibrium(round, event);
        }
    }

    fn observation(&mut self, round: Round, event: &ObservationEvent) {
        if self.sampled(round) {
            self.recorder.observation(round, event);
        }
    }

    fn round_end(&mut self, round: Round, event: &RoundEndEvent) {
        if self.sampled(round) {
            self.recorder.round_end(round, event);
        }
        self.rounds += 1;
        self.phase_hist(Phase::Selection)
            .record_ns(event.selection_ns);
        self.phase_hist(Phase::Solve).record_ns(event.solve_ns);
        self.phase_hist(Phase::Observe).record_ns(event.observe_ns);
    }

    fn regret(&mut self, round: Round, cumulative_regret: f64, account_ns: u64) {
        if self.sampled(round) {
            self.recorder.regret(round, cumulative_regret, account_ns);
        }
        self.phase_hist(Phase::Account).record_ns(account_ns);
    }
}

impl Drop for PipelineObserver {
    fn drop(&mut self) {
        let registry = metrics::global();
        registry.add_counter("cdt_obs_rounds_total", &[], self.rounds);
        registry.add_counter(
            "cdt_obs_events_total",
            &[],
            self.recorder.records.len() as u64,
        );
        for phase in Phase::ALL {
            if let Some(hist) = &self.phase_ns[phase as usize] {
                registry.merge_histogram(
                    "cdt_obs_round_phase_ns",
                    &[("phase", phase.as_str())],
                    hist,
                );
            }
        }
        if let Some(sink) = &self.pipeline.sink {
            if sink.write_batch(&self.recorder.records).is_err() {
                crate::warn::warn_once(
                    "obs-sink-write",
                    "failed to write observability events; trace is incomplete",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;

    // The pipeline and the metrics registry are process-wide; serialize the
    // tests that install/uninstall or read counter deltas.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn no_pipeline_means_no_observer() {
        let _guard = lock();
        uninstall();
        assert!(!is_enabled());
        assert!(observer_for_run("x").is_none());
    }

    #[test]
    fn observer_publishes_on_drop() {
        let _guard = lock();
        install(ObsConfig::default()).unwrap();
        let before = metrics::global().counter_value("cdt_obs_rounds_total", &[]);
        {
            let mut obs = observer_for_run("pipeline-unit").unwrap();
            obs.round_start(Round(0));
            obs.round_end(
                Round(0),
                &RoundEndEvent {
                    observed_revenue: 1.0,
                    consumer_profit: 0.5,
                    platform_profit: 0.3,
                    seller_profit: 0.2,
                    selection_ns: 100,
                    solve_ns: 200,
                    observe_ns: 300,
                },
            );
            obs.regret(Round(0), 0.0, 50);
        }
        let after = metrics::global().counter_value("cdt_obs_rounds_total", &[]);
        assert_eq!(after - before, 1);
        uninstall();
    }

    #[test]
    fn sampling_thins_the_trace_but_not_the_metrics() {
        let _guard = lock();
        install(ObsConfig {
            events_sample: 3,
            ..ObsConfig::default()
        })
        .unwrap();
        let before = metrics::global().counter_value("cdt_obs_rounds_total", &[]);
        let mut obs = observer_for_run("sampling-unit").unwrap();
        for t in 0..6 {
            obs.round_start(Round(t));
            obs.round_end(
                Round(t),
                &RoundEndEvent {
                    observed_revenue: 1.0,
                    consumer_profit: 0.5,
                    platform_profit: 0.3,
                    seller_profit: 0.2,
                    selection_ns: 100,
                    solve_ns: 200,
                    observe_ns: 300,
                },
            );
        }
        // Only rounds 0 and 3 are recorded (2 events each) …
        assert_eq!(obs.recorder.records.len(), 4);
        drop(obs);
        // … but the rounds counter still covers all 6.
        let after = metrics::global().counter_value("cdt_obs_rounds_total", &[]);
        assert_eq!(after - before, 6);
        let sample = metrics::global()
            .snapshot()
            .into_iter()
            .find_map(|(k, m)| match m {
                Metric::Gauge(v) if k.family == "cdt_obs_events_sample" => Some(v),
                _ => None,
            });
        assert_eq!(sample, Some(3.0));
        uninstall();
    }
}
