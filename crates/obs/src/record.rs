//! Owned, serializable event records — the stable JSONL schema.
//!
//! The borrowed payloads in [`crate::event`] are what instrumented code
//! emits; an [`EventRecord`] is the owned form a sink can buffer and write.
//! One record serializes to one JSON object whose `event` tag names the
//! variant; the field names here are the on-disk schema and are pinned by
//! the golden test in `tests/integration_obs.rs` — change them only with a
//! deliberate schema bump.

use crate::event::{
    EquilibriumEvent, ObservationEvent, RoundEndEvent, RoundObserver, SelectionEvent,
};
use cdt_types::Round;
use serde::{Deserialize, Serialize};

/// One observability event in owned, serializable form.
///
/// Non-finite floats (e.g. the `+∞` UCB index of a never-sampled seller)
/// serialize as JSON `null`, per serde_json's standard mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum EventRecord {
    /// A round is about to execute.
    RoundStart {
        /// Which evaluation run emitted this (e.g. `cmab-hs/seed42`).
        run: String,
        /// Round index.
        round: usize,
    },
    /// Sellers were selected.
    Selection {
        run: String,
        round: usize,
        /// Selected seller ids, in selection order.
        selected: Vec<usize>,
        /// Ranking score per selected seller (UCB index for CMAB-HS).
        scores: Vec<f64>,
    },
    /// The Stackelberg strategy was determined.
    Equilibrium {
        run: String,
        round: usize,
        /// Consumer's service price `p^{J*}`.
        service_price: f64,
        /// Platform's collection price `p*`.
        collection_price: f64,
        /// Sensing times `τ_i*`, in selection order.
        sensing_times: Vec<f64>,
        consumer_profit: f64,
        platform_profit: f64,
        seller_profit: f64,
        /// Whether the strategy came from the equilibrium cache (the solve
        /// was skipped). `default` so traces written before this field
        /// existed still deserialize.
        #[serde(default)]
        cached: bool,
    },
    /// Qualities were observed.
    Observation {
        run: String,
        round: usize,
        observed_revenue: f64,
        /// Number of quality samples drawn.
        samples: usize,
    },
    /// The round finished.
    RoundEnd {
        run: String,
        round: usize,
        observed_revenue: f64,
        consumer_profit: f64,
        platform_profit: f64,
        seller_profit: f64,
        selection_ns: u64,
        solve_ns: u64,
        observe_ns: u64,
    },
    /// Cumulative regret after caller-side accounting.
    Regret {
        run: String,
        round: usize,
        cumulative_regret: f64,
        account_ns: u64,
    },
}

impl EventRecord {
    /// The round index the record refers to.
    #[must_use]
    pub fn round(&self) -> usize {
        match self {
            EventRecord::RoundStart { round, .. }
            | EventRecord::Selection { round, .. }
            | EventRecord::Equilibrium { round, .. }
            | EventRecord::Observation { round, .. }
            | EventRecord::RoundEnd { round, .. }
            | EventRecord::Regret { round, .. } => *round,
        }
    }

    /// The run label the record belongs to.
    #[must_use]
    pub fn run(&self) -> &str {
        match self {
            EventRecord::RoundStart { run, .. }
            | EventRecord::Selection { run, .. }
            | EventRecord::Equilibrium { run, .. }
            | EventRecord::Observation { run, .. }
            | EventRecord::RoundEnd { run, .. }
            | EventRecord::Regret { run, .. } => run,
        }
    }
}

/// An observer that buffers owned [`EventRecord`]s in memory.
///
/// Used directly by the bit-identity tests, and as the accumulation stage of
/// the pipeline observer.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// Run label stamped onto every record.
    pub run: String,
    /// The records captured so far, in emission order.
    pub records: Vec<EventRecord>,
}

impl RecordingObserver {
    /// A recorder stamping `run` onto every record.
    #[must_use]
    pub fn new(run: impl Into<String>) -> Self {
        Self {
            run: run.into(),
            records: Vec::new(),
        }
    }
}

impl RoundObserver for RecordingObserver {
    fn round_start(&mut self, round: Round) {
        self.records.push(EventRecord::RoundStart {
            run: self.run.clone(),
            round: round.0,
        });
    }

    fn selection(&mut self, round: Round, event: &SelectionEvent<'_>) {
        self.records.push(EventRecord::Selection {
            run: self.run.clone(),
            round: round.0,
            selected: event.selected.iter().map(|s| s.0).collect(),
            scores: event.scores.to_vec(),
        });
    }

    fn equilibrium(&mut self, round: Round, event: &EquilibriumEvent<'_>) {
        self.records.push(EventRecord::Equilibrium {
            run: self.run.clone(),
            round: round.0,
            service_price: event.service_price,
            collection_price: event.collection_price,
            sensing_times: event.sensing_times.to_vec(),
            consumer_profit: event.consumer_profit,
            platform_profit: event.platform_profit,
            seller_profit: event.seller_profit,
            cached: event.cached,
        });
    }

    fn observation(&mut self, round: Round, event: &ObservationEvent) {
        self.records.push(EventRecord::Observation {
            run: self.run.clone(),
            round: round.0,
            observed_revenue: event.observed_revenue,
            samples: event.samples,
        });
    }

    fn round_end(&mut self, round: Round, event: &RoundEndEvent) {
        self.records.push(EventRecord::RoundEnd {
            run: self.run.clone(),
            round: round.0,
            observed_revenue: event.observed_revenue,
            consumer_profit: event.consumer_profit,
            platform_profit: event.platform_profit,
            seller_profit: event.seller_profit,
            selection_ns: event.selection_ns,
            solve_ns: event.solve_ns,
            observe_ns: event.observe_ns,
        });
    }

    fn regret(&mut self, round: Round, cumulative_regret: f64, account_ns: u64) {
        self.records.push(EventRecord::Regret {
            run: self.run.clone(),
            round: round.0,
            cumulative_regret,
            account_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_types::SellerId;

    #[test]
    fn serializes_with_event_tag() {
        let rec = EventRecord::RoundStart {
            run: "test".into(),
            round: 3,
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert_eq!(json, r#"{"event":"round_start","run":"test","round":3}"#);
        let back: EventRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn non_finite_scores_become_null() {
        let rec = EventRecord::Selection {
            run: "r".into(),
            round: 0,
            selected: vec![1],
            scores: vec![f64::INFINITY],
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"scores\":[null]"), "got {json}");
    }

    #[test]
    fn recorder_captures_hooks_in_order() {
        let mut rec = RecordingObserver::new("unit");
        rec.round_start(Round(5));
        rec.selection(
            Round(5),
            &SelectionEvent {
                selected: &[SellerId(2), SellerId(0)],
                scores: &[0.9, 0.7],
            },
        );
        rec.observation(
            Round(5),
            &ObservationEvent {
                observed_revenue: 1.25,
                samples: 10,
            },
        );
        rec.regret(Round(5), 0.1, 42);
        assert_eq!(rec.records.len(), 4);
        assert!(rec.records.iter().all(|r| r.round() == 5));
        assert!(rec.records.iter().all(|r| r.run() == "unit"));
        match &rec.records[1] {
            EventRecord::Selection {
                selected, scores, ..
            } => {
                assert_eq!(selected, &[2, 0]);
                assert_eq!(scores, &[0.9, 0.7]);
            }
            other => panic!("expected selection, got {other:?}"),
        }
    }
}
