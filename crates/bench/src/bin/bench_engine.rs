//! Wall-clock engine benchmark: emits `BENCH_engine.json`.
//!
//! Runs a fixed replicated policy-comparison workload twice — once pinned
//! to one worker thread (the exact serial path) and once on the requested
//! pool — then reports serial throughput, parallel speedup, and whether
//! the two result sets were bit-for-bit identical (they must be; the
//! deterministic job pool guarantees it).
//!
//! ```sh
//! # paper-shaped workload (M=300, K=10, L=10, N=20000, 4 replications):
//! cargo run --release -p cdt-bench --bin bench_engine
//!
//! # CI smoke (seconds):
//! cargo run --release -p cdt-bench --bin bench_engine -- --n 200 --reps 2
//!
//! # lane-kernel legs (chunked column kernels; see cdt_types::lanes):
//! cargo run --release -p cdt-bench --bin bench_engine -- --batch 4 --lanes 4
//! cargo run --release -p cdt-bench --bin bench_engine -- --batch 4 --fast-math
//!
//! # cell-packed sweep workload (grid cells batched through the scheduler):
//! cargo run --release -p cdt-bench --bin bench_engine -- --sweep --batch 4
//!
//! # resident-engine leg (sustained submit throughput, warm pool vs
//! # per-call pool; see cdt_sim::engine):
//! cargo run --release -p cdt-bench --bin bench_engine -- --engine --submissions 8
//! ```

use cdt_core::Scenario;
use cdt_sim::{
    configured_batch, configured_chunk, configured_engine_gather_us, configured_fast_math,
    configured_lanes, configured_threads, replicate, run_cells_observed, set_batch_override,
    set_chunk_override, set_engine_override, set_fast_math_override, set_lanes_override,
    set_thread_override, CellJob, CellPackStats, Engine, PolicySpec, ReplicatedRun, RunResult,
};
use cdt_types::mix_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Workload {
    m: usize,
    k: usize,
    l: usize,
    n: usize,
    replications: usize,
    policies: Vec<String>,
    seed: u64,
    /// Fixed pool chunk size, if pinned (`--chunk`/`CDT_CHUNK`);
    /// `None` means adaptive chunking.
    chunk: Option<usize>,
    /// Lockstep batch width of the parallel leg (`--batch`/`CDT_BATCH`);
    /// `1` is the unbatched path. The serial leg always runs unbatched,
    /// so `identical` also pins batched output to the serial reference.
    batch: usize,
    /// Lane width of the chunked column kernels (`--lanes`/`CDT_LANES`).
    /// Both legs run at this width; on the deterministic path every width
    /// is bit-identical, so `identical` holds regardless.
    lanes: usize,
    /// Whether reassociated lane reductions were enabled
    /// (`--fast-math`/`CDT_FAST_MATH`). Applies to both legs — fast-math
    /// is deterministic per (width, input), so `identical` still holds —
    /// but the absolute numbers are no longer the serial-order reference.
    fast_math: bool,
    /// Whether causal span tracing was enabled (`--obs-spans`). Tracing is
    /// passive — `identical` still holds — but it adds sink I/O, so traced
    /// runs gate against their own baseline (the overhead contract is
    /// ≤5% over the untraced leg).
    spans: bool,
    /// Whether this run measured the cell-packed sweep workload
    /// (`--sweep`): `reps` same-shape scenario cells × the policy set as
    /// one `CellJob` stream through the cell-packing scheduler, instead of
    /// the replicated comparison. The serial leg is the per-cell serial
    /// path (one thread, batch 1), so `identical` pins packed sweep output
    /// to the per-cell reference.
    sweep: bool,
    /// Whether this run measured the resident engine runtime (`--engine`):
    /// the cell-packed workload submitted `submissions` times back-to-back,
    /// once through the per-call pool (scoped threads spawned per call) and
    /// once through a warm [`Engine`] (persistent workers, warm arenas).
    /// Here the serial leg *is* the per-call pool at the same thread count,
    /// so `speedup` is the sustained submit-throughput win and `identical`
    /// pins every engine submission to the per-call reference.
    engine: bool,
}

#[derive(Serialize)]
struct Timing {
    threads: usize,
    wall_clock_secs: f64,
    rounds_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    workload: Workload,
    serial: Timing,
    parallel: Timing,
    /// `parallel.wall_clock_secs / serial.wall_clock_secs` inverted:
    /// how many times faster the pool ran the same workload.
    speedup: f64,
    /// Whether the serial and parallel results were bit-for-bit equal.
    /// Anything but `true` is a determinism bug.
    identical: bool,
    /// Mean lanes per lockstep group of the parallel leg (`--sweep` and
    /// `--engine` runs only; `null` for the replicate workload). Above 1.0
    /// means grid cells actually shared batched round loops.
    cell_occupancy: Option<f64>,
    /// Submit-throughput detail of the `--engine` leg (`null` otherwise).
    engine_delta: Option<EngineDelta>,
}

/// Sustained submit-throughput comparison of the `--engine` leg: the same
/// cell-packed job stream submitted `submissions` times back-to-back,
/// once per-call (the scoped pool spins up and down every call) and once
/// through a warm resident engine (one untimed warmup submission, then
/// the timed stream hits persistent workers with warm scratch arenas).
#[derive(Serialize)]
struct EngineDelta {
    /// Timed submissions per leg (the engine leg's warmup is untimed).
    submissions: usize,
    /// Wall-clock of the per-call leg (same thread count as the engine).
    per_call_secs: f64,
    /// Wall-clock of the engine leg.
    engine_secs: f64,
    /// `per_call_secs / engine_secs`: how many times faster the warm
    /// engine sustained the same submission stream.
    submit_speedup: f64,
    /// Mean lanes per dispatched group on the engine leg — how full the
    /// gather window packed its lockstep batches.
    gather_occupancy: f64,
}

struct Args {
    m: usize,
    k: usize,
    l: usize,
    n: usize,
    reps: usize,
    threads: usize,
    chunk: Option<usize>,
    batch: usize,
    lanes: usize,
    fast_math: bool,
    /// Measure the cell-packed sweep workload instead of the replicated
    /// comparison (see `Workload::sweep`).
    sweep: bool,
    /// Measure sustained submit throughput through the resident engine
    /// runtime (see `Workload::engine`).
    engine: bool,
    /// Back-to-back timed submissions per leg of the `--engine` run.
    submissions: usize,
    /// Engine gather window in microseconds
    /// (`--engine-gather-us`/`CDT_ENGINE_GATHER_US`).
    engine_gather_us: u64,
    out: String,
    history: String,
    /// Fractional regression tolerance for the perf gate (`None` = no gate):
    /// fail when `speedup < median(history speedups) * (1 - tolerance)`.
    gate_tolerance: Option<f64>,
    obs_events: Option<String>,
    metrics_out: Option<String>,
    obs_summary: bool,
    obs_spans: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        m: 300,
        k: 10,
        l: 10,
        n: 20_000,
        reps: 4,
        threads: configured_threads(),
        chunk: configured_chunk(),
        batch: configured_batch(),
        lanes: configured_lanes(),
        fast_math: configured_fast_math(),
        sweep: false,
        engine: false,
        submissions: 8,
        engine_gather_us: configured_engine_gather_us(),
        out: "BENCH_engine.json".to_owned(),
        history: "results/bench_history.jsonl".to_owned(),
        gate_tolerance: None,
        obs_events: None,
        metrics_out: None,
        obs_summary: false,
        obs_spans: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--m" => args.m = parse(&value("--m")?)?,
            "--k" => args.k = parse(&value("--k")?)?,
            "--l" => args.l = parse(&value("--l")?)?,
            "--n" => args.n = parse(&value("--n")?)?,
            "--reps" => args.reps = parse(&value("--reps")?)?,
            "--threads" => {
                args.threads = parse(&value("--threads")?)?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--chunk" => {
                let chunk = parse(&value("--chunk")?)?;
                if chunk == 0 {
                    return Err("--chunk must be at least 1".into());
                }
                args.chunk = Some(chunk);
            }
            "--batch" => {
                args.batch = parse(&value("--batch")?)?;
                if args.batch == 0 {
                    return Err("--batch must be at least 1".into());
                }
            }
            "--lanes" => {
                args.lanes = parse(&value("--lanes")?)?;
                if !cdt_types::lanes::is_supported_lane_width(args.lanes) {
                    return Err(format!(
                        "--lanes must be one of {:?}",
                        cdt_types::lanes::SUPPORTED_LANE_WIDTHS
                    ));
                }
            }
            "--fast-math" => args.fast_math = true,
            "--sweep" => args.sweep = true,
            "--engine" => args.engine = true,
            "--submissions" => {
                args.submissions = parse(&value("--submissions")?)?;
                if args.submissions == 0 {
                    return Err("--submissions must be at least 1".into());
                }
            }
            "--engine-gather-us" => {
                let raw = value("--engine-gather-us")?;
                args.engine_gather_us = raw
                    .parse()
                    .map_err(|_| format!("expected an integer, got `{raw}`"))?;
            }
            "--out" => args.out = value("--out")?,
            "--history" => args.history = value("--history")?,
            "--gate-tolerance" => {
                let raw = value("--gate-tolerance")?;
                let tol: f64 = raw
                    .parse()
                    .map_err(|_| format!("expected a number, got `{raw}`"))?;
                if !(0.0..1.0).contains(&tol) {
                    return Err("--gate-tolerance must lie in [0, 1)".into());
                }
                args.gate_tolerance = Some(tol);
            }
            "--obs-events" => args.obs_events = Some(value("--obs-events")?),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--obs-summary" => args.obs_summary = true,
            "--obs-spans" => args.obs_spans = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench_engine [--m M] [--k K] [--l L] [--n N] \
                     [--reps R] [--threads T] [--chunk C] [--batch B]\n\
                     \x20      [--lanes W] [--fast-math] [--sweep] \
                     [--engine] [--submissions S] [--engine-gather-us US]\n\
                     \x20      [--out FILE] [--history FILE] [--gate-tolerance FRAC]\n\
                     \x20      [--obs-events FILE] [--metrics-out FILE] [--obs-summary] \
                     [--obs-spans]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.obs_spans && args.obs_events.is_none() {
        return Err("--obs-spans requires --obs-events FILE (spans are written there)".into());
    }
    if args.engine && args.sweep {
        return Err(
            "--engine and --sweep are mutually exclusive (the engine leg already \
             measures the cell-packed workload)"
                .into(),
        );
    }
    Ok(args)
}

/// Appends one compact record per invocation so speedup trends are
/// greppable across commits without parsing full `BENCH_engine.json` dumps.
fn append_history(path: &str, report: &Report) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = serde_json::json!({
        "bench": report.bench,
        "unix_secs": unix_secs,
        "m": report.workload.m,
        "k": report.workload.k,
        "l": report.workload.l,
        "n": report.workload.n,
        "reps": report.workload.replications,
        "threads": report.parallel.threads,
        "serial_secs": report.serial.wall_clock_secs,
        "parallel_secs": report.parallel.wall_clock_secs,
        "serial_rounds_per_sec": report.serial.rounds_per_sec,
        "parallel_rounds_per_sec": report.parallel.rounds_per_sec,
        "speedup": report.speedup,
        "identical": report.identical,
        "batch": report.workload.batch,
        "lanes": report.workload.lanes,
        "fast_math": report.workload.fast_math,
        "spans": report.workload.spans,
        "sweep": report.workload.sweep,
        "engine": report.workload.engine,
        "cell_occupancy": report.cell_occupancy,
    });
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{line}")
}

fn parse(raw: &str) -> Result<usize, String> {
    raw.parse()
        .map_err(|_| format!("expected an integer, got `{raw}`"))
}

/// Past speedups recorded for the *same workload shape* (bench, m, k, l,
/// n, reps, threads) with intact determinism. Records written before a
/// shape field existed match any value of it, so pre-existing baselines
/// still gate today's runs.
///
/// The kernel-configuration fields are stricter, because they change the
/// *code path* rather than the workload shape: a record without a `lanes`
/// field predates the lane kernels and gates only default-width runs
/// (which replaced the code path those records measured — a default-width
/// run must therefore beat the pre-lane baseline), and a record without
/// `fast_math` gates only deterministic (`fast_math: false`) runs.
/// Non-default widths and fast-math runs start their own baselines.
fn baseline_speedups(path: &str, report: &Report) -> Vec<f64> {
    let Ok(raw) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let field_ok = |rec: &serde_json::Value, name: &str, expected: u64| match rec
        .get(name)
        .and_then(serde_json::Value::as_u64)
    {
        Some(v) => v == expected,
        None => true,
    };
    let lanes_ok =
        |rec: &serde_json::Value| match rec.get("lanes").and_then(serde_json::Value::as_u64) {
            Some(v) => v == report.workload.lanes as u64,
            None => report.workload.lanes == cdt_types::lanes::DEFAULT_LANE_WIDTH,
        };
    let fast_math_ok =
        |rec: &serde_json::Value| match rec.get("fast_math").and_then(serde_json::Value::as_bool) {
            Some(v) => v == report.workload.fast_math,
            None => !report.workload.fast_math,
        };
    // A record without `spans` predates span tracing and measured the
    // untraced path, so it gates only untraced runs; traced runs (which
    // pay the sink I/O) start their own baseline.
    let spans_ok =
        |rec: &serde_json::Value| match rec.get("spans").and_then(serde_json::Value::as_bool) {
            Some(v) => v == report.workload.spans,
            None => !report.workload.spans,
        };
    // A record without `sweep` predates the cell-packing scheduler and
    // measured the replicate workload, so it gates only non-sweep runs;
    // sweep runs start their own baseline.
    let sweep_ok =
        |rec: &serde_json::Value| match rec.get("sweep").and_then(serde_json::Value::as_bool) {
            Some(v) => v == report.workload.sweep,
            None => !report.workload.sweep,
        };
    // A record without `engine` predates the resident engine runtime and
    // measured a one-thread serial leg, so it gates only non-engine runs;
    // engine runs (whose "serial" leg is the per-call pool at full thread
    // count, measuring submit throughput) start their own baseline.
    let engine_ok =
        |rec: &serde_json::Value| match rec.get("engine").and_then(serde_json::Value::as_bool) {
            Some(v) => v == report.workload.engine,
            None => !report.workload.engine,
        };
    raw.lines()
        .filter_map(|line| serde_json::from_str::<serde_json::Value>(line.trim()).ok())
        .filter(|rec| {
            rec.get("bench").and_then(serde_json::Value::as_str) == Some(report.bench)
                && rec.get("identical").and_then(serde_json::Value::as_bool) == Some(true)
                && field_ok(rec, "m", report.workload.m as u64)
                && field_ok(rec, "k", report.workload.k as u64)
                && field_ok(rec, "l", report.workload.l as u64)
                && field_ok(rec, "n", report.workload.n as u64)
                && field_ok(rec, "reps", report.workload.replications as u64)
                && field_ok(rec, "threads", report.parallel.threads as u64)
                && field_ok(rec, "batch", report.workload.batch as u64)
                && lanes_ok(rec)
                && fast_math_ok(rec)
                && spans_ok(rec)
                && sweep_ok(rec)
                && engine_ok(rec)
        })
        .filter_map(|rec| rec.get("speedup").and_then(serde_json::Value::as_f64))
        .filter(|s| s.is_finite() && *s > 0.0)
        .collect()
}

/// Gates the current run against the workload-matched history baseline:
/// skips (passes trivially) until at least 3 matching records exist —
/// a 1–2 sample median is noise, not a baseline — then fails when the
/// speedup falls below `median * (1 - tolerance)`.
fn perf_gate(history: &str, report: &Report, tolerance: f64) -> Result<String, String> {
    let mut speedups = baseline_speedups(history, report);
    if speedups.len() < 3 {
        return Ok(format!(
            "perf gate skipped (n<3): {} matching record(s) for this workload \
             in {history}; this run grows the baseline (speedup {:.2}x)",
            speedups.len(),
            report.speedup
        ));
    }
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let median = speedups[speedups.len() / 2];
    let floor = median * (1.0 - tolerance);
    if report.speedup < floor {
        Err(format!(
            "perf gate FAILED: speedup {:.2}x < floor {floor:.2}x \
             (median of {} baseline run(s) {median:.2}x, tolerance {tolerance})",
            report.speedup,
            speedups.len()
        ))
    } else {
        Ok(format!(
            "perf gate passed: speedup {:.2}x >= floor {floor:.2}x \
             (median of {} baseline run(s) {median:.2}x, tolerance {tolerance})",
            report.speedup,
            speedups.len()
        ))
    }
}

fn timed_replicate(
    args: &Args,
    specs: &[PolicySpec],
    threads: usize,
    batch: usize,
) -> (Vec<ReplicatedRun>, f64) {
    set_thread_override(Some(threads));
    set_batch_override(Some(batch));
    let started = Instant::now();
    let runs = replicate(args.m, args.k, args.l, args.n, specs, args.reps, 20_210_419)
        .expect("benchmark workload must run");
    (runs, started.elapsed().as_secs_f64())
}

/// Times the cell-packed sweep workload: `reps` same-shape scenario cells
/// × the policy set, flattened into one `CellJob` stream and dispatched
/// through the cell-packing scheduler. Scenario construction happens
/// outside the timer — the benchmark measures the scheduler and round
/// loops, not population sampling.
fn timed_sweep(
    args: &Args,
    specs: &[PolicySpec],
    threads: usize,
    batch: usize,
) -> (Vec<RunResult>, CellPackStats, f64) {
    set_thread_override(Some(threads));
    set_batch_override(Some(batch));
    let scenarios: Vec<Scenario> = (0..args.reps)
        .map(|rep| {
            let mut rng = StdRng::seed_from_u64(mix_seed(20_210_419, rep as u64));
            Scenario::paper_defaults(args.m, args.k, args.l, args.n, &mut rng)
        })
        .collect::<Result<_, _>>()
        .expect("benchmark scenarios must build");
    let jobs: Vec<CellJob<'_>> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(rep, scenario)| {
            specs.iter().enumerate().map(move |(j, spec)| CellJob {
                cell: rep as u64,
                scenario,
                spec: *spec,
                seed: mix_seed(mix_seed(20_210_419, rep as u64), 1 + j as u64),
            })
        })
        .collect();
    let started = Instant::now();
    let (results, stats) = run_cells_observed(&jobs, &[]).expect("benchmark workload must run");
    (results, stats, started.elapsed().as_secs_f64())
}

struct EngineMeasurement {
    per_call_secs: f64,
    engine_secs: f64,
    identical: bool,
    occupancy: f64,
}

/// Times sustained submit throughput: the cell-packed sweep workload
/// submitted `args.submissions` times back-to-back, once through the
/// per-call pool (scoped worker threads spawned and joined every call)
/// and once through a warm local [`Engine`] (persistent workers parked on
/// the queue, scratch arenas surviving between submissions; one untimed
/// warmup submission pays the thread spawns and arena misses). Scenario
/// and job construction happen outside both timers.
fn timed_engine(args: &Args, specs: &[PolicySpec], threads: usize) -> EngineMeasurement {
    set_thread_override(Some(threads));
    set_batch_override(Some(args.batch));
    let scenarios: Vec<Scenario> = (0..args.reps)
        .map(|rep| {
            let mut rng = StdRng::seed_from_u64(mix_seed(20_210_419, rep as u64));
            Scenario::paper_defaults(args.m, args.k, args.l, args.n, &mut rng)
        })
        .collect::<Result<_, _>>()
        .expect("benchmark scenarios must build");
    let jobs: Vec<CellJob<'_>> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(rep, scenario)| {
            specs.iter().enumerate().map(move |(j, spec)| CellJob {
                cell: rep as u64,
                scenario,
                spec: *spec,
                seed: mix_seed(mix_seed(20_210_419, rep as u64), 1 + j as u64),
            })
        })
        .collect();

    let started = Instant::now();
    let mut per_call: Vec<Vec<RunResult>> = Vec::with_capacity(args.submissions);
    for _ in 0..args.submissions {
        let (results, _) = run_cells_observed(&jobs, &[]).expect("benchmark workload must run");
        per_call.push(results);
    }
    let per_call_secs = started.elapsed().as_secs_f64();

    let engine = Engine::new(threads, Duration::from_micros(args.engine_gather_us));
    let _ = engine
        .submit(&jobs, &[])
        .expect("warmup submission must run");
    let started = Instant::now();
    let mut on_engine: Vec<Vec<RunResult>> = Vec::with_capacity(args.submissions);
    let (mut lanes, mut groups) = (0usize, 0usize);
    for _ in 0..args.submissions {
        let (results, stats) = engine
            .submit_observed(&jobs, &[])
            .expect("benchmark workload must run");
        lanes += stats.lanes;
        groups += stats.groups;
        on_engine.push(results);
    }
    let engine_secs = started.elapsed().as_secs_f64();
    engine.shutdown();

    EngineMeasurement {
        per_call_secs,
        engine_secs,
        identical: per_call == on_engine,
        occupancy: if groups == 0 {
            0.0
        } else {
            lanes as f64 / groups as f64
        },
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let obs_active = args.obs_events.is_some() || args.metrics_out.is_some() || args.obs_summary;
    if obs_active {
        cdt_obs::global().reset();
        if let Err(e) = cdt_obs::install(cdt_obs::ObsConfig {
            events_path: args.obs_events.clone().map(Into::into),
            summary: args.obs_summary,
            events_sample: 0,
            spans: args.obs_spans,
            watchdog_ms: None,
            slow_round_ns: None,
        }) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    let specs = PolicySpec::paper_set();
    // Every replicated run executes `n` rounds per (replication, policy);
    // the engine leg repeats the whole stream per timed submission.
    let total_rounds = (args.n * args.reps * specs.len()) as f64
        * if args.engine {
            args.submissions as f64
        } else {
            1.0
        };
    // The engine leg compares pool lifetimes, so both legs run at the same
    // thread count — pinned to at least 2 so the per-call leg actually
    // pays a scoped-thread spawn/join per submission.
    let parallel_threads = if args.engine {
        args.threads.max(2)
    } else {
        args.threads
    };
    let serial_threads = if args.engine { parallel_threads } else { 1 };

    set_chunk_override(args.chunk);
    // Pin the per-call scheduler for both non-engine legs and the engine
    // run's per-call reference, even when `CDT_ENGINE` is exported — the
    // engine leg always measures an explicit local `Engine`.
    set_engine_override(Some(false));
    // The lane configuration applies to *both* legs: kernels are
    // deterministic per (width, fast-math, input) regardless of threads,
    // chunking, or batching, so `identical` holds either way — but with
    // fast-math on, the absolute numbers are the reassociated ones, not
    // the serial-order reference.
    set_lanes_override(Some(args.lanes));
    set_fast_math_override(Some(args.fast_math));
    // The serial leg is the exact reference path (one thread, unbatched);
    // the parallel leg takes the requested pool and lockstep batch width,
    // so `identical` pins batching as well as threading.
    let (serial_secs, parallel_secs, identical, cell_occupancy, engine_delta) = if args.engine {
        let measured = timed_engine(&args, &specs, parallel_threads);
        let delta = EngineDelta {
            submissions: args.submissions,
            per_call_secs: measured.per_call_secs,
            engine_secs: measured.engine_secs,
            submit_speedup: measured.per_call_secs / measured.engine_secs,
            gather_occupancy: measured.occupancy,
        };
        (
            measured.per_call_secs,
            measured.engine_secs,
            measured.identical,
            Some(measured.occupancy),
            Some(delta),
        )
    } else if args.sweep {
        let (serial_results, _, serial_secs) = timed_sweep(&args, &specs, 1, 1);
        let (parallel_results, stats, parallel_secs) =
            timed_sweep(&args, &specs, args.threads, args.batch);
        (
            serial_secs,
            parallel_secs,
            serial_results == parallel_results,
            Some(stats.mean_occupancy),
            None,
        )
    } else {
        let (serial_runs, serial_secs) = timed_replicate(&args, &specs, 1, 1);
        let (parallel_runs, parallel_secs) =
            timed_replicate(&args, &specs, args.threads, args.batch);
        (
            serial_secs,
            parallel_secs,
            serial_runs == parallel_runs,
            None,
            None,
        )
    };
    set_thread_override(None);
    set_chunk_override(None);
    set_batch_override(None);
    set_lanes_override(None);
    set_fast_math_override(None);
    set_engine_override(None);

    let report = Report {
        bench: "engine",
        workload: Workload {
            m: args.m,
            k: args.k,
            l: args.l,
            n: args.n,
            replications: args.reps,
            policies: specs.iter().map(PolicySpec::label).collect(),
            seed: 20_210_419,
            chunk: args.chunk,
            batch: args.batch,
            lanes: args.lanes,
            fast_math: args.fast_math,
            spans: args.obs_spans,
            sweep: args.sweep,
            engine: args.engine,
        },
        serial: Timing {
            threads: serial_threads,
            wall_clock_secs: serial_secs,
            rounds_per_sec: total_rounds / serial_secs,
        },
        parallel: Timing {
            threads: parallel_threads,
            wall_clock_secs: parallel_secs,
            rounds_per_sec: total_rounds / parallel_secs,
        },
        speedup: serial_secs / parallel_secs,
        identical,
        cell_occupancy,
        engine_delta,
    };

    if obs_active {
        if let Err(e) = cdt_obs::flush() {
            eprintln!("error: cannot flush observability events: {e}");
            std::process::exit(1);
        }
        if let Some(path) = &args.metrics_out {
            if let Err(e) = std::fs::write(path, cdt_obs::render(cdt_obs::global())) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("[metrics written to {path}]");
        }
        if args.obs_summary {
            print!("{}", cdt_obs::render_summary(cdt_obs::global()));
        }
        cdt_obs::uninstall();
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("{json}");
    println!(
        "\nserial {serial_secs:.2}s, {} threads {parallel_secs:.2}s \
         (speedup {:.2}x, identical: {}) -> {}",
        report.parallel.threads, report.speedup, report.identical, args.out
    );
    if let Some(delta) = &report.engine_delta {
        println!(
            "engine: {} submissions, per-call pool {:.2}s vs warm engine {:.2}s \
             (submit speedup {:.2}x, gather occupancy {:.2} lanes/group)",
            delta.submissions,
            delta.per_call_secs,
            delta.engine_secs,
            delta.submit_speedup,
            delta.gather_occupancy
        );
    } else if let Some(occupancy) = report.cell_occupancy {
        println!("sweep cell occupancy: {occupancy:.2} lanes/group");
    }
    if !report.identical {
        eprintln!("error: parallel results diverged from serial — determinism bug");
        std::process::exit(1);
    }
    // Gate against the baseline *before* appending, so the run under test
    // never gates against itself; a failing run is not recorded as a new
    // baseline either.
    if let Some(tolerance) = args.gate_tolerance {
        match perf_gate(&args.history, &report, tolerance) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    match append_history(&args.history, &report) {
        Ok(()) => println!("[history appended to {}]", args.history),
        Err(e) => eprintln!("warning: cannot append history to {}: {e}", args.history),
    }
}
