//! Figure-reproduction harness.
//!
//! Regenerates the data series behind every table and figure of the
//! paper's evaluation (Sec. V) and prints them as aligned text tables.
//!
//! ```sh
//! # everything, CI scale (~seconds):
//! cargo run --release -p cdt-bench --bin repro
//!
//! # one figure at the paper's full workload (minutes):
//! cargo run --release -p cdt-bench --bin repro -- --exp fig7 --paper
//!
//! # export CSVs next to the printout:
//! cargo run --release -p cdt-bench --bin repro -- --csv out/
//!
//! # pin the evaluation pool (results are identical at any thread count
//! # and any lockstep batch width):
//! cargo run --release -p cdt-bench --bin repro -- --threads 1 --batch 4
//!
//! # per-round JSONL trace + Prometheus metrics + phase/pool summary:
//! cargo run --release -p cdt-bench --bin repro -- --exp fig7 \
//!     --obs-events events.jsonl --metrics-out metrics.prom --obs-summary
//!
//! # crash-safe protocol journal of the CMAB-HS reference run:
//! cargo run --release -p cdt-bench --bin repro -- --journal journal.jsonl
//! ```

use cdt_sim::experiments::{all_experiment_ids, run_experiment, Scale};
use std::io::Write as _;

struct Args {
    experiments: Vec<String>,
    scale: Scale,
    csv_dir: Option<String>,
    obs_events: Option<String>,
    metrics_out: Option<String>,
    obs_summary: bool,
    journal: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut experiments = Vec::new();
    let mut scale = Scale::Test;
    let mut csv_dir = None;
    let mut obs_events = None;
    let mut metrics_out = None;
    let mut obs_summary = false;
    let mut journal = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--exp" => {
                let id = argv.next().ok_or("--exp needs an id (e.g. fig7)")?;
                experiments.push(id);
            }
            "--paper" => scale = Scale::Paper,
            "--test" => scale = Scale::Test,
            "--csv" => csv_dir = Some(argv.next().ok_or("--csv needs a directory")?),
            "--obs-events" => obs_events = Some(argv.next().ok_or("--obs-events needs a path")?),
            "--metrics-out" => metrics_out = Some(argv.next().ok_or("--metrics-out needs a path")?),
            "--obs-summary" => obs_summary = true,
            "--journal" => journal = Some(argv.next().ok_or("--journal needs a path")?),
            "--threads" => {
                let raw = argv.next().ok_or("--threads needs a count")?;
                let t: usize = raw
                    .parse()
                    .map_err(|_| format!("--threads expects an integer, got `{raw}`"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".into());
                }
                cdt_sim::set_thread_override(Some(t));
            }
            "--batch" => {
                let raw = argv.next().ok_or("--batch needs a width")?;
                let b: usize = raw
                    .parse()
                    .map_err(|_| format!("--batch expects an integer, got `{raw}`"))?;
                if b == 0 {
                    return Err("--batch must be at least 1".into());
                }
                cdt_sim::set_batch_override(Some(b));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp <id>]... [--paper|--test] [--csv <dir>] [--threads T]\n\
                     \x20      [--batch B] [--obs-events FILE] [--metrics-out FILE] \
                     [--obs-summary] [--journal FILE]\n\
                     known ids: {}",
                    all_experiment_ids().join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    // `--journal` alone runs just the journaled reference run; without it
    // an empty selection means "reproduce everything".
    if experiments.is_empty() && journal.is_none() {
        experiments = all_experiment_ids()
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
    }
    Ok(Args {
        experiments,
        scale,
        csv_dir,
        obs_events,
        metrics_out,
        obs_summary,
        journal,
    })
}

/// `--journal FILE`: a deterministic journaled CMAB-HS reference run at
/// the selected scale, streamed through the crash-safe protocol sink and
/// then replay-verified from the bytes on disk.
fn journaled_reference_run(path: &str, scale: Scale) -> Result<(), String> {
    use rand::SeedableRng as _;
    let (m, k, l, n) = match scale {
        Scale::Paper => (300, 10, 10, 100_000),
        Scale::Test => (30, 5, 5, 300),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(20_210_419);
    let scenario =
        cdt_core::Scenario::paper_defaults(m, k, l, n, &mut rng).map_err(|e| e.to_string())?;
    let mut mech = cdt_core::CmabHs::new(scenario.config.clone()).map_err(|e| e.to_string())?;
    let mut journal = cdt_protocol::JournalObserver::create(path, scenario.config.job.clone())
        .map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    mech.run_with_mode_observed(
        &scenario.observer(),
        &mut rng,
        cdt_core::LedgerMode::Summary,
        &mut journal,
    )
    .map_err(|e| e.to_string())?;
    let report = journal.finish().map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    cdt_protocol::EventLog::from_json_lines(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "[journal: {} events / {} settled rounds in {path}, replay-verified, {:.1?}]\n",
        report.events,
        report.settled_rounds,
        started.elapsed()
    );
    Ok(())
}

/// Flush + dump + summarize the observability pipeline, then self-validate
/// the JSONL trace (every line must parse as a tagged JSON object) so CI
/// can grep one line instead of re-parsing the file.
fn finish_obs(args: &Args) -> Result<(), String> {
    cdt_obs::flush().map_err(|e| format!("cannot flush observability events: {e}"))?;
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, cdt_obs::render(cdt_obs::global()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("[metrics written to {path}]");
    }
    if args.obs_summary {
        print!("{}", cdt_obs::render_summary(cdt_obs::global()));
    }
    if let Some(path) = &args.obs_events {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut events = 0usize;
        for (i, line) in text.lines().enumerate() {
            let value: serde_json::Value = serde_json::from_str(line)
                .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
            if value.get("event").is_none() {
                return Err(format!("{path}:{}: missing `event` tag", i + 1));
            }
            events += 1;
        }
        if events == 0 {
            return Err(format!("{path}: no events were written"));
        }
        println!("[obs: {events} events in {path}, all valid JSON]");
    }
    cdt_obs::uninstall();
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // Push the resolved CDT_LANES / CDT_FAST_MATH configuration into the
    // column kernels' process state (binary entry points do this
    // explicitly; library code never mutates it implicitly).
    cdt_sim::sync_lane_config();
    let obs_active = args.obs_events.is_some() || args.metrics_out.is_some() || args.obs_summary;
    if obs_active {
        cdt_obs::global().reset();
        if let Err(e) = cdt_obs::install(cdt_obs::ObsConfig {
            events_path: args.obs_events.clone().map(Into::into),
            summary: args.obs_summary,
            events_sample: 0,
            ..cdt_obs::ObsConfig::default()
        }) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    let scale_name = match args.scale {
        Scale::Paper => "paper",
        Scale::Test => "test",
    };
    println!("# CMAB-HS figure reproduction (scale: {scale_name})\n");

    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create `{dir}`: {e}");
            std::process::exit(1);
        }
    }

    let mut failed = false;
    if let Some(path) = &args.journal {
        if let Err(e) = journaled_reference_run(path, args.scale) {
            eprintln!("error: journaled reference run failed: {e}");
            failed = true;
        }
    }
    for id in &args.experiments {
        let started = std::time::Instant::now();
        match run_experiment(id, args.scale) {
            Ok(tables) => {
                println!(
                    "=== {id} ({} table{}, {:.1?}) ===\n",
                    tables.len(),
                    if tables.len() == 1 { "" } else { "s" },
                    started.elapsed()
                );
                for (i, t) in tables.iter().enumerate() {
                    println!("{t}");
                    if let Some(dir) = &args.csv_dir {
                        let path = format!("{dir}/{id}_{i}.csv");
                        match std::fs::File::create(&path)
                            .and_then(|mut f| f.write_all(t.to_csv().as_bytes()))
                        {
                            Ok(()) => println!("[csv written to {path}]\n"),
                            Err(e) => eprintln!("warning: csv export to {path} failed: {e}"),
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("error: experiment {id} failed: {e}");
                failed = true;
            }
        }
    }
    if obs_active {
        if let Err(e) = finish_obs(&args) {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
