//! Ablation benches for the design choices DESIGN.md §5 calls out:
//!
//! - **closed-form vs numeric equilibrium**: how much the paper's
//!   Theorems 14–16 buy over golden-section backward induction;
//! - **UCB exploration width**: runtime of full runs across `w` values
//!   (their *regret* comparison lives in `examples/regret_study.rs` and
//!   the integration tests — Criterion measures time);
//! - **initial full sweep vs cold start**;
//! - **batch-of-L vs one-at-a-time estimator updates** (Eq. 17's
//!   increment-by-L).

use cdt_bandit::QualityEstimator;
use cdt_core::{LedgerMode, Scenario};
use cdt_game::{
    best_response::all_seller_best_responses, equilibrium::profits_at, numeric::grid_then_golden,
    platform_best_response, solve_equilibrium, Aggregates, GameContext, SelectedSeller,
};
use cdt_sim::PolicySpec;
use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, SellerId, ValuationParams};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn game_context(k: usize) -> GameContext {
    let mut rng = StdRng::seed_from_u64(3);
    let sellers = (0..k)
        .map(|i| {
            SelectedSeller::new(
                SellerId(i),
                rng.gen_range(0.3..1.0),
                SellerCostParams {
                    a: rng.gen_range(0.1..0.5),
                    b: rng.gen_range(0.1..1.0),
                },
            )
        })
        .collect();
    GameContext::new(
        sellers,
        PlatformCostParams {
            theta: 0.1,
            lambda: 1.0,
        },
        ValuationParams { omega: 1000.0 },
        PriceBounds::unbounded(),
        PriceBounds::unbounded(),
        f64::MAX,
    )
    .unwrap()
}

/// Closed-form backward induction (the paper's contribution) vs a fully
/// numeric Stage-1 maximization. Also asserts they agree, so the bench
/// doubles as a correctness check.
fn bench_closed_vs_numeric(c: &mut Criterion) {
    let ctx = game_context(10);
    let closed = solve_equilibrium(&ctx);
    let agg = Aggregates::from_context(&ctx);
    let numeric_solve = || {
        grid_then_golden(
            |pj| {
                let p = platform_best_response(&ctx, pj, &agg);
                let taus = all_seller_best_responses(&ctx, p);
                profits_at(&ctx, pj, p, &taus).consumer
            },
            0.0,
            5.0 * closed.service_price,
            2001,
            1e-9,
        )
    };
    let numeric = numeric_solve();
    assert!(
        (numeric.argmax - closed.service_price).abs() / closed.service_price < 1e-2,
        "numeric {} vs closed {}",
        numeric.argmax,
        closed.service_price
    );

    let mut g = c.benchmark_group("equilibrium_closed_vs_numeric");
    g.bench_function("closed_form_k10", |b| {
        b.iter(|| black_box(solve_equilibrium(black_box(&ctx))))
    });
    g.bench_function("numeric_grid_golden_k10", |b| b.iter(&numeric_solve));
    g.finish();
}

/// Full-run time across UCB exploration weights (Eq. 19 ablation).
fn bench_ucb_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ucb_width_ablation");
    g.sample_size(10);
    for w in [1.0f64, 6.0, 12.0] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(8);
                let scenario = Scenario::paper_defaults(60, 6, 5, 300, &mut rng).unwrap();
                let run = cdt_sim::run_policy(&scenario, PolicySpec::CmabHsWithWeight(w), 9, &[])
                    .unwrap();
                black_box(run.regret)
            })
        });
    }
    g.finish();
}

/// Initial full sweep (Algorithm 1 steps 2–5) vs a pure UCB cold start.
fn bench_initial_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("initial_sweep_ablation");
    g.sample_size(10);
    for (name, sweep) in [("with_sweep", true), ("cold_start", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                let scenario = Scenario::paper_defaults(60, 6, 5, 300, &mut rng).unwrap();
                let mut policy = cdt_bandit::CmabUcbPolicy::new(60, 6);
                if !sweep {
                    policy = policy.without_initial_sweep();
                }
                let observer = scenario.observer();
                let mut total = 0.0;
                for t in 0..scenario.config.n() {
                    let out = cdt_core::execute_round(
                        &mut policy,
                        &scenario.config,
                        &observer,
                        cdt_types::Round(t),
                        &mut rng,
                    )
                    .unwrap();
                    total += out.observed_revenue;
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

/// Eq. 17 credits all L observations at once; the ablation feeds them one
/// by one (L× more update calls — same result, different cost).
fn bench_batch_updates(c: &mut Criterion) {
    let obs: Vec<f64> = (0..10).map(|i| 0.05 + 0.09 * i as f64).collect();
    let mut g = c.benchmark_group("estimator_batch_ablation");
    g.bench_function("batch_of_l", |b| {
        let mut est = QualityEstimator::new(300);
        b.iter(|| est.update(black_box(SellerId(5)), black_box(&obs)))
    });
    g.bench_function("one_at_a_time", |b| {
        let mut est = QualityEstimator::new(300);
        b.iter(|| {
            for &q in &obs {
                est.update(black_box(SellerId(5)), black_box(&[q]));
            }
        })
    });
    g.finish();

    // The two orders must agree numerically.
    let mut batched = QualityEstimator::new(1);
    batched.update(SellerId(0), &obs);
    let mut single = QualityEstimator::new(1);
    for &q in &obs {
        single.update(SellerId(0), &[q]);
    }
    assert!((batched.mean(SellerId(0)) - single.mean(SellerId(0))).abs() < 1e-12);
}

/// Run the ledger in Summary vs Full mode over a long horizon.
fn bench_ledger_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ledger_mode_ablation");
    g.sample_size(10);
    for (name, mode) in [("summary", LedgerMode::Summary), ("full", LedgerMode::Full)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(10);
                let scenario = Scenario::paper_defaults(40, 5, 5, 400, &mut rng).unwrap();
                let mut mech = cdt_core::CmabHs::new(scenario.config.clone()).unwrap();
                black_box(
                    mech.run_with_mode(&scenario.observer(), &mut rng, mode)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_closed_vs_numeric,
    bench_ucb_width,
    bench_initial_sweep,
    bench_batch_updates,
    bench_ledger_modes
);
criterion_main!(benches);
