//! Microbenchmarks of the mechanism's hot paths: UCB index computation,
//! top-K selection, estimator updates, equilibrium solving, and full
//! round execution.
//!
//! Paper scale is `M = 300` candidates per round over `N = 10⁵` rounds, so
//! per-round costs are the ones that matter.

use cdt_aggregate::aggregate_round;
use cdt_bandit::{
    top_k_by_score, ucb_indices, QualityEstimator, SlidingWindowEstimator, UcbConfig,
};
use cdt_core::{CmabHs, LedgerMode, Scenario};
use cdt_game::{solve_equilibrium, GameContext, SelectedSeller};
use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, SellerId, ValuationParams};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seeded_estimator(m: usize) -> QualityEstimator {
    let mut est = QualityEstimator::new(m);
    let mut rng = StdRng::seed_from_u64(1);
    for i in 0..m {
        let obs: Vec<f64> = (0..10).map(|_| rng.gen_range(0.0..1.0)).collect();
        est.update(SellerId(i), &obs);
    }
    est
}

fn bench_ucb_indices(c: &mut Criterion) {
    let est = seeded_estimator(300);
    let cfg = UcbConfig::paper(10);
    c.bench_function("ucb_indices_m300", |b| {
        b.iter(|| black_box(ucb_indices(black_box(&est), &cfg)))
    });
}

fn bench_top_k(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let scores: Vec<f64> = (0..300).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut g = c.benchmark_group("top_k_m300");
    for k in [10usize, 60] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(top_k_by_score(black_box(&scores), k)))
        });
    }
    g.finish();
}

fn bench_estimator_update(c: &mut Criterion) {
    let obs: Vec<f64> = (0..10).map(|i| 0.05 * i as f64).collect();
    c.bench_function("estimator_update_l10", |b| {
        let mut est = QualityEstimator::new(300);
        b.iter(|| est.update(black_box(SellerId(7)), black_box(&obs)))
    });
    c.bench_function("sliding_window_update_l10", |b| {
        let mut est = SlidingWindowEstimator::new(300, 400);
        b.iter(|| est.update(black_box(SellerId(7)), black_box(&obs)))
    });
}

fn bench_aggregation(c: &mut Criterion) {
    // One round's statistics bundle at paper scale: K = 10 sellers x L = 10 PoIs.
    let mut rng = StdRng::seed_from_u64(5);
    let sellers: Vec<SellerId> = (0..10).map(SellerId).collect();
    let values: Vec<Vec<f64>> = (0..10)
        .map(|_| (0..10).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let obs = cdt_quality::ObservationMatrix::new(sellers, values);
    let weights = vec![0.7; 10];
    c.bench_function("aggregate_round_k10_l10", |b| {
        b.iter(|| black_box(aggregate_round(black_box(&obs), black_box(&weights))))
    });
}

fn game_context(k: usize) -> GameContext {
    let mut rng = StdRng::seed_from_u64(3);
    let sellers = (0..k)
        .map(|i| {
            SelectedSeller::new(
                SellerId(i),
                rng.gen_range(0.3..1.0),
                SellerCostParams {
                    a: rng.gen_range(0.1..0.5),
                    b: rng.gen_range(0.1..1.0),
                },
            )
        })
        .collect();
    GameContext::new(
        sellers,
        PlatformCostParams {
            theta: 0.1,
            lambda: 1.0,
        },
        ValuationParams { omega: 1000.0 },
        PriceBounds::unbounded(),
        PriceBounds::unbounded(),
        f64::MAX,
    )
    .unwrap()
}

fn bench_equilibrium(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve_equilibrium");
    for k in [10usize, 30, 60] {
        let ctx = game_context(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &ctx, |b, ctx| {
            b.iter(|| black_box(solve_equilibrium(black_box(ctx))))
        });
    }
    g.finish();
}

fn bench_full_run(c: &mut Criterion) {
    // A complete 200-round trading run at M = 100: dominated by the
    // per-round select + game + observe pipeline.
    let mut g = c.benchmark_group("full_run");
    g.sample_size(10);
    g.bench_function("m100_k10_l10_n200", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let scenario = Scenario::paper_defaults(100, 10, 10, 200, &mut rng).unwrap();
            let mut mech = CmabHs::new(scenario.config.clone()).unwrap();
            black_box(
                mech.run_with_mode(&scenario.observer(), &mut rng, LedgerMode::Summary)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ucb_indices,
    bench_top_k,
    bench_estimator_update,
    bench_aggregation,
    bench_equilibrium,
    bench_full_run
);
criterion_main!(benches);
