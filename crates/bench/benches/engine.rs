//! Engine throughput: sustained rounds/sec of the allocation-free round
//! hot path at the paper's shape (`M = 300`, `K = 10`, `L = 10`).
//!
//! Criterion reports elements/sec where one element is one trading round,
//! so the headline number is directly comparable across commits.

use cdt_core::{CmabHs, LedgerMode, Scenario};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_engine_throughput(c: &mut Criterion) {
    const ROUNDS: usize = 500;
    let mut setup_rng = StdRng::seed_from_u64(7);
    let scenario = Scenario::paper_defaults(300, 10, 10, ROUNDS, &mut setup_rng).unwrap();
    let observer = scenario.observer();

    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROUNDS as u64));
    g.bench_function("m300_k10_l10", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(8);
            let mut mech = CmabHs::new(scenario.config.clone()).unwrap();
            black_box(
                mech.run_with_mode(&observer, &mut rng, LedgerMode::Summary)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
