//! One benchmark per paper table/figure: times the experiment that
//! regenerates it (test scale, so `cargo bench` completes in minutes; the
//! `repro` binary runs the same code at `--paper` scale).
//!
//! The multi-round sweeps fan their replications out through the
//! deterministic job pool, so each is benched twice: pinned to one worker
//! (`serial/<id>`) and on the configured pool (`pool/<id>`). Results are
//! bit-identical either way; the pair measures the pool's wall-clock win
//! per figure.
//!
//! The mapping figure → bench id mirrors DESIGN.md's per-experiment index.

use cdt_sim::experiments::{run_experiment, Scale};
use cdt_sim::{configured_threads, set_thread_override};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    // Multi-round sweeps are the expensive ones; keep samples low and
    // compare one pinned worker against the configured pool.
    let pool_threads = configured_threads();
    for (group, threads) in [("figures_serial", 1), ("figures_pool", pool_threads)] {
        let mut g = c.benchmark_group(group);
        g.sample_size(10);
        set_thread_override(Some(threads));
        for id in ["table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"] {
            g.bench_function(id, |b| {
                b.iter(|| black_box(run_experiment(black_box(id), Scale::Test).unwrap()))
            });
        }
        g.finish();
    }
    set_thread_override(None);

    // Single-round game figures are cheap; default sampling is fine.
    let mut g = c.benchmark_group("figures_game");
    for id in ["fig13", "fig14", "fig15", "fig16", "fig17", "fig18"] {
        g.bench_function(id, |b| {
            b.iter(|| black_box(run_experiment(black_box(id), Scale::Test).unwrap()))
        });
    }
    g.finish();

    // The non-stationarity extension runs a 4-policy drift comparison.
    let mut g = c.benchmark_group("figures_extensions");
    g.sample_size(10);
    g.bench_function("nonstat", |b| {
        b.iter(|| black_box(run_experiment(black_box("nonstat"), Scale::Test).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
