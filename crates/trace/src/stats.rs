//! Descriptive statistics over a trip trace — the sanity dashboard a data
//! engineer would run before trusting a trace-derived experiment.

use crate::record::{AreaId, TaxiId, TripRecord, NUM_COMMUNITY_AREAS};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total trip records.
    pub num_records: usize,
    /// Distinct taxis appearing in the trace.
    pub num_taxis: usize,
    /// Distinct areas touched (pickup or dropoff).
    pub num_areas: usize,
    /// Mean trip length in miles.
    pub mean_trip_miles: f64,
    /// Trips per hour-of-day (24 buckets).
    pub hourly_counts: [usize; 24],
    /// Gini coefficient of per-area visit counts (0 = uniform demand,
    /// → 1 = all demand in one area). Chicago-style traces are strongly
    /// concentrated (hotspots), so this should be well above 0.5.
    pub area_gini: f64,
    /// Trips of the busiest taxi.
    pub max_trips_per_taxi: usize,
}

/// Computes [`TraceStats`] in one pass (plus a sort for the Gini).
#[must_use]
pub fn trace_stats(records: &[TripRecord]) -> TraceStats {
    let mut taxis: HashMap<TaxiId, usize> = HashMap::new();
    let mut areas: HashMap<AreaId, usize> = HashMap::new();
    let mut hourly = [0usize; 24];
    let mut miles = 0.0;
    for r in records {
        *taxis.entry(r.taxi).or_default() += 1;
        *areas.entry(r.pickup).or_default() += 1;
        *areas.entry(r.dropoff).or_default() += 1;
        hourly[r.hour_of_day() as usize] += 1;
        miles += r.trip_miles;
    }
    let mean_trip_miles = if records.is_empty() {
        0.0
    } else {
        miles / records.len() as f64
    };
    // Gini over all 77 areas (zero-visit areas count — concentration is
    // relative to the whole city).
    let mut visit_counts: Vec<f64> = (0..NUM_COMMUNITY_AREAS)
        .map(|a| *areas.get(&AreaId(a)).unwrap_or(&0) as f64)
        .collect();
    let area_gini = gini(&mut visit_counts);
    TraceStats {
        num_records: records.len(),
        num_taxis: taxis.len(),
        num_areas: areas.len(),
        mean_trip_miles,
        hourly_counts: hourly,
        area_gini,
        max_trips_per_taxi: taxis.values().copied().max().unwrap_or(0),
    }
}

/// Gini coefficient of a non-negative vector (sorted in place).
/// Returns 0 for empty or all-zero input.
fn gini(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite counts"));
    let n = values.len() as f64;
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // G = (2 Σ_i i·x_i) / (n Σ x) − (n + 1)/n, with i 1-based on sorted x.
    let weighted: f64 = values
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_trace, TraceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_trace_stats() {
        let s = trace_stats(&[]);
        assert_eq!(s.num_records, 0);
        assert_eq!(s.num_taxis, 0);
        assert_eq!(s.mean_trip_miles, 0.0);
        assert_eq!(s.area_gini, 0.0);
    }

    #[test]
    fn gini_of_uniform_is_zero() {
        let mut v = vec![5.0; 10];
        assert!(gini(&mut v).abs() < 1e-12);
    }

    #[test]
    fn gini_of_concentrated_is_high() {
        let mut v = vec![0.0; 99];
        v.push(100.0);
        assert!(gini(&mut v) > 0.98);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let mut a = vec![1.0, 2.0, 3.0, 4.0];
        let mut b = vec![10.0, 20.0, 30.0, 40.0];
        assert!((gini(&mut a) - gini(&mut b)).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_trace_statistics() {
        let t = generate_trace(&TraceConfig::paper_scale(), &mut StdRng::seed_from_u64(1));
        let s = trace_stats(&t);
        assert_eq!(s.num_records, 27_465);
        assert!(s.num_taxis >= 295);
        assert!(s.num_areas >= 70, "most of the 77 areas see some traffic");
        assert!(s.mean_trip_miles > 1.0 && s.mean_trip_miles < 20.0);
        // Zipf demand ⇒ strong concentration.
        assert!(s.area_gini > 0.5, "gini {}", s.area_gini);
        // Rush hours dominate the small hours.
        assert!(s.hourly_counts[18] > 3 * s.hourly_counts[3]);
        assert!(s.max_trips_per_taxi >= 50);
    }

    #[test]
    fn hourly_counts_sum_to_records() {
        let t = generate_trace(&TraceConfig::small(), &mut StdRng::seed_from_u64(2));
        let s = trace_stats(&t);
        assert_eq!(s.hourly_counts.iter().sum::<usize>(), s.num_records);
    }
}
