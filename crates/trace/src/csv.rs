//! CSV round-trip for trip records.
//!
//! Format (header + one line per record, matching the field order of the
//! Kaggle dump's columns we consume):
//!
//! ```csv
//! taxi_id,timestamp,trip_miles,pickup_area,dropoff_area
//! 17,3600,2.85,8,32
//! ```

use crate::record::{AreaId, TaxiId, TripRecord};
use cdt_types::{CdtError, Result};
use std::fmt::Write as _;

/// The header line.
pub const HEADER: &str = "taxi_id,timestamp,trip_miles,pickup_area,dropoff_area";

/// Serializes records to a CSV string (with header).
#[must_use]
pub fn to_csv(records: &[TripRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 24 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for r in records {
        // trip_miles at fixed 4-decimal precision: plenty for miles, keeps
        // files compact and diff-friendly.
        let _ = writeln!(
            out,
            "{},{},{:.4},{},{}",
            r.taxi.0, r.timestamp, r.trip_miles, r.pickup.0, r.dropoff.0
        );
    }
    out
}

/// Parses a CSV string produced by [`to_csv`] (header required).
///
/// # Errors
/// Returns [`CdtError::TraceParse`] with a 1-based line number on any
/// malformed input.
pub fn from_csv(input: &str) -> Result<Vec<TripRecord>> {
    let mut lines = input.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        Some((_, h)) => {
            return Err(CdtError::TraceParse {
                line: 1,
                message: format!("expected header `{HEADER}`, got `{h}`"),
            })
        }
        None => {
            return Err(CdtError::TraceParse {
                line: 1,
                message: "empty input".to_owned(),
            })
        }
    }

    let mut records = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let taxi = parse_field::<u32>(&mut fields, "taxi_id", line_no)?;
        let timestamp = parse_field::<u64>(&mut fields, "timestamp", line_no)?;
        let trip_miles = parse_field::<f64>(&mut fields, "trip_miles", line_no)?;
        let pickup = parse_field::<u16>(&mut fields, "pickup_area", line_no)?;
        let dropoff = parse_field::<u16>(&mut fields, "dropoff_area", line_no)?;
        if fields.next().is_some() {
            return Err(CdtError::TraceParse {
                line: line_no,
                message: "too many fields".to_owned(),
            });
        }
        if !(trip_miles.is_finite() && trip_miles >= 0.0) {
            return Err(CdtError::TraceParse {
                line: line_no,
                message: format!("invalid trip_miles {trip_miles}"),
            });
        }
        records.push(TripRecord {
            taxi: TaxiId(taxi),
            timestamp,
            trip_miles,
            pickup: AreaId(pickup),
            dropoff: AreaId(dropoff),
        });
    }
    Ok(records)
}

fn parse_field<'a, T: std::str::FromStr>(
    fields: &mut impl Iterator<Item = &'a str>,
    name: &str,
    line: usize,
) -> Result<T> {
    let raw = fields.next().ok_or_else(|| CdtError::TraceParse {
        line,
        message: format!("missing field `{name}`"),
    })?;
    raw.trim().parse::<T>().map_err(|_| CdtError::TraceParse {
        line,
        message: format!("cannot parse `{raw}` as {name}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_trace, TraceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_records() {
        let records = generate_trace(&TraceConfig::small(), &mut StdRng::seed_from_u64(1));
        let csv = to_csv(&records);
        let parsed = from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), records.len());
        for (a, b) in records.iter().zip(&parsed) {
            assert_eq!(a.taxi, b.taxi);
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.pickup, b.pickup);
            assert_eq!(a.dropoff, b.dropoff);
            assert!((a.trip_miles - b.trip_miles).abs() < 1e-4);
        }
    }

    #[test]
    fn rejects_missing_header() {
        let err = from_csv("1,2,3.0,4,5\n").unwrap_err();
        assert!(matches!(err, CdtError::TraceParse { line: 1, .. }));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(from_csv("").is_err());
    }

    #[test]
    fn rejects_garbage_field_with_line_number() {
        let input = format!("{HEADER}\n1,2,3.0,4,5\n1,xx,3.0,4,5\n");
        match from_csv(&input).unwrap_err() {
            CdtError::TraceParse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("timestamp"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_short_and_long_rows() {
        let short = format!("{HEADER}\n1,2,3.0,4\n");
        assert!(from_csv(&short).is_err());
        let long = format!("{HEADER}\n1,2,3.0,4,5,6\n");
        assert!(from_csv(&long).is_err());
    }

    #[test]
    fn rejects_negative_miles() {
        let input = format!("{HEADER}\n1,2,-3.0,4,5\n");
        assert!(from_csv(&input).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let input = format!("{HEADER}\n\n1,2,3.0,4,5\n\n");
        assert_eq!(from_csv(&input).unwrap().len(), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_record() -> impl Strategy<Value = TripRecord> {
        (
            0u32..1000,
            0u64..7 * 86_400,
            0.0f64..60.0,
            0u16..77,
            0u16..77,
        )
            .prop_map(
                |(taxi, timestamp, trip_miles, pickup, dropoff)| TripRecord {
                    taxi: TaxiId(taxi),
                    timestamp,
                    trip_miles,
                    pickup: AreaId(pickup),
                    dropoff: AreaId(dropoff),
                },
            )
    }

    proptest! {
        /// Any batch of records round-trips through CSV with miles intact
        /// to the serialized 4-decimal precision.
        #[test]
        fn arbitrary_records_round_trip(records in proptest::collection::vec(arb_record(), 0..50)) {
            let parsed = from_csv(&to_csv(&records)).unwrap();
            prop_assert_eq!(parsed.len(), records.len());
            for (a, b) in records.iter().zip(&parsed) {
                prop_assert_eq!(a.taxi, b.taxi);
                prop_assert_eq!(a.timestamp, b.timestamp);
                prop_assert_eq!(a.pickup, b.pickup);
                prop_assert_eq!(a.dropoff, b.dropoff);
                prop_assert!((a.trip_miles - b.trip_miles).abs() <= 5e-5);
            }
        }

        /// The parser never panics on arbitrary input — it errors.
        #[test]
        fn parser_is_total(input in ".{0,200}") {
            let _ = from_csv(&input);
        }
    }
}
