//! PoI extraction: the `L` most-visited pickup/dropoff areas
//! ("we select some pick-up/drop-off points as the PoIs", Sec. V-A).

use crate::record::{AreaId, TripRecord};
use std::collections::HashMap;

/// Returns the `l` areas with the highest total visit counts (pickups plus
/// dropoffs), most-visited first. Ties break toward the lower area id for
/// determinism.
///
/// # Panics
/// Panics if the trace contains fewer than `l` distinct areas.
#[must_use]
pub fn extract_pois(records: &[TripRecord], l: usize) -> Vec<AreaId> {
    let mut counts: HashMap<AreaId, usize> = HashMap::new();
    for r in records {
        *counts.entry(r.pickup).or_default() += 1;
        *counts.entry(r.dropoff).or_default() += 1;
    }
    assert!(
        counts.len() >= l,
        "trace covers {} distinct areas, need {l} PoIs",
        counts.len()
    );
    let mut areas: Vec<(AreaId, usize)> = counts.into_iter().collect();
    areas.sort_by(|(a1, c1), (a2, c2)| c2.cmp(c1).then(a1.0.cmp(&a2.0)));
    areas.truncate(l);
    areas.into_iter().map(|(a, _)| a).collect()
}

/// Total visit count of one area (pickups + dropoffs).
#[must_use]
pub fn visit_count(records: &[TripRecord], area: AreaId) -> usize {
    records.iter().filter(|r| r.touches(area)).count()
        + records
            .iter()
            .filter(|r| r.pickup == area && r.dropoff == area)
            .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_trace, TraceConfig};
    use crate::record::TaxiId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rec(pickup: u16, dropoff: u16) -> TripRecord {
        TripRecord {
            taxi: TaxiId(0),
            timestamp: 0,
            trip_miles: 1.0,
            pickup: AreaId(pickup),
            dropoff: AreaId(dropoff),
        }
    }

    #[test]
    fn picks_most_visited_areas() {
        let records = vec![rec(1, 2), rec(1, 3), rec(1, 2), rec(4, 2)];
        // Visits: area1 ×3, area2 ×3, area3 ×1, area4 ×1.
        let pois = extract_pois(&records, 2);
        assert_eq!(pois, vec![AreaId(1), AreaId(2)]);
    }

    #[test]
    fn tie_breaks_toward_lower_id() {
        let records = vec![rec(5, 9), rec(9, 5)];
        assert_eq!(extract_pois(&records, 1), vec![AreaId(5)]);
    }

    #[test]
    fn paper_scale_trace_yields_ten_pois() {
        let t = generate_trace(&TraceConfig::paper_scale(), &mut StdRng::seed_from_u64(1));
        let pois = extract_pois(&t, 10);
        assert_eq!(pois.len(), 10);
        // Zipf popularity ⇒ the hottest areas dominate; the most popular
        // area should be among the first generated ids (low ids get the
        // largest Zipf weights).
        assert!(pois[0].0 < 5, "hottest PoI = {}", pois[0]);
    }

    #[test]
    #[should_panic(expected = "distinct areas")]
    fn panics_when_too_few_areas() {
        let records = vec![rec(1, 1)];
        let _ = extract_pois(&records, 3);
    }

    #[test]
    fn pois_are_ordered_by_popularity() {
        let t = generate_trace(&TraceConfig::small(), &mut StdRng::seed_from_u64(2));
        let pois = extract_pois(&t, 5);
        let count = |a: AreaId| {
            t.iter()
                .map(|r| usize::from(r.pickup == a) + usize::from(r.dropoff == a))
                .sum::<usize>()
        };
        for w in pois.windows(2) {
            assert!(count(w[0]) >= count(w[1]));
        }
    }
}
