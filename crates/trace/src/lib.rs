//! # cdt-trace
//!
//! A seeded synthetic Chicago-style taxi-trip trace — the data substrate
//! for the paper's evaluation (Sec. V-A).
//!
//! The paper uses the *Chicago Taxi Trips* Kaggle dump (27 465 records with
//! taxi id, timestamp, trip miles, pickup/dropoff locations), from which it
//! (a) picks `L = 10` pickup/dropoff points as PoIs and (b) treats the
//! taxis serving those points as candidate data sellers. The trace carries
//! **no quality information** — qualities are generated synthetically in
//! the paper too — so a structurally-faithful synthetic trace preserves
//! everything the experiments consume:
//!
//! - [`record`]: the [`TripRecord`] schema mirroring the Kaggle columns;
//! - [`generator`]: a seeded generator with Zipf-popular community areas,
//!   a two-peak time-of-day demand curve, and home-area-biased taxis;
//! - [`csv`]: CSV serialization round-trip (so examples can export/import
//!   the trace like the real dump);
//! - [`poi`]: PoI extraction — the top-`L` most visited areas;
//! - [`sellers`]: seller derivation — taxis ranked by PoI coverage;
//! - [`dataset`]: the assembled [`Dataset`] pipeline.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod csv;
pub mod dataset;
pub mod generator;
pub mod poi;
pub mod record;
pub mod sellers;
pub mod stats;

pub use dataset::Dataset;
pub use generator::{generate_trace, TraceConfig};
pub use poi::extract_pois;
pub use record::{AreaId, TaxiId, TripRecord};
pub use sellers::{derive_sellers, TaxiActivity};
pub use stats::{trace_stats, TraceStats};
