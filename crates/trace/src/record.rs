//! The trip-record schema, mirroring the columns of the Chicago Taxi Trips
//! dump the paper evaluates on: taxi id, timestamp, trip miles, and the
//! pickup/dropoff locations (Chicago community areas).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of Chicago community areas (the real city has 77).
pub const NUM_COMMUNITY_AREAS: u16 = 77;

/// A taxi's identifier within the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaxiId(pub u32);

impl fmt::Display for TaxiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "taxi{}", self.0)
    }
}

/// A Chicago community-area identifier (`1..=77` in the real data;
/// zero-based `0..77` here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AreaId(pub u16);

impl AreaId {
    /// Synthetic centroid of the area on a √77 × √77 unit grid, used to
    /// derive plausible trip distances.
    #[must_use]
    pub fn centroid(self) -> (f64, f64) {
        let side = (f64::from(NUM_COMMUNITY_AREAS)).sqrt().ceil() as u16;
        let row = self.0 / side;
        let col = self.0 % side;
        (f64::from(row) + 0.5, f64::from(col) + 0.5)
    }

    /// Grid (Manhattan-ish Euclidean) distance between two area centroids,
    /// in synthetic miles (one grid cell ≈ 1.9 miles, roughly Chicago's
    /// community-area pitch).
    #[must_use]
    pub fn distance_miles(self, other: AreaId) -> f64 {
        const MILES_PER_CELL: f64 = 1.9;
        let (r1, c1) = self.centroid();
        let (r2, c2) = other.centroid();
        ((r1 - r2).powi(2) + (c1 - c2).powi(2)).sqrt() * MILES_PER_CELL
    }
}

impl fmt::Display for AreaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "area{}", self.0)
    }
}

/// One taxi trip, with the fields the paper's evaluation consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripRecord {
    /// The taxi that served the trip.
    pub taxi: TaxiId,
    /// Trip start, seconds from the start of the trace window.
    pub timestamp: u64,
    /// Trip length in miles.
    pub trip_miles: f64,
    /// Pickup community area.
    pub pickup: AreaId,
    /// Dropoff community area.
    pub dropoff: AreaId,
}

impl TripRecord {
    /// Hour-of-day of the trip start (0–23).
    #[must_use]
    pub fn hour_of_day(&self) -> u8 {
        ((self.timestamp / 3600) % 24) as u8
    }

    /// `true` if this trip touches (picks up or drops off at) `area`.
    #[must_use]
    pub fn touches(&self, area: AreaId) -> bool {
        self.pickup == area || self.dropoff == area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centroid_is_inside_grid() {
        for a in 0..NUM_COMMUNITY_AREAS {
            let (r, c) = AreaId(a).centroid();
            assert!(r > 0.0 && c > 0.0 && r < 10.0 && c < 10.0);
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let a = AreaId(3);
        let b = AreaId(40);
        assert_eq!(a.distance_miles(a), 0.0);
        assert!((a.distance_miles(b) - b.distance_miles(a)).abs() < 1e-12);
        assert!(a.distance_miles(b) > 0.0);
    }

    #[test]
    fn distance_respects_triangle_inequality() {
        let (a, b, c) = (AreaId(0), AreaId(38), AreaId(76));
        assert!(a.distance_miles(c) <= a.distance_miles(b) + b.distance_miles(c) + 1e-12);
    }

    #[test]
    fn hour_of_day_wraps() {
        let rec = TripRecord {
            taxi: TaxiId(1),
            timestamp: 25 * 3600 + 120,
            trip_miles: 2.0,
            pickup: AreaId(0),
            dropoff: AreaId(1),
        };
        assert_eq!(rec.hour_of_day(), 1);
    }

    #[test]
    fn touches_checks_both_ends() {
        let rec = TripRecord {
            taxi: TaxiId(1),
            timestamp: 0,
            trip_miles: 2.0,
            pickup: AreaId(5),
            dropoff: AreaId(9),
        };
        assert!(rec.touches(AreaId(5)));
        assert!(rec.touches(AreaId(9)));
        assert!(!rec.touches(AreaId(7)));
    }

    #[test]
    fn ids_display() {
        assert_eq!(TaxiId(12).to_string(), "taxi12");
        assert_eq!(AreaId(7).to_string(), "area7");
    }
}
