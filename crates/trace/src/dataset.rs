//! The assembled dataset pipeline: trace → PoIs → candidate sellers.

use crate::generator::{generate_trace, TraceConfig};
use crate::poi::extract_pois;
use crate::record::{AreaId, TripRecord};
use crate::sellers::{derive_sellers, TaxiActivity};
use rand::Rng;

/// A ready-to-use evaluation dataset: the raw trace plus the derived PoIs
/// and the ranked candidate-seller pool.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The raw trip records.
    pub records: Vec<TripRecord>,
    /// The `L` extracted PoIs, most popular first.
    pub pois: Vec<AreaId>,
    /// The candidate sellers (up to `M`), best coverage first.
    pub sellers: Vec<TaxiActivity>,
}

impl Dataset {
    /// Builds a dataset: generates the trace, extracts `l` PoIs, derives
    /// up to `m` sellers.
    pub fn build<R: Rng + ?Sized>(config: &TraceConfig, l: usize, m: usize, rng: &mut R) -> Self {
        let records = generate_trace(config, rng);
        let pois = extract_pois(&records, l);
        let sellers = derive_sellers(&records, &pois, m);
        Self {
            records,
            pois,
            sellers,
        }
    }

    /// Number of PoIs `L`.
    #[must_use]
    pub fn l(&self) -> usize {
        self.pois.len()
    }

    /// Number of candidate sellers `M` actually available.
    #[must_use]
    pub fn m(&self) -> usize {
        self.sellers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn build_assembles_paper_scale_dataset() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = Dataset::build(&TraceConfig::paper_scale(), 10, 300, &mut rng);
        assert_eq!(d.l(), 10);
        assert!(d.m() >= 295 && d.m() <= 300);
        assert_eq!(d.records.len(), 27_465);
    }

    #[test]
    fn build_is_deterministic() {
        let a = Dataset::build(&TraceConfig::small(), 5, 40, &mut StdRng::seed_from_u64(1));
        let b = Dataset::build(&TraceConfig::small(), 5, 40, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn sellers_all_touch_pois() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Dataset::build(&TraceConfig::small(), 5, 40, &mut rng);
        for s in &d.sellers {
            assert!(s.pois_covered >= 1);
            let touched = d
                .records
                .iter()
                .any(|r| r.taxi == s.taxi && d.pois.iter().any(|&p| r.touches(p)));
            assert!(touched);
        }
    }
}
