//! The seeded synthetic trace generator.
//!
//! Structural properties matched to the real Chicago dump (and to what the
//! paper's pipeline actually consumes):
//!
//! - **Zipf-popular areas**: pickup/dropoff demand concentrates on a few
//!   hotspot community areas (the Loop, airports…), so a top-`L` PoI
//!   extraction is meaningful;
//! - **home-area-biased taxis**: each taxi favours trips near its home
//!   area, so different taxis cover different PoIs (seller derivation is
//!   non-trivial);
//! - **two-peak demand curve**: trip timestamps follow a morning/evening
//!   rush-hour mixture;
//! - **distance-consistent miles**: `trip_miles` = centroid distance plus
//!   log-normal-ish noise.

use crate::record::{AreaId, TaxiId, TripRecord, NUM_COMMUNITY_AREAS};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of distinct taxis (the paper finds 300 in its window).
    pub num_taxis: u32,
    /// Number of trip records (the paper's window holds 27 465).
    pub num_records: usize,
    /// Number of days the trace spans.
    pub num_days: u32,
    /// Zipf exponent of area popularity (≈1 gives a realistic skew).
    pub popularity_exponent: f64,
    /// Probability that a trip starts from the taxi's home neighbourhood
    /// instead of a popularity-sampled area.
    pub home_bias: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            num_taxis: 300,
            num_records: 27_465,
            num_days: 7,
            popularity_exponent: 1.0,
            home_bias: 0.35,
        }
    }
}

impl TraceConfig {
    /// The paper's evaluation-scale trace (300 taxis, 27 465 records).
    #[must_use]
    pub fn paper_scale() -> Self {
        Self::default()
    }

    /// A small trace for fast tests and examples.
    #[must_use]
    pub fn small() -> Self {
        Self {
            num_taxis: 40,
            num_records: 2_000,
            ..Self::default()
        }
    }
}

/// Generates a trace, deterministically for a given RNG state.
pub fn generate_trace<R: Rng + ?Sized>(config: &TraceConfig, rng: &mut R) -> Vec<TripRecord> {
    let popularity = zipf_weights(NUM_COMMUNITY_AREAS as usize, config.popularity_exponent);
    let hourly = hourly_weights();

    // Each taxi gets a home area, itself popularity-weighted (drivers base
    // where the work is).
    let homes: Vec<AreaId> = (0..config.num_taxis)
        .map(|_| AreaId(sample_weighted(&popularity, rng) as u16))
        .collect();

    let mut records = Vec::with_capacity(config.num_records);
    for _ in 0..config.num_records {
        let taxi_idx = rng.gen_range(0..config.num_taxis);
        let taxi = TaxiId(taxi_idx);
        let home = homes[taxi_idx as usize];

        let pickup = if rng.gen_bool(config.home_bias) {
            neighbour_of(home, rng)
        } else {
            AreaId(sample_weighted(&popularity, rng) as u16)
        };
        let dropoff = AreaId(sample_weighted(&popularity, rng) as u16);

        let day = rng.gen_range(0..config.num_days) as u64;
        let hour = sample_weighted(&hourly, rng) as u64;
        let sec_in_hour = rng.gen_range(0..3600u64);
        let timestamp = day * 86_400 + hour * 3_600 + sec_in_hour;

        let base = pickup.distance_miles(dropoff).max(0.3);
        let noise: f64 = rng.gen_range(0.85..1.35); // detours, never shortcuts below 85%
        let trip_miles = base * noise;

        records.push(TripRecord {
            taxi,
            timestamp,
            trip_miles,
            pickup,
            dropoff,
        });
    }
    records.sort_by_key(|r| (r.timestamp, r.taxi.0));
    records
}

/// Zipf weights `w_i ∝ 1 / (i+1)^s` over `n` items.
fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

/// Two-peak hourly demand: base load plus Gaussian bumps at 8 am and 6 pm.
fn hourly_weights() -> Vec<f64> {
    (0..24)
        .map(|h| {
            let h = h as f64;
            let morning = (-((h - 8.0) / 2.0).powi(2)).exp();
            let evening = (-((h - 18.0) / 2.5).powi(2)).exp();
            0.2 + 1.0 * morning + 1.2 * evening
        })
        .collect()
}

/// Samples an index proportionally to `weights`.
fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// A uniformly-chosen grid neighbour of `area` (or the area itself).
fn neighbour_of<R: Rng + ?Sized>(area: AreaId, rng: &mut R) -> AreaId {
    let side = (f64::from(NUM_COMMUNITY_AREAS)).sqrt().ceil() as i32;
    let row = i32::from(area.0) / side;
    let col = i32::from(area.0) % side;
    let dr = rng.gen_range(-1..=1);
    let dc = rng.gen_range(-1..=1);
    let nr = (row + dr).clamp(0, side - 1);
    let nc = (col + dc).clamp(0, side - 1);
    let id = (nr * side + nc) as u16;
    AreaId(id.min(NUM_COMMUNITY_AREAS - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn trace(seed: u64) -> Vec<TripRecord> {
        generate_trace(
            &TraceConfig::paper_scale(),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn generates_requested_record_count() {
        let t = trace(1);
        assert_eq!(t.len(), 27_465);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(trace(7), trace(7));
        assert_ne!(trace(7), trace(8));
    }

    #[test]
    fn records_are_time_sorted() {
        let t = trace(2);
        assert!(t.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn all_fields_are_in_domain() {
        let cfg = TraceConfig::paper_scale();
        for r in trace(3) {
            assert!(r.taxi.0 < cfg.num_taxis);
            assert!(r.pickup.0 < NUM_COMMUNITY_AREAS);
            assert!(r.dropoff.0 < NUM_COMMUNITY_AREAS);
            assert!(r.trip_miles > 0.0 && r.trip_miles < 60.0);
            assert!(r.timestamp < u64::from(cfg.num_days) * 86_400);
        }
    }

    #[test]
    fn area_popularity_is_skewed() {
        let t = trace(4);
        let mut counts: HashMap<u16, usize> = HashMap::new();
        for r in &t {
            *counts.entry(r.pickup.0).or_default() += 1;
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf-ish: the top area should see many times the median load.
        let median = freq[freq.len() / 2];
        assert!(
            freq[0] > 5 * median,
            "top {} vs median {median} — demand should concentrate",
            freq[0]
        );
    }

    #[test]
    fn demand_has_rush_hour_peaks() {
        let t = trace(5);
        let mut by_hour = [0usize; 24];
        for r in &t {
            by_hour[r.hour_of_day() as usize] += 1;
        }
        let night = by_hour[3];
        let evening = by_hour[18];
        assert!(
            evening > 3 * night,
            "evening {evening} should dwarf 3 am {night}"
        );
    }

    #[test]
    fn most_taxis_appear() {
        let t = trace(6);
        let distinct: std::collections::HashSet<u32> = t.iter().map(|r| r.taxi.0).collect();
        assert!(
            distinct.len() > 290,
            "{} of 300 taxis active",
            distinct.len()
        );
    }

    #[test]
    fn trip_miles_track_centroid_distance() {
        for r in trace(7).iter().take(500) {
            let base = r.pickup.distance_miles(r.dropoff).max(0.3);
            assert!(r.trip_miles >= base * 0.85 - 1e-9);
            assert!(r.trip_miles <= base * 1.35 + 1e-9);
        }
    }

    #[test]
    fn small_config_is_smaller() {
        let t = generate_trace(&TraceConfig::small(), &mut StdRng::seed_from_u64(1));
        assert_eq!(t.len(), 2_000);
    }
}
