//! Seller derivation: "the taxis which pick up or drop off passengers at
//! these points can complete the data collection job, which are regarded
//! as the data sellers" (Sec. V-A).

use crate::record::{AreaId, TaxiId, TripRecord};
use std::collections::{HashMap, HashSet};

/// A taxi's activity profile with respect to a PoI set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxiActivity {
    /// The taxi.
    pub taxi: TaxiId,
    /// How many distinct PoIs the taxi touched.
    pub pois_covered: usize,
    /// How many trips touched at least one PoI.
    pub poi_trips: usize,
}

/// Ranks the taxis that touch at least one PoI by
/// `(pois_covered, poi_trips)` descending (ties toward the lower taxi id),
/// and returns up to `m` of them — the candidate seller set `M`.
///
/// The paper "choose`[s]` M taxis as satisfied sellers" from the eligible
/// pool; ranking by coverage picks the taxis most capable of serving all
/// `L` PoIs per round (Def. 3 requires each selected seller to collect at
/// every PoI).
#[must_use]
pub fn derive_sellers(records: &[TripRecord], pois: &[AreaId], m: usize) -> Vec<TaxiActivity> {
    let poi_set: HashSet<AreaId> = pois.iter().copied().collect();
    let mut covered: HashMap<TaxiId, HashSet<AreaId>> = HashMap::new();
    let mut trips: HashMap<TaxiId, usize> = HashMap::new();

    for r in records {
        let mut touched = false;
        for &p in pois {
            if r.touches(p) {
                covered.entry(r.taxi).or_default().insert(p);
                touched = true;
            }
        }
        // `poi_set` guards the degenerate empty-PoI case.
        if touched && !poi_set.is_empty() {
            *trips.entry(r.taxi).or_default() += 1;
        }
    }

    let mut activities: Vec<TaxiActivity> = covered
        .into_iter()
        .map(|(taxi, set)| TaxiActivity {
            taxi,
            pois_covered: set.len(),
            poi_trips: trips.get(&taxi).copied().unwrap_or(0),
        })
        .collect();
    activities.sort_by(|x, y| {
        y.pois_covered
            .cmp(&x.pois_covered)
            .then(y.poi_trips.cmp(&x.poi_trips))
            .then(x.taxi.0.cmp(&y.taxi.0))
    });
    activities.truncate(m);
    activities
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_trace, TraceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rec(taxi: u32, pickup: u16, dropoff: u16) -> TripRecord {
        TripRecord {
            taxi: TaxiId(taxi),
            timestamp: 0,
            trip_miles: 1.0,
            pickup: AreaId(pickup),
            dropoff: AreaId(dropoff),
        }
    }

    #[test]
    fn ranks_by_coverage_then_trips() {
        let pois = vec![AreaId(1), AreaId(2), AreaId(3)];
        let records = vec![
            rec(10, 1, 2), // taxi 10 covers {1,2}, 1 trip
            rec(11, 1, 5), // taxi 11 covers {1}, 2 trips
            rec(11, 1, 6),
            rec(12, 1, 2), // taxi 12 covers {1,2,3}, 2 trips
            rec(12, 3, 7),
            rec(13, 8, 9), // taxi 13 never touches a PoI
        ];
        let sellers = derive_sellers(&records, &pois, 10);
        let order: Vec<u32> = sellers.iter().map(|a| a.taxi.0).collect();
        assert_eq!(order, vec![12, 10, 11]);
        assert_eq!(sellers[0].pois_covered, 3);
        assert_eq!(sellers[0].poi_trips, 2);
    }

    #[test]
    fn truncates_to_m() {
        let pois = vec![AreaId(1)];
        let records = vec![rec(1, 1, 0), rec(2, 1, 0), rec(3, 1, 0)];
        assert_eq!(derive_sellers(&records, &pois, 2).len(), 2);
    }

    #[test]
    fn ineligible_taxis_are_excluded() {
        let pois = vec![AreaId(1)];
        let records = vec![rec(1, 1, 0), rec(2, 5, 6)];
        let sellers = derive_sellers(&records, &pois, 10);
        assert_eq!(sellers.len(), 1);
        assert_eq!(sellers[0].taxi, TaxiId(1));
    }

    #[test]
    fn paper_scale_yields_enough_sellers() {
        // The paper finds 300 eligible taxis for L = 10 PoIs; our hotspot
        // generator should make nearly all 300 taxis touch a top-10 area.
        let t = generate_trace(&TraceConfig::paper_scale(), &mut StdRng::seed_from_u64(1));
        let pois = crate::poi::extract_pois(&t, 10);
        let sellers = derive_sellers(&t, &pois, 300);
        assert!(sellers.len() >= 295, "{} eligible taxis", sellers.len());
    }

    #[test]
    fn tie_breaks_toward_lower_taxi_id() {
        let pois = vec![AreaId(1)];
        let records = vec![rec(7, 1, 0), rec(3, 1, 0)];
        let sellers = derive_sellers(&records, &pois, 2);
        assert_eq!(sellers[0].taxi, TaxiId(3));
    }

    #[test]
    fn empty_pois_yield_no_sellers() {
        let records = vec![rec(1, 1, 2)];
        assert!(derive_sellers(&records, &[], 5).is_empty());
    }
}
