//! The per-round protocol state machine.
//!
//! Enforced invariants:
//!
//! - the job is published exactly once, before anything else;
//! - rounds run in order `0, 1, 2, …` with the phase sequence
//!   `SellersSelected → StrategyDetermined → DataCollected →
//!   StatisticsDelivered → PaymentsSettled`;
//! - the strategy's arity matches the selection (`one τ per seller`);
//! - settlement amounts match the recorded strategy:
//!   `consumer_payment = p^J Στ` and `seller_payments[i] = p·τ_i`
//!   (within a 1e-6 relative tolerance);
//! - `JobCompleted` only after the final round settled, with the correct
//!   round count.

use crate::event::MarketEvent;
use cdt_types::Round;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Violations the state machine can detect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtocolError {
    /// An event arrived before `JobPublished` (or a second publish).
    JobLifecycle {
        /// Description of the violation.
        message: String,
    },
    /// A round-phase ordering violation.
    OutOfOrder {
        /// What arrived.
        got: String,
        /// What the machine expected.
        expected: String,
    },
    /// A payload inconsistency (arity or amounts).
    Inconsistent {
        /// Description of the mismatch.
        message: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::JobLifecycle { message } => write!(f, "job lifecycle: {message}"),
            ProtocolError::OutOfOrder { got, expected } => {
                write!(f, "out of order: got {got}, expected {expected}")
            }
            ProtocolError::Inconsistent { message } => write!(f, "inconsistent: {message}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The phase within the current round: which event the machine awaits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(clippy::enum_variant_names)] // the `Await` prefix is the point
enum Phase {
    AwaitSelection,
    AwaitStrategy,
    AwaitData,
    AwaitStatistics,
    AwaitSettlement,
}

/// Replayable protocol state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolState {
    published: bool,
    completed: bool,
    current_round: Round,
    phase: Phase,
    /// Selection arity of the in-flight round.
    selection_len: Option<usize>,
    /// `⟨p^J, p, τ⟩` of the in-flight round, for settlement checking.
    strategy: Option<(f64, f64, Vec<f64>)>,
    settled_rounds: usize,
}

impl Default for ProtocolState {
    fn default() -> Self {
        Self::new()
    }
}

impl ProtocolState {
    /// A fresh market: nothing published yet.
    #[must_use]
    pub fn new() -> Self {
        Self {
            published: false,
            completed: false,
            current_round: Round(0),
            phase: Phase::AwaitSelection,
            selection_len: None,
            strategy: None,
            settled_rounds: 0,
        }
    }

    /// Rounds fully settled so far.
    #[must_use]
    pub fn settled_rounds(&self) -> usize {
        self.settled_rounds
    }

    /// `true` once `JobCompleted` was accepted.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// `true` once `JobPublished` was accepted.
    #[must_use]
    pub fn is_published(&self) -> bool {
        self.published
    }

    /// The round the machine currently expects events for (one past the
    /// last settled round).
    #[must_use]
    pub fn current_round(&self) -> Round {
        self.current_round
    }

    /// `true` when the machine sits on a settlement boundary: no round is
    /// in flight (the next event must be a `SellersSelected` or
    /// `JobCompleted`). Recovery must always land in this state.
    #[must_use]
    pub fn at_round_boundary(&self) -> bool {
        self.phase == Phase::AwaitSelection
    }

    fn expect_round(&self, round: Round, got: &MarketEvent) -> Result<(), ProtocolError> {
        if round != self.current_round {
            return Err(ProtocolError::OutOfOrder {
                got: format!("{} for {round}", got.kind()),
                expected: format!("events for {}", self.current_round),
            });
        }
        Ok(())
    }

    fn expect_phase(&self, phase: Phase, got: &MarketEvent) -> Result<(), ProtocolError> {
        if self.phase != phase {
            return Err(ProtocolError::OutOfOrder {
                got: got.kind().to_owned(),
                expected: format!("{:?}", self.phase),
            });
        }
        Ok(())
    }

    /// Applies one event, advancing the machine or rejecting the event.
    ///
    /// # Errors
    /// Returns the specific [`ProtocolError`] the event violates; state is
    /// unchanged on error.
    pub fn apply(&mut self, event: &MarketEvent) -> Result<(), ProtocolError> {
        if self.completed {
            return Err(ProtocolError::JobLifecycle {
                message: format!("{} after JobCompleted", event.kind()),
            });
        }
        match event {
            MarketEvent::JobPublished { .. } => {
                if self.published {
                    return Err(ProtocolError::JobLifecycle {
                        message: "job published twice".into(),
                    });
                }
                self.published = true;
                Ok(())
            }
            _ if !self.published => Err(ProtocolError::JobLifecycle {
                message: format!("{} before JobPublished", event.kind()),
            }),
            MarketEvent::SellersSelected { round, sellers } => {
                self.expect_round(*round, event)?;
                self.expect_phase(Phase::AwaitSelection, event)?;
                if sellers.is_empty() {
                    return Err(ProtocolError::Inconsistent {
                        message: "empty selection".into(),
                    });
                }
                self.selection_len = Some(sellers.len());
                self.phase = Phase::AwaitStrategy;
                Ok(())
            }
            MarketEvent::StrategyDetermined {
                round,
                service_price,
                collection_price,
                sensing_times,
            } => {
                self.expect_round(*round, event)?;
                self.expect_phase(Phase::AwaitStrategy, event)?;
                let k = self.selection_len.expect("phase implies selection");
                if sensing_times.len() != k {
                    return Err(ProtocolError::Inconsistent {
                        message: format!("{} sensing times for {k} sellers", sensing_times.len()),
                    });
                }
                if !(service_price.is_finite() && collection_price.is_finite()) {
                    return Err(ProtocolError::Inconsistent {
                        message: "non-finite prices".into(),
                    });
                }
                // Reject a bad τ here, at the event that introduces it: a
                // NaN or negative sensing time would otherwise poison Στ
                // and surface as a confusing settlement mismatch.
                if let Some(bad) = sensing_times
                    .iter()
                    .find(|t| !(t.is_finite() && **t >= 0.0))
                {
                    return Err(ProtocolError::Inconsistent {
                        message: format!("invalid sensing time {bad} (must be finite and >= 0)"),
                    });
                }
                self.strategy = Some((*service_price, *collection_price, sensing_times.clone()));
                self.phase = Phase::AwaitData;
                Ok(())
            }
            MarketEvent::DataCollected {
                round,
                observed_revenue,
            } => {
                self.expect_round(*round, event)?;
                self.expect_phase(Phase::AwaitData, event)?;
                if !(observed_revenue.is_finite() && *observed_revenue >= 0.0) {
                    return Err(ProtocolError::Inconsistent {
                        message: format!("invalid revenue {observed_revenue}"),
                    });
                }
                self.phase = Phase::AwaitStatistics;
                Ok(())
            }
            MarketEvent::StatisticsDelivered { round } => {
                self.expect_round(*round, event)?;
                self.expect_phase(Phase::AwaitStatistics, event)?;
                self.phase = Phase::AwaitSettlement;
                Ok(())
            }
            MarketEvent::PaymentsSettled {
                round,
                consumer_payment,
                seller_payments,
            } => {
                self.expect_round(*round, event)?;
                self.expect_phase(Phase::AwaitSettlement, event)?;
                if !consumer_payment.is_finite() {
                    return Err(ProtocolError::Inconsistent {
                        message: format!("non-finite consumer payment {consumer_payment}"),
                    });
                }
                if let Some(bad) = seller_payments.iter().find(|p| !p.is_finite()) {
                    return Err(ProtocolError::Inconsistent {
                        message: format!("non-finite seller payment {bad}"),
                    });
                }
                let (pj, p, taus) = self.strategy.as_ref().expect("phase implies strategy");
                let total: f64 = taus.iter().sum();
                let expected_consumer = pj * total;
                if !approx(*consumer_payment, expected_consumer) {
                    return Err(ProtocolError::Inconsistent {
                        message: format!(
                            "consumer payment {consumer_payment} != p^J·Στ = {expected_consumer}"
                        ),
                    });
                }
                if seller_payments.len() != taus.len() {
                    return Err(ProtocolError::Inconsistent {
                        message: "seller payment arity mismatch".into(),
                    });
                }
                for (i, (&paid, &tau)) in seller_payments.iter().zip(taus).enumerate() {
                    let expected = p * tau;
                    if !approx(paid, expected) {
                        return Err(ProtocolError::Inconsistent {
                            message: format!("seller {i} paid {paid}, strategy implies {expected}"),
                        });
                    }
                }
                self.settled_rounds += 1;
                self.current_round = self.current_round.next();
                self.phase = Phase::AwaitSelection;
                self.selection_len = None;
                self.strategy = None;
                Ok(())
            }
            MarketEvent::JobCompleted { rounds } => {
                if self.phase != Phase::AwaitSelection {
                    return Err(ProtocolError::OutOfOrder {
                        got: "JobCompleted".into(),
                        expected: "settlement of the in-flight round".into(),
                    });
                }
                if *rounds != self.settled_rounds {
                    return Err(ProtocolError::Inconsistent {
                        message: format!(
                            "JobCompleted claims {rounds} rounds, {} settled",
                            self.settled_rounds
                        ),
                    });
                }
                self.completed = true;
                Ok(())
            }
        }
    }
}

fn approx(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-6 * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_types::{JobSpec, SellerId};

    fn job() -> MarketEvent {
        MarketEvent::JobPublished {
            job: JobSpec::new(4, 2, 10.0).unwrap(),
        }
    }

    fn round_events(t: usize) -> Vec<MarketEvent> {
        vec![
            MarketEvent::SellersSelected {
                round: Round(t),
                sellers: vec![SellerId(0), SellerId(1)],
            },
            MarketEvent::StrategyDetermined {
                round: Round(t),
                service_price: 4.0,
                collection_price: 1.5,
                sensing_times: vec![2.0, 3.0],
            },
            MarketEvent::DataCollected {
                round: Round(t),
                observed_revenue: 5.5,
            },
            MarketEvent::StatisticsDelivered { round: Round(t) },
            MarketEvent::PaymentsSettled {
                round: Round(t),
                consumer_payment: 4.0 * 5.0,
                seller_payments: vec![1.5 * 2.0, 1.5 * 3.0],
            },
        ]
    }

    #[test]
    fn happy_path_two_rounds() {
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        for t in 0..2 {
            for e in round_events(t) {
                s.apply(&e).unwrap();
            }
        }
        s.apply(&MarketEvent::JobCompleted { rounds: 2 }).unwrap();
        assert!(s.is_completed());
        assert_eq!(s.settled_rounds(), 2);
    }

    #[test]
    fn rejects_events_before_publish() {
        let mut s = ProtocolState::new();
        let e = &round_events(0)[0];
        assert!(matches!(
            s.apply(e),
            Err(ProtocolError::JobLifecycle { .. })
        ));
    }

    #[test]
    fn rejects_double_publish() {
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        assert!(s.apply(&job()).is_err());
    }

    #[test]
    fn rejects_phase_skips() {
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        let evs = round_events(0);
        s.apply(&evs[0]).unwrap();
        // Skip the strategy: data cannot arrive yet.
        assert!(matches!(
            s.apply(&evs[2]),
            Err(ProtocolError::OutOfOrder { .. })
        ));
    }

    #[test]
    fn rejects_wrong_round() {
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        let evs = round_events(1); // machine expects round 0
        assert!(matches!(
            s.apply(&evs[0]),
            Err(ProtocolError::OutOfOrder { .. })
        ));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        s.apply(&round_events(0)[0]).unwrap();
        let bad = MarketEvent::StrategyDetermined {
            round: Round(0),
            service_price: 4.0,
            collection_price: 1.5,
            sensing_times: vec![2.0], // 1 tau for 2 sellers
        };
        assert!(matches!(
            s.apply(&bad),
            Err(ProtocolError::Inconsistent { .. })
        ));
    }

    #[test]
    fn rejects_nan_or_negative_sensing_times() {
        for bad_tau in [f64::NAN, f64::INFINITY, -1.0] {
            let mut s = ProtocolState::new();
            s.apply(&job()).unwrap();
            s.apply(&round_events(0)[0]).unwrap();
            let bad = MarketEvent::StrategyDetermined {
                round: Round(0),
                service_price: 4.0,
                collection_price: 1.5,
                sensing_times: vec![2.0, bad_tau],
            };
            let err = s.apply(&bad).unwrap_err();
            assert!(
                err.to_string().contains("invalid sensing time"),
                "tau {bad_tau}: {err}"
            );
        }
    }

    #[test]
    fn zero_sensing_time_is_legal() {
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        s.apply(&round_events(0)[0]).unwrap();
        s.apply(&MarketEvent::StrategyDetermined {
            round: Round(0),
            service_price: 4.0,
            collection_price: 1.5,
            sensing_times: vec![0.0, 3.0],
        })
        .unwrap();
    }

    #[test]
    fn rejects_non_finite_payments_precisely() {
        // A NaN consumer payment must be rejected as non-finite, not as a
        // (vacuous) amount mismatch.
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        let evs = round_events(0);
        for e in &evs[..4] {
            s.apply(e).unwrap();
        }
        let err = s
            .apply(&MarketEvent::PaymentsSettled {
                round: Round(0),
                consumer_payment: f64::NAN,
                seller_payments: vec![3.0, 4.5],
            })
            .unwrap_err();
        assert!(
            err.to_string().contains("non-finite consumer payment"),
            "{err}"
        );
        let err = s
            .apply(&MarketEvent::PaymentsSettled {
                round: Round(0),
                consumer_payment: 20.0,
                seller_payments: vec![3.0, f64::INFINITY],
            })
            .unwrap_err();
        assert!(
            err.to_string().contains("non-finite seller payment"),
            "{err}"
        );
    }

    #[test]
    fn rejects_payment_mismatch() {
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        let evs = round_events(0);
        for e in &evs[..4] {
            s.apply(e).unwrap();
        }
        let bad = MarketEvent::PaymentsSettled {
            round: Round(0),
            consumer_payment: 999.0, // != p^J·Στ = 20
            seller_payments: vec![3.0, 4.5],
        };
        let err = s.apply(&bad).unwrap_err();
        assert!(err.to_string().contains("consumer payment"));
    }

    #[test]
    fn rejects_short_changed_seller() {
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        let evs = round_events(0);
        for e in &evs[..4] {
            s.apply(e).unwrap();
        }
        let bad = MarketEvent::PaymentsSettled {
            round: Round(0),
            consumer_payment: 20.0,
            seller_payments: vec![3.0, 1.0], // seller 1 shorted (4.5 due)
        };
        let err = s.apply(&bad).unwrap_err();
        assert!(err.to_string().contains("seller 1"));
    }

    #[test]
    fn rejects_premature_or_wrong_completion() {
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        let evs = round_events(0);
        s.apply(&evs[0]).unwrap();
        // Mid-round completion.
        assert!(s.apply(&MarketEvent::JobCompleted { rounds: 0 }).is_err());
        for e in &evs[1..] {
            s.apply(e).unwrap();
        }
        // Wrong round count.
        assert!(s.apply(&MarketEvent::JobCompleted { rounds: 5 }).is_err());
        s.apply(&MarketEvent::JobCompleted { rounds: 1 }).unwrap();
        // Nothing after completion.
        assert!(s.apply(&round_events(1)[0]).is_err());
    }

    #[test]
    fn failed_apply_leaves_state_unchanged() {
        let mut s = ProtocolState::new();
        s.apply(&job()).unwrap();
        s.apply(&round_events(0)[0]).unwrap();
        let before = s.clone();
        let _ = s.apply(&round_events(1)[1]); // wrong round
        assert_eq!(s, before);
    }
}
