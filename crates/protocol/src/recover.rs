//! Truncation-tolerant journal recovery.
//!
//! [`EventLog::from_json_lines`] is all-or-nothing: any bad line rejects
//! the whole journal. That is the right contract for audit, but a journal
//! left behind by a killed run (`<path>.partial` from
//! [`crate::JournalSink`]) legitimately ends mid-round. This module
//! replays as far as the history stays valid and keeps the longest prefix
//! that ends on a *settlement boundary* — after `JobPublished`, after any
//! `PaymentsSettled`, or after `JobCompleted` — reporting where and why
//! replay stopped.

use crate::event::MarketEvent;
use crate::log::EventLog;
use crate::state::ProtocolState;

/// Where and why a recovery replay stopped short of the journal's end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryStop {
    /// 1-based line number of the offending (or last in-flight) line.
    pub line: usize,
    /// Human-readable cause: bad JSON, protocol violation, or mid-round
    /// truncation.
    pub reason: String,
}

/// The result of a truncation-tolerant replay.
#[derive(Debug)]
pub struct Recovery {
    /// The longest valid prefix ending on a settlement boundary.
    pub log: EventLog,
    /// Whether the recovered prefix ends with `JobCompleted`.
    pub completed: bool,
    /// Non-empty lines scanned (including any rejected one).
    pub lines_read: usize,
    /// Events that parsed and replayed cleanly (the kept prefix plus any
    /// in-flight events of an unsettled trailing round).
    pub events_replayed: usize,
    /// `None` when the journal is a clean boundary-terminated history;
    /// otherwise where and why replay stopped.
    pub stop: Option<RecoveryStop>,
}

impl Recovery {
    /// Rounds fully settled in the recovered prefix.
    #[must_use]
    pub fn settled_rounds(&self) -> usize {
        self.log.state().settled_rounds()
    }

    /// Cleanly replayed events that were discarded because their round
    /// never settled.
    #[must_use]
    pub fn dropped_events(&self) -> usize {
        self.events_replayed - self.log.len()
    }
}

/// Replays `input` (JSON lines, as written by [`crate::JournalSink`] or
/// [`EventLog::to_json_lines`]) and recovers the longest settled-round
/// prefix. Never fails: an empty or immediately invalid journal recovers
/// an empty log with the stop report explaining why.
#[must_use]
pub fn recover_json_lines(input: &str) -> Recovery {
    let mut state = ProtocolState::new();
    let mut events: Vec<MarketEvent> = Vec::new();
    let mut boundary = 0usize;
    let mut lines_read = 0usize;
    let mut last_line_no = 0usize;
    let mut stop = None;

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        lines_read += 1;
        last_line_no = line_no;
        let event: MarketEvent = match serde_json::from_str(line) {
            Ok(event) => event,
            Err(e) => {
                stop = Some(RecoveryStop {
                    line: line_no,
                    reason: format!("bad event JSON: {e}"),
                });
                break;
            }
        };
        if let Err(e) = state.apply(&event) {
            stop = Some(RecoveryStop {
                line: line_no,
                reason: format!("protocol violation: {e}"),
            });
            break;
        }
        let is_boundary = event.is_settlement_boundary();
        events.push(event);
        if is_boundary {
            boundary = events.len();
        }
    }

    let events_replayed = events.len();
    if stop.is_none() && boundary < events_replayed {
        stop = Some(RecoveryStop {
            line: last_line_no,
            reason: format!(
                "journal ends mid-round ({} in-flight event{} discarded)",
                events_replayed - boundary,
                if events_replayed - boundary == 1 {
                    ""
                } else {
                    "s"
                }
            ),
        });
    }

    let mut log = EventLog::new();
    for event in events.into_iter().take(boundary) {
        log.append(event)
            .expect("a validated prefix replays unchanged");
    }
    Recovery {
        completed: log.state().is_completed(),
        log,
        lines_read,
        events_replayed,
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_types::{JobSpec, Round, SellerId};
    use proptest::prelude::*;

    /// The first `n` lines of `text`, newline-terminated.
    fn take_lines(text: &str, n: usize) -> String {
        let mut out = String::new();
        for line in text.lines().take(n) {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    fn journal_lines(rounds: usize, completed: bool) -> String {
        let mut log = EventLog::new();
        log.append(MarketEvent::JobPublished {
            job: JobSpec::new(4, 2, 10.0).unwrap(),
        })
        .unwrap();
        for t in 0..rounds {
            log.append(MarketEvent::SellersSelected {
                round: Round(t),
                sellers: vec![SellerId(0), SellerId(1)],
            })
            .unwrap();
            log.append(MarketEvent::StrategyDetermined {
                round: Round(t),
                service_price: 4.0,
                collection_price: 1.5,
                sensing_times: vec![2.0, 3.0],
            })
            .unwrap();
            log.append(MarketEvent::DataCollected {
                round: Round(t),
                observed_revenue: 5.5,
            })
            .unwrap();
            log.append(MarketEvent::StatisticsDelivered { round: Round(t) })
                .unwrap();
            log.append(MarketEvent::PaymentsSettled {
                round: Round(t),
                consumer_payment: 20.0,
                seller_payments: vec![3.0, 4.5],
            })
            .unwrap();
        }
        if completed {
            log.append(MarketEvent::JobCompleted { rounds }).unwrap();
        }
        log.to_json_lines()
    }

    #[test]
    fn complete_journal_recovers_fully() {
        let text = journal_lines(3, true);
        let rec = recover_json_lines(&text);
        assert!(rec.completed);
        assert_eq!(rec.settled_rounds(), 3);
        assert_eq!(rec.dropped_events(), 0);
        assert!(rec.stop.is_none());
    }

    #[test]
    fn mid_round_truncation_keeps_settled_prefix() {
        let text = journal_lines(3, false);
        // Cut into round 2: keep publish + 2 full rounds + 3 events of the
        // third round.
        let cut = take_lines(&text, 1 + 2 * 5 + 3);
        let rec = recover_json_lines(&cut);
        assert_eq!(rec.settled_rounds(), 2);
        assert_eq!(rec.log.len(), 11);
        assert_eq!(rec.dropped_events(), 3);
        let stop = rec.stop.unwrap();
        assert_eq!(stop.line, 14);
        assert!(stop.reason.contains("mid-round"), "{}", stop.reason);
    }

    #[test]
    fn garbage_line_stops_replay_at_last_boundary() {
        let mut text = journal_lines(2, false);
        text.push_str("{\"not\": \"an event\"}\n");
        let rec = recover_json_lines(&text);
        assert_eq!(rec.settled_rounds(), 2);
        let stop = rec.stop.unwrap();
        assert_eq!(stop.line, 12);
        assert!(stop.reason.contains("bad event JSON"), "{}", stop.reason);
    }

    #[test]
    fn violation_stops_replay_with_reason() {
        let mut text = journal_lines(1, false);
        // Round 5 cannot follow round 0: a protocol violation, not JSON rot.
        text.push_str(
            &serde_json::to_string(&MarketEvent::SellersSelected {
                round: Round(5),
                sellers: vec![SellerId(0)],
            })
            .unwrap(),
        );
        text.push('\n');
        let rec = recover_json_lines(&text);
        assert_eq!(rec.settled_rounds(), 1);
        let stop = rec.stop.unwrap();
        assert!(
            stop.reason.contains("protocol violation"),
            "{}",
            stop.reason
        );
    }

    #[test]
    fn empty_input_recovers_empty_log() {
        let rec = recover_json_lines("");
        assert_eq!(rec.settled_rounds(), 0);
        assert!(rec.log.is_empty());
        assert!(rec.stop.is_none());
        assert!(!rec.completed);
    }

    #[test]
    fn bytewise_truncation_mid_line_recovers_prefix() {
        let text = journal_lines(2, true);
        // Chop the last line in half: the torn JSON stops replay, the
        // settled prefix survives.
        let cut = &text[..text.len() - 8];
        let rec = recover_json_lines(cut);
        assert_eq!(rec.settled_rounds(), 2);
        assert!(!rec.completed);
        assert!(rec.stop.unwrap().reason.contains("bad event JSON"));
    }

    proptest! {
        /// Truncating at ANY settlement boundary recovers exactly that
        /// prefix: all settled rounds kept, nothing dropped, no stop
        /// report mistaking a clean prefix for corruption.
        #[test]
        fn boundary_truncation_recovers_exact_prefix(
            rounds in 1usize..8,
            keep in 0usize..8,
        ) {
            let keep = keep.min(rounds);
            let text = journal_lines(rounds, false);
            let cut = take_lines(&text, 1 + keep * 5);
            let rec = recover_json_lines(&cut);
            prop_assert_eq!(rec.settled_rounds(), keep);
            prop_assert_eq!(rec.log.len(), 1 + keep * 5);
            prop_assert_eq!(rec.dropped_events(), 0);
            prop_assert!(rec.stop.is_none());
        }

        /// Truncating anywhere *inside* a round recovers the settled
        /// prefix and reports the mid-round stop.
        #[test]
        fn mid_round_truncation_always_reports_stop(
            rounds in 1usize..6,
            keep in 0usize..6,
            offset in 1usize..5,
        ) {
            let keep = keep.min(rounds - 1);
            let text = journal_lines(rounds, false);
            let cut = take_lines(&text, 1 + keep * 5 + offset);
            let rec = recover_json_lines(&cut);
            prop_assert_eq!(rec.settled_rounds(), keep);
            prop_assert_eq!(rec.dropped_events(), offset);
            prop_assert!(rec.stop.is_some());
        }
    }
}
