//! Append-only, replay-validated event log with JSON-lines round-trip.

use crate::event::MarketEvent;
use crate::state::{ProtocolError, ProtocolState};
use cdt_types::{CdtError, Result};
use serde::{Deserialize, Serialize};

/// An event log that validates every append against the protocol state
/// machine, so an in-memory log is *always* a legal history.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<MarketEvent>,
    state: ProtocolState,
}

impl EventLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The events, in order.
    #[must_use]
    pub fn events(&self) -> &[MarketEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The current protocol state.
    #[must_use]
    pub fn state(&self) -> &ProtocolState {
        &self.state
    }

    /// Validates and appends one event.
    ///
    /// # Errors
    /// Returns the protocol violation; the log is unchanged on error.
    pub fn append(&mut self, event: MarketEvent) -> std::result::Result<(), ProtocolError> {
        self.state.apply(&event)?;
        self.events.push(event);
        Ok(())
    }

    /// Serializes to JSON lines (one event per line).
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("events serialize"));
            out.push('\n');
        }
        out
    }

    /// Parses and *replays* a JSON-lines log, re-validating every event —
    /// a tampered or truncated-mid-round log is rejected.
    ///
    /// # Errors
    /// Returns [`CdtError::TraceParse`] with the offending 1-based line.
    pub fn from_json_lines(input: &str) -> Result<Self> {
        let mut log = Self::new();
        for (idx, line) in input.lines().enumerate() {
            let line_no = idx + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let event: MarketEvent =
                serde_json::from_str(line).map_err(|e| CdtError::TraceParse {
                    line: line_no,
                    message: format!("bad event JSON: {e}"),
                })?;
            log.append(event).map_err(|e| CdtError::TraceParse {
                line: line_no,
                message: format!("protocol violation on replay: {e}"),
            })?;
        }
        Ok(log)
    }

    /// Total consumer spend across all settled rounds (audit query).
    #[must_use]
    pub fn total_consumer_spend(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                MarketEvent::PaymentsSettled {
                    consumer_payment, ..
                } => Some(*consumer_payment),
                _ => None,
            })
            .sum()
    }

    /// Total paid out to sellers across all settled rounds (audit query).
    #[must_use]
    pub fn total_seller_payout(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                MarketEvent::PaymentsSettled {
                    seller_payments, ..
                } => Some(seller_payments.iter().sum::<f64>()),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_types::{JobSpec, Round, SellerId};

    fn full_log() -> EventLog {
        let mut log = EventLog::new();
        log.append(MarketEvent::JobPublished {
            job: JobSpec::new(4, 1, 10.0).unwrap(),
        })
        .unwrap();
        log.append(MarketEvent::SellersSelected {
            round: Round(0),
            sellers: vec![SellerId(2)],
        })
        .unwrap();
        log.append(MarketEvent::StrategyDetermined {
            round: Round(0),
            service_price: 4.0,
            collection_price: 1.0,
            sensing_times: vec![2.0],
        })
        .unwrap();
        log.append(MarketEvent::DataCollected {
            round: Round(0),
            observed_revenue: 3.0,
        })
        .unwrap();
        log.append(MarketEvent::StatisticsDelivered { round: Round(0) })
            .unwrap();
        log.append(MarketEvent::PaymentsSettled {
            round: Round(0),
            consumer_payment: 8.0,
            seller_payments: vec![2.0],
        })
        .unwrap();
        log.append(MarketEvent::JobCompleted { rounds: 1 }).unwrap();
        log
    }

    #[test]
    fn json_lines_round_trip() {
        let log = full_log();
        let text = log.to_json_lines();
        let back = EventLog::from_json_lines(&text).unwrap();
        assert_eq!(back.events(), log.events());
        assert!(back.state().is_completed());
    }

    #[test]
    fn append_rejects_and_preserves_log() {
        let mut log = EventLog::new();
        let bad = MarketEvent::JobCompleted { rounds: 0 };
        assert!(log.append(bad).is_err());
        assert!(log.is_empty());
    }

    #[test]
    fn replay_rejects_tampered_amounts() {
        let log = full_log();
        // Tamper: change the settled consumer payment in the JSON.
        let text = log.to_json_lines().replace("8.0", "80.0");
        let err = EventLog::from_json_lines(&text).unwrap_err();
        assert!(err.to_string().contains("protocol violation"));
    }

    #[test]
    fn replay_rejects_reordered_lines() {
        let log = full_log();
        let text = log.to_json_lines();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(1, 2); // selection and strategy swapped
        let err = EventLog::from_json_lines(&lines.join("\n")).unwrap_err();
        assert!(err.to_string().contains("protocol violation"));
    }

    #[test]
    fn replay_rejects_garbage_json() {
        let err = EventLog::from_json_lines("not json\n").unwrap_err();
        assert!(err.to_string().contains("bad event JSON"));
    }

    #[test]
    fn audit_queries_sum_settlements() {
        let log = full_log();
        assert!((log.total_consumer_spend() - 8.0).abs() < 1e-12);
        assert!((log.total_seller_payout() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_lines_are_skipped() {
        let log = full_log();
        let text = format!("\n{}\n\n", log.to_json_lines());
        assert_eq!(EventLog::from_json_lines(&text).unwrap().len(), log.len());
    }
}
