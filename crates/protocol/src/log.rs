//! Append-only, replay-validated event log with JSON-lines round-trip.

use crate::event::MarketEvent;
use crate::state::{ProtocolError, ProtocolState};
use cdt_types::{CdtError, Result, Round};
use serde::{Deserialize, Serialize};

/// An event log that validates every append against the protocol state
/// machine, so an in-memory log is *always* a legal history.
///
/// Deserialization replays the events through a fresh state machine
/// (rejecting histories that violate the protocol) and, when the JSON
/// carries an embedded `state`, cross-checks it against the replayed one —
/// a serialized log whose state disagrees with its events cannot sneak
/// past the replay validation that [`EventLog::from_json_lines`] enforces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "EventLogRepr")]
pub struct EventLog {
    events: Vec<MarketEvent>,
    state: ProtocolState,
}

/// Wire shape of a serialized [`EventLog`]. The `state` field is optional
/// on input (it is always rebuilt by replay) but checked when present.
#[derive(Deserialize)]
struct EventLogRepr {
    events: Vec<MarketEvent>,
    #[serde(default)]
    state: Option<ProtocolState>,
}

impl TryFrom<EventLogRepr> for EventLog {
    type Error = String;

    fn try_from(repr: EventLogRepr) -> std::result::Result<Self, String> {
        let mut log = EventLog::new();
        for (i, event) in repr.events.into_iter().enumerate() {
            log.append(event)
                .map_err(|e| format!("event {i}: protocol violation on replay: {e}"))?;
        }
        if let Some(state) = repr.state {
            if state != log.state {
                return Err("embedded state disagrees with the replayed events".into());
            }
        }
        Ok(log)
    }
}

impl EventLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The events, in order.
    #[must_use]
    pub fn events(&self) -> &[MarketEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The current protocol state.
    #[must_use]
    pub fn state(&self) -> &ProtocolState {
        &self.state
    }

    /// Validates and appends one event.
    ///
    /// # Errors
    /// Returns the protocol violation; the log is unchanged on error.
    pub fn append(&mut self, event: MarketEvent) -> std::result::Result<(), ProtocolError> {
        self.state.apply(&event)?;
        self.events.push(event);
        Ok(())
    }

    /// Serializes to JSON lines (one event per line).
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("events serialize"));
            out.push('\n');
        }
        out
    }

    /// Parses and *replays* a JSON-lines log, re-validating every event —
    /// a tampered or truncated-mid-round log is rejected.
    ///
    /// # Errors
    /// Returns [`CdtError::TraceParse`] with the offending 1-based line.
    pub fn from_json_lines(input: &str) -> Result<Self> {
        let mut log = Self::new();
        for (idx, line) in input.lines().enumerate() {
            let line_no = idx + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let event: MarketEvent =
                serde_json::from_str(line).map_err(|e| CdtError::TraceParse {
                    line: line_no,
                    message: format!("bad event JSON: {e}"),
                })?;
            log.append(event).map_err(|e| CdtError::TraceParse {
                line: line_no,
                message: format!("protocol violation on replay: {e}"),
            })?;
        }
        Ok(log)
    }

    /// Total consumer spend across all settled rounds (audit query).
    #[must_use]
    pub fn total_consumer_spend(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                MarketEvent::PaymentsSettled {
                    consumer_payment, ..
                } => Some(*consumer_payment),
                _ => None,
            })
            .sum()
    }

    /// Total paid out to sellers across all settled rounds (audit query).
    #[must_use]
    pub fn total_seller_payout(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                MarketEvent::PaymentsSettled {
                    seller_payments, ..
                } => Some(seller_payments.iter().sum::<f64>()),
                _ => None,
            })
            .sum()
    }

    /// The per-round settlements, in round order: `(round,
    /// consumer_payment, seller_payments)` (audit query).
    pub fn settlements(&self) -> impl Iterator<Item = (Round, f64, &[f64])> + '_ {
        self.events.iter().filter_map(|e| match e {
            MarketEvent::PaymentsSettled {
                round,
                consumer_payment,
                seller_payments,
            } => Some((*round, *consumer_payment, seller_payments.as_slice())),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_types::{JobSpec, Round, SellerId};

    fn full_log() -> EventLog {
        let mut log = EventLog::new();
        log.append(MarketEvent::JobPublished {
            job: JobSpec::new(4, 1, 10.0).unwrap(),
        })
        .unwrap();
        log.append(MarketEvent::SellersSelected {
            round: Round(0),
            sellers: vec![SellerId(2)],
        })
        .unwrap();
        log.append(MarketEvent::StrategyDetermined {
            round: Round(0),
            service_price: 4.0,
            collection_price: 1.0,
            sensing_times: vec![2.0],
        })
        .unwrap();
        log.append(MarketEvent::DataCollected {
            round: Round(0),
            observed_revenue: 3.0,
        })
        .unwrap();
        log.append(MarketEvent::StatisticsDelivered { round: Round(0) })
            .unwrap();
        log.append(MarketEvent::PaymentsSettled {
            round: Round(0),
            consumer_payment: 8.0,
            seller_payments: vec![2.0],
        })
        .unwrap();
        log.append(MarketEvent::JobCompleted { rounds: 1 }).unwrap();
        log
    }

    #[test]
    fn json_lines_round_trip() {
        let log = full_log();
        let text = log.to_json_lines();
        let back = EventLog::from_json_lines(&text).unwrap();
        assert_eq!(back.events(), log.events());
        assert!(back.state().is_completed());
    }

    #[test]
    fn append_rejects_and_preserves_log() {
        let mut log = EventLog::new();
        let bad = MarketEvent::JobCompleted { rounds: 0 };
        assert!(log.append(bad).is_err());
        assert!(log.is_empty());
    }

    /// Edits one named field of one journal line at the JSON level —
    /// structured tampering, immune to incidental substring collisions.
    fn tamper_line(text: &str, line_idx: usize, kind: &str, field: &str, value: f64) -> String {
        let mut lines: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        lines[line_idx][kind][field] = value.into();
        let mut out = String::new();
        for v in &lines {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }

    #[test]
    fn replay_rejects_tampered_consumer_payment() {
        let log = full_log();
        // Line 5 is the settlement; inflate the consumer payment tenfold.
        let text = tamper_line(
            &log.to_json_lines(),
            5,
            "PaymentsSettled",
            "consumer_payment",
            80.0,
        );
        let err = EventLog::from_json_lines(&text).unwrap_err();
        assert!(err.to_string().contains("protocol violation"));
    }

    #[test]
    fn replay_rejects_tampered_strategy_price() {
        let log = full_log();
        // Rewriting the agreed price breaks the later settlement check.
        let text = tamper_line(
            &log.to_json_lines(),
            2,
            "StrategyDetermined",
            "service_price",
            0.5,
        );
        let err = EventLog::from_json_lines(&text).unwrap_err();
        assert!(err.to_string().contains("protocol violation"));
    }

    #[test]
    fn replay_rejects_reordered_lines() {
        let log = full_log();
        let text = log.to_json_lines();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(1, 2); // selection and strategy swapped
        let err = EventLog::from_json_lines(&lines.join("\n")).unwrap_err();
        assert!(err.to_string().contains("protocol violation"));
    }

    #[test]
    fn replay_rejects_garbage_json() {
        let err = EventLog::from_json_lines("not json\n").unwrap_err();
        assert!(err.to_string().contains("bad event JSON"));
    }

    #[test]
    fn audit_queries_sum_settlements() {
        let log = full_log();
        assert!((log.total_consumer_spend() - 8.0).abs() < 1e-12);
        assert!((log.total_seller_payout() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_lines_are_skipped() {
        let log = full_log();
        let text = format!("\n{}\n\n", log.to_json_lines());
        assert_eq!(EventLog::from_json_lines(&text).unwrap().len(), log.len());
    }

    #[test]
    fn settlements_iterate_in_round_order() {
        let log = full_log();
        let rows: Vec<_> = log.settlements().collect();
        assert_eq!(rows.len(), 1);
        let (round, consumer, sellers) = rows[0];
        assert_eq!(round, Round(0));
        assert!((consumer - 8.0).abs() < 1e-12);
        assert_eq!(sellers, &[2.0]);
    }

    #[test]
    fn deserialize_replays_and_round_trips() {
        let log = full_log();
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
        assert!(back.state().is_completed());
    }

    #[test]
    fn deserialize_rejects_state_disagreeing_with_events() {
        let log = full_log();
        let mut value: serde_json::Value = serde_json::to_value(&log).unwrap();
        // Forge the embedded state: claim 7 settled rounds against a
        // 1-round history.
        value["state"]["settled_rounds"] = 7.into();
        let err = serde_json::from_value::<EventLog>(value).unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");
    }

    #[test]
    fn deserialize_rejects_protocol_violating_events() {
        let log = full_log();
        let mut value: serde_json::Value = serde_json::to_value(&log).unwrap();
        // Tamper with the events array itself: the replay must catch it
        // even though no state is present at all.
        value["events"][5]["PaymentsSettled"]["consumer_payment"] = 80.0.into();
        value.as_object_mut().unwrap().remove("state");
        let err = serde_json::from_value::<EventLog>(value).unwrap_err();
        assert!(err.to_string().contains("protocol violation"), "{err}");
    }

    #[test]
    fn deserialize_without_embedded_state_rebuilds_it() {
        let log = full_log();
        let mut value: serde_json::Value = serde_json::to_value(&log).unwrap();
        value.as_object_mut().unwrap().remove("state");
        let back: EventLog = serde_json::from_value(value).unwrap();
        assert_eq!(back.state(), log.state());
        assert_eq!(back.state().settled_rounds(), 1);
    }
}
