//! Segment-rotated journal layout: the index, compaction checkpoints, and
//! the loaders the `cdt journal` family shares.
//!
//! A rotated journal for base path `P` is a *directory layout*, not a
//! single file:
//!
//! - `P.seg-NNNN` — sealed segments (4-digit, zero-padded, so lexicographic
//!   order is numeric order). Each segment is plain event JSONL that both
//!   starts and ends on a settlement boundary, so the concatenation of all
//!   segments is byte-identical to the single-file journal of the same
//!   run. The active segment streams into `P.seg-NNNN.partial` and is
//!   atomically renamed when sealed.
//! - `P.idx` — the JSONL index: a header line, an optional checkpoint
//!   reference, then one entry per sealed segment carrying its round
//!   range, event count, FNV-1a byte digest, and the full
//!   [`ProtocolState`] *after* the segment. The index is always rewritten
//!   whole via temp-file + atomic rename, strictly after the segment it
//!   covers is sealed — so every indexed segment exists, and a crash can
//!   at worst leave one sealed-but-unindexed trailing segment (recovery
//!   finds it by scanning).
//! - `P.ckpt-GGGG` — compaction checkpoints. [`compact_journal`] folds a
//!   settled prefix of segments into one self-validating JSON record: the
//!   [`ProtocolState`] snapshot, every folded settlement row, the ledger
//!   totals, a chained digest of the folded bytes, and a content digest
//!   over all of it. Generations are written new-file-first, then the
//!   index flips to the new reference, then the folded segments and the
//!   old checkpoint are deleted — every crash window leaves either the old
//!   or the new generation fully intact (orphans are ignored; the index is
//!   the source of truth).
//!
//! Loading reuses the [`crate::log::EventLog`] replay-verification idiom:
//! the per-segment `state_after` snapshots and the checkpoint state are
//! *cross-checked against replay*, so a forged index or tampered
//! checkpoint is rejected exactly like a forged embedded state in a
//! serialized log.

use crate::diff::SettlementRow;
use crate::event::MarketEvent;
use crate::log::EventLog;
use crate::recover::{recover_json_lines, RecoveryStop};
use crate::state::ProtocolState;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// The index/checkpoint format version this crate writes and reads.
pub const SEGMENT_FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit offset basis (the digest seed for an empty byte stream).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a 64-bit digest. Chain calls to
/// digest a multi-part stream; start from [`FNV_OFFSET`].
#[must_use]
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// What can go wrong reading, validating, or compacting a segmented
/// journal.
#[derive(Debug)]
pub enum SegmentError {
    /// A file could not be read, written, or renamed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The layout is inconsistent, tampered, or torn.
    Corrupt(String),
}

impl SegmentError {
    fn io(path: &Path, source: io::Error) -> Self {
        SegmentError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    fn corrupt(msg: impl Into<String>) -> Self {
        SegmentError::Corrupt(msg.into())
    }
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            SegmentError::Corrupt(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Io { source, .. } => Some(source),
            SegmentError::Corrupt(_) => None,
        }
    }
}

fn suffixed(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// `P.idx` — the segment index of journal base path `P`.
#[must_use]
pub fn index_path(base: &Path) -> PathBuf {
    suffixed(base, ".idx")
}

/// `P.seg-NNNN` — sealed segment `seq` of journal base path `P`.
#[must_use]
pub fn segment_path(base: &Path, seq: u64) -> PathBuf {
    suffixed(base, &format!(".seg-{seq:04}"))
}

/// `P.seg-NNNN.partial` — the active (streaming) segment `seq`.
#[must_use]
pub fn segment_partial_path(base: &Path, seq: u64) -> PathBuf {
    suffixed(base, &format!(".seg-{seq:04}.partial"))
}

/// `P.ckpt-GGGG` — compaction checkpoint generation `generation`.
#[must_use]
pub fn checkpoint_path(base: &Path, generation: u64) -> PathBuf {
    suffixed(base, &format!(".ckpt-{generation:04}"))
}

/// The directory a base path's sibling artifacts live in.
fn base_dir(base: &Path) -> PathBuf {
    base.parent()
        .map_or_else(|| PathBuf::from(""), Path::to_path_buf)
}

fn file_name_of(path: &Path) -> String {
    path.file_name()
        .map_or_else(String::new, |n| n.to_string_lossy().into_owned())
}

/// Scans for any on-disk artifact of journal base path `P` that a fresh
/// [`crate::JournalSink`] would clobber or shadow: `P.partial`, `P.idx`,
/// or any `P.seg-*` / `P.ckpt-*` sibling. Returns the first one found.
///
/// # Errors
/// Propagates directory-listing failures (a missing directory is treated
/// as "no artifacts").
pub fn stray_artifact(base: &Path) -> io::Result<Option<PathBuf>> {
    let partial = suffixed(base, ".partial");
    if partial.exists() {
        return Ok(Some(partial));
    }
    let idx = index_path(base);
    if idx.exists() {
        return Ok(Some(idx));
    }
    let name = file_name_of(base);
    if name.is_empty() {
        return Ok(None);
    }
    let dir = base_dir(base);
    let entries = match std::fs::read_dir(if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        &dir
    }) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let seg_prefix = format!("{name}.seg-");
    let ckpt_prefix = format!("{name}.ckpt-");
    let mut found: Option<PathBuf> = None;
    for entry in entries {
        let entry = entry?;
        let entry_name = entry.file_name().to_string_lossy().into_owned();
        if entry_name.starts_with(&seg_prefix) || entry_name.starts_with(&ckpt_prefix) {
            let path = dir.join(&entry_name);
            // Deterministic pick: the lexicographically first artifact.
            if found.as_ref().is_none_or(|f| path < *f) {
                found = Some(path);
            }
        }
    }
    Ok(found)
}

/// One sealed segment, as recorded in the index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentEntry {
    /// Segment sequence number (monotone across compactions).
    pub seq: u64,
    /// File name (relative to the journal's directory).
    pub file: String,
    /// First round *settled* inside this segment, if any.
    pub first_round: Option<usize>,
    /// Rounds settled inside this segment.
    pub rounds: usize,
    /// Events written to this segment.
    pub events: u64,
    /// FNV-1a 64-bit digest of the segment's bytes.
    pub digest: u64,
    /// The protocol state after the last event of this segment —
    /// cross-checked against replay on every strict load.
    pub state_after: ProtocolState,
}

/// The index's reference to the live compaction checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRef {
    /// Checkpoint generation (the `GGGG` in `P.ckpt-GGGG`).
    pub generation: u64,
    /// Checkpoint file name (relative to the journal's directory).
    pub file: String,
    /// Rounds folded into the checkpoint.
    pub rounds: usize,
    /// Events folded into the checkpoint.
    pub events: u64,
    /// The checkpoint's content digest (must match the file).
    pub digest: u64,
}

/// A compaction checkpoint: the replayable summary of a folded settled
/// prefix. Self-validating via [`Checkpoint::content_digest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`SEGMENT_FORMAT_VERSION`]).
    pub format: u32,
    /// Generation number, incremented per compaction.
    pub generation: u64,
    /// Total segments folded (across all generations).
    pub segments_folded: u64,
    /// Total events folded.
    pub events: u64,
    /// Total rounds settled in the folded prefix.
    pub rounds: usize,
    /// Whether the folded prefix ends with `JobCompleted`.
    pub completed: bool,
    /// Total consumer spend over the folded settlements.
    pub consumer_total: f64,
    /// Total seller payout over the folded settlements.
    pub seller_total: f64,
    /// Chained FNV-1a digest of the folded segments' raw bytes.
    pub bytes_digest: u64,
    /// Protocol state after the folded prefix — replay resumes from here.
    pub state: ProtocolState,
    /// Every folded settlement row, in round order.
    pub settlements: Vec<SettlementRow>,
    /// FNV-1a digest over the canonical serialization of every field
    /// above; loading recomputes and rejects a mismatch.
    pub digest: u64,
}

impl Checkpoint {
    /// The canonical content string the digest covers. Floats are encoded
    /// as their IEEE-754 bit patterns so the digest is exact.
    fn canonical_content(&self) -> String {
        let mut s = format!(
            "format={};generation={};segments_folded={};events={};rounds={};completed={};\
             bytes_digest={:016x};consumer_total={:016x};seller_total={:016x};state={};rows=",
            self.format,
            self.generation,
            self.segments_folded,
            self.events,
            self.rounds,
            self.completed,
            self.bytes_digest,
            self.consumer_total.to_bits(),
            self.seller_total.to_bits(),
            serde_json::to_string(&self.state).expect("state serializes"),
        );
        for row in &self.settlements {
            s.push_str(&format!(
                "{}:{:016x}",
                row.round.index(),
                row.consumer.to_bits()
            ));
            for p in &row.sellers {
                s.push_str(&format!(":{:016x}", p.to_bits()));
            }
            s.push(';');
        }
        s
    }

    /// The FNV-1a digest over the canonical content.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        fnv1a(FNV_OFFSET, self.canonical_content().as_bytes())
    }

    /// Validates the checkpoint's internal consistency: the content digest
    /// matches, the state agrees with the round counts, the rows are a
    /// contiguous `0..rounds` range, and the totals are the exact sums of
    /// the rows.
    ///
    /// # Errors
    /// Returns [`SegmentError::Corrupt`] naming the first inconsistency.
    pub fn validate(&self) -> Result<(), SegmentError> {
        if self.format != SEGMENT_FORMAT_VERSION {
            return Err(SegmentError::corrupt(format!(
                "checkpoint format {} unsupported (expected {SEGMENT_FORMAT_VERSION})",
                self.format
            )));
        }
        if self.digest != self.content_digest() {
            return Err(SegmentError::corrupt(
                "checkpoint content digest mismatch (tampered or torn checkpoint)",
            ));
        }
        if self.state.settled_rounds() != self.rounds || self.settlements.len() != self.rounds {
            return Err(SegmentError::corrupt(
                "checkpoint round count disagrees with its state snapshot",
            ));
        }
        if self.completed != self.state.is_completed() || !self.state.at_round_boundary() {
            return Err(SegmentError::corrupt(
                "checkpoint state is not a settlement boundary",
            ));
        }
        for (i, row) in self.settlements.iter().enumerate() {
            if row.round.index() != i {
                return Err(SegmentError::corrupt(format!(
                    "checkpoint settlement rows are not contiguous at index {i}"
                )));
            }
        }
        let consumer: f64 = self.settlements.iter().map(|r| r.consumer).sum();
        let seller: f64 = self
            .settlements
            .iter()
            .map(|r| r.sellers.iter().sum::<f64>())
            .sum();
        if consumer.to_bits() != self.consumer_total.to_bits()
            || seller.to_bits() != self.seller_total.to_bits()
        {
            return Err(SegmentError::corrupt(
                "checkpoint ledger totals disagree with its settlement rows",
            ));
        }
        Ok(())
    }
}

/// One line of the `P.idx` JSONL index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum IndexLine {
    /// The mandatory first line.
    #[serde(rename = "header")]
    Header {
        /// Always `"segmented"`.
        journal: String,
        /// Format version.
        version: u32,
    },
    /// The live checkpoint reference (at most one, before any segment).
    #[serde(rename = "checkpoint")]
    Checkpoint(CheckpointRef),
    /// A sealed segment, in sequence order.
    #[serde(rename = "segment")]
    Segment(Box<SegmentEntry>),
}

/// The parsed `P.idx` index: the live checkpoint reference (if any) plus
/// the sealed segments not yet folded into it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JournalIndex {
    /// The live compaction checkpoint, if one exists.
    pub checkpoint: Option<CheckpointRef>,
    /// The sealed, unfolded segments in sequence order.
    pub segments: Vec<SegmentEntry>,
}

impl JournalIndex {
    /// The sequence number the *next* segment (sealed or active) takes.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.segments.last().map_or_else(
            || self.checkpoint.as_ref().map_or(0, |c| c.segments_folded),
            |e| e.seq + 1,
        )
    }

    fn to_json_lines(&self) -> String {
        let mut out = String::new();
        let mut push = |line: &IndexLine| {
            out.push_str(&serde_json::to_string(line).expect("index lines serialize"));
            out.push('\n');
        };
        push(&IndexLine::Header {
            journal: "segmented".to_owned(),
            version: SEGMENT_FORMAT_VERSION,
        });
        if let Some(ckpt) = &self.checkpoint {
            push(&IndexLine::Checkpoint(ckpt.clone()));
        }
        for entry in &self.segments {
            push(&IndexLine::Segment(Box::new(entry.clone())));
        }
        out
    }

    /// Atomically rewrites `P.idx` (temp file + rename), so readers only
    /// ever see a complete index.
    ///
    /// # Errors
    /// Returns the I/O failure, leaving any previous index intact.
    pub fn write(&self, base: &Path) -> Result<(), SegmentError> {
        let path = index_path(base);
        write_atomic(&path, self.to_json_lines().as_bytes())
    }

    /// Parses `P.idx` strictly: every line must parse, the header must
    /// lead, the checkpoint reference (if any) must precede all segments,
    /// and segment sequence numbers must be consecutive from the
    /// checkpoint's fold point (or 0).
    ///
    /// # Errors
    /// Returns [`SegmentError::Io`] when the index cannot be read and
    /// [`SegmentError::Corrupt`] on any structural violation.
    pub fn read_strict(base: &Path) -> Result<Self, SegmentError> {
        let path = index_path(base);
        let text = std::fs::read_to_string(&path).map_err(|e| SegmentError::io(&path, e))?;
        match Self::parse(&text) {
            (index, None) => Ok(index),
            (_, Some(why)) => Err(SegmentError::corrupt(format!("{}: {why}", path.display()))),
        }
    }

    /// Parses the longest valid prefix of `P.idx`, tolerating a torn tail
    /// (returns what parsed plus whether anything was dropped). A missing
    /// or headerless index parses as empty-and-torn, letting recovery fall
    /// back to scanning segment files directly.
    ///
    /// # Errors
    /// Returns [`SegmentError::Io`] only when the index exists but cannot
    /// be read.
    pub fn read_tolerant(base: &Path) -> Result<(Self, bool), SegmentError> {
        let path = index_path(base);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((Self::default(), true));
            }
            Err(e) => return Err(SegmentError::io(&path, e)),
        };
        let (index, why) = Self::parse(&text);
        Ok((index, why.is_some()))
    }

    /// Parses index lines, returning the valid prefix and `Some(reason)`
    /// at the first violation.
    fn parse(text: &str) -> (Self, Option<String>) {
        let mut index = Self::default();
        let mut saw_header = false;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let parsed: IndexLine = match serde_json::from_str(line) {
                Ok(parsed) => parsed,
                Err(e) => {
                    return (index, Some(format!("index line {line_no}: bad JSON: {e}")));
                }
            };
            match parsed {
                IndexLine::Header { journal, version } => {
                    if saw_header {
                        return (
                            index,
                            Some(format!("index line {line_no}: duplicate header")),
                        );
                    }
                    if journal != "segmented" || version != SEGMENT_FORMAT_VERSION {
                        return (
                            index,
                            Some(format!(
                                "index line {line_no}: unsupported header \
                                 (journal=`{journal}`, version={version})"
                            )),
                        );
                    }
                    saw_header = true;
                }
                IndexLine::Checkpoint(ckpt) => {
                    if !saw_header || index.checkpoint.is_some() || !index.segments.is_empty() {
                        return (
                            index,
                            Some(format!(
                                "index line {line_no}: misplaced checkpoint reference"
                            )),
                        );
                    }
                    index.checkpoint = Some(ckpt);
                }
                IndexLine::Segment(entry) => {
                    if !saw_header {
                        return (
                            index,
                            Some(format!("index line {line_no}: segment before header")),
                        );
                    }
                    let expected = index.next_seq();
                    if entry.seq != expected {
                        return (
                            index,
                            Some(format!(
                                "index line {line_no}: segment seq {} out of order \
                                 (expected {expected})",
                                entry.seq
                            )),
                        );
                    }
                    index.segments.push(*entry);
                }
            }
        }
        if saw_header {
            (index, None)
        } else {
            (index, Some("index has no header line".to_owned()))
        }
    }
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SegmentError> {
    let tmp = suffixed(path, ".tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| SegmentError::io(&tmp, e))?;
        f.write_all(bytes).map_err(|e| SegmentError::io(&tmp, e))?;
        // Best-effort durability, like the sink: a failed fsync still
        // leaves a complete temp file.
        let _ = f.sync_all();
    }
    std::fs::rename(&tmp, path).map_err(|e| SegmentError::io(path, e))
}

/// Reads and validates the checkpoint a [`CheckpointRef`] points to,
/// cross-checking the reference's generation, counts, and digest against
/// the file (the replay-verification idiom at the checkpoint layer).
fn load_checkpoint(base: &Path, ckpt_ref: &CheckpointRef) -> Result<Checkpoint, SegmentError> {
    let path = base_dir(base).join(&ckpt_ref.file);
    let text = std::fs::read_to_string(&path).map_err(|e| SegmentError::io(&path, e))?;
    let ckpt: Checkpoint = serde_json::from_str(&text).map_err(|e| {
        SegmentError::corrupt(format!("{}: bad checkpoint JSON: {e}", path.display()))
    })?;
    ckpt.validate()
        .map_err(|e| SegmentError::corrupt(format!("{}: {e}", path.display())))?;
    if ckpt.generation != ckpt_ref.generation
        || ckpt.rounds != ckpt_ref.rounds
        || ckpt.events != ckpt_ref.events
        || ckpt.digest != ckpt_ref.digest
    {
        return Err(SegmentError::corrupt(format!(
            "{}: checkpoint disagrees with the index reference",
            path.display()
        )));
    }
    Ok(ckpt)
}

/// Scans the journal's directory for the highest-generation checkpoint
/// that self-validates — the recovery fallback when the index is torn
/// before its checkpoint line.
fn scan_for_checkpoint(base: &Path) -> Option<Checkpoint> {
    let name = file_name_of(base);
    let dir = base_dir(base);
    let prefix = format!("{name}.ckpt-");
    let entries = std::fs::read_dir(if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        &dir
    })
    .ok()?;
    let mut best: Option<Checkpoint> = None;
    for entry in entries.flatten() {
        let entry_name = entry.file_name().to_string_lossy().into_owned();
        if !entry_name.starts_with(&prefix) || entry_name.ends_with(".tmp") {
            continue;
        }
        let path = dir.join(&entry_name);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(ckpt) = serde_json::from_str::<Checkpoint>(&text) else {
            continue;
        };
        if ckpt.validate().is_err() {
            continue;
        }
        if best.as_ref().is_none_or(|b| ckpt.generation > b.generation) {
            best = Some(ckpt);
        }
    }
    best
}

/// A strictly loaded journal history — from a single file, a segmented
/// layout, or a compacted one — normalized to the data every `cdt
/// journal` command needs.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalView {
    /// `true` when loaded from a `P.idx` segment layout.
    pub segmented: bool,
    /// Sealed segments replayed (0 for a single-file journal).
    pub segments: usize,
    /// Rounds folded into a checkpoint (0 when uncompacted).
    pub compacted_rounds: usize,
    /// Events folded into a checkpoint (0 when uncompacted).
    pub compacted_events: u64,
    /// Total events in the history, including folded ones.
    pub events: u64,
    /// Every settlement row, in round order (checkpointed and replayed).
    pub settlements: Vec<SettlementRow>,
    /// The protocol state after the full history.
    pub state: ProtocolState,
}

impl JournalView {
    /// Rounds settled over the whole history.
    #[must_use]
    pub fn settled_rounds(&self) -> usize {
        self.state.settled_rounds()
    }

    /// Whether the history ends with `JobCompleted`.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.state.is_completed()
    }

    /// Total consumer spend (row-order sum, bit-stable).
    #[must_use]
    pub fn consumer_total(&self) -> f64 {
        self.settlements.iter().map(|r| r.consumer).sum()
    }

    /// Total seller payout (row-order sum, bit-stable).
    #[must_use]
    pub fn seller_total(&self) -> f64 {
        self.settlements
            .iter()
            .map(|r| r.sellers.iter().sum::<f64>())
            .sum()
    }

    fn from_log(log: &EventLog) -> Self {
        Self {
            segmented: false,
            segments: 0,
            compacted_rounds: 0,
            compacted_events: 0,
            events: log.len() as u64,
            settlements: crate::diff::settlement_rows(log),
            state: log.state().clone(),
        }
    }
}

/// Replays one segment's text strictly from `state`, appending settlement
/// rows and returning the event count.
fn replay_segment_strict(
    state: &mut ProtocolState,
    rows: &mut Vec<SettlementRow>,
    text: &str,
    label: &str,
) -> Result<u64, SegmentError> {
    let mut events = 0u64;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let event: MarketEvent = serde_json::from_str(line).map_err(|e| {
            SegmentError::corrupt(format!("{label} line {line_no}: bad event JSON: {e}"))
        })?;
        state.apply(&event).map_err(|e| {
            SegmentError::corrupt(format!(
                "{label} line {line_no}: protocol violation on replay: {e}"
            ))
        })?;
        if let MarketEvent::PaymentsSettled {
            round,
            consumer_payment,
            seller_payments,
        } = &event
        {
            rows.push(SettlementRow {
                round: *round,
                consumer: *consumer_payment,
                sellers: seller_payments.clone(),
            });
        }
        events += 1;
    }
    Ok(events)
}

/// Verifies one indexed segment — digest, strict replay, and the
/// `state_after` cross-check — folding its rows into `rows`.
fn verify_segment_entry(
    base: &Path,
    entry: &SegmentEntry,
    state: &mut ProtocolState,
    rows: &mut Vec<SettlementRow>,
) -> Result<String, SegmentError> {
    let path = base_dir(base).join(&entry.file);
    let text = std::fs::read_to_string(&path).map_err(|e| SegmentError::io(&path, e))?;
    if fnv1a(FNV_OFFSET, text.as_bytes()) != entry.digest {
        return Err(SegmentError::corrupt(format!(
            "{}: segment byte digest mismatch (tampered or torn segment)",
            path.display()
        )));
    }
    let rounds_before = state.settled_rounds();
    let events = replay_segment_strict(state, rows, &text, &entry.file)?;
    if events != entry.events {
        return Err(SegmentError::corrupt(format!(
            "{}: index says {} events, replay found {events}",
            path.display(),
            entry.events
        )));
    }
    if state.settled_rounds() - rounds_before != entry.rounds {
        return Err(SegmentError::corrupt(format!(
            "{}: index says {} rounds, replay settled {}",
            path.display(),
            entry.rounds,
            state.settled_rounds() - rounds_before
        )));
    }
    if *state != entry.state_after {
        return Err(SegmentError::corrupt(format!(
            "{}: index state_after disagrees with replay (forged index?)",
            path.display()
        )));
    }
    Ok(text)
}

/// Ensures a segmented journal is quiescent (no active partial, no sealed
/// segment the index has not caught up with) — the precondition for strict
/// loads and compaction.
fn ensure_quiescent(base: &Path, index: &JournalIndex) -> Result<(), SegmentError> {
    let next = index.next_seq();
    let partial = segment_partial_path(base, next);
    if partial.exists() {
        return Err(SegmentError::corrupt(format!(
            "{}: unfinished journal — active segment {} present \
             (run `cdt journal recover`)",
            base.display(),
            partial.display()
        )));
    }
    let unindexed = segment_path(base, next);
    if unindexed.exists() {
        return Err(SegmentError::corrupt(format!(
            "{}: sealed segment {} is not in the index (crashed during rotation; \
             run `cdt journal recover`)",
            base.display(),
            unindexed.display()
        )));
    }
    Ok(())
}

/// Loads a journal strictly: a single-file journal replays all-or-nothing
/// (exactly [`EventLog::from_json_lines`]); a segmented journal verifies
/// the index, the checkpoint digest, and every segment's byte digest +
/// replay + `state_after` cross-check.
///
/// # Errors
/// Returns [`SegmentError::Io`] when nothing readable exists at `path`
/// and [`SegmentError::Corrupt`] on any validation failure.
pub fn load_journal(path: &Path) -> Result<JournalView, SegmentError> {
    if path.is_file() {
        let text = std::fs::read_to_string(path).map_err(|e| SegmentError::io(path, e))?;
        let log = EventLog::from_json_lines(&text)
            .map_err(|e| SegmentError::corrupt(format!("{}: {e}", path.display())))?;
        return Ok(JournalView::from_log(&log));
    }
    if !index_path(path).is_file() {
        return Err(SegmentError::io(
            path,
            io::Error::new(
                io::ErrorKind::NotFound,
                "no journal file or segment index found",
            ),
        ));
    }
    let index = JournalIndex::read_strict(path)?;
    ensure_quiescent(path, &index)?;
    let (mut state, mut rows, mut events, compacted_rounds, compacted_events) =
        match &index.checkpoint {
            Some(ckpt_ref) => {
                let ckpt = load_checkpoint(path, ckpt_ref)?;
                let rounds = ckpt.rounds;
                let folded = ckpt.events;
                (ckpt.state, ckpt.settlements, ckpt.events, rounds, folded)
            }
            None => (ProtocolState::new(), Vec::new(), 0, 0, 0),
        };
    for entry in &index.segments {
        verify_segment_entry(path, entry, &mut state, &mut rows)?;
        events += entry.events;
    }
    Ok(JournalView {
        segmented: true,
        segments: index.segments.len(),
        compacted_rounds,
        compacted_events,
        events,
        settlements: rows,
        state,
    })
}

/// The result of a truncation-tolerant recovery over any journal layout.
#[derive(Debug)]
pub struct JournalRecovery {
    /// `true` when recovered from a segment layout.
    pub segmented: bool,
    /// Rounds folded into the checkpoint the recovery resumed from.
    pub compacted_rounds: usize,
    /// Events folded into that checkpoint.
    pub compacted_events: u64,
    /// Kept (boundary-terminated) events, excluding folded ones.
    pub events_kept: usize,
    /// Non-empty lines scanned across all source files.
    pub lines_read: usize,
    /// Events that parsed and replayed cleanly (kept or in-flight).
    pub events_replayed: usize,
    /// Every settlement row of the recovered history, in round order.
    pub settlements: Vec<SettlementRow>,
    /// The protocol state after the recovered prefix — always a
    /// settlement boundary.
    pub state: ProtocolState,
    /// The kept event lines (excluding the folded prefix), concatenated —
    /// a valid journal when no checkpoint is involved.
    pub kept_text: String,
    /// Bytes read from the event-bearing source files (segments and
    /// partials; not the index or checkpoint).
    pub source_bytes: u64,
    /// `None` for a clean boundary-terminated history; otherwise where
    /// and why replay stopped (line numbers are cumulative across
    /// segments).
    pub stop: Option<RecoveryStop>,
}

impl JournalRecovery {
    /// Rounds settled in the recovered history (including compacted ones).
    #[must_use]
    pub fn settled_rounds(&self) -> usize {
        self.state.settled_rounds()
    }

    /// Whether the recovered prefix ends with `JobCompleted`.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.state.is_completed()
    }
}

/// Per-chunk bookkeeping for the tolerant replay chain.
struct TolerantReplay {
    state: ProtocolState,
    rows: Vec<SettlementRow>,
    kept_text: String,
    events_kept: usize,
    lines_read: usize,
    events_replayed: usize,
    stop: Option<RecoveryStop>,
}

impl TolerantReplay {
    fn new(state: ProtocolState, rows: Vec<SettlementRow>) -> Self {
        Self {
            state,
            rows,
            kept_text: String::new(),
            events_kept: 0,
            lines_read: 0,
            events_replayed: 0,
            stop: None,
        }
    }

    /// Replays one file's text, keeping the longest boundary-terminated
    /// prefix; on any stop the state, rows, and kept text roll back to the
    /// last boundary. Returns `false` when replay must not continue into
    /// further files.
    fn replay_chunk(&mut self, text: &str, label: &str, is_last: bool) -> bool {
        let mut kept_state = self.state.clone();
        let mut kept_rows = self.rows.len();
        let mut kept_len = self.kept_text.len();
        let mut kept_events = self.events_kept;
        let mut last_line_no = self.lines_read;
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            self.lines_read += 1;
            last_line_no = self.lines_read;
            let event: MarketEvent = match serde_json::from_str(line) {
                Ok(event) => event,
                Err(e) => {
                    self.stop = Some(RecoveryStop {
                        line: last_line_no,
                        reason: format!("{label}: bad event JSON: {e}"),
                    });
                    break;
                }
            };
            if let Err(e) = self.state.apply(&event) {
                self.stop = Some(RecoveryStop {
                    line: last_line_no,
                    reason: format!("{label}: protocol violation: {e}"),
                });
                break;
            }
            self.events_replayed += 1;
            self.kept_text.push_str(line);
            self.kept_text.push('\n');
            self.events_kept += 1;
            if let MarketEvent::PaymentsSettled {
                round,
                consumer_payment,
                seller_payments,
            } = &event
            {
                self.rows.push(SettlementRow {
                    round: *round,
                    consumer: *consumer_payment,
                    sellers: seller_payments.clone(),
                });
            }
            if event.is_settlement_boundary() {
                kept_state = self.state.clone();
                kept_rows = self.rows.len();
                kept_len = self.kept_text.len();
                kept_events = self.events_kept;
            }
        }
        let trailing_in_flight = self.events_kept - kept_events;
        if self.stop.is_none() && trailing_in_flight > 0 && is_last {
            self.stop = Some(RecoveryStop {
                line: last_line_no,
                reason: format!(
                    "{label}: journal ends mid-round ({trailing_in_flight} in-flight event{} \
                     discarded)",
                    if trailing_in_flight == 1 { "" } else { "s" }
                ),
            });
        }
        let clean = self.stop.is_none() && trailing_in_flight == 0;
        if !clean {
            // Roll back to the last settlement boundary.
            self.state = kept_state;
            self.rows.truncate(kept_rows);
            self.kept_text.truncate(kept_len);
            self.events_kept = kept_events;
        }
        if !is_last && self.stop.is_none() && trailing_in_flight > 0 {
            // A sealed segment that ends mid-round is torn: report it and
            // stop the chain (healthy segments always end on a boundary).
            self.stop = Some(RecoveryStop {
                line: last_line_no,
                reason: format!(
                    "{label}: sealed segment ends mid-round ({trailing_in_flight} in-flight \
                     event{} discarded)",
                    if trailing_in_flight == 1 { "" } else { "s" }
                ),
            });
        }
        clean
    }
}

/// Recovers the longest valid boundary-terminated prefix of any journal
/// layout. A single file replays exactly like
/// [`crate::recover_json_lines`]; a segmented layout replays the index's
/// valid prefix, then any sealed-but-unindexed trailing segments (found by
/// scanning), then the active partial — tolerating torn segments, a torn
/// index, and interrupted compactions. Recovery always lands on a
/// settlement boundary.
///
/// # Errors
/// Returns [`SegmentError::Io`] when nothing readable exists at `path`,
/// or [`SegmentError::Corrupt`] when the history hinges on a checkpoint
/// that no longer validates (its folded events are gone; nothing can be
/// replayed past it).
pub fn recover_journal(path: &Path) -> Result<JournalRecovery, SegmentError> {
    if path.is_file() {
        let text = std::fs::read_to_string(path).map_err(|e| SegmentError::io(path, e))?;
        let rec = recover_json_lines(&text);
        return Ok(JournalRecovery {
            segmented: false,
            compacted_rounds: 0,
            compacted_events: 0,
            events_kept: rec.log.len(),
            lines_read: rec.lines_read,
            events_replayed: rec.events_replayed,
            settlements: crate::diff::settlement_rows(&rec.log),
            state: rec.log.state().clone(),
            kept_text: rec.log.to_json_lines(),
            source_bytes: text.len() as u64,
            stop: rec.stop,
        });
    }
    let (index, torn) = JournalIndex::read_tolerant(path)?;
    let ckpt = match &index.checkpoint {
        Some(ckpt_ref) => Some(load_checkpoint(path, ckpt_ref)?),
        // A torn index may have lost its checkpoint line: fall back to the
        // highest self-validating checkpoint on disk.
        None if torn => scan_for_checkpoint(path),
        None => None,
    };
    if index.segments.is_empty()
        && ckpt.is_none()
        && !index_path(path).is_file()
        && !segment_path(path, 0).exists()
        && !segment_partial_path(path, 0).exists()
    {
        // Nothing at all to recover from.
        return Err(SegmentError::io(
            path,
            io::Error::new(
                io::ErrorKind::NotFound,
                "no journal file or segment index found",
            ),
        ));
    }
    let (start_state, start_rows, compacted_rounds, compacted_events) = match &ckpt {
        Some(c) => (c.state.clone(), c.settlements.clone(), c.rounds, c.events),
        None => (ProtocolState::new(), Vec::new(), 0, 0),
    };
    let mut replay = TolerantReplay::new(start_state, start_rows);
    let mut source_bytes = 0u64;
    let mut seq = ckpt.as_ref().map_or(0, |c| c.segments_folded);

    // Phase 1: the indexed segments.
    for entry in &index.segments {
        let seg = base_dir(path).join(&entry.file);
        match std::fs::read_to_string(&seg) {
            Ok(text) => {
                source_bytes += text.len() as u64;
                seq = entry.seq + 1;
                if !replay.replay_chunk(&text, &entry.file, false) {
                    break;
                }
            }
            Err(e) => {
                replay.stop = Some(RecoveryStop {
                    line: replay.lines_read,
                    reason: format!("{}: segment unreadable: {e}", entry.file),
                });
                break;
            }
        }
    }

    // Phase 2: sealed segments the (possibly torn) index never recorded.
    while replay.stop.is_none() {
        let seg = segment_path(path, seq);
        if !seg.is_file() {
            break;
        }
        match std::fs::read_to_string(&seg) {
            Ok(text) => {
                source_bytes += text.len() as u64;
                seq += 1;
                let label = file_name_of(&seg);
                if !replay.replay_chunk(&text, &label, false) {
                    break;
                }
            }
            Err(e) => {
                replay.stop = Some(RecoveryStop {
                    line: replay.lines_read,
                    reason: format!("{}: segment unreadable: {e}", seg.display()),
                });
                break;
            }
        }
    }

    // Phase 3: the active partial, if the run died mid-segment.
    if replay.stop.is_none() {
        let partial = segment_partial_path(path, seq);
        if partial.is_file() {
            match std::fs::read_to_string(&partial) {
                Ok(text) => {
                    source_bytes += text.len() as u64;
                    let label = file_name_of(&partial);
                    replay.replay_chunk(&text, &label, true);
                }
                Err(e) => {
                    replay.stop = Some(RecoveryStop {
                        line: replay.lines_read,
                        reason: format!("{}: partial unreadable: {e}", partial.display()),
                    });
                }
            }
        }
    }

    debug_assert!(replay.state.at_round_boundary() || !replay.state.is_published());
    Ok(JournalRecovery {
        segmented: true,
        compacted_rounds,
        compacted_events,
        events_kept: replay.events_kept,
        lines_read: replay.lines_read,
        events_replayed: replay.events_replayed,
        settlements: replay.rows,
        state: replay.state,
        kept_text: replay.kept_text,
        source_bytes,
        stop: replay.stop,
    })
}

/// The result of [`replay_to_round`]: one round's settlement plus where it
/// came from.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundLookup {
    /// The requested round's settlement.
    pub row: SettlementRow,
    /// `true` when served from the compaction checkpoint (no replay).
    pub from_checkpoint: bool,
    /// The single segment scanned, if the lookup replayed one.
    pub segment: Option<u64>,
    /// Events replayed to answer the lookup (0 from a checkpoint).
    pub events_scanned: u64,
}

/// Answers "what settled at round R" with an index lookup plus at most
/// one segment scan: a checkpointed round is read straight from the
/// checkpoint's rows, an indexed round replays only its segment (resuming
/// from the previous segment's `state_after`), and a single-file journal
/// falls back to the full scan.
///
/// # Errors
/// Returns [`SegmentError::Corrupt`] when the round is not settled in the
/// journal, or on any validation failure in the one segment touched.
pub fn replay_to_round(path: &Path, round: usize) -> Result<RoundLookup, SegmentError> {
    if path.is_file() {
        let view = load_journal(path)?;
        let row = view.settlements.get(round).cloned().ok_or_else(|| {
            SegmentError::corrupt(format!(
                "round {round} not settled ({} rounds in {})",
                view.settled_rounds(),
                path.display()
            ))
        })?;
        return Ok(RoundLookup {
            row,
            from_checkpoint: false,
            segment: None,
            events_scanned: view.events,
        });
    }
    let index = JournalIndex::read_strict(path)?;
    if let Some(ckpt_ref) = &index.checkpoint {
        if round < ckpt_ref.rounds {
            let ckpt = load_checkpoint(path, ckpt_ref)?;
            return Ok(RoundLookup {
                row: ckpt.settlements[round].clone(),
                from_checkpoint: true,
                segment: None,
                events_scanned: 0,
            });
        }
    }
    for (i, entry) in index.segments.iter().enumerate() {
        let Some(first) = entry.first_round else {
            continue;
        };
        if !(first..first + entry.rounds).contains(&round) {
            continue;
        }
        // Resume from the previous segment's state (or the checkpoint).
        let mut state = if i > 0 {
            index.segments[i - 1].state_after.clone()
        } else {
            match &index.checkpoint {
                Some(ckpt_ref) => load_checkpoint(path, ckpt_ref)?.state,
                None => ProtocolState::new(),
            }
        };
        let mut rows = Vec::new();
        verify_segment_entry(path, entry, &mut state, &mut rows)?;
        let row = rows
            .into_iter()
            .find(|r| r.round.index() == round)
            .ok_or_else(|| {
                SegmentError::corrupt(format!(
                    "{}: index places round {round} here but replay did not settle it",
                    entry.file
                ))
            })?;
        return Ok(RoundLookup {
            row,
            from_checkpoint: false,
            segment: Some(entry.seq),
            events_scanned: entry.events,
        });
    }
    Err(SegmentError::corrupt(format!(
        "round {round} not settled in {}",
        path.display()
    )))
}

/// The result of a [`compact_journal`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactReport {
    /// Segments folded by this run.
    pub folded_segments: usize,
    /// Rounds folded by this run.
    pub folded_rounds: usize,
    /// Events folded by this run.
    pub folded_events: u64,
    /// Segments left unfolded in the index.
    pub kept_segments: usize,
    /// The checkpoint generation now live (0 when nothing was ever
    /// compacted).
    pub generation: u64,
    /// Total rounds now held by the checkpoint.
    pub checkpoint_rounds: usize,
}

/// Folds the oldest `segments.len() - keep_segments` sealed segments into
/// a new checkpoint generation. Every folded segment is digest-checked and
/// replayed (with the `state_after` cross-check) before anything is
/// written; the new checkpoint lands first, then the index flips
/// atomically, then the folded segments and the superseded checkpoint are
/// deleted — so a crash at any point leaves a loadable journal.
///
/// # Errors
/// Returns [`SegmentError::Corrupt`] when `path` is not a quiescent
/// segmented journal or any folded segment fails validation, and
/// [`SegmentError::Io`] on file failures.
pub fn compact_journal(path: &Path, keep_segments: usize) -> Result<CompactReport, SegmentError> {
    if path.is_file() {
        return Err(SegmentError::corrupt(format!(
            "{}: single-file journal (nothing to compact — write it with \
             --journal-segment-rounds to get segments)",
            path.display()
        )));
    }
    let start = std::time::Instant::now();
    let index = JournalIndex::read_strict(path)?;
    ensure_quiescent(path, &index)?;
    let old_ckpt = match &index.checkpoint {
        Some(ckpt_ref) => Some(load_checkpoint(path, ckpt_ref)?),
        None => None,
    };
    let fold_count = index.segments.len().saturating_sub(keep_segments);
    let (mut state, mut rows, mut events, mut bytes_digest, old_generation, old_folded) =
        match &old_ckpt {
            Some(c) => (
                c.state.clone(),
                c.settlements.clone(),
                c.events,
                c.bytes_digest,
                c.generation,
                c.segments_folded,
            ),
            None => (ProtocolState::new(), Vec::new(), 0, FNV_OFFSET, 0, 0),
        };
    if fold_count == 0 {
        return Ok(CompactReport {
            folded_segments: 0,
            folded_rounds: 0,
            folded_events: 0,
            kept_segments: index.segments.len(),
            generation: old_generation,
            checkpoint_rounds: state.settled_rounds(),
        });
    }
    let rounds_before = state.settled_rounds();
    let events_before = events;
    for entry in &index.segments[..fold_count] {
        let text = verify_segment_entry(path, entry, &mut state, &mut rows)?;
        bytes_digest = fnv1a(bytes_digest, text.as_bytes());
        events += entry.events;
    }
    let consumer_total: f64 = rows.iter().map(|r| r.consumer).sum();
    let seller_total: f64 = rows.iter().map(|r| r.sellers.iter().sum::<f64>()).sum();
    let mut ckpt = Checkpoint {
        format: SEGMENT_FORMAT_VERSION,
        generation: old_generation + 1,
        segments_folded: old_folded + fold_count as u64,
        events,
        rounds: state.settled_rounds(),
        completed: state.is_completed(),
        consumer_total,
        seller_total,
        bytes_digest,
        state,
        settlements: rows,
        digest: 0,
    };
    ckpt.digest = ckpt.content_digest();

    // Crash-safe ordering: new checkpoint → index flip → deletions.
    let ckpt_file = checkpoint_path(path, ckpt.generation);
    write_atomic(
        &ckpt_file,
        serde_json::to_string(&ckpt)
            .expect("checkpoint serializes")
            .as_bytes(),
    )?;
    let new_index = JournalIndex {
        checkpoint: Some(CheckpointRef {
            generation: ckpt.generation,
            file: file_name_of(&ckpt_file),
            rounds: ckpt.rounds,
            events: ckpt.events,
            digest: ckpt.digest,
        }),
        segments: index.segments[fold_count..].to_vec(),
    };
    new_index.write(path)?;
    for entry in &index.segments[..fold_count] {
        let _ = std::fs::remove_file(base_dir(path).join(&entry.file));
    }
    if let Some(old) = &old_ckpt {
        let _ = std::fs::remove_file(checkpoint_path(path, old.generation));
    }

    let report = CompactReport {
        folded_segments: fold_count,
        folded_rounds: ckpt.rounds - rounds_before,
        folded_events: ckpt.events - events_before,
        kept_segments: new_index.segments.len(),
        generation: ckpt.generation,
        checkpoint_rounds: ckpt.rounds,
    };
    if cdt_obs::is_enabled() {
        let registry = cdt_obs::global();
        registry.add_counter("cdt_obs_journal_compactions_total", &[], 1);
        registry.add_counter(
            "cdt_obs_journal_compacted_rounds_total",
            &[],
            report.folded_rounds as u64,
        );
        let mut hist = cdt_obs::LatencyHistogram::new();
        hist.record_ns(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        registry.merge_histogram("cdt_obs_journal_compact_ns", &[], &hist);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x85944171f73967e8);
        // Chaining is equivalent to one pass.
        assert_eq!(
            fnv1a(fnv1a(FNV_OFFSET, b"foo"), b"bar"),
            fnv1a(FNV_OFFSET, b"foobar")
        );
    }

    #[test]
    fn paths_are_zero_padded_and_ordered() {
        let base = Path::new("/tmp/j.jsonl");
        assert_eq!(
            segment_path(base, 7),
            PathBuf::from("/tmp/j.jsonl.seg-0007")
        );
        assert_eq!(
            segment_partial_path(base, 12),
            PathBuf::from("/tmp/j.jsonl.seg-0012.partial")
        );
        assert_eq!(index_path(base), PathBuf::from("/tmp/j.jsonl.idx"));
        assert_eq!(
            checkpoint_path(base, 3),
            PathBuf::from("/tmp/j.jsonl.ckpt-0003")
        );
        // Lexicographic order equals numeric order within the pad width.
        let names: Vec<String> = (0..15)
            .map(|s| file_name_of(&segment_path(base, s)))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn index_round_trips_and_rejects_disorder() {
        let entry = |seq: u64| SegmentEntry {
            seq,
            file: format!("j.seg-{seq:04}"),
            first_round: Some(seq as usize),
            rounds: 1,
            events: 5,
            digest: 42,
            state_after: ProtocolState::new(),
        };
        let index = JournalIndex {
            checkpoint: None,
            segments: vec![entry(0), entry(1)],
        };
        let text = index.to_json_lines();
        let (back, why) = JournalIndex::parse(&text);
        assert!(why.is_none(), "{why:?}");
        assert_eq!(back, index);
        assert_eq!(back.next_seq(), 2);

        // A gap in the sequence stops the parse at the valid prefix.
        let gapped = JournalIndex {
            checkpoint: None,
            segments: vec![entry(0), entry(2)],
        };
        let (prefix, why) = JournalIndex::parse(&gapped.to_json_lines());
        assert_eq!(prefix.segments.len(), 1);
        assert!(why.unwrap().contains("out of order"));

        // A torn trailing line keeps the prefix.
        let mut torn = text.clone();
        torn.truncate(text.len() - 10);
        let (prefix, why) = JournalIndex::parse(&torn);
        assert_eq!(prefix.segments.len(), 1);
        assert!(why.unwrap().contains("bad JSON"));

        // No header at all parses as empty-and-torn.
        let (empty, why) = JournalIndex::parse("");
        assert!(empty.segments.is_empty());
        assert!(why.unwrap().contains("no header"));
    }

    #[test]
    fn checkpoint_digest_rejects_tampering() {
        let mut ckpt = Checkpoint {
            format: SEGMENT_FORMAT_VERSION,
            generation: 1,
            segments_folded: 1,
            events: 1,
            rounds: 0,
            completed: false,
            consumer_total: 0.0,
            seller_total: 0.0,
            bytes_digest: FNV_OFFSET,
            state: {
                let mut s = ProtocolState::new();
                s.apply(&MarketEvent::JobPublished {
                    job: cdt_types::JobSpec::new(4, 2, 10.0).unwrap(),
                })
                .unwrap();
                s
            },
            settlements: vec![],
            digest: 0,
        };
        ckpt.digest = ckpt.content_digest();
        ckpt.validate().unwrap();
        // Any field change breaks the digest.
        let mut forged = ckpt.clone();
        forged.consumer_total = 1.0;
        assert!(forged.validate().is_err());
        // A recomputed digest over inconsistent counts is still caught.
        let mut forged = ckpt.clone();
        forged.rounds = 3;
        forged.digest = forged.content_digest();
        let err = forged.validate().unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");
    }
}
