//! Round-aligned settlement comparison between two journals
//! (`cdt journal diff A B`).
//!
//! Two runs of the same scenario should settle identically — bit-for-bit
//! on the default deterministic path, within a reassociation bound under
//! `--fast-math` (see `cdt_types::lanes`). This module turns that claim
//! into a measurement: align the two logs' settled rounds, compare the
//! consumer payment and every seller payment per round, and report the
//! maximum absolute and relative divergence.
//!
//! Divergence is *numeric* when the histories agree structurally (same
//! settled rounds, same seller count per round) and only the amounts
//! drift; any disagreement in shape is a *structural* mismatch — the runs
//! are not comparable and no tolerance excuses them.

use crate::log::EventLog;
use cdt_types::Round;
use serde::{Deserialize, Serialize};

/// One settled round's money flow: the unit both the diff validator and
/// the compaction checkpoints (see [`crate::segment`]) operate on, so a
/// compacted history diffs identically to the uncompacted replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettlementRow {
    /// The settled round.
    pub round: Round,
    /// `p^J · Στ`, consumer to platform.
    pub consumer: f64,
    /// `p · τ_i` per seller, in selection order.
    pub sellers: Vec<f64>,
}

/// The per-round settlement rows of a log, in round order.
#[must_use]
pub fn settlement_rows(log: &EventLog) -> Vec<SettlementRow> {
    log.settlements()
        .map(|(round, consumer, sellers)| SettlementRow {
            round,
            consumer,
            sellers: sellers.to_vec(),
        })
        .collect()
}

/// The result of comparing two journals' settlements round by round.
#[derive(Debug, Clone, PartialEq)]
pub struct SettlementDiff {
    /// Settled rounds in journal A.
    pub rounds_a: usize,
    /// Settled rounds in journal B.
    pub rounds_b: usize,
    /// Rounds actually compared (the aligned prefix).
    pub rounds_compared: usize,
    /// Largest absolute payment divergence over the compared rounds.
    pub max_abs: f64,
    /// Largest relative payment divergence (`|x−y| / max(|x|, |y|)`; 0
    /// when both payments are 0) over the compared rounds.
    pub max_rel: f64,
    /// The round holding the largest absolute divergence, if any payment
    /// diverged at all.
    pub worst_round: Option<Round>,
    /// A shape disagreement (settled-round count, round index, or
    /// per-round seller count), if one was found. Structural mismatches
    /// stop the comparison at the point of disagreement.
    pub structural: Option<String>,
}

impl SettlementDiff {
    /// `true` when the journals settle identically: structurally aligned
    /// and every payment bit-equal (the deterministic-path contract).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.structural.is_none() && self.max_abs == 0.0
    }

    /// `true` when the journals agree structurally and every payment
    /// diverges by at most `tol` absolutely (the fast-math contract).
    #[must_use]
    pub fn within(&self, tol: f64) -> bool {
        self.structural.is_none() && self.max_abs <= tol
    }

    fn record(&mut self, round: Round, x: f64, y: f64) {
        let abs = (x - y).abs();
        let scale = x.abs().max(y.abs());
        let rel = if abs == 0.0 { 0.0 } else { abs / scale };
        if abs > self.max_abs {
            self.max_abs = abs;
            self.worst_round = Some(round);
        }
        if rel > self.max_rel {
            self.max_rel = rel;
        }
    }
}

/// Compares two journals' settled payments round by round.
///
/// Rounds are aligned by position in settlement order (the protocol state
/// machine already forces settlement order to be round order) and checked
/// to carry the same round index and seller count; the comparison covers
/// the common prefix when one journal settled more rounds than the other
/// (reported as a structural mismatch).
#[must_use]
pub fn diff_settlements(a: &EventLog, b: &EventLog) -> SettlementDiff {
    diff_settlement_rows(&settlement_rows(a), &settlement_rows(b))
}

/// Compares two settlement-row histories round by round — the row-level
/// core of [`diff_settlements`], usable on histories loaded from a
/// segmented/compacted journal where no full [`EventLog`] exists.
#[must_use]
pub fn diff_settlement_rows(rows_a: &[SettlementRow], rows_b: &[SettlementRow]) -> SettlementDiff {
    let mut diff = SettlementDiff {
        rounds_a: rows_a.len(),
        rounds_b: rows_b.len(),
        rounds_compared: 0,
        max_abs: 0.0,
        max_rel: 0.0,
        worst_round: None,
        structural: None,
    };
    if rows_a.len() != rows_b.len() {
        diff.structural = Some(format!(
            "settled round counts differ: {} vs {}",
            rows_a.len(),
            rows_b.len()
        ));
    }
    for (a, b) in rows_a.iter().zip(rows_b) {
        if a.round != b.round {
            diff.structural = Some(format!(
                "settlement order diverges: round {} vs round {}",
                a.round.index(),
                b.round.index()
            ));
            break;
        }
        if a.sellers.len() != b.sellers.len() {
            diff.structural = Some(format!(
                "round {}: seller payment counts differ: {} vs {}",
                a.round.index(),
                a.sellers.len(),
                b.sellers.len()
            ));
            break;
        }
        diff.rounds_compared += 1;
        diff.record(a.round, a.consumer, b.consumer);
        for (&pay_a, &pay_b) in a.sellers.iter().zip(&b.sellers) {
            diff.record(a.round, pay_a, pay_b);
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MarketEvent;
    use cdt_types::{JobSpec, SellerId};

    /// A log settling `payments[r]` (consumer, sellers) for round `r`.
    ///
    /// The state machine enforces `consumer = p^J·Στ` and
    /// `seller_payments[i] = p·τ_i`, so the strategy is derived from the
    /// requested payments: `p = 1` makes `τ_i = seller_payments[i]`, and
    /// `p^J = consumer / Στ` closes the consumer identity.
    fn settled_log(payments: &[(f64, Vec<f64>)]) -> EventLog {
        let mut log = EventLog::new();
        log.append(MarketEvent::JobPublished {
            job: JobSpec::new(4, payments.len().max(1), 10.0).unwrap(),
        })
        .unwrap();
        for (r, (consumer, sellers)) in payments.iter().enumerate() {
            let round = Round(r);
            let total_tau: f64 = sellers.iter().sum();
            let service_price = if total_tau > 0.0 {
                consumer / total_tau
            } else {
                assert_eq!(*consumer, 0.0, "zero sensing time forces zero payment");
                4.0
            };
            log.append(MarketEvent::SellersSelected {
                round,
                sellers: (0..sellers.len()).map(SellerId).collect(),
            })
            .unwrap();
            log.append(MarketEvent::StrategyDetermined {
                round,
                service_price,
                collection_price: 1.0,
                sensing_times: sellers.clone(),
            })
            .unwrap();
            log.append(MarketEvent::DataCollected {
                round,
                observed_revenue: 3.0,
            })
            .unwrap();
            log.append(MarketEvent::StatisticsDelivered { round })
                .unwrap();
            log.append(MarketEvent::PaymentsSettled {
                round,
                consumer_payment: *consumer,
                seller_payments: sellers.clone(),
            })
            .unwrap();
        }
        log
    }

    #[test]
    fn identical_logs_diff_to_zero() {
        let log = settled_log(&[(10.0, vec![1.0, 2.0]), (11.0, vec![1.5, 2.5])]);
        let d = diff_settlements(&log, &log.clone());
        assert!(d.is_zero(), "{d:?}");
        assert_eq!(d.rounds_compared, 2);
        assert_eq!(d.worst_round, None);
        assert!(d.within(0.0));
    }

    #[test]
    fn numeric_drift_is_measured_with_worst_round() {
        let a = settled_log(&[(10.0, vec![1.0, 2.0]), (20.0, vec![4.0])]);
        let b = settled_log(&[(10.0, vec![1.0, 2.0 + 1e-9]), (20.0 + 4e-9, vec![4.0])]);
        let d = diff_settlements(&a, &b);
        assert!(d.structural.is_none());
        assert!(!d.is_zero());
        assert!((d.max_abs - 4e-9).abs() < 1e-15, "{d:?}");
        assert_eq!(d.worst_round, Some(Round(1)));
        assert!(d.max_rel > 0.0 && d.max_rel < 1e-9);
        assert!(d.within(1e-8));
        assert!(!d.within(1e-12));
    }

    #[test]
    fn round_count_mismatch_is_structural() {
        let a = settled_log(&[(10.0, vec![1.0]), (11.0, vec![1.0])]);
        let b = settled_log(&[(10.0, vec![1.0])]);
        let d = diff_settlements(&a, &b);
        assert_eq!(d.rounds_a, 2);
        assert_eq!(d.rounds_b, 1);
        let msg = d.structural.as_deref().unwrap();
        assert!(msg.contains("settled round counts differ"), "{msg}");
        // The common prefix is still compared and agrees numerically.
        assert_eq!(d.rounds_compared, 1);
        assert_eq!(d.max_abs, 0.0);
        assert!(!d.within(f64::INFINITY), "structural mismatch never passes");
    }

    #[test]
    fn seller_count_mismatch_is_structural() {
        let a = settled_log(&[(10.0, vec![1.0, 2.0])]);
        let b = settled_log(&[(10.0, vec![1.0, 1.0, 1.0])]);
        let d = diff_settlements(&a, &b);
        let msg = d.structural.as_deref().unwrap();
        assert!(msg.contains("seller payment counts differ"), "{msg}");
        assert_eq!(d.rounds_compared, 0);
    }

    #[test]
    fn row_diff_agrees_with_log_diff() {
        let a = settled_log(&[(10.0, vec![1.0, 2.0]), (20.0, vec![4.0])]);
        let b = settled_log(&[(10.0, vec![1.0, 2.5]), (20.0, vec![4.0])]);
        let from_logs = diff_settlements(&a, &b);
        let from_rows = diff_settlement_rows(&settlement_rows(&a), &settlement_rows(&b));
        assert_eq!(from_logs, from_rows);
        assert_eq!(from_rows.worst_round, Some(Round(0)));
    }

    #[test]
    fn settlement_rows_serde_round_trip() {
        let rows = settlement_rows(&settled_log(&[(10.0, vec![1.0, 2.0])]));
        let json = serde_json::to_string(&rows).unwrap();
        let back: Vec<SettlementRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(rows, back);
    }

    #[test]
    fn zero_payments_have_zero_relative_divergence() {
        let a = settled_log(&[(0.0, vec![0.0])]);
        let b = settled_log(&[(0.0, vec![0.0])]);
        let d = diff_settlements(&a, &b);
        assert_eq!(d.max_rel, 0.0);
        assert!(d.is_zero());
    }
}
