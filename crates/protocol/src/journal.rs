//! Crash-safe streaming journal: the protocol member of the obs sink
//! family.
//!
//! [`JournalSink`] replaces the buffer-everything-then-write pattern with a
//! durable streaming writer: each [`MarketEvent`] is validated against the
//! [`ProtocolState`] machine *before* it is serialized, appended to a
//! buffered JSONL writer, and flushed at every settlement boundary
//! (`JobPublished`, each `PaymentsSettled`, `JobCompleted`). The sink
//! writes to `<path>.partial` and atomically renames to `<path>` on
//! [`JournalSink::finish`], so:
//!
//! - a *completed* run's journal appears atomically, byte-identical to the
//!   in-memory [`crate::EventLog::to_json_lines`] serialization;
//! - a *killed* run leaves `<path>.partial`, whose settled-round prefix is
//!   recoverable with [`crate::recover_json_lines`] — at most the in-flight
//!   round is lost.
//!
//! [`JournalObserver`] adapts the sink to the engine's
//! [`cdt_obs::RoundObserver`] hooks so `cdt run`, `cdt budget`, and `repro`
//! can journal through the same observer plumbing as the metrics pipeline.
//! Like every obs sink, the journal batches its metrics locally and
//! publishes once (`cdt_obs_protocol_events_total`,
//! `cdt_obs_protocol_settled_rounds`, `cdt_obs_protocol_violations_total`,
//! and the `cdt_obs_journal_write_ns` latency histogram) when the
//! observability pipeline is installed.
//!
//! Under rotation ([`JournalSink::create_with`] with a [`RotationConfig`])
//! the sink streams into `<path>.seg-NNNN.partial` instead, seals a
//! `<path>.seg-NNNN` segment at the first settlement at or past every
//! `segment_rounds` rounds, and maintains the `<path>.idx` index (see
//! [`crate::segment`] for the layout). Segments split only at settlement
//! boundaries, so the concatenation of all sealed segments is
//! byte-identical to the single-file journal of the same run.

use crate::event::MarketEvent;
use crate::segment::{self, SegmentEntry};
use crate::state::{ProtocolError, ProtocolState};
use cdt_obs::{
    EquilibriumEvent, LatencyHistogram, ObservationEvent, RoundObserver, SelectionEvent,
};
use cdt_types::{JobSpec, Round};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// What can go wrong while journaling.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file could not be created, written, or renamed.
    Io(io::Error),
    /// An event violated the protocol state machine (nothing was written).
    Protocol(ProtocolError),
    /// A previous run left a recoverable artifact (a `.partial`, segment,
    /// index, or checkpoint) at the target path; starting a new journal
    /// would clobber it.
    StaleArtifact(PathBuf),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O: {e}"),
            JournalError::Protocol(e) => write!(f, "journal rejected event: {e}"),
            JournalError::StaleArtifact(path) => write!(
                f,
                "refusing to start journal: {} already exists (left by a previous run; \
                 recover it with `cdt journal recover` or delete it)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Protocol(e) => Some(e),
            JournalError::StaleArtifact(_) => None,
        }
    }
}

impl From<segment::SegmentError> for JournalError {
    fn from(e: segment::SegmentError) -> Self {
        match e {
            segment::SegmentError::Io { source, .. } => JournalError::Io(source),
            segment::SegmentError::Corrupt(msg) => JournalError::Io(io::Error::other(msg)),
        }
    }
}

/// Rotation policy for a segmented journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationConfig {
    /// Settled rounds per segment: the sink seals the active segment at
    /// the first settlement boundary at or past this count. Must be at
    /// least 1.
    pub segment_rounds: usize,
}

/// Per-segment bookkeeping of a rotating sink.
#[derive(Debug)]
struct RotationState {
    segment_rounds: usize,
    /// Sequence number of the *active* segment.
    seq: u64,
    /// Index entries of the segments sealed so far.
    entries: Vec<SegmentEntry>,
    segment_events: u64,
    segment_first_round: Option<usize>,
    segment_settled: usize,
    segment_digest: u64,
}

impl RotationState {
    fn new(segment_rounds: usize) -> Self {
        Self {
            segment_rounds,
            seq: 0,
            entries: Vec::new(),
            segment_events: 0,
            segment_first_round: None,
            segment_settled: 0,
            segment_digest: segment::FNV_OFFSET,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<ProtocolError> for JournalError {
    fn from(e: ProtocolError) -> Self {
        JournalError::Protocol(e)
    }
}

/// Summary of a finished journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalReport {
    /// Events written (including the job lifecycle events).
    pub events: u64,
    /// Rounds fully settled in the journal.
    pub settled_rounds: usize,
    /// Whether the journal ends with an accepted `JobCompleted`.
    pub completed: bool,
    /// The final (renamed) journal path. Under rotation this is the base
    /// path the segments and index hang off — no file exists at it.
    pub path: PathBuf,
    /// Segments sealed (0 for a single-file journal).
    pub segments: usize,
}

/// A validating, crash-safe streaming journal writer.
///
/// See the [module docs](self) for the durability contract.
#[derive(Debug)]
pub struct JournalSink {
    writer: BufWriter<File>,
    state: ProtocolState,
    final_path: PathBuf,
    partial_path: PathBuf,
    events: u64,
    violations: u64,
    write_ns: LatencyHistogram,
    /// Buffered `journal_write`/`journal_flush` spans (span tracing only);
    /// published alongside the metrics so the sink stays single-writer.
    spans: Vec<cdt_obs::SpanRecord>,
    renamed: bool,
    published_metrics: bool,
    /// `Some` when the sink rotates into `<path>.seg-NNNN` segments.
    rotation: Option<RotationState>,
}

fn partial_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".partial");
    PathBuf::from(os)
}

impl JournalSink {
    /// Opens a streaming journal targeting `path`. Writes go to
    /// `<path>.partial` until [`JournalSink::finish`] renames the file
    /// into place.
    ///
    /// # Errors
    /// Returns [`JournalError::StaleArtifact`] when a previous run left a
    /// recoverable `<path>.partial` at the target, or the I/O error when
    /// the partial file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        Self::create_with(path, None)
    }

    /// Opens a streaming journal targeting `path`, optionally rotating
    /// into `<path>.seg-NNNN` segments every `rotation.segment_rounds`
    /// settled rounds (see the [module docs](self)).
    ///
    /// # Errors
    /// Returns [`JournalError::StaleArtifact`] when a previous run's
    /// partial (or, under rotation, any segment/index/checkpoint sibling
    /// or a same-named single-file journal) already exists, and
    /// [`JournalError::Io`] when the first file cannot be created or
    /// `rotation.segment_rounds` is 0.
    pub fn create_with(
        path: impl AsRef<Path>,
        rotation: Option<RotationConfig>,
    ) -> Result<Self, JournalError> {
        let final_path = path.as_ref().to_path_buf();
        let (partial_path, rotation) = match rotation {
            None => {
                let partial_path = partial_path_for(&final_path);
                if partial_path.exists() {
                    return Err(JournalError::StaleArtifact(partial_path));
                }
                (partial_path, None)
            }
            Some(cfg) => {
                if cfg.segment_rounds == 0 {
                    return Err(JournalError::Io(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "journal segment-rounds threshold must be at least 1",
                    )));
                }
                // A same-named single-file journal would shadow the
                // segment layout on every later load.
                if final_path.exists() {
                    return Err(JournalError::StaleArtifact(final_path));
                }
                if let Some(stray) = segment::stray_artifact(&final_path)? {
                    return Err(JournalError::StaleArtifact(stray));
                }
                (
                    segment::segment_partial_path(&final_path, 0),
                    Some(RotationState::new(cfg.segment_rounds)),
                )
            }
        };
        let file = File::create(&partial_path)?;
        Ok(Self {
            writer: BufWriter::new(file),
            state: ProtocolState::new(),
            final_path,
            partial_path,
            events: 0,
            violations: 0,
            write_ns: LatencyHistogram::new(),
            spans: Vec::new(),
            renamed: false,
            published_metrics: false,
            rotation,
        })
    }

    /// The protocol state after every event appended so far.
    #[must_use]
    pub fn state(&self) -> &ProtocolState {
        &self.state
    }

    /// Events written so far.
    #[must_use]
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Where in-flight (unfinished) journal bytes live.
    #[must_use]
    pub fn partial_path(&self) -> &Path {
        &self.partial_path
    }

    /// Validates `event` against the state machine and streams it out.
    /// Settlement boundaries (`JobPublished`, `PaymentsSettled`,
    /// `JobCompleted`) flush the buffered writer so a crash after a
    /// settlement never loses that round.
    ///
    /// # Errors
    /// Returns [`JournalError::Protocol`] when the event is rejected
    /// (nothing is written, state unchanged) or [`JournalError::Io`] on a
    /// write failure.
    pub fn append(&mut self, event: &MarketEvent) -> Result<(), JournalError> {
        if let Err(e) = self.state.apply(event) {
            self.violations += 1;
            return Err(JournalError::Protocol(e));
        }
        let line = serde_json::to_string(event).expect("events serialize");
        if let Some(rot) = &mut self.rotation {
            rot.segment_digest = segment::fnv1a(rot.segment_digest, line.as_bytes());
            rot.segment_digest = segment::fnv1a(rot.segment_digest, b"\n");
            rot.segment_events += 1;
            if let MarketEvent::PaymentsSettled { round, .. } = event {
                if rot.segment_first_round.is_none() {
                    rot.segment_first_round = Some(round.index());
                }
                rot.segment_settled += 1;
            }
        }
        let span_start = cdt_obs::active_trace().map(|trace| (trace, cdt_obs::span::now_ns()));
        let start = Instant::now();
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let flushed = event.is_settlement_boundary();
        if flushed {
            self.writer.flush()?;
        }
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.write_ns.record_ns(ns);
        if flushed {
            // Settlement-boundary appends are the flush latency signal:
            // feed the watchdog and, when tracing, span the write+flush
            // (parented to the active round when the pipeline marked one).
            if cdt_obs::health::watchdog_active() {
                cdt_obs::health::record_flush_ns(ns);
            }
            if let Some((trace, start_ns)) = span_start {
                let round_scope = cdt_obs::span::current_round_scope();
                let parent = round_scope
                    .map(|(id, _)| id)
                    .or_else(cdt_obs::span::current_scope);
                let mut record = cdt_obs::SpanRecord::new(
                    trace,
                    cdt_obs::span::next_span_id(),
                    parent,
                    "journal_write",
                    start_ns,
                    cdt_obs::span::now_ns().saturating_sub(start_ns),
                );
                if let Some((_, round)) = round_scope {
                    record = record.with_round(round);
                }
                self.spans.push(record);
            }
        }
        self.events += 1;
        // Rotate only on a settlement: `JobPublished` never fills a
        // segment, and `JobCompleted` is followed by `finish()`, which
        // seals the active segment itself.
        if matches!(event, MarketEvent::PaymentsSettled { .. })
            && self
                .rotation
                .as_ref()
                .is_some_and(|rot| rot.segment_settled >= rot.segment_rounds)
        {
            self.rotate()?;
        }
        Ok(())
    }

    /// Seals the active segment: flush + best-effort sync, atomic rename
    /// to its final `seg-NNNN` name, then an atomic index rewrite — in
    /// that order, so every indexed segment exists on disk and a crash
    /// between the two leaves at most one sealed-but-unindexed segment
    /// (which recovery finds by scanning).
    fn seal_active_segment(&mut self) -> Result<(), JournalError> {
        self.writer.flush()?;
        let _ = self.writer.get_ref().sync_all();
        let state_after = self.state.clone();
        let rot = self.rotation.as_mut().expect("sealing requires rotation");
        let sealed = segment::segment_path(&self.final_path, rot.seq);
        std::fs::rename(&self.partial_path, &sealed)?;
        rot.entries.push(SegmentEntry {
            seq: rot.seq,
            file: sealed
                .file_name()
                .map_or_else(String::new, |n| n.to_string_lossy().into_owned()),
            first_round: rot.segment_first_round,
            rounds: rot.segment_settled,
            events: rot.segment_events,
            digest: rot.segment_digest,
            state_after,
        });
        let index = segment::JournalIndex {
            checkpoint: None,
            segments: rot.entries.clone(),
        };
        index.write(&self.final_path)?;
        rot.seq += 1;
        rot.segment_events = 0;
        rot.segment_first_round = None;
        rot.segment_settled = 0;
        rot.segment_digest = segment::FNV_OFFSET;
        Ok(())
    }

    /// Seals the active segment and opens the next one.
    fn rotate(&mut self) -> Result<(), JournalError> {
        self.seal_active_segment()?;
        let seq = self.rotation.as_ref().expect("rotation enabled").seq;
        self.partial_path = segment::segment_partial_path(&self.final_path, seq);
        let file = File::create(&self.partial_path)?;
        self.writer = BufWriter::new(file);
        Ok(())
    }

    /// Flushes, durably syncs, and atomically renames `<path>.partial`
    /// into the final journal path.
    ///
    /// # Errors
    /// Returns the I/O error on flush or rename failure (the partial file
    /// is left in place for recovery).
    pub fn finish(mut self) -> Result<JournalReport, JournalError> {
        let span_start = cdt_obs::active_trace().map(|trace| (trace, cdt_obs::span::now_ns()));
        let start = Instant::now();
        if self.rotation.is_some() {
            // Seal the tail segment (possibly short) and leave the index
            // as the journal's durable root; no `<path>` file is created.
            self.seal_active_segment()?;
        } else {
            self.writer.flush()?;
            // Durability is best-effort: a failed fsync still leaves a
            // fully flushed partial file for recovery.
            let _ = self.writer.get_ref().sync_all();
            std::fs::rename(&self.partial_path, &self.final_path)?;
        }
        self.renamed = true;
        if cdt_obs::health::watchdog_active() {
            cdt_obs::health::record_flush_ns(
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        if let Some((trace, start_ns)) = span_start {
            self.spans.push(cdt_obs::SpanRecord::new(
                trace,
                cdt_obs::span::next_span_id(),
                cdt_obs::span::current_scope(),
                "journal_flush",
                start_ns,
                cdt_obs::span::now_ns().saturating_sub(start_ns),
            ));
        }
        self.publish_metrics();
        Ok(JournalReport {
            events: self.events,
            settled_rounds: self.state.settled_rounds(),
            completed: self.state.is_completed(),
            path: self.final_path.clone(),
            segments: self.rotation.as_ref().map_or(0, |rot| rot.entries.len()),
        })
    }

    /// Publishes the locally batched protocol metrics to the global
    /// registry, once, if the obs pipeline is installed.
    fn publish_metrics(&mut self) {
        if self.published_metrics {
            return;
        }
        self.published_metrics = true;
        if !cdt_obs::is_enabled() {
            return;
        }
        let registry = cdt_obs::global();
        registry.add_counter("cdt_obs_protocol_events_total", &[], self.events);
        registry.add_counter(
            "cdt_obs_protocol_settled_rounds",
            &[],
            self.state.settled_rounds() as u64,
        );
        if self.violations > 0 {
            registry.add_counter("cdt_obs_protocol_violations_total", &[], self.violations);
        }
        if self.write_ns.count() > 0 {
            registry.merge_histogram("cdt_obs_journal_write_ns", &[], &self.write_ns);
        }
        if let Some(rot) = &self.rotation {
            if !rot.entries.is_empty() {
                registry.add_counter(
                    "cdt_obs_journal_segments_total",
                    &[],
                    rot.entries.len() as u64,
                );
            }
        }
        if !self.spans.is_empty() {
            cdt_obs::publish_spans(&self.spans);
            self.spans.clear();
        }
    }
}

impl Drop for JournalSink {
    /// The crash/error path: flush what settled and leave `<path>.partial`
    /// on disk for [`crate::recover_json_lines`]. Metrics still publish so
    /// an aborted run's journal work is visible in the summary.
    fn drop(&mut self) {
        if !self.renamed {
            let _ = self.writer.flush();
        }
        self.publish_metrics();
    }
}

/// A [`RoundObserver`] that journals every executed round through a
/// [`JournalSink`], reconstructing the five Fig. 2 events per round from
/// the engine's selection/equilibrium/observation/round-end hooks.
///
/// The settlement amounts are recomputed with exactly the expressions
/// [`crate::events_for_round`] uses (`p^J · Στ` and `p · τ_i` over the
/// equilibrium hook's borrowed values), so a streamed journal is
/// byte-identical to the buffered [`crate::EventLog`] path for the same
/// run.
///
/// Observer hooks cannot return errors, so the first journal failure is
/// stashed and later appends become no-ops; [`JournalObserver::finish`]
/// surfaces the stashed error.
#[derive(Debug)]
pub struct JournalObserver {
    sink: JournalSink,
    /// `⟨p^J, p, τ⟩` of the in-flight round, for settlement reconstruction.
    pending: Option<(f64, f64, Vec<f64>)>,
    error: Option<JournalError>,
}

impl JournalObserver {
    /// Opens the journal at `path` and writes the `JobPublished` event.
    ///
    /// # Errors
    /// Propagates sink creation or first-write failures.
    pub fn create(path: impl AsRef<Path>, job: JobSpec) -> Result<Self, JournalError> {
        Self::create_with(path, job, None)
    }

    /// Like [`JournalObserver::create`], but with optional segment
    /// rotation (see [`JournalSink::create_with`]).
    ///
    /// # Errors
    /// Propagates sink creation or first-write failures.
    pub fn create_with(
        path: impl AsRef<Path>,
        job: JobSpec,
        rotation: Option<RotationConfig>,
    ) -> Result<Self, JournalError> {
        let mut sink = JournalSink::create_with(path, rotation)?;
        sink.append(&MarketEvent::JobPublished { job })?;
        Ok(Self {
            sink,
            pending: None,
            error: None,
        })
    }

    /// The underlying sink (state, counts, partial path).
    #[must_use]
    pub fn sink(&self) -> &JournalSink {
        &self.sink
    }

    fn record(&mut self, event: MarketEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.sink.append(&event) {
            self.error = Some(e);
        }
    }

    /// Appends `JobCompleted` and atomically finalizes the journal.
    ///
    /// # Errors
    /// Surfaces the first error any hook hit, or the completion-write /
    /// rename failure.
    pub fn finish(mut self) -> Result<JournalReport, JournalError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let rounds = self.sink.state().settled_rounds();
        self.sink.append(&MarketEvent::JobCompleted { rounds })?;
        self.sink.finish()
    }
}

impl RoundObserver for JournalObserver {
    fn selection(&mut self, round: Round, event: &SelectionEvent<'_>) {
        self.record(MarketEvent::SellersSelected {
            round,
            sellers: event.selected.to_vec(),
        });
    }

    fn equilibrium(&mut self, round: Round, event: &EquilibriumEvent<'_>) {
        self.pending = Some((
            event.service_price,
            event.collection_price,
            event.sensing_times.to_vec(),
        ));
        self.record(MarketEvent::StrategyDetermined {
            round,
            service_price: event.service_price,
            collection_price: event.collection_price,
            sensing_times: event.sensing_times.to_vec(),
        });
    }

    fn observation(&mut self, round: Round, event: &ObservationEvent) {
        self.record(MarketEvent::DataCollected {
            round,
            observed_revenue: event.observed_revenue,
        });
    }

    fn round_end(&mut self, round: Round, _event: &cdt_obs::RoundEndEvent) {
        self.record(MarketEvent::StatisticsDelivered { round });
        if let Some((service_price, collection_price, sensing_times)) = self.pending.take() {
            // Bit-for-bit the expressions of `events_for_round` /
            // `StackelbergSolution::consumer_payment`.
            let consumer_payment = service_price * sensing_times.iter().sum::<f64>();
            let seller_payments: Vec<f64> = sensing_times
                .iter()
                .map(|&tau| collection_price * tau)
                .collect();
            self.record(MarketEvent::PaymentsSettled {
                round,
                consumer_payment,
                seller_payments,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::EventLog;
    use cdt_types::SellerId;

    fn temp_journal(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cdt-journal-{}-{name}.jsonl", std::process::id()));
        p
    }

    fn job_event() -> MarketEvent {
        MarketEvent::JobPublished {
            job: JobSpec::new(4, 2, 10.0).unwrap(),
        }
    }

    fn round_events(t: usize) -> Vec<MarketEvent> {
        vec![
            MarketEvent::SellersSelected {
                round: Round(t),
                sellers: vec![SellerId(0), SellerId(1)],
            },
            MarketEvent::StrategyDetermined {
                round: Round(t),
                service_price: 4.0,
                collection_price: 1.5,
                sensing_times: vec![2.0, 3.0],
            },
            MarketEvent::DataCollected {
                round: Round(t),
                observed_revenue: 5.5,
            },
            MarketEvent::StatisticsDelivered { round: Round(t) },
            MarketEvent::PaymentsSettled {
                round: Round(t),
                consumer_payment: 20.0,
                seller_payments: vec![3.0, 4.5],
            },
        ]
    }

    #[test]
    fn streams_validates_and_renames_atomically() {
        let path = temp_journal("clean");
        let mut sink = JournalSink::create(&path).unwrap();
        sink.append(&job_event()).unwrap();
        for t in 0..2 {
            for e in round_events(t) {
                sink.append(&e).unwrap();
            }
        }
        // Before finish: only the partial exists.
        assert!(sink.partial_path().exists());
        assert!(!path.exists());
        sink.append(&MarketEvent::JobCompleted { rounds: 2 })
            .unwrap();
        let report = sink.finish().unwrap();
        assert_eq!(report.events, 12);
        assert_eq!(report.settled_rounds, 2);
        assert!(report.completed);
        assert!(path.exists());
        assert!(!partial_path_for(&path).exists());

        // The streamed bytes replay cleanly and match the buffered path.
        let text = std::fs::read_to_string(&path).unwrap();
        let log = EventLog::from_json_lines(&text).unwrap();
        assert_eq!(text, log.to_json_lines());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejected_event_writes_nothing() {
        let path = temp_journal("reject");
        let mut sink = JournalSink::create(&path).unwrap();
        sink.append(&job_event()).unwrap();
        let err = sink
            .append(&MarketEvent::JobCompleted { rounds: 3 })
            .unwrap_err();
        assert!(matches!(err, JournalError::Protocol(_)));
        assert_eq!(sink.events_written(), 1);
        drop(sink);
        // Only the accepted event reached the partial file.
        let text = std::fs::read_to_string(partial_path_for(&path)).unwrap();
        assert_eq!(text.lines().count(), 1);
        let _ = std::fs::remove_file(partial_path_for(&path));
    }

    #[test]
    fn dropped_sink_leaves_settled_prefix_in_partial() {
        let path = temp_journal("crash");
        {
            let mut sink = JournalSink::create(&path).unwrap();
            sink.append(&job_event()).unwrap();
            for e in round_events(0) {
                sink.append(&e).unwrap();
            }
            // Start round 1 but never settle it, then "crash" (drop).
            sink.append(&round_events(1)[0]).unwrap();
        }
        assert!(!path.exists());
        let text = std::fs::read_to_string(partial_path_for(&path)).unwrap();
        let rec = crate::recover_json_lines(&text);
        assert_eq!(rec.log.state().settled_rounds(), 1);
        assert!(rec.stop.is_some());
        let _ = std::fs::remove_file(partial_path_for(&path));
    }

    #[test]
    fn stale_partial_is_refused_not_clobbered() {
        let path = temp_journal("stale");
        let partial = partial_path_for(&path);
        std::fs::write(&partial, "recoverable bytes from a killed run\n").unwrap();
        let err = JournalSink::create(&path).unwrap_err();
        assert!(matches!(err, JournalError::StaleArtifact(ref p) if *p == partial));
        assert!(err.to_string().contains("cdt journal recover"), "{err}");
        // The recoverable bytes are untouched.
        let text = std::fs::read_to_string(&partial).unwrap();
        assert_eq!(text, "recoverable bytes from a killed run\n");
        let _ = std::fs::remove_file(&partial);
    }

    #[test]
    fn rotation_refuses_stray_artifacts_and_zero_threshold() {
        let path = temp_journal("stray");
        let err = JournalSink::create_with(&path, Some(RotationConfig { segment_rounds: 0 }))
            .unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        let stray = crate::segment::segment_path(&path, 3);
        std::fs::write(&stray, "old segment\n").unwrap();
        let err = JournalSink::create_with(&path, Some(RotationConfig { segment_rounds: 2 }))
            .unwrap_err();
        assert!(matches!(err, JournalError::StaleArtifact(_)), "{err}");
        let _ = std::fs::remove_file(&stray);
        // A same-named single-file journal is refused too.
        std::fs::write(&path, "single-file journal\n").unwrap();
        let err = JournalSink::create_with(&path, Some(RotationConfig { segment_rounds: 2 }))
            .unwrap_err();
        assert!(matches!(err, JournalError::StaleArtifact(ref p) if *p == path));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotated_segments_concatenate_to_the_single_file_journal() {
        let single = temp_journal("rot-single");
        let rotated = temp_journal("rot-segmented");
        let feed = |sink: &mut JournalSink| {
            sink.append(&job_event()).unwrap();
            for t in 0..5 {
                for e in round_events(t) {
                    sink.append(&e).unwrap();
                }
            }
            sink.append(&MarketEvent::JobCompleted { rounds: 5 })
                .unwrap();
        };
        let mut sink = JournalSink::create(&single).unwrap();
        feed(&mut sink);
        sink.finish().unwrap();

        let mut sink =
            JournalSink::create_with(&rotated, Some(RotationConfig { segment_rounds: 2 })).unwrap();
        feed(&mut sink);
        let report = sink.finish().unwrap();
        assert_eq!(report.events, 27);
        assert_eq!(report.settled_rounds, 5);
        assert!(report.completed);
        assert_eq!(report.segments, 3);
        // No base file: the index is the root.
        assert!(!rotated.exists());
        assert!(crate::segment::index_path(&rotated).exists());

        // 5 rounds at 2 rounds/segment: seg 0 (rounds 0-1), seg 1 (2-3),
        // seg 2 (round 4 + JobCompleted).
        let mut concat = String::new();
        for seq in 0..3 {
            let seg = crate::segment::segment_path(&rotated, seq);
            concat.push_str(&std::fs::read_to_string(&seg).unwrap());
        }
        assert!(!crate::segment::segment_path(&rotated, 3).exists());
        let single_text = std::fs::read_to_string(&single).unwrap();
        assert_eq!(concat, single_text, "segments must concatenate exactly");

        // The strict loader agrees with the single-file view.
        let seg_view = crate::segment::load_journal(&rotated).unwrap();
        let single_view = crate::segment::load_journal(&single).unwrap();
        assert!(seg_view.segmented);
        assert_eq!(seg_view.segments, 3);
        assert_eq!(seg_view.events, single_view.events);
        assert_eq!(seg_view.settlements, single_view.settlements);
        assert_eq!(seg_view.state, single_view.state);

        let _ = std::fs::remove_file(&single);
        for seq in 0..3 {
            let _ = std::fs::remove_file(crate::segment::segment_path(&rotated, seq));
        }
        let _ = std::fs::remove_file(crate::segment::index_path(&rotated));
    }

    #[test]
    fn dropped_rotating_sink_leaves_sealed_segments_and_partial() {
        let path = temp_journal("rot-crash");
        {
            let mut sink =
                JournalSink::create_with(&path, Some(RotationConfig { segment_rounds: 1 }))
                    .unwrap();
            sink.append(&job_event()).unwrap();
            for e in round_events(0) {
                sink.append(&e).unwrap();
            }
            // Round 1 starts but never settles; then the process "dies".
            sink.append(&round_events(1)[0]).unwrap();
        }
        assert!(crate::segment::segment_path(&path, 0).exists());
        assert!(crate::segment::segment_partial_path(&path, 1).exists());
        let rec = crate::segment::recover_journal(&path).unwrap();
        assert!(rec.segmented);
        assert_eq!(rec.settled_rounds(), 1);
        assert!(rec.state.at_round_boundary());
        assert!(rec.stop.is_some());
        let _ = std::fs::remove_file(crate::segment::segment_path(&path, 0));
        let _ = std::fs::remove_file(crate::segment::segment_partial_path(&path, 1));
        let _ = std::fs::remove_file(crate::segment::index_path(&path));
    }

    #[test]
    fn observer_reconstructs_the_round_events() {
        let path = temp_journal("observer");
        let mut obs = JournalObserver::create(&path, JobSpec::new(4, 2, 10.0).unwrap()).unwrap();
        let selected = [SellerId(0), SellerId(1)];
        let scores = [0.9, 0.8];
        let taus = [2.0, 3.0];
        obs.round_start(Round(0));
        obs.selection(
            Round(0),
            &SelectionEvent {
                selected: &selected,
                scores: &scores,
            },
        );
        obs.equilibrium(
            Round(0),
            &EquilibriumEvent {
                service_price: 4.0,
                collection_price: 1.5,
                sensing_times: &taus,
                consumer_profit: 1.0,
                platform_profit: 1.0,
                seller_profit: 1.0,
                cached: false,
            },
        );
        obs.observation(
            Round(0),
            &ObservationEvent {
                observed_revenue: 5.5,
                samples: 4,
            },
        );
        obs.round_end(
            Round(0),
            &cdt_obs::RoundEndEvent {
                observed_revenue: 5.5,
                consumer_profit: 1.0,
                platform_profit: 1.0,
                seller_profit: 1.0,
                selection_ns: 0,
                solve_ns: 0,
                observe_ns: 0,
            },
        );
        let report = obs.finish().unwrap();
        assert_eq!(report.events, 7); // publish + 5 round events + complete
        assert_eq!(report.settled_rounds, 1);
        assert!(report.completed);
        let text = std::fs::read_to_string(&path).unwrap();
        let log = EventLog::from_json_lines(&text).unwrap();
        match &log.events()[5] {
            MarketEvent::PaymentsSettled {
                consumer_payment,
                seller_payments,
                ..
            } => {
                assert_eq!(*consumer_payment, 4.0 * (2.0 + 3.0));
                assert_eq!(seller_payments, &vec![3.0, 4.5]);
            }
            other => panic!("expected settlement, got {}", other.kind()),
        }
        let _ = std::fs::remove_file(&path);
    }
}
