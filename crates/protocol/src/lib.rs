//! # cdt-protocol
//!
//! The CDT trading workflow of the paper's Fig. 2, as an auditable event
//! protocol. Each round proceeds:
//!
//! 1. consumer publishes the job (once, before round 0);
//! 2. platform selects sellers;
//! 3. the three parties determine the incentive strategy (HS game);
//! 4. selected sellers collect data;
//! 5. platform aggregates and delivers statistics;
//! 6. consumer and platform settle payments.
//!
//! The paper treats this loop informally; a deployable market needs the
//! ordering *enforced* and the history *replayable* for dispute audit.
//! This crate provides:
//!
//! - [`event`]: the typed [`MarketEvent`]s of the workflow;
//! - [`state`]: a per-round state machine rejecting out-of-order or
//!   inconsistent events (e.g. settling a round whose data never arrived,
//!   or paying a different amount than the agreed strategy implies);
//! - [`log`]: an append-only [`EventLog`] with JSON-lines round-trip and
//!   full-replay validation;
//! - [`bridge`]: adapters from [`cdt_core::RoundOutcome`] to the event
//!   stream, so a mechanism run can be journaled with one call per round;
//! - [`journal`]: a crash-safe streaming [`JournalSink`] (validate →
//!   buffered append → flush on settlement → atomic rename on completion)
//!   plus a [`JournalObserver`] that journals through the engine's
//!   `cdt_obs::RoundObserver` hooks and publishes `cdt_obs_protocol_*`
//!   metrics;
//! - [`recover`]: truncation-tolerant replay recovering the longest
//!   settled-round prefix of a crashed run's journal;
//! - [`diff`]: round-aligned settlement comparison between two journals
//!   (`cdt journal diff`) — the divergence validator for the lane kernels'
//!   deterministic (zero-diff) and fast-math (bounded-diff) contracts;
//! - [`segment`]: segment-rotated journal layout — the `<path>.seg-NNNN`
//!   files, the `<path>.idx` round-range index, and the compaction
//!   checkpoints (`cdt journal compact`) that fold a settled prefix into a
//!   digest-verified [`ProtocolState`] snapshot, making replay-to-round an
//!   index lookup plus one segment scan.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bridge;
pub mod diff;
pub mod event;
pub mod journal;
pub mod log;
pub mod recover;
pub mod segment;
pub mod state;

pub use bridge::events_for_round;
pub use diff::{
    diff_settlement_rows, diff_settlements, settlement_rows, SettlementDiff, SettlementRow,
};
pub use event::MarketEvent;
pub use journal::{JournalError, JournalObserver, JournalReport, JournalSink, RotationConfig};
pub use log::EventLog;
pub use recover::{recover_json_lines, Recovery, RecoveryStop};
pub use segment::{
    compact_journal, load_journal, recover_journal, replay_to_round, CompactReport,
    JournalRecovery, JournalView, RoundLookup, SegmentError,
};
pub use state::{ProtocolError, ProtocolState};
