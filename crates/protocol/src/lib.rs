//! # cdt-protocol
//!
//! The CDT trading workflow of the paper's Fig. 2, as an auditable event
//! protocol. Each round proceeds:
//!
//! 1. consumer publishes the job (once, before round 0);
//! 2. platform selects sellers;
//! 3. the three parties determine the incentive strategy (HS game);
//! 4. selected sellers collect data;
//! 5. platform aggregates and delivers statistics;
//! 6. consumer and platform settle payments.
//!
//! The paper treats this loop informally; a deployable market needs the
//! ordering *enforced* and the history *replayable* for dispute audit.
//! This crate provides:
//!
//! - [`event`]: the typed [`MarketEvent`]s of the workflow;
//! - [`state`]: a per-round state machine rejecting out-of-order or
//!   inconsistent events (e.g. settling a round whose data never arrived,
//!   or paying a different amount than the agreed strategy implies);
//! - [`log`]: an append-only [`EventLog`] with JSON-lines round-trip and
//!   full-replay validation;
//! - [`bridge`]: adapters from [`cdt_core::RoundOutcome`] to the event
//!   stream, so a mechanism run can be journaled with one call per round.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bridge;
pub mod event;
pub mod log;
pub mod state;

pub use bridge::events_for_round;
pub use event::MarketEvent;
pub use log::EventLog;
pub use state::{ProtocolError, ProtocolState};
