//! Adapters from the mechanism's [`RoundOutcome`] to protocol events.

use crate::event::MarketEvent;
use cdt_core::RoundOutcome;

/// The five per-round events implied by one executed round, in protocol
/// order. Append them to an [`crate::EventLog`] after `JobPublished`.
#[must_use]
pub fn events_for_round(outcome: &RoundOutcome) -> Vec<MarketEvent> {
    let strategy = &outcome.strategy;
    let seller_payments: Vec<f64> = strategy
        .sensing_times
        .iter()
        .map(|&tau| strategy.collection_price * tau)
        .collect();
    vec![
        MarketEvent::SellersSelected {
            round: outcome.round,
            sellers: outcome.selected.clone(),
        },
        MarketEvent::StrategyDetermined {
            round: outcome.round,
            service_price: strategy.service_price,
            collection_price: strategy.collection_price,
            sensing_times: strategy.sensing_times.clone(),
        },
        MarketEvent::DataCollected {
            round: outcome.round,
            observed_revenue: outcome.observed_revenue,
        },
        MarketEvent::StatisticsDelivered {
            round: outcome.round,
        },
        MarketEvent::PaymentsSettled {
            round: outcome.round,
            consumer_payment: strategy.consumer_payment(),
            seller_payments,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::EventLog;
    use cdt_core::{CmabHs, Scenario};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_mechanism_run_journals_cleanly() {
        // Every round the real mechanism produces must pass the protocol
        // state machine — selection arity, strategy arity, and settlement
        // amounts all line up by construction.
        let mut rng = StdRng::seed_from_u64(1);
        let scenario = Scenario::paper_defaults(10, 3, 4, 15, &mut rng).unwrap();
        let mut mech = CmabHs::new(scenario.config.clone()).unwrap();
        let observer = scenario.observer();

        let mut log = EventLog::new();
        log.append(MarketEvent::JobPublished {
            job: scenario.config.job.clone(),
        })
        .unwrap();
        let mut rounds = 0;
        while !mech.is_finished() {
            let outcome = mech.step(&observer, &mut rng).unwrap();
            for e in events_for_round(&outcome) {
                log.append(e).unwrap_or_else(|err| {
                    panic!("round {}: {err}", outcome.round.index());
                });
            }
            rounds += 1;
        }
        log.append(MarketEvent::JobCompleted { rounds }).unwrap();
        assert!(log.state().is_completed());
        assert_eq!(log.state().settled_rounds(), 15);

        // The journal's audit totals match the economics of the run.
        assert!(log.total_consumer_spend() > 0.0);
        assert!(log.total_seller_payout() > 0.0);
        assert!(log.total_consumer_spend() > log.total_seller_payout());

        // And the serialized journal replays bit-for-bit.
        let replayed = EventLog::from_json_lines(&log.to_json_lines()).unwrap();
        assert_eq!(replayed.events().len(), log.events().len());
    }

    #[test]
    fn events_match_outcome_amounts() {
        let mut rng = StdRng::seed_from_u64(2);
        let scenario = Scenario::paper_defaults(6, 2, 3, 3, &mut rng).unwrap();
        let mut mech = CmabHs::new(scenario.config.clone()).unwrap();
        let outcome = mech.step(&scenario.observer(), &mut rng).unwrap();
        let events = events_for_round(&outcome);
        assert_eq!(events.len(), 5);
        match &events[4] {
            MarketEvent::PaymentsSettled {
                consumer_payment,
                seller_payments,
                ..
            } => {
                assert!((consumer_payment - outcome.strategy.consumer_payment()).abs() < 1e-12);
                let total: f64 = seller_payments.iter().sum();
                assert!((total - outcome.strategy.seller_payment()).abs() < 1e-9);
            }
            other => panic!("expected settlement, got {}", other.kind()),
        }
    }
}
