//! The typed events of the CDT trading workflow (paper Fig. 2).

use cdt_types::{JobSpec, Round, SellerId};
use serde::{Deserialize, Serialize};

/// One event in the market's life. Monetary amounts are carried on the
/// events so the log alone suffices for settlement audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MarketEvent {
    /// The consumer publishes the data collection job (Fig. 2 step 1).
    JobPublished {
        /// The job specification `⟨L, N, T, Des⟩`.
        job: JobSpec,
    },
    /// The platform selects this round's sellers (step 2).
    SellersSelected {
        /// The trading round.
        round: Round,
        /// The selected sellers, in selection order.
        sellers: Vec<SellerId>,
    },
    /// The parties fix the incentive strategy `⟨p^J, p, τ⟩` (step 3).
    StrategyDetermined {
        /// The trading round.
        round: Round,
        /// Unit data-service price `p^J`.
        service_price: f64,
        /// Unit data-collection price `p`.
        collection_price: f64,
        /// Per-seller sensing times, parallel to the selection.
        sensing_times: Vec<f64>,
    },
    /// The selected sellers return their data (step 4).
    DataCollected {
        /// The trading round.
        round: Round,
        /// Realized revenue `Σ_i Σ_l q_{i,l}`.
        observed_revenue: f64,
    },
    /// The platform delivers the aggregated statistics (step 5).
    StatisticsDelivered {
        /// The trading round.
        round: Round,
    },
    /// Payments settle (step 6): consumer → platform → sellers.
    PaymentsSettled {
        /// The trading round.
        round: Round,
        /// `p^J · Στ`, consumer to platform.
        consumer_payment: f64,
        /// `p · τ_i` per seller, platform to sellers (selection order).
        seller_payments: Vec<f64>,
    },
    /// The job's `N` rounds are complete.
    JobCompleted {
        /// Total rounds traded.
        rounds: usize,
    },
}

impl MarketEvent {
    /// The round an event belongs to (`None` for job-level events).
    #[must_use]
    pub fn round(&self) -> Option<Round> {
        match self {
            MarketEvent::JobPublished { .. } | MarketEvent::JobCompleted { .. } => None,
            MarketEvent::SellersSelected { round, .. }
            | MarketEvent::StrategyDetermined { round, .. }
            | MarketEvent::DataCollected { round, .. }
            | MarketEvent::StatisticsDelivered { round }
            | MarketEvent::PaymentsSettled { round, .. } => Some(*round),
        }
    }

    /// `true` for the events that end a durable unit of history: the job
    /// publication, each round's settlement, and the job completion. The
    /// journal flushes (and, under rotation, may seal a segment) exactly
    /// at these events, and recovery keeps the longest prefix ending on
    /// one of them.
    #[must_use]
    pub fn is_settlement_boundary(&self) -> bool {
        matches!(
            self,
            MarketEvent::JobPublished { .. }
                | MarketEvent::PaymentsSettled { .. }
                | MarketEvent::JobCompleted { .. }
        )
    }

    /// Short kind tag (used in error messages and log summaries).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MarketEvent::JobPublished { .. } => "JobPublished",
            MarketEvent::SellersSelected { .. } => "SellersSelected",
            MarketEvent::StrategyDetermined { .. } => "StrategyDetermined",
            MarketEvent::DataCollected { .. } => "DataCollected",
            MarketEvent::StatisticsDelivered { .. } => "StatisticsDelivered",
            MarketEvent::PaymentsSettled { .. } => "PaymentsSettled",
            MarketEvent::JobCompleted { .. } => "JobCompleted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_are_attached_to_round_events() {
        let e = MarketEvent::DataCollected {
            round: Round(3),
            observed_revenue: 1.0,
        };
        assert_eq!(e.round(), Some(Round(3)));
        let job = MarketEvent::JobCompleted { rounds: 10 };
        assert_eq!(job.round(), None);
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            MarketEvent::JobPublished {
                job: JobSpec::new(1, 1, 1.0).unwrap(),
            }
            .kind(),
            MarketEvent::SellersSelected {
                round: Round(0),
                sellers: vec![],
            }
            .kind(),
            MarketEvent::JobCompleted { rounds: 0 }.kind(),
        ];
        let set: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(set.len(), kinds.len());
    }

    #[test]
    fn settlement_boundaries_are_exactly_publish_settle_complete() {
        assert!(MarketEvent::JobPublished {
            job: JobSpec::new(1, 1, 1.0).unwrap(),
        }
        .is_settlement_boundary());
        assert!(MarketEvent::PaymentsSettled {
            round: Round(0),
            consumer_payment: 1.0,
            seller_payments: vec![1.0],
        }
        .is_settlement_boundary());
        assert!(MarketEvent::JobCompleted { rounds: 1 }.is_settlement_boundary());
        assert!(!MarketEvent::SellersSelected {
            round: Round(0),
            sellers: vec![SellerId(0)],
        }
        .is_settlement_boundary());
        assert!(!MarketEvent::StatisticsDelivered { round: Round(0) }.is_settlement_boundary());
    }

    #[test]
    fn serde_round_trip() {
        let e = MarketEvent::PaymentsSettled {
            round: Round(7),
            consumer_payment: 12.5,
            seller_payments: vec![3.0, 4.5],
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: MarketEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
