//! Per-PoI quality variation — Def. 3's Remark made concrete.
//!
//! "The distance and angle of taking picture will make `q_{i,l}^t` vary in
//! different places even with the same device. That is, for task `l' ≠ l`,
//! `q_{i,l'}^t` may not be equal to `q_{i,l}^t`." The *expected* quality
//! `q_i` stays device-determined; this module adds a per-(seller, PoI)
//! multiplicative effect whose average over PoIs is exactly 1, so the
//! seller-level mean the CMAB learns is unchanged while per-PoI readings
//! become heterogeneous — which is what the estimator's increment-by-`L`
//! design (Eq. 17) has to cope with in practice.

use crate::distribution::QualityDistribution;
use crate::observe::ObservationMatrix;
use crate::population::SellerPopulation;
use cdt_types::{PoiId, SellerId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-(seller, PoI) multiplicative effects, normalized so each seller's
/// effects average to exactly 1 across PoIs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoiEffects {
    /// `effects[i][l]` multiplies seller `i`'s mean at PoI `l`.
    effects: Vec<Vec<f64>>,
}

impl PoiEffects {
    /// Draws effects uniformly from `[1 − spread, 1 + spread]` and
    /// renormalizes each seller's row to mean 1.
    ///
    /// # Panics
    /// Panics unless `spread ∈ [0, 1)` and `l > 0`.
    pub fn generate<R: Rng + ?Sized>(m: usize, l: usize, spread: f64, rng: &mut R) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread must lie in [0, 1)");
        assert!(l > 0, "need at least one PoI");
        let effects = (0..m)
            .map(|_| {
                let mut row: Vec<f64> = (0..l)
                    .map(|_| rng.gen_range(1.0 - spread..=1.0 + spread))
                    .collect();
                let mean = row.iter().sum::<f64>() / l as f64;
                for e in &mut row {
                    *e /= mean;
                }
                row
            })
            .collect();
        Self { effects }
    }

    /// The effect of seller `i` at PoI `l`.
    #[must_use]
    pub fn effect(&self, seller: SellerId, poi: PoiId) -> f64 {
        self.effects[seller.index()][poi.index()]
    }

    /// Number of PoIs covered.
    #[must_use]
    pub fn num_pois(&self) -> usize {
        self.effects.first().map_or(0, Vec::len)
    }
}

/// An observer whose per-PoI observations are modulated by [`PoiEffects`]
/// while preserving each seller's overall expected quality.
#[derive(Debug, Clone)]
pub struct PoiVaryingObserver {
    population: SellerPopulation,
    effects: PoiEffects,
}

impl PoiVaryingObserver {
    /// Wraps a population with PoI effects.
    ///
    /// # Panics
    /// Panics if the effects don't cover the population.
    #[must_use]
    pub fn new(population: SellerPopulation, effects: PoiEffects) -> Self {
        assert_eq!(
            effects.effects.len(),
            population.len(),
            "one effect row per seller"
        );
        Self {
            population,
            effects,
        }
    }

    /// The hidden population.
    #[must_use]
    pub fn population(&self) -> &SellerPopulation {
        &self.population
    }

    /// Number of PoIs `L`.
    #[must_use]
    pub fn num_pois(&self) -> usize {
        self.effects.num_pois()
    }

    /// Expected observation of seller `i` at PoI `l`
    /// (`q_i · effect(i, l)`, clamped into `[0, 1]`).
    #[must_use]
    pub fn expected_at(&self, seller: SellerId, poi: PoiId) -> f64 {
        (self.population.profile(seller).expected_quality() * self.effects.effect(seller, poi))
            .clamp(0.0, 1.0)
    }

    /// Observes one round: each selected seller produces one modulated
    /// sample per PoI (the base distribution's deviation from its mean is
    /// carried over, then scaled).
    pub fn observe_round<R: Rng + ?Sized>(
        &self,
        selected: &[SellerId],
        rng: &mut R,
    ) -> ObservationMatrix {
        let l = self.num_pois();
        let values = selected
            .iter()
            .map(|&id| {
                let profile = self.population.profile(id);
                let mean = profile.expected_quality();
                (0..l)
                    .map(|poi| {
                        let base = profile.quality.sample(rng);
                        let noise = base - mean; // zero-mean deviation
                        let modulated = mean * self.effects.effect(id, PoiId(poi)) + noise;
                        modulated.clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        ObservationMatrix::new(selected.to_vec(), values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{QualityModel, TruncatedGaussian};
    use crate::population::SellerProfile;
    use cdt_types::SellerCostParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pop(qs: &[f64]) -> SellerPopulation {
        SellerPopulation::from_profiles(
            qs.iter()
                .map(|&q| SellerProfile {
                    quality: QualityModel::TruncatedGaussian(TruncatedGaussian::new(q, 0.05)),
                    cost: SellerCostParams { a: 0.2, b: 0.3 },
                })
                .collect(),
        )
    }

    #[test]
    fn effects_rows_average_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = PoiEffects::generate(20, 10, 0.4, &mut rng);
        for i in 0..20 {
            let row_mean: f64 = (0..10)
                .map(|l| e.effect(SellerId(i), PoiId(l)))
                .sum::<f64>()
                / 10.0;
            assert!((row_mean - 1.0).abs() < 1e-12, "seller {i}: {row_mean}");
        }
    }

    #[test]
    fn zero_spread_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = PoiEffects::generate(3, 4, 0.0, &mut rng);
        for i in 0..3 {
            for l in 0..4 {
                assert!((e.effect(SellerId(i), PoiId(l)) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn per_poi_means_differ_but_seller_mean_is_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let effects = PoiEffects::generate(1, 4, 0.5, &mut rng);
        let obs = PoiVaryingObserver::new(pop(&[0.5]), effects);

        // Empirical per-PoI means over many rounds.
        let rounds = 20_000;
        let mut sums = [0.0f64; 4];
        for _ in 0..rounds {
            let m = obs.observe_round(&[SellerId(0)], &mut rng);
            for (l, s) in sums.iter_mut().enumerate() {
                *s += m.get(0, PoiId(l));
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / rounds as f64).collect();
        // PoIs differ from each other...
        let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.05, "per-PoI means too uniform: {means:?}");
        // ...but the seller-level mean is the device quality.
        let overall = means.iter().sum::<f64>() / 4.0;
        assert!((overall - 0.5).abs() < 0.01, "overall mean {overall}");
        // And each matches its analytic expectation.
        for (l, &m) in means.iter().enumerate() {
            let expect = obs.expected_at(SellerId(0), PoiId(l));
            assert!((m - expect).abs() < 0.01, "PoI {l}: {m} vs {expect}");
        }
    }

    #[test]
    fn observations_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let effects = PoiEffects::generate(2, 5, 0.9, &mut rng);
        let obs = PoiVaryingObserver::new(pop(&[0.9, 0.1]), effects);
        for _ in 0..2_000 {
            let m = obs.observe_round(&[SellerId(0), SellerId(1)], &mut rng);
            for s in 0..2 {
                for l in 0..5 {
                    let x = m.get(s, PoiId(l));
                    assert!((0.0..=1.0).contains(&x));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one effect row per seller")]
    fn effect_arity_enforced() {
        let mut rng = StdRng::seed_from_u64(5);
        let effects = PoiEffects::generate(1, 4, 0.2, &mut rng);
        let _ = PoiVaryingObserver::new(pop(&[0.5, 0.5]), effects);
    }
}
