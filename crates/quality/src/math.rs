//! Special functions and Gaussian sampling primitives.
//!
//! Implemented in-crate (rather than pulling a statistics dependency) per the
//! workspace dependency policy. Accuracy targets are documented per function
//! and verified against reference values in the unit tests.

/// The error function `erf(x)`, via the Abramowitz & Stegun 7.1.26
/// rational approximation (max absolute error ≈ 1.5e-7, ample for
/// truncated-Gaussian CDF normalization of simulation inputs).
#[must_use]
pub fn erf(x: f64) -> f64 {
    // erf is odd: erf(-x) = -erf(x).
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function `Φ(x)`.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal probability density function `φ(x)`.
#[must_use]
pub fn normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Inverse of the standard normal CDF (`Φ⁻¹`, the probit function), via
/// Acklam's rational approximation refined with one Halley step
/// (relative error < 1e-9 over `p ∈ (1e-300, 1 − 1e-16)`).
///
/// # Panics
/// Panics if `p` is not strictly inside `(0, 1)`.
#[must_use]
pub fn normal_inverse_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_inverse_cdf requires p in (0,1), got {p}"
    );

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the full-precision CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// Uses the polar rejection form, which avoids trig calls and the
/// `ln(0)` edge case of the basic form.
pub fn sample_standard_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Mean of a Gaussian `N(mu, sigma²)` truncated to `[lo, hi]`.
///
/// Used by tests to verify that a sample mean of truncated observations
/// converges to the analytic truncated mean, and by the population model to
/// report the *effective* expected quality of a seller.
#[must_use]
pub fn truncated_normal_mean(mu: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    assert!(sigma > 0.0 && lo < hi);
    let alpha = (lo - mu) / sigma;
    let beta = (hi - mu) / sigma;
    let z = normal_cdf(beta) - normal_cdf(alpha);
    if z <= f64::EPSILON {
        // Degenerate truncation: the interval carries ~no mass; fall back to
        // the nearest boundary.
        return if mu < lo { lo } else { hi };
    }
    mu + sigma * (normal_pdf(alpha) - normal_pdf(beta)) / z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables (A&S): erf(0)=0, erf(1)=0.8427008,
        // erf(2)=0.9953223, erf(0.5)=0.5204999.
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_8).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_3).abs() < 1e-6);
        assert!((erf(0.5) - 0.520_499_9).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn inverse_cdf_round_trips_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_inverse_cdf(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-6,
                "round trip failed at p={p}: x={x}, cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn inverse_cdf_median_is_zero() {
        assert!(normal_inverse_cdf(0.5).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn inverse_cdf_rejects_zero() {
        let _ = normal_inverse_cdf(0.0);
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean drifted: {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance drifted: {var}");
    }

    #[test]
    fn truncated_mean_symmetric_case() {
        // Symmetric truncation around the mean leaves the mean unchanged.
        let m = truncated_normal_mean(0.5, 0.1, 0.0, 1.0);
        assert!((m - 0.5).abs() < 1e-9);
    }

    #[test]
    fn truncated_mean_is_pulled_inward() {
        // mu near the upper bound: truncation pulls the mean below mu.
        let m = truncated_normal_mean(0.95, 0.2, 0.0, 1.0);
        assert!(m < 0.95 && m > 0.5);
        // mu near the lower bound: truncation pushes the mean above mu.
        let m2 = truncated_normal_mean(0.05, 0.2, 0.0, 1.0);
        assert!(m2 > 0.05 && m2 < 0.5);
    }

    #[test]
    fn truncated_mean_degenerate_interval() {
        // Mass far outside the interval: falls back to the nearest bound.
        assert!((truncated_normal_mean(10.0, 0.01, 0.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((truncated_normal_mean(-10.0, 0.01, 0.0, 1.0)).abs() < 1e-12);
    }
}
