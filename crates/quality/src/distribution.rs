//! Quality distributions: the unknown per-observation law of `q_{i,l}^t`.
//!
//! Def. 3 of the paper only requires each observation to lie in `[0, 1]`
//! with a fixed (unknown) expectation `q_i`. The evaluation section uses a
//! truncated Gaussian; we additionally provide Beta, Uniform-width, and
//! Bernoulli models so tests and ablations can probe the CMAB policies under
//! different noise shapes (the Chernoff–Hoeffding analysis of Lemma 17 only
//! needs bounded support, so the regret guarantee covers all of them).

use crate::math::{sample_standard_normal, truncated_normal_mean};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A bounded-support quality distribution with a known expectation.
pub trait QualityDistribution: Send + Sync {
    /// Draws one observation `q_{i,l}^t ∈ [0, 1]`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The exact expectation of [`QualityDistribution::sample`]. This is the
    /// `q_i` the bandit is trying to learn, so it must be the mean of the
    /// *realized* (post-truncation) distribution, not the nominal parameter.
    fn mean(&self) -> f64;
}

/// Gaussian `N(mu, sigma²)` truncated to `[0, 1]` by rejection sampling —
/// the observation model of the paper's evaluation (Sec. V-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruncatedGaussian {
    /// Location parameter (the nominal expected quality).
    pub mu: f64,
    /// Scale parameter `σ > 0`.
    pub sigma: f64,
}

impl TruncatedGaussian {
    /// Creates a truncated Gaussian; `mu` is clamped into `[0, 1]` and
    /// `sigma` must be positive.
    ///
    /// # Panics
    /// Panics if `sigma <= 0` or not finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "sigma must be finite and > 0, got {sigma}"
        );
        Self {
            mu: mu.clamp(0.0, 1.0),
            sigma,
        }
    }
}

impl QualityDistribution for TruncatedGaussian {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Rejection sampling. With mu in [0,1] the acceptance probability is
        // at least Φ(1/σ) − Φ(−1/σ) ≥ 38% even at σ = 1, and ≥ 2/3 for the
        // σ ≤ 0.5 range the experiments use, so the loop is short.
        loop {
            let x = self.mu + self.sigma * sample_standard_normal(rng);
            if (0.0..=1.0).contains(&x) {
                return x;
            }
        }
    }

    fn mean(&self) -> f64 {
        truncated_normal_mean(self.mu, self.sigma, 0.0, 1.0)
    }
}

/// Beta(α, β) distribution — naturally supported on `[0, 1]`.
///
/// Sampled via Jöhnk's algorithm for small parameters and the ratio of
/// gamma variates (Marsaglia–Tsang) otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaQuality {
    /// Shape parameter `α > 0`.
    pub alpha: f64,
    /// Shape parameter `β > 0`.
    pub beta: f64,
}

impl BetaQuality {
    /// Creates a Beta distribution.
    ///
    /// # Panics
    /// Panics unless both shapes are finite and positive.
    #[must_use]
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be > 0");
        assert!(beta.is_finite() && beta > 0.0, "beta must be > 0");
        Self { alpha, beta }
    }

    /// A Beta with the given mean and a "concentration" ν (= α + β).
    /// Larger ν ⇒ tighter observations around the mean.
    ///
    /// # Panics
    /// Panics unless `mean ∈ (0, 1)` and `concentration > 0`.
    #[must_use]
    pub fn with_mean(mean: f64, concentration: f64) -> Self {
        assert!(mean > 0.0 && mean < 1.0, "mean must be in (0,1)");
        assert!(concentration > 0.0, "concentration must be > 0");
        Self::new(mean * concentration, (1.0 - mean) * concentration)
    }

    fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        // Marsaglia–Tsang for shape >= 1; boost trick for shape < 1.
        if shape < 1.0 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            return Self::sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = sample_standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

impl QualityDistribution for BetaQuality {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = Self::sample_gamma(self.alpha, rng);
        let y = Self::sample_gamma(self.beta, rng);
        if x + y == 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }

    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }
}

/// Uniform on `[mean − half_width, mean + half_width] ∩ [0, 1]`, implemented
/// as clamped-shift so the mean stays exact when the interval fits in `[0,1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformQuality {
    lo: f64,
    hi: f64,
}

impl UniformQuality {
    /// Uniform around `mean` with the given half-width, intersected with
    /// `[0, 1]` symmetrically so the expectation remains `mean`.
    ///
    /// # Panics
    /// Panics unless `mean ∈ [0, 1]` and `half_width ≥ 0`.
    #[must_use]
    pub fn centered(mean: f64, half_width: f64) -> Self {
        assert!((0.0..=1.0).contains(&mean), "mean must be in [0,1]");
        assert!(half_width >= 0.0, "half_width must be >= 0");
        // Shrink the half-width so the interval stays inside [0,1]; this
        // preserves symmetry and hence the exact mean.
        let w = half_width.min(mean).min(1.0 - mean);
        Self {
            lo: mean - w,
            hi: mean + w,
        }
    }
}

impl QualityDistribution for UniformQuality {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.hi <= self.lo {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Bernoulli quality: the observation is 1 with probability `p`, else 0.
/// The harshest bounded-noise model — useful in regret stress tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BernoulliQuality {
    /// Success probability (= mean quality).
    pub p: f64,
}

impl BernoulliQuality {
    /// Creates a Bernoulli quality model.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        Self { p }
    }
}

impl QualityDistribution for BernoulliQuality {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen_bool(self.p) {
            1.0
        } else {
            0.0
        }
    }

    fn mean(&self) -> f64 {
        self.p
    }
}

/// Type-erased quality model so heterogeneous populations can mix models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityModel {
    /// Truncated Gaussian observation noise (the paper's model).
    TruncatedGaussian(TruncatedGaussian),
    /// Beta-distributed observations.
    Beta(BetaQuality),
    /// Uniform observations.
    Uniform(UniformQuality),
    /// Bernoulli observations.
    Bernoulli(BernoulliQuality),
}

impl QualityDistribution for QualityModel {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            QualityModel::TruncatedGaussian(d) => d.sample(rng),
            QualityModel::Beta(d) => d.sample(rng),
            QualityModel::Uniform(d) => d.sample(rng),
            QualityModel::Bernoulli(d) => d.sample(rng),
        }
    }

    fn mean(&self) -> f64 {
        match self {
            QualityModel::TruncatedGaussian(d) => d.mean(),
            QualityModel::Beta(d) => d.mean(),
            QualityModel::Uniform(d) => d.mean(),
            QualityModel::Bernoulli(d) => d.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean<D: QualityDistribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    fn assert_in_unit<D: QualityDistribution>(d: &D, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..5_000 {
            let x = d.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x), "sample {x} left [0,1]");
        }
    }

    #[test]
    fn truncated_gaussian_support_and_mean() {
        let d = TruncatedGaussian::new(0.7, 0.2);
        assert_in_unit(&d, 1);
        let m = empirical_mean(&d, 100_000, 2);
        assert!(
            (m - d.mean()).abs() < 5e-3,
            "empirical {m} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn truncated_gaussian_mean_shifts_under_asymmetric_truncation() {
        let d = TruncatedGaussian::new(0.95, 0.3);
        assert!(d.mean() < 0.95, "upper truncation must pull the mean down");
        let m = empirical_mean(&d, 100_000, 3);
        assert!((m - d.mean()).abs() < 5e-3);
    }

    #[test]
    fn truncated_gaussian_clamps_mu() {
        let d = TruncatedGaussian::new(1.7, 0.2);
        assert!((d.mu - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma must be finite")]
    fn truncated_gaussian_rejects_zero_sigma() {
        let _ = TruncatedGaussian::new(0.5, 0.0);
    }

    #[test]
    fn beta_support_and_mean() {
        let d = BetaQuality::new(2.0, 5.0);
        assert_in_unit(&d, 4);
        assert!((d.mean() - 2.0 / 7.0).abs() < 1e-12);
        let m = empirical_mean(&d, 100_000, 5);
        assert!((m - d.mean()).abs() < 5e-3);
    }

    #[test]
    fn beta_with_mean_constructor() {
        let d = BetaQuality::with_mean(0.3, 10.0);
        assert!((d.mean() - 0.3).abs() < 1e-12);
        assert!((d.alpha - 3.0).abs() < 1e-12);
        assert!((d.beta - 7.0).abs() < 1e-12);
    }

    #[test]
    fn beta_small_shapes_sample_ok() {
        // Exercises the shape<1 boost path of the gamma sampler.
        let d = BetaQuality::new(0.4, 0.6);
        assert_in_unit(&d, 6);
        let m = empirical_mean(&d, 100_000, 7);
        assert!((m - 0.4).abs() < 6e-3, "empirical {m}");
    }

    #[test]
    fn uniform_centered_preserves_mean() {
        let d = UniformQuality::centered(0.8, 0.5);
        assert_in_unit(&d, 8);
        // Half-width shrinks to 0.2 so the interval is [0.6, 1.0]; mean 0.8.
        assert!((d.mean() - 0.8).abs() < 1e-12);
        let m = empirical_mean(&d, 100_000, 9);
        assert!((m - 0.8).abs() < 5e-3);
    }

    #[test]
    fn uniform_zero_width_is_deterministic() {
        let d = UniformQuality::centered(0.0, 0.3);
        let mut rng = StdRng::seed_from_u64(10);
        assert_eq!(d.sample(&mut rng), 0.0);
    }

    #[test]
    fn bernoulli_mean() {
        let d = BernoulliQuality::new(0.25);
        assert_in_unit(&d, 11);
        let m = empirical_mean(&d, 100_000, 12);
        assert!((m - 0.25).abs() < 5e-3);
    }

    #[test]
    fn quality_model_dispatch() {
        let models = [
            QualityModel::TruncatedGaussian(TruncatedGaussian::new(0.5, 0.1)),
            QualityModel::Beta(BetaQuality::new(2.0, 2.0)),
            QualityModel::Uniform(UniformQuality::centered(0.5, 0.1)),
            QualityModel::Bernoulli(BernoulliQuality::new(0.5)),
        ];
        for (i, m) in models.iter().enumerate() {
            assert!((m.mean() - 0.5).abs() < 1e-9, "model {i} mean");
            assert_in_unit(m, 13 + i as u64);
        }
    }
}
