//! Per-round quality observations.
//!
//! When seller `i` is selected in round `t` it collects data at *all* `L`
//! PoIs (Def. 3), producing `L` observations `{q_{i,l}^t}_{l∈L}`. The
//! [`QualityObserver`] draws these observations from the hidden
//! [`SellerPopulation`] and hands back an [`ObservationMatrix`] the platform
//! can learn from — the platform never touches the population directly.

use crate::distribution::QualityDistribution;
use crate::population::SellerPopulation;
use cdt_types::{PoiId, SellerId};
use rand::Rng;

/// The observations of one round: for each selected seller, one quality per
/// PoI.
///
/// Stored as a single row-major buffer (`values[s * L + l]`) rather than a
/// nested `Vec<Vec<f64>>`: the round loop runs up to `2·10⁵` times per
/// policy, and one flat buffer both halves the pointer chasing on every
/// [`ObservationMatrix::row`] access and lets the whole matrix be reused
/// across rounds without reallocating (see
/// [`QualityObserver::observe_round_into`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObservationMatrix {
    sellers: Vec<SellerId>,
    /// PoIs per seller (row width).
    l: usize,
    /// Row-major `sellers.len() × l` observation buffer.
    values: Vec<f64>,
}

impl ObservationMatrix {
    /// Builds a matrix from parallel vectors.
    ///
    /// # Panics
    /// Panics if the outer lengths disagree or rows have unequal lengths.
    #[must_use]
    pub fn new(sellers: Vec<SellerId>, values: Vec<Vec<f64>>) -> Self {
        assert_eq!(sellers.len(), values.len(), "one row per selected seller");
        let l = values.first().map_or(0, Vec::len);
        assert!(
            values.iter().all(|row| row.len() == l),
            "all rows must cover the same L PoIs"
        );
        let flat: Vec<f64> = values.into_iter().flatten().collect();
        Self {
            sellers,
            l,
            values: flat,
        }
    }

    /// Builds a matrix directly from a row-major buffer.
    ///
    /// # Panics
    /// Panics unless `values.len() == sellers.len() * l`.
    #[must_use]
    pub fn from_flat(sellers: Vec<SellerId>, l: usize, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            sellers.len() * l,
            "flat buffer must hold sellers × L observations"
        );
        Self { sellers, l, values }
    }

    /// An empty matrix, ready to be filled by
    /// [`QualityObserver::observe_round_into`].
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Selected sellers, in selection order.
    #[must_use]
    pub fn sellers(&self) -> &[SellerId] {
        &self.sellers
    }

    /// The raw row-major observation buffer (`values[s * L + l]`), parallel
    /// to [`ObservationMatrix::sellers`] with [`ObservationMatrix::num_pois`]
    /// entries per seller. Lets learners sweep the whole round in one flat
    /// pass instead of re-slicing per row.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of PoIs `L` covered per seller (0 for an empty matrix).
    #[must_use]
    pub fn num_pois(&self) -> usize {
        if self.sellers.is_empty() {
            0
        } else {
            self.l
        }
    }

    /// The `L` observations of one selected seller (row `s` of the matrix).
    #[must_use]
    pub fn row(&self, s: usize) -> &[f64] {
        &self.values[s * self.l..(s + 1) * self.l]
    }

    /// Observation of seller-row `s` at PoI `l`.
    #[must_use]
    pub fn get(&self, s: usize, l: PoiId) -> f64 {
        self.values[s * self.l + l.index()]
    }

    /// Sum of one seller-row: `Σ_l q_{i,l}^t`, the quantity added to the
    /// revenue (Eq. 1) and to the estimator numerator (Eq. 18).
    ///
    /// Follows the process lane configuration (see [`cdt_types::lanes`]):
    /// strictly sequential by default, reassociated at the configured lane
    /// width under fast-math.
    #[must_use]
    pub fn row_sum(&self, s: usize) -> f64 {
        cdt_types::lanes::configured_sum(self.row(s))
    }

    /// Total revenue contribution of this round: `Σ_i Σ_l q_{i,l}^t χ_i^t`,
    /// in one flat pass over the row-major buffer.
    ///
    /// Follows the process lane configuration like
    /// [`ObservationMatrix::row_sum`]; this is the sum that feeds the
    /// journaled per-round revenue, so fast-math drift here is exactly what
    /// `cdt journal diff` measures.
    #[must_use]
    pub fn total(&self) -> f64 {
        cdt_types::lanes::configured_sum(&self.values)
    }

    /// Iterates `(SellerId, &[f64])` rows.
    pub fn iter(&self) -> impl Iterator<Item = (SellerId, &[f64])> {
        let l = self.l;
        self.sellers
            .iter()
            .copied()
            .enumerate()
            .map(move |(s, id)| (id, &self.values[s * l..(s + 1) * l]))
    }
}

/// A stack of per-lane [`ObservationMatrix`] buffers for the batched
/// replication engine: lane `b` holds the observations of replication
/// lane `b`'s current round.
///
/// Lanes are kept as whole matrices (not one flat `B×K×L` buffer) because
/// each lane samples from its *own* hidden population with its own RNG
/// stream — the draw loop is inherently per-lane — while estimator updates
/// already consume a lane's matrix as one flat pass. Buffers persist
/// across rounds and across arena-recycled jobs, so steady-state batched
/// rounds allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct ObservationBatch {
    lanes: Vec<ObservationMatrix>,
}

impl ObservationBatch {
    /// An empty batch; lanes are added by [`ObservationBatch::ensure_lanes`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows (never shrinks) the stack to at least `b` lanes, keeping
    /// existing lane buffers intact for reuse.
    pub fn ensure_lanes(&mut self, b: usize) {
        if self.lanes.len() < b {
            self.lanes.resize_with(b, ObservationMatrix::empty);
        }
    }

    /// Number of allocated lanes.
    #[must_use]
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Lane `b`'s observation matrix.
    #[must_use]
    pub fn lane(&self, b: usize) -> &ObservationMatrix {
        &self.lanes[b]
    }

    /// Mutable access to lane `b`'s matrix (the fill target of
    /// [`QualityObserver::observe_round_into`]).
    pub fn lane_mut(&mut self, b: usize) -> &mut ObservationMatrix {
        &mut self.lanes[b]
    }
}

/// Draws per-round observations from a hidden population.
#[derive(Debug, Clone)]
pub struct QualityObserver {
    population: SellerPopulation,
    num_pois: usize,
}

impl QualityObserver {
    /// Creates an observer over `population` that reports `num_pois`
    /// observations per selected seller per round.
    #[must_use]
    pub fn new(population: SellerPopulation, num_pois: usize) -> Self {
        Self {
            population,
            num_pois,
        }
    }

    /// The hidden population (used by oracle baselines and regret math).
    #[must_use]
    pub fn population(&self) -> &SellerPopulation {
        &self.population
    }

    /// Number of PoIs `L`.
    #[must_use]
    pub fn num_pois(&self) -> usize {
        self.num_pois
    }

    /// Observes one round: each selected seller produces `L` samples.
    pub fn observe_round<R: Rng + ?Sized>(
        &self,
        selected: &[SellerId],
        rng: &mut R,
    ) -> ObservationMatrix {
        let mut out = ObservationMatrix::empty();
        self.observe_round_into(selected, rng, &mut out);
        out
    }

    /// Observes one round into an existing matrix, reusing its buffers.
    ///
    /// Draws the *same* samples in the same RNG order as
    /// [`QualityObserver::observe_round`]; after the first call on a given
    /// `out` the round loop runs allocation-free.
    pub fn observe_round_into<R: Rng + ?Sized>(
        &self,
        selected: &[SellerId],
        rng: &mut R,
        out: &mut ObservationMatrix,
    ) {
        out.sellers.clear();
        out.sellers.extend_from_slice(selected);
        out.l = self.num_pois;
        out.values.clear();
        if self.num_pois == 0 {
            return;
        }
        // Size the flat buffer once, then fill row slices in place: no
        // per-push capacity checks on the hot path. The samples are drawn
        // in exactly the same (seller, PoI) order as before, so the matrix
        // is bit-identical.
        out.values.resize(selected.len() * self.num_pois, 0.0);
        for (row, &id) in out.values.chunks_exact_mut(self.num_pois).zip(selected) {
            let dist = &self.population.profile(id).quality;
            for slot in row {
                *slot = dist.sample(rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{BernoulliQuality, QualityModel};
    use crate::population::SellerProfile;
    use cdt_types::SellerCostParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pop() -> SellerPopulation {
        SellerPopulation::from_profiles(
            [0.0, 1.0, 0.5]
                .iter()
                .map(|&p| SellerProfile {
                    quality: QualityModel::Bernoulli(BernoulliQuality::new(p)),
                    cost: SellerCostParams { a: 0.2, b: 0.2 },
                })
                .collect(),
        )
    }

    #[test]
    fn observe_round_shapes() {
        let obs = QualityObserver::new(pop(), 4);
        let mut rng = StdRng::seed_from_u64(1);
        let m = obs.observe_round(&[SellerId(0), SellerId(2)], &mut rng);
        assert_eq!(m.sellers(), &[SellerId(0), SellerId(2)]);
        assert_eq!(m.num_pois(), 4);
        assert_eq!(m.row(0).len(), 4);
    }

    #[test]
    fn deterministic_sellers_observe_their_mean() {
        let obs = QualityObserver::new(pop(), 5);
        let mut rng = StdRng::seed_from_u64(2);
        let m = obs.observe_round(&[SellerId(0), SellerId(1)], &mut rng);
        assert_eq!(m.row_sum(0), 0.0); // p = 0 seller always observes 0
        assert_eq!(m.row_sum(1), 5.0); // p = 1 seller always observes 1
        assert_eq!(m.total(), 5.0);
    }

    #[test]
    fn get_indexes_by_poi() {
        let m = ObservationMatrix::new(vec![SellerId(7)], vec![vec![0.1, 0.2, 0.3]]);
        assert_eq!(m.get(0, PoiId(1)), 0.2);
        assert!((m.row_sum(0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn iter_pairs_rows_with_ids() {
        let m = ObservationMatrix::new(
            vec![SellerId(3), SellerId(5)],
            vec![vec![1.0, 1.0], vec![0.0, 0.0]],
        );
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs[0].0, SellerId(3));
        assert_eq!(pairs[1].1, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one row per selected seller")]
    fn mismatched_rows_panic() {
        let _ = ObservationMatrix::new(vec![SellerId(0)], vec![]);
    }

    #[test]
    #[should_panic(expected = "same L PoIs")]
    fn ragged_rows_panic() {
        let _ = ObservationMatrix::new(
            vec![SellerId(0), SellerId(1)],
            vec![vec![0.5], vec![0.5, 0.5]],
        );
    }

    #[test]
    fn empty_selection_is_allowed() {
        let obs = QualityObserver::new(pop(), 3);
        let mut rng = StdRng::seed_from_u64(3);
        let m = obs.observe_round(&[], &mut rng);
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.num_pois(), 0);
    }

    #[test]
    fn from_flat_matches_nested_constructor() {
        let nested = ObservationMatrix::new(
            vec![SellerId(1), SellerId(4)],
            vec![vec![0.1, 0.2], vec![0.3, 0.4]],
        );
        let flat = ObservationMatrix::from_flat(
            vec![SellerId(1), SellerId(4)],
            2,
            vec![0.1, 0.2, 0.3, 0.4],
        );
        assert_eq!(nested, flat);
        assert_eq!(flat.row(1), &[0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "flat buffer")]
    fn from_flat_rejects_wrong_size() {
        let _ = ObservationMatrix::from_flat(vec![SellerId(0)], 3, vec![0.1]);
    }

    #[test]
    fn observe_round_into_matches_observe_round() {
        let obs = QualityObserver::new(pop(), 5);
        let selected = [SellerId(0), SellerId(2), SellerId(1)];
        let owned = obs.observe_round(&selected, &mut StdRng::seed_from_u64(42));
        let mut reused = ObservationMatrix::empty();
        // Repeated reuse of the same buffer must not corrupt results.
        for _ in 0..3 {
            let mut rng = StdRng::seed_from_u64(42);
            obs.observe_round_into(&selected, &mut rng, &mut reused);
            assert_eq!(owned, reused);
        }
    }
}
