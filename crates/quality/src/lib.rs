//! # cdt-quality
//!
//! Sensing-quality ground truth and observation substrate for CMAB-HS.
//!
//! The paper (Sec. V-A) generates each seller's *expected* quality `q_i`
//! uniformly from `[0, 1]` and draws the per-PoI *observed* qualities
//! `q_{i,l}^t` from a truncated Gaussian on `[0, 1]` centred at `q_i`.
//! This crate provides:
//!
//! - [`math`]: special functions (erf, normal CDF, inverse normal CDF,
//!   Box–Muller sampling) implemented in-crate so the workspace needs no
//!   external statistics dependency;
//! - [`distribution`]: the [`QualityDistribution`] trait and concrete models
//!   (truncated Gaussian, Beta, Uniform, Bernoulli);
//! - [`population`]: seeded generation of whole seller populations;
//! - [`observe`]: the per-round observation matrix `{q_{i,l}^t}`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod distribution;
pub mod drift;
pub mod math;
pub mod observe;
pub mod poi_effects;
pub mod population;

pub use distribution::{
    BernoulliQuality, BetaQuality, QualityDistribution, TruncatedGaussian, UniformQuality,
};
pub use drift::{DriftModel, DriftingObserver};
pub use observe::{ObservationBatch, ObservationMatrix, QualityObserver};
pub use poi_effects::{PoiEffects, PoiVaryingObserver};
pub use population::{SellerPopulation, SellerProfile};
