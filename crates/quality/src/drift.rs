//! Non-stationary quality: drifting expected qualities over rounds.
//!
//! Def. 3's Remark notes that observed qualities are "affected by some
//! exogenous factors (personal willingness, sensing context, daily
//! routine…)". The paper fixes `q_i` and models the noise; this module is
//! the natural extension where the *expectation itself* drifts, which the
//! sliding-window UCB policy (`cdt-bandit`) is built to track.

use crate::distribution::{QualityDistribution, TruncatedGaussian};
use crate::observe::ObservationMatrix;
use crate::population::SellerPopulation;
use cdt_types::{Round, SellerId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How one seller's expected quality evolves over rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DriftModel {
    /// Stationary (the paper's setting).
    None,
    /// Linear drift: `q(t) = clamp(q₀ + rate · t, 0, 1)`.
    Linear {
        /// Per-round change of the mean.
        rate: f64,
    },
    /// Abrupt change: `q(t) = q₀` before `at_round`, `new_mean` after.
    Abrupt {
        /// The change point.
        at_round: usize,
        /// The post-change expected quality.
        new_mean: f64,
    },
    /// Sinusoidal (daily-routine style): `q(t) = q₀ + amplitude · sin(2πt/period)`.
    Sinusoidal {
        /// Oscillation amplitude.
        amplitude: f64,
        /// Oscillation period, in rounds.
        period: f64,
    },
}

impl DriftModel {
    /// The drifted mean at `round`, given the base mean `q0`, clamped to
    /// `[0, 1]`.
    #[must_use]
    pub fn mean_at(&self, q0: f64, round: Round) -> f64 {
        let t = round.index() as f64;
        let raw = match *self {
            DriftModel::None => q0,
            DriftModel::Linear { rate } => q0 + rate * t,
            DriftModel::Abrupt { at_round, new_mean } => {
                if round.index() < at_round {
                    q0
                } else {
                    new_mean
                }
            }
            DriftModel::Sinusoidal { amplitude, period } => {
                q0 + amplitude * (2.0 * std::f64::consts::PI * t / period).sin()
            }
        };
        raw.clamp(0.0, 1.0)
    }
}

/// A population whose expected qualities drift per round; observations are
/// truncated-Gaussian around the drifted mean.
#[derive(Debug, Clone)]
pub struct DriftingObserver {
    base: SellerPopulation,
    drifts: Vec<DriftModel>,
    noise_sigma: f64,
    num_pois: usize,
}

impl DriftingObserver {
    /// Wraps a population with one drift model per seller.
    ///
    /// # Panics
    /// Panics if `drifts.len() != population.len()` or `noise_sigma <= 0`.
    #[must_use]
    pub fn new(
        base: SellerPopulation,
        drifts: Vec<DriftModel>,
        noise_sigma: f64,
        num_pois: usize,
    ) -> Self {
        assert_eq!(drifts.len(), base.len(), "one drift model per seller");
        assert!(noise_sigma > 0.0, "noise sigma must be > 0");
        Self {
            base,
            drifts,
            noise_sigma,
            num_pois,
        }
    }

    /// The underlying (round-0) population.
    #[must_use]
    pub fn base(&self) -> &SellerPopulation {
        &self.base
    }

    /// Number of sellers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Seller `i`'s true expected quality in `round`.
    #[must_use]
    pub fn mean_at(&self, id: SellerId, round: Round) -> f64 {
        let q0 = self.base.profile(id).expected_quality();
        self.drifts[id.index()].mean_at(q0, round)
    }

    /// All sellers' true expected qualities in `round`.
    #[must_use]
    pub fn means_at(&self, round: Round) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.mean_at(SellerId(i), round))
            .collect()
    }

    /// Per-round best achievable quality sum over any `k`-subset.
    #[must_use]
    pub fn optimal_quality_sum_at(&self, round: Round, k: usize) -> f64 {
        let mut means = self.means_at(round);
        means.sort_by(|a, b| b.partial_cmp(a).expect("finite means"));
        means.iter().take(k).sum()
    }

    /// Observes one round at the drifted means.
    pub fn observe_round<R: Rng + ?Sized>(
        &self,
        round: Round,
        selected: &[SellerId],
        rng: &mut R,
    ) -> ObservationMatrix {
        let values = selected
            .iter()
            .map(|&id| {
                let dist = TruncatedGaussian::new(self.mean_at(id, round), self.noise_sigma);
                (0..self.num_pois).map(|_| dist.sample(rng)).collect()
            })
            .collect();
        ObservationMatrix::new(selected.to_vec(), values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{BernoulliQuality, QualityModel};
    use crate::population::SellerProfile;
    use cdt_types::SellerCostParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pop(qs: &[f64]) -> SellerPopulation {
        SellerPopulation::from_profiles(
            qs.iter()
                .map(|&q| SellerProfile {
                    quality: QualityModel::Bernoulli(BernoulliQuality::new(q)),
                    cost: SellerCostParams { a: 0.2, b: 0.3 },
                })
                .collect(),
        )
    }

    #[test]
    fn stationary_drift_is_identity() {
        let d = DriftModel::None;
        for t in [0, 10, 1000] {
            assert_eq!(d.mean_at(0.6, Round(t)), 0.6);
        }
    }

    #[test]
    fn linear_drift_clamps() {
        let d = DriftModel::Linear { rate: 0.01 };
        assert!((d.mean_at(0.5, Round(10)) - 0.6).abs() < 1e-12);
        assert_eq!(d.mean_at(0.5, Round(1000)), 1.0);
        let down = DriftModel::Linear { rate: -0.01 };
        assert_eq!(down.mean_at(0.5, Round(1000)), 0.0);
    }

    #[test]
    fn abrupt_drift_switches_at_round() {
        let d = DriftModel::Abrupt {
            at_round: 5,
            new_mean: 0.9,
        };
        assert_eq!(d.mean_at(0.2, Round(4)), 0.2);
        assert_eq!(d.mean_at(0.2, Round(5)), 0.9);
    }

    #[test]
    fn sinusoidal_drift_oscillates_and_returns() {
        let d = DriftModel::Sinusoidal {
            amplitude: 0.2,
            period: 100.0,
        };
        assert!((d.mean_at(0.5, Round(0)) - 0.5).abs() < 1e-12);
        assert!((d.mean_at(0.5, Round(25)) - 0.7).abs() < 1e-9); // peak
        assert!((d.mean_at(0.5, Round(100)) - 0.5).abs() < 1e-9); // full period
    }

    #[test]
    fn observer_tracks_drifted_means() {
        let obs = DriftingObserver::new(
            pop(&[0.2, 0.8]),
            vec![
                DriftModel::Abrupt {
                    at_round: 10,
                    new_mean: 0.9,
                },
                DriftModel::None,
            ],
            0.05,
            4,
        );
        assert_eq!(obs.mean_at(SellerId(0), Round(0)), 0.2);
        assert_eq!(obs.mean_at(SellerId(0), Round(10)), 0.9);
        assert_eq!(obs.mean_at(SellerId(1), Round(10)), 0.8);
        // Optimal flips after the change point (0.9 > 0.8).
        assert!((obs.optimal_quality_sum_at(Round(0), 1) - 0.8).abs() < 1e-12);
        assert!((obs.optimal_quality_sum_at(Round(10), 1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn observations_follow_the_drift() {
        let obs = DriftingObserver::new(
            pop(&[0.3]),
            vec![DriftModel::Abrupt {
                at_round: 1,
                new_mean: 0.9,
            }],
            0.05,
            500,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let before = obs.observe_round(Round(0), &[SellerId(0)], &mut rng);
        let after = obs.observe_round(Round(1), &[SellerId(0)], &mut rng);
        let mean_before = before.row_sum(0) / 500.0;
        let mean_after = after.row_sum(0) / 500.0;
        assert!((mean_before - 0.3).abs() < 0.02, "{mean_before}");
        assert!((mean_after - 0.9).abs() < 0.02, "{mean_after}");
    }

    #[test]
    #[should_panic(expected = "one drift model per seller")]
    fn drift_arity_is_enforced() {
        let _ = DriftingObserver::new(pop(&[0.5, 0.5]), vec![DriftModel::None], 0.1, 4);
    }
}
