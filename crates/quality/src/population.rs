//! Seeded generation of whole seller populations.
//!
//! Reproduces the paper's Sec. V-A recipe: expected qualities drawn
//! uniformly from `[0, 1]`, cost parameters `a_i ∈ [0.1, 0.5]`,
//! `b_i ∈ [0.1, 1]`, truncated-Gaussian observation noise.

use crate::distribution::{QualityDistribution, QualityModel, TruncatedGaussian};
use cdt_types::{SellerCostParams, SellerId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ground-truth profile of one seller: its (hidden) quality law and its
/// privately-known cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SellerProfile {
    /// The observation law of `q_{i,l}^t`.
    pub quality: QualityModel,
    /// Cost parameters `(a_i, b_i)` of Eq. 6.
    pub cost: SellerCostParams,
}

impl SellerProfile {
    /// The true expected quality `q_i` (mean of the realized observation
    /// distribution). The bandit never sees this; the oracle policy and the
    /// regret accounting do.
    #[must_use]
    pub fn expected_quality(&self) -> f64 {
        self.quality.mean()
    }
}

/// A complete population of `M` sellers, the hidden state of the CMAB game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SellerPopulation {
    profiles: Vec<SellerProfile>,
}

impl SellerPopulation {
    /// Builds a population from explicit profiles.
    #[must_use]
    pub fn from_profiles(profiles: Vec<SellerProfile>) -> Self {
        Self { profiles }
    }

    /// Generates a population with the paper's default parameter ranges
    /// (Sec. V-A / Table II):
    ///
    /// - expected quality `q_i ~ U[0, 1]` (nominal; realized mean follows
    ///   from truncation),
    /// - observation noise: Gaussian with `σ = noise_sigma` truncated to
    ///   `[0, 1]`,
    /// - `a_i ~ U[0.1, 0.5]`, `b_i ~ U[0.1, 1]`.
    pub fn generate_paper_defaults<R: Rng + ?Sized>(
        m: usize,
        noise_sigma: f64,
        rng: &mut R,
    ) -> Self {
        let profiles = (0..m)
            .map(|_| {
                let mu: f64 = rng.gen_range(0.0..=1.0);
                SellerProfile {
                    quality: QualityModel::TruncatedGaussian(TruncatedGaussian::new(
                        mu,
                        noise_sigma,
                    )),
                    cost: SellerCostParams {
                        a: rng.gen_range(0.1..=0.5),
                        b: rng.gen_range(0.1..=1.0),
                    },
                }
            })
            .collect();
        Self { profiles }
    }

    /// Number of sellers `M`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// `true` when the population is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// One seller's profile.
    #[must_use]
    pub fn profile(&self, id: SellerId) -> &SellerProfile {
        &self.profiles[id.index()]
    }

    /// Iterates `(SellerId, &SellerProfile)`.
    pub fn iter(&self) -> impl Iterator<Item = (SellerId, &SellerProfile)> {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (SellerId(i), p))
    }

    /// The true expected qualities of all sellers, indexed by seller id.
    #[must_use]
    pub fn expected_qualities(&self) -> Vec<f64> {
        self.profiles
            .iter()
            .map(SellerProfile::expected_quality)
            .collect()
    }

    /// Cost parameter vector indexed by seller id (for `SystemConfig`).
    #[must_use]
    pub fn cost_params(&self) -> Vec<SellerCostParams> {
        self.profiles.iter().map(|p| p.cost).collect()
    }

    /// Seller ids sorted by true expected quality, best first. Ties broken
    /// by id for determinism. This is the oracle's ranking.
    #[must_use]
    pub fn ranking_by_true_quality(&self) -> Vec<SellerId> {
        let mut ids: Vec<SellerId> = (0..self.len()).map(SellerId).collect();
        let q = self.expected_qualities();
        ids.sort_by(|x, y| {
            q[y.index()]
                .partial_cmp(&q[x.index()])
                .expect("qualities are finite")
                .then(x.index().cmp(&y.index()))
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::BernoulliQuality;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bern(p: f64) -> SellerProfile {
        SellerProfile {
            quality: QualityModel::Bernoulli(BernoulliQuality::new(p)),
            cost: SellerCostParams { a: 0.2, b: 0.3 },
        }
    }

    #[test]
    fn generate_respects_parameter_ranges() {
        let mut rng = StdRng::seed_from_u64(42);
        let pop = SellerPopulation::generate_paper_defaults(300, 0.1, &mut rng);
        assert_eq!(pop.len(), 300);
        for (_, p) in pop.iter() {
            assert!((0.1..=0.5).contains(&p.cost.a));
            assert!((0.1..=1.0).contains(&p.cost.b));
            let q = p.expected_quality();
            assert!((0.0..=1.0).contains(&q));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SellerPopulation::generate_paper_defaults(50, 0.1, &mut StdRng::seed_from_u64(9));
        let b = SellerPopulation::generate_paper_defaults(50, 0.1, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = SellerPopulation::generate_paper_defaults(50, 0.1, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn ranking_orders_by_quality_desc() {
        let pop = SellerPopulation::from_profiles(vec![bern(0.2), bern(0.9), bern(0.5)]);
        assert_eq!(
            pop.ranking_by_true_quality(),
            vec![SellerId(1), SellerId(2), SellerId(0)]
        );
    }

    #[test]
    fn ranking_breaks_ties_by_id() {
        let pop = SellerPopulation::from_profiles(vec![bern(0.5), bern(0.5), bern(0.5)]);
        assert_eq!(
            pop.ranking_by_true_quality(),
            vec![SellerId(0), SellerId(1), SellerId(2)]
        );
    }

    #[test]
    fn expected_qualities_match_profiles() {
        let pop = SellerPopulation::from_profiles(vec![bern(0.2), bern(0.7)]);
        let q = pop.expected_qualities();
        assert_eq!(q, vec![0.2, 0.7]);
    }

    #[test]
    fn cost_params_are_indexed_by_id() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = SellerPopulation::generate_paper_defaults(10, 0.1, &mut rng);
        let costs = pop.cost_params();
        for (id, p) in pop.iter() {
            assert_eq!(costs[id.index()], p.cost);
        }
    }
}
