//! Property-based tests of the Stackelberg equilibrium over the paper's
//! parameter ranges (Table II): structural invariants that must hold for
//! *every* interior game, not just hand-picked examples.

use cdt_game::{
    seller_best_response, social_welfare, solve_equilibrium, GameContext, SelectedSeller,
};
use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, SellerId, ValuationParams};
use proptest::prelude::*;

/// Strategy generating a game context inside the paper's Table II ranges.
fn arb_context() -> impl Strategy<Value = GameContext> {
    let seller = (0.2f64..1.0, 0.1f64..0.5, 0.1f64..1.0).prop_map(|(q, a, b)| (q, a, b));
    (
        proptest::collection::vec(seller, 1..12),
        0.1f64..1.0,      // theta
        0.5f64..2.0,      // lambda
        600.0f64..1400.0, // omega
    )
        .prop_map(|(sellers, theta, lambda, omega)| {
            let sellers = sellers
                .into_iter()
                .enumerate()
                .map(|(i, (q, a, b))| {
                    SelectedSeller::new(SellerId(i), q, SellerCostParams { a, b })
                })
                .collect();
            GameContext::new(
                sellers,
                PlatformCostParams { theta, lambda },
                ValuationParams { omega },
                PriceBounds::unbounded(),
                PriceBounds::unbounded(),
                f64::MAX,
            )
            .expect("generated parameters are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Price ordering: the consumer pays more per unit than the platform
    /// passes on (otherwise the platform would not broker), and both are
    /// positive.
    #[test]
    fn prices_are_ordered(ctx in arb_context()) {
        let eq = solve_equilibrium(&ctx);
        prop_assert!(eq.service_price.is_finite() && eq.service_price > 0.0);
        prop_assert!(eq.collection_price.is_finite() && eq.collection_price >= 0.0);
        prop_assert!(eq.service_price > eq.collection_price);
    }

    /// Non-negativity: at the equilibrium no seller loses money (τ_i* is
    /// its own best response, and τ = 0 guarantees Ψ = 0), and the
    /// consumer's profit is non-negative (p^J* maximizes Φ and Φ(Υ→0) = 0).
    #[test]
    fn participation_is_individually_rational(ctx in arb_context()) {
        let eq = solve_equilibrium(&ctx);
        for (i, &psi) in eq.profits.sellers.iter().enumerate() {
            prop_assert!(psi >= -1e-9, "seller {i} loses: {psi}");
        }
        prop_assert!(eq.profits.consumer >= -1e-6, "PoC = {}", eq.profits.consumer);
    }

    /// Consistency: every sensing time is the seller's Stage-3 best
    /// response to the equilibrium collection price.
    #[test]
    fn sensing_times_are_best_responses(ctx in arb_context()) {
        let eq = solve_equilibrium(&ctx);
        for (s, &tau) in ctx.sellers().zip(&eq.sensing_times) {
            let br = seller_best_response(eq.collection_price, s.quality, s.cost, ctx.max_sensing_time);
            prop_assert!((tau - br).abs() < 1e-9);
        }
    }

    /// Welfare accounting: prices are pure transfers, so profit sum equals
    /// social welfare at the equilibrium profile.
    #[test]
    fn profits_sum_to_welfare(ctx in arb_context()) {
        let eq = solve_equilibrium(&ctx);
        let w = social_welfare(&ctx, &eq.sensing_times);
        let sum = eq.profits.social_welfare();
        prop_assert!((w - sum).abs() < 1e-6 * w.abs().max(1.0), "welfare {w} vs sum {sum}");
    }

    /// Monotonicity in ω: a consumer who values data more offers a
    /// (weakly) higher price and elicits (weakly) more sensing time.
    #[test]
    fn omega_monotonicity(ctx in arb_context(), bump in 1.05f64..2.0) {
        let eq_lo = solve_equilibrium(&ctx);
        let mut hi = ctx.clone();
        hi.valuation = ValuationParams { omega: ctx.valuation.omega * bump };
        let eq_hi = solve_equilibrium(&hi);
        prop_assert!(eq_hi.service_price >= eq_lo.service_price - 1e-9);
        prop_assert!(eq_hi.total_sensing_time() >= eq_lo.total_sensing_time() - 1e-9);
        prop_assert!(eq_hi.profits.consumer >= eq_lo.profits.consumer - 1e-6);
    }

    /// Scale coherence: doubling every seller duplicates the selection;
    /// total sensing time must grow, per-seller time must not.
    #[test]
    fn duplication_grows_supply(ctx in arb_context()) {
        let eq1 = solve_equilibrium(&ctx);
        let doubled: Vec<SelectedSeller> = ctx
            .sellers()
            .chain(ctx.sellers())
            .enumerate()
            .map(|(i, s)| SelectedSeller::new(SellerId(i), s.quality, s.cost))
            .collect();
        let ctx2 = GameContext::new(
            doubled,
            ctx.platform_cost,
            ctx.valuation,
            ctx.collection_price_bounds,
            ctx.service_price_bounds,
            ctx.max_sensing_time,
        )
        .unwrap();
        let eq2 = solve_equilibrium(&ctx2);
        prop_assert!(eq2.total_sensing_time() >= eq1.total_sensing_time() - 1e-9);
        // With more competition the platform needs a lower unit price.
        prop_assert!(eq2.collection_price <= eq1.collection_price + 1e-9);
    }

    /// The initial-round strategy never leaves the platform under water
    /// when the service-price bound admits break-even.
    #[test]
    fn initial_round_platform_break_even(ctx in arb_context()) {
        let s = cdt_game::initial_round_strategy(&ctx, 1.0);
        prop_assert!(s.profits.platform >= -1e-9);
    }
}
