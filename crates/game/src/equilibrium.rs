//! Backward-induction solution of the full three-stage game
//! (Algorithm 1, step 11).

use crate::best_response::{
    all_seller_best_responses_into, consumer_best_response, platform_best_response, Aggregates,
};
use crate::context::GameContext;
use crate::profit::{consumer_profit, platform_profit, seller_profit};
use cdt_types::{SellerCostParams, SellerId};
use serde::{Deserialize, Serialize};

/// Realized profits of all parties at a strategy profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profits {
    /// Consumer profit `Φ` (Eq. 9).
    pub consumer: f64,
    /// Platform profit `Ω` (Eq. 7).
    pub platform: f64,
    /// Per-selected-seller profits `Ψ_i` (Eq. 5), in selection order.
    pub sellers: Vec<f64>,
}

impl Profits {
    /// Sum of all seller profits.
    #[must_use]
    pub fn total_seller(&self) -> f64 {
        self.sellers.iter().sum()
    }

    /// Social welfare: consumer + platform + all sellers.
    #[must_use]
    pub fn social_welfare(&self) -> f64 {
        self.consumer + self.platform + self.total_seller()
    }
}

/// The complete Stackelberg solution `⟨p^{J*}, p*, τ*⟩` for one round,
/// plus the induced profits and the aggregates used to derive it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackelbergSolution {
    /// Consumer's optimal service price `p^{J*}` (Theorem 16, clamped).
    pub service_price: f64,
    /// Platform's optimal collection price `p*` (Theorem 15, clamped).
    pub collection_price: f64,
    /// Sellers' optimal sensing times `τ*`, parallel to
    /// [`StackelbergSolution::seller_ids`].
    pub sensing_times: Vec<f64>,
    /// Ids of the selected sellers, in the game context's order.
    pub seller_ids: Vec<SellerId>,
    /// Realized profits at the equilibrium.
    pub profits: Profits,
    /// The aggregate statistics (A, B, q̄, Θ, Λ).
    pub aggregates: Aggregates,
}

impl StackelbergSolution {
    /// A zeroed placeholder solution, ready to be filled by
    /// [`solve_equilibrium_into`]. Never meaningful on its own.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            service_price: 0.0,
            collection_price: 0.0,
            sensing_times: Vec::new(),
            seller_ids: Vec::new(),
            profits: Profits {
                consumer: 0.0,
                platform: 0.0,
                sellers: Vec::new(),
            },
            aggregates: Aggregates {
                a: 0.0,
                b: 0.0,
                mean_quality: 0.0,
                theta_cap: 0.0,
                lambda_cap: 0.0,
            },
        }
    }

    /// Total sensing time `Σ τ_i*`.
    #[must_use]
    pub fn total_sensing_time(&self) -> f64 {
        self.sensing_times.iter().sum()
    }

    /// Payment from the consumer to the platform: `p^{J*} · Στ*`.
    #[must_use]
    pub fn consumer_payment(&self) -> f64 {
        self.service_price * self.total_sensing_time()
    }

    /// Total payment from the platform to the sellers: `p* · Στ*`.
    #[must_use]
    pub fn seller_payment(&self) -> f64 {
        self.collection_price * self.total_sensing_time()
    }

    /// Sensing time of a particular seller, if selected.
    #[must_use]
    pub fn sensing_time_of(&self, id: SellerId) -> Option<f64> {
        self.seller_ids
            .iter()
            .position(|&s| s == id)
            .map(|i| self.sensing_times[i])
    }

    /// `true` when the solution is *interior*: every sensing time is
    /// strictly inside `(0, T)` and both prices are strictly inside their
    /// bounds.
    ///
    /// The paper's closed forms (Theorems 14–16) derive the exact
    /// equilibrium under the implicit assumption that no constraint binds
    /// — e.g. `Στ_i* = p·A − B` silently requires every
    /// `τ_i* = (p − q̄_i b_i)/(2 q̄_i a_i)` to be non-negative. When a
    /// seller is priced below its reservation (`p < q̄_i b_i`) it opts out
    /// (`τ_i = 0` after clamping) and the Stage-1/2 algebra is only an
    /// approximation of the constrained optimum. In the paper's parameter
    /// regime (Table II) equilibria are interior; this predicate lets
    /// callers check.
    #[must_use]
    pub fn is_interior(&self, ctx: &GameContext) -> bool {
        let t = ctx.max_sensing_time;
        let taus_ok = self.sensing_times.iter().all(|&tau| tau > 0.0 && tau < t);
        let p = self.collection_price;
        let pj = self.service_price;
        let pb = &ctx.collection_price_bounds;
        let sb = &ctx.service_price_bounds;
        taus_ok && p > pb.min && p < pb.max && pj > sb.min && pj < sb.max
    }
}

/// Solves the three-stage game by backward induction:
///
/// 1. compute the aggregates `A, B, q̄, Θ, Λ`;
/// 2. Stage 1 — consumer's `p^{J*}` (Theorem 16, clamped into bounds);
/// 3. Stage 2 — platform's `p*` at `p^{J*}` (Theorem 15, clamped);
/// 4. Stage 3 — every seller's `τ_i*` at `p*` (Theorem 14, clamped to `[0, T]`);
/// 5. evaluate all profits at the resulting profile.
///
/// By Theorem 20 this profile is the unique Stackelberg Equilibrium.
#[must_use]
pub fn solve_equilibrium(ctx: &GameContext) -> StackelbergSolution {
    let mut out = StackelbergSolution::empty();
    solve_equilibrium_into(ctx, &mut out);
    out
}

/// As [`solve_equilibrium`], but writes into `out`, reusing its sensing-time,
/// seller-id and per-seller-profit buffers. Produces exactly the same
/// solution; after the first call on a given `out` the per-round game solve
/// is allocation-free.
pub fn solve_equilibrium_into(ctx: &GameContext, out: &mut StackelbergSolution) {
    out.aggregates = Aggregates::from_context(ctx);
    out.service_price = consumer_best_response(ctx, &out.aggregates);
    out.collection_price = platform_best_response(ctx, out.service_price, &out.aggregates);
    all_seller_best_responses_into(ctx, out.collection_price, &mut out.sensing_times);
    out.seller_ids.clear();
    out.seller_ids.extend_from_slice(ctx.seller_ids());
    profits_at_into(
        ctx,
        out.service_price,
        out.collection_price,
        &out.sensing_times,
        &mut out.profits,
    );
}

/// Evaluates all three parties' profits at an arbitrary strategy profile.
#[must_use]
pub fn profits_at(
    ctx: &GameContext,
    service_price: f64,
    collection_price: f64,
    sensing_times: &[f64],
) -> Profits {
    let mut out = Profits {
        consumer: 0.0,
        platform: 0.0,
        sellers: Vec::with_capacity(sensing_times.len()),
    };
    profits_at_into(
        ctx,
        service_price,
        collection_price,
        sensing_times,
        &mut out,
    );
    out
}

/// As [`profits_at`], but writes into `out`, reusing its seller-profit
/// buffer.
pub fn profits_at_into(
    ctx: &GameContext,
    service_price: f64,
    collection_price: f64,
    sensing_times: &[f64],
    out: &mut Profits,
) {
    out.sellers.clear();
    // Flat-column sweep, preserving the per-seller profit expression.
    out.sellers.extend(
        ctx.qualities()
            .iter()
            .zip(ctx.cost_as())
            .zip(ctx.cost_bs())
            .zip(sensing_times)
            .map(|(((&q, &a), &b), &tau)| {
                seller_profit(collection_price, tau, q, SellerCostParams { a, b })
            }),
    );
    out.consumer = consumer_profit(ctx, service_price, sensing_times);
    out.platform = platform_profit(ctx, service_price, collection_price, sensing_times);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SelectedSeller;
    use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, ValuationParams};

    fn paper_like_ctx(k: usize) -> GameContext {
        let sellers = (0..k)
            .map(|i| {
                SelectedSeller::new(
                    SellerId(i),
                    0.3 + 0.6 * (i as f64 / k.max(2) as f64),
                    SellerCostParams {
                        a: 0.1 + 0.4 * (i as f64 / k.max(2) as f64),
                        b: 0.1 + 0.9 * (i as f64 / k.max(2) as f64),
                    },
                )
            })
            .collect();
        GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap()
    }

    #[test]
    fn equilibrium_prices_are_ordered() {
        let eq = solve_equilibrium(&paper_like_ctx(10));
        // The platform must be able to profit: pJ* > p* > 0.
        assert!(eq.service_price > eq.collection_price);
        assert!(eq.collection_price > 0.0);
    }

    #[test]
    fn all_parties_profit_at_equilibrium() {
        let eq = solve_equilibrium(&paper_like_ctx(10));
        assert!(eq.profits.consumer > 0.0, "PoC = {}", eq.profits.consumer);
        assert!(eq.profits.platform > 0.0, "PoP = {}", eq.profits.platform);
        for (i, &psi) in eq.profits.sellers.iter().enumerate() {
            assert!(psi >= 0.0, "PoS-{i} = {psi}");
        }
    }

    #[test]
    fn sensing_times_positive_at_equilibrium() {
        let eq = solve_equilibrium(&paper_like_ctx(5));
        assert!(eq.sensing_times.iter().all(|&t| t > 0.0));
        assert!(eq.total_sensing_time() > 0.0);
    }

    #[test]
    fn payments_are_consistent() {
        let eq = solve_equilibrium(&paper_like_ctx(4));
        // Consumer payment = platform income + platform margin incl. cost:
        // Ω = consumer_payment − seller_payment − C^J(Στ).
        let cj = 0.1 * eq.total_sensing_time().powi(2) + 1.0 * eq.total_sensing_time();
        let omega = eq.consumer_payment() - eq.seller_payment() - cj;
        assert!((omega - eq.profits.platform).abs() < 1e-9);
    }

    #[test]
    fn sensing_time_of_finds_sellers() {
        let eq = solve_equilibrium(&paper_like_ctx(3));
        assert!(eq.sensing_time_of(SellerId(1)).is_some());
        assert!(eq.sensing_time_of(SellerId(99)).is_none());
    }

    #[test]
    fn social_welfare_decomposition() {
        let eq = solve_equilibrium(&paper_like_ctx(6));
        let p = &eq.profits;
        assert!((p.social_welfare() - (p.consumer + p.platform + p.total_seller())).abs() < 1e-12);
    }

    #[test]
    fn higher_quality_seller_contributes_more_time() {
        // Two sellers identical except in quality. Theorem 14:
        // τ* = p/(2qa) − b/(2a) decreases in q — a *higher*-quality seller
        // needs less time for the same pay and its cost scales with q, so it
        // supplies less. Verify the closed form's comparative statics.
        let cost = SellerCostParams { a: 0.2, b: 0.2 };
        let sellers = vec![
            SelectedSeller::new(SellerId(0), 0.9, cost),
            SelectedSeller::new(SellerId(1), 0.4, cost),
        ];
        let ctx = GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap();
        let eq = solve_equilibrium(&ctx);
        let t_high = eq.sensing_time_of(SellerId(0)).unwrap();
        let t_low = eq.sensing_time_of(SellerId(1)).unwrap();
        assert!(t_low > t_high);
    }

    #[test]
    fn clamped_service_price_propagates() {
        let mut ctx = paper_like_ctx(5);
        let unbounded = solve_equilibrium(&ctx);
        ctx.service_price_bounds = PriceBounds::new(0.0, unbounded.service_price * 0.5).unwrap();
        let clamped = solve_equilibrium(&ctx);
        assert_eq!(clamped.service_price, unbounded.service_price * 0.5);
        // Lower pJ ⇒ lower p ⇒ less sensing time.
        assert!(clamped.collection_price < unbounded.collection_price);
        assert!(clamped.total_sensing_time() < unbounded.total_sensing_time());
    }

    #[test]
    fn single_seller_game_solves() {
        let eq = solve_equilibrium(&paper_like_ctx(1));
        assert_eq!(eq.sensing_times.len(), 1);
        assert!(eq.profits.consumer > 0.0);
    }

    #[test]
    fn solve_into_matches_owned_solve_across_reuse() {
        let mut reused = StackelbergSolution::empty();
        // Shrinking K exercises stale-buffer truncation in the reused value.
        for k in [10, 3, 7, 1] {
            let ctx = paper_like_ctx(k);
            solve_equilibrium_into(&ctx, &mut reused);
            assert_eq!(reused, solve_equilibrium(&ctx));
        }
    }
}
