//! The three profit functions of Defs. 9–11.
//!
//! These are the *primitive* payoffs — the equilibrium module composes them
//! with best responses, and the verification module probes them directly
//! with deviating strategies.

use crate::context::GameContext;
use cdt_types::SellerCostParams;

/// Seller `i`'s profit (Eq. 5): `Ψ_i = p τ_i − C_i(τ_i, q̄_i)`, where
/// `C_i(τ, q̄) = (a_i τ² + b_i τ) q̄` (Eq. 6). The selection indicator
/// `χ_i^t` is implicit: only selected sellers are evaluated.
#[must_use]
pub fn seller_profit(
    collection_price: f64,
    sensing_time: f64,
    quality: f64,
    cost: SellerCostParams,
) -> f64 {
    collection_price * sensing_time - cost.cost(sensing_time, quality)
}

/// The platform's profit (Eq. 7):
/// `Ω = p^J Στ − p Στ − C^J(τ)`, with `C^J(τ) = θ(Στ)² + λΣτ` (Eq. 8).
#[must_use]
pub fn platform_profit(
    ctx: &GameContext,
    service_price: f64,
    collection_price: f64,
    sensing_times: &[f64],
) -> f64 {
    let total: f64 = sensing_times.iter().sum();
    (service_price - collection_price) * total - ctx.platform_cost.cost(total)
}

/// The consumer's profit (Eq. 9): `Φ = φ(τ, q̄) − p^J Στ`, with
/// `φ(τ, q̄) = ω ln(1 + q̄ Στ)` (Eq. 10). `q̄` is the mean estimated quality
/// of the selected sellers.
#[must_use]
pub fn consumer_profit(ctx: &GameContext, service_price: f64, sensing_times: &[f64]) -> f64 {
    let total: f64 = sensing_times.iter().sum();
    ctx.valuation.valuation(ctx.mean_quality(), total) - service_price * total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SelectedSeller;
    use cdt_types::{PlatformCostParams, PriceBounds, SellerId, ValuationParams};

    fn ctx() -> GameContext {
        GameContext::new(
            vec![
                SelectedSeller::new(SellerId(0), 0.8, SellerCostParams { a: 0.3, b: 0.5 }),
                SelectedSeller::new(SellerId(1), 0.4, SellerCostParams { a: 0.2, b: 0.1 }),
            ],
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 100.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap()
    }

    #[test]
    fn seller_profit_matches_hand_computation() {
        // Ψ = 2·1.5 − (0.3·2.25 + 0.5·1.5)·0.8 = 3 − (0.675+0.75)·0.8 = 3 − 1.14
        let psi = seller_profit(2.0, 1.5, 0.8, SellerCostParams { a: 0.3, b: 0.5 });
        assert!((psi - 1.86).abs() < 1e-12);
    }

    #[test]
    fn seller_profit_zero_time_is_zero() {
        assert_eq!(
            seller_profit(5.0, 0.0, 0.9, SellerCostParams { a: 0.3, b: 0.5 }),
            0.0
        );
    }

    #[test]
    fn seller_profit_can_be_negative() {
        // Price far below marginal cost.
        let psi = seller_profit(0.01, 2.0, 1.0, SellerCostParams { a: 1.0, b: 1.0 });
        assert!(psi < 0.0);
    }

    #[test]
    fn platform_profit_matches_hand_computation() {
        let c = ctx();
        // Στ = 3; Ω = (4−2)·3 − (0.1·9 + 1·3) = 6 − 3.9 = 2.1
        let omega = platform_profit(&c, 4.0, 2.0, &[1.0, 2.0]);
        assert!((omega - 2.1).abs() < 1e-12);
    }

    #[test]
    fn platform_profit_decreases_in_collection_price() {
        let c = ctx();
        let lo = platform_profit(&c, 4.0, 1.0, &[1.0, 2.0]);
        let hi = platform_profit(&c, 4.0, 3.0, &[1.0, 2.0]);
        assert!(lo > hi);
    }

    #[test]
    fn consumer_profit_matches_hand_computation() {
        let c = ctx();
        // q̄ = 0.6, Στ = 3 → Φ = 100 ln(1 + 1.8) − p^J·3
        let expected = 100.0 * (2.8_f64).ln() - 2.0 * 3.0;
        assert!((consumer_profit(&c, 2.0, &[1.0, 2.0]) - expected).abs() < 1e-9);
    }

    #[test]
    fn consumer_profit_zero_time_is_zero() {
        let c = ctx();
        assert_eq!(consumer_profit(&c, 7.0, &[0.0, 0.0]), 0.0);
    }
}
