//! Social-welfare analysis of the Stackelberg outcome.
//!
//! Prices are transfers, so social welfare reduces to
//! `W(τ) = φ(τ, q̄) − Σ_i C_i(τ_i, q̄_i) − C^J(τ)`. The *efficient*
//! (first-best) allocation maximizes `W` directly; the Stackelberg
//! hierarchy loses some of it through double marginalization. This module
//! computes the first-best benchmark and the resulting price of anarchy —
//! a quantitative companion to the paper's SE analysis (Sec. IV-B), which
//! proves equilibrium but does not measure efficiency.

use crate::context::GameContext;
use crate::equilibrium::StackelbergSolution;
use crate::numeric::golden_section_max;
use serde::{Deserialize, Serialize};

/// The first-best (welfare-maximizing) allocation and its value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficientAllocation {
    /// Welfare-maximizing sensing times, in selection order.
    pub sensing_times: Vec<f64>,
    /// The maximized social welfare `W(τ*)`.
    pub welfare: f64,
}

/// Social welfare of an arbitrary sensing-time profile:
/// `φ(τ, q̄) − Σ C_i − C^J`.
#[must_use]
pub fn social_welfare(ctx: &GameContext, sensing_times: &[f64]) -> f64 {
    let total: f64 = sensing_times.iter().sum();
    let valuation = ctx.valuation.valuation(ctx.mean_quality(), total);
    let seller_costs: f64 = ctx
        .sellers()
        .zip(sensing_times)
        .map(|(s, &tau)| s.cost.cost(tau, s.quality))
        .sum();
    valuation - seller_costs - ctx.platform_cost.cost(total)
}

/// Computes the first-best allocation.
///
/// Structure: for a fixed total time `S`, the cost-minimizing split solves
/// `min Σ (a_i τ_i² + b_i τ_i) q̄_i + θS² + λS` s.t. `Σ τ_i = S`; the KKT
/// conditions give `2 a_i q̄_i τ_i + b_i q̄_i = μ`, i.e.
/// `τ_i(μ) = max(0, (μ − b_i q̄_i) / (2 a_i q̄_i))` — a water-filling in the
/// shadow price `μ`. The outer maximization over `S` is single-dimensional
/// and concave, solved by golden-section search.
#[must_use]
pub fn efficient_allocation(ctx: &GameContext) -> EfficientAllocation {
    // For a shadow price μ, the optimal split and its total time.
    let split = |mu: f64| -> Vec<f64> {
        ctx.sellers()
            .map(|s| {
                let tau = (mu - s.cost.b * s.quality) / (2.0 * s.cost.a * s.quality);
                tau.clamp(0.0, ctx.max_sensing_time)
            })
            .collect()
    };
    // Welfare as a function of μ: the split is cost-minimal for its own
    // total, and total time is monotone in μ, so maximizing over μ is
    // equivalent to maximizing over S.
    let welfare_at = |mu: f64| social_welfare(ctx, &split(mu));

    // Bracket: μ = 0 gives zero time; μ_hi large enough that marginal
    // valuation ω q̄ /(1 + q̄ S) falls below every marginal cost.
    let mu_hi = ctx.valuation.omega * ctx.mean_quality() + 10.0;
    let max = golden_section_max(welfare_at, 0.0, mu_hi, 1e-9);
    let sensing_times = split(max.argmax);
    let welfare = social_welfare(ctx, &sensing_times);
    EfficientAllocation {
        sensing_times,
        welfare,
    }
}

/// Efficiency report of a Stackelberg solution against the first best.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WelfareReport {
    /// Welfare at the Stackelberg equilibrium.
    pub equilibrium_welfare: f64,
    /// First-best welfare.
    pub efficient_welfare: f64,
}

impl WelfareReport {
    /// Fraction of the first best the equilibrium attains (≤ 1 up to
    /// numeric tolerance).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.efficient_welfare <= 0.0 {
            1.0
        } else {
            self.equilibrium_welfare / self.efficient_welfare
        }
    }
}

/// Builds a [`WelfareReport`] for a solved equilibrium.
#[must_use]
pub fn welfare_report(ctx: &GameContext, solution: &StackelbergSolution) -> WelfareReport {
    WelfareReport {
        equilibrium_welfare: social_welfare(ctx, &solution.sensing_times),
        efficient_welfare: efficient_allocation(ctx).welfare,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SelectedSeller;
    use crate::equilibrium::solve_equilibrium;
    use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, SellerId, ValuationParams};

    fn ctx(k: usize) -> GameContext {
        let sellers = (0..k)
            .map(|i| {
                SelectedSeller::new(
                    SellerId(i),
                    0.4 + 0.5 * (i as f64 + 0.5) / k as f64,
                    SellerCostParams {
                        a: 0.1 + 0.3 * (i as f64 + 0.5) / k as f64,
                        b: 0.2 + 0.6 * (i as f64 + 0.5) / k as f64,
                    },
                )
            })
            .collect();
        GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap()
    }

    #[test]
    fn welfare_equals_sum_of_profits() {
        // Prices are transfers: Φ + Ω + ΣΨ must equal W at any profile.
        let c = ctx(5);
        let eq = solve_equilibrium(&c);
        let w = social_welfare(&c, &eq.sensing_times);
        assert!(
            (w - eq.profits.social_welfare()).abs() < 1e-9,
            "welfare {w} vs profit sum {}",
            eq.profits.social_welfare()
        );
    }

    #[test]
    fn first_best_dominates_equilibrium() {
        for k in [1, 3, 8] {
            let c = ctx(k);
            let report = welfare_report(&c, &solve_equilibrium(&c));
            assert!(
                report.efficient_welfare >= report.equilibrium_welfare - 1e-6,
                "K={k}: first best {} < equilibrium {}",
                report.efficient_welfare,
                report.equilibrium_welfare
            );
            let eff = report.efficiency();
            assert!((0.0..=1.0 + 1e-9).contains(&eff), "efficiency {eff}");
        }
    }

    #[test]
    fn hierarchy_loses_welfare_to_double_marginalization() {
        // The triple markup is strict in this interior configuration.
        let c = ctx(6);
        let report = welfare_report(&c, &solve_equilibrium(&c));
        assert!(
            report.efficiency() < 0.999,
            "expected strict efficiency loss, got {}",
            report.efficiency()
        );
        // But the log valuation keeps the loss moderate.
        assert!(
            report.efficiency() > 0.3,
            "equilibrium should capture a sizable welfare share, got {}",
            report.efficiency()
        );
    }

    #[test]
    fn efficient_allocation_is_a_stationary_point() {
        // Perturbing any single seller's time away from the first best
        // must not increase welfare.
        let c = ctx(4);
        let eff = efficient_allocation(&c);
        let base = eff.welfare;
        for i in 0..4 {
            for delta in [-1e-3, 1e-3] {
                let mut taus = eff.sensing_times.clone();
                taus[i] = (taus[i] + delta).max(0.0);
                assert!(
                    social_welfare(&c, &taus) <= base + 1e-6,
                    "seller {i} perturbation {delta} improved welfare"
                );
            }
        }
    }

    #[test]
    fn efficient_total_time_exceeds_equilibrium_total() {
        // Double marginalization suppresses quantity: the first best asks
        // for (weakly) more total sensing time.
        let c = ctx(6);
        let eq = solve_equilibrium(&c);
        let eff = efficient_allocation(&c);
        let eff_total: f64 = eff.sensing_times.iter().sum();
        assert!(eff_total > eq.total_sensing_time());
    }
}
