//! Direct verification of the Stackelberg-Equilibrium inequalities
//! (Def. 13): no party can improve its profit by unilaterally deviating
//! from the solved strategy profile.
//!
//! This module does *not* trust the closed forms — it probes the raw profit
//! functions with grids of deviating strategies. It backs Theorem 20's
//! uniqueness/equilibrium claim empirically and guards the implementation
//! against sign errors in the algebra.

use crate::best_response::{all_seller_best_responses, platform_best_response, Aggregates};
use crate::context::GameContext;
use crate::equilibrium::StackelbergSolution;
use crate::profit::{consumer_profit, platform_profit, seller_profit};
use serde::{Deserialize, Serialize};

/// Outcome of probing one party's deviations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deviation {
    /// Best profit found among the probed deviating strategies.
    pub best_deviation_profit: f64,
    /// Profit at the solved equilibrium strategy.
    pub equilibrium_profit: f64,
    /// The deviating strategy value that achieved
    /// [`Deviation::best_deviation_profit`].
    pub best_strategy: f64,
}

impl Deviation {
    /// How much the best probed deviation gains over the equilibrium
    /// (positive ⇒ the equilibrium property is violated beyond `tol`).
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.best_deviation_profit - self.equilibrium_profit
    }
}

/// Report of an equilibrium verification sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviationReport {
    /// Consumer deviations in `p^J` (Eq. 14). When the consumer deviates,
    /// the lower stages re-optimize (leaders anticipate followers).
    pub consumer: Deviation,
    /// Platform deviations in `p` at fixed `p^{J*}` (Eq. 15); sellers
    /// re-optimize.
    pub platform: Deviation,
    /// Per-seller deviations in `τ_i` at fixed prices and fixed `τ_{−i}*`
    /// (Eq. 16).
    pub sellers: Vec<Deviation>,
    /// Tolerance used for the `is_equilibrium` verdict.
    pub tolerance: f64,
}

impl DeviationReport {
    /// `true` when no probed deviation improves any party's profit by more
    /// than the tolerance.
    #[must_use]
    pub fn is_equilibrium(&self) -> bool {
        self.consumer.gain() <= self.tolerance
            && self.platform.gain() <= self.tolerance
            && self.sellers.iter().all(|d| d.gain() <= self.tolerance)
    }

    /// The largest deviation gain across all parties (≤ tolerance at a SE).
    #[must_use]
    pub fn max_gain(&self) -> f64 {
        let seller_max = self
            .sellers
            .iter()
            .map(Deviation::gain)
            .fold(f64::NEG_INFINITY, f64::max);
        self.consumer
            .gain()
            .max(self.platform.gain())
            .max(seller_max)
    }
}

/// Probes `grid_points` deviations per party around the solution and
/// reports the best gain each party could achieve.
///
/// Deviation semantics follow Def. 13 exactly:
/// - the **consumer** deviates in `p^J` over its bounds (or `[0, 3·p^{J*}]`
///   when unbounded) — as the first-tier leader, the platform's and
///   sellers' responses re-optimize against the deviating price;
/// - the **platform** deviates in `p` at fixed `p^{J*}`; sellers
///   re-optimize;
/// - each **seller** deviates in `τ_i ∈ [0, min(T, 3·τ_i*)]` at fixed
///   prices and fixed other-seller times.
#[must_use]
pub fn verify_equilibrium(
    ctx: &GameContext,
    solution: &StackelbergSolution,
    grid_points: usize,
    tolerance: f64,
) -> DeviationReport {
    let agg = Aggregates::from_context(ctx);

    // --- Consumer deviations (Eq. 14) ---
    let pj_star = solution.service_price;
    let (pj_lo, pj_hi) = probe_interval(&ctx.service_price_bounds, pj_star);
    let consumer_at = |pj: f64| {
        let p = platform_best_response(ctx, pj, &agg);
        let taus = all_seller_best_responses(ctx, p);
        consumer_profit(ctx, pj, &taus)
    };
    let consumer = probe(consumer_at, pj_lo, pj_hi, grid_points, pj_star);

    // --- Platform deviations (Eq. 15) ---
    let p_star = solution.collection_price;
    let (p_lo, p_hi) = probe_interval(&ctx.collection_price_bounds, p_star.max(1.0));
    let platform_at = |p: f64| {
        let taus = all_seller_best_responses(ctx, p);
        platform_profit(ctx, pj_star, p, &taus)
    };
    let platform = probe(platform_at, p_lo, p_hi, grid_points, p_star);

    // --- Seller deviations (Eq. 16) ---
    let sellers = ctx
        .sellers()
        .zip(&solution.sensing_times)
        .map(|(s, &tau_star)| {
            let hi = (3.0 * tau_star.max(1.0)).min(ctx.max_sensing_time);
            probe(
                |tau| seller_profit(p_star, tau, s.quality, s.cost),
                0.0,
                hi,
                grid_points,
                tau_star,
            )
        })
        .collect();

    DeviationReport {
        consumer,
        platform,
        sellers,
        tolerance,
    }
}

/// A finite probing interval: the party's bounds when finite, otherwise
/// `[0, 3·reference]`.
fn probe_interval(bounds: &cdt_types::PriceBounds, reference: f64) -> (f64, f64) {
    let hi = if bounds.max.is_finite() && bounds.max < 1e100 {
        bounds.max
    } else {
        3.0 * reference.max(1.0)
    };
    (bounds.min, hi)
}

fn probe<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    grid_points: usize,
    equilibrium_strategy: f64,
) -> Deviation {
    let equilibrium_profit = f(equilibrium_strategy);
    let mut best_deviation_profit = f64::NEG_INFINITY;
    let mut best_strategy = lo;
    let n = grid_points.max(2);
    let step = (hi - lo) / (n - 1) as f64;
    for i in 0..n {
        let x = lo + step * i as f64;
        let v = f(x);
        if v > best_deviation_profit {
            best_deviation_profit = v;
            best_strategy = x;
        }
    }
    Deviation {
        best_deviation_profit,
        equilibrium_profit,
        best_strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SelectedSeller;
    use crate::equilibrium::solve_equilibrium;
    use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, SellerId, ValuationParams};

    fn ctx(k: usize, omega: f64) -> GameContext {
        let sellers = (0..k)
            .map(|i| {
                SelectedSeller::new(
                    SellerId(i),
                    0.25 + 0.7 * (i as f64 + 0.5) / k as f64,
                    SellerCostParams {
                        a: 0.1 + 0.35 * (i as f64 + 0.3) / k as f64,
                        b: 0.1 + 0.8 * (i as f64 + 0.7) / k as f64,
                    },
                )
            })
            .collect();
        GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap()
    }

    #[test]
    fn solved_profile_is_an_equilibrium() {
        for k in [1, 3, 10] {
            let c = ctx(k, 1000.0);
            let eq = solve_equilibrium(&c);
            let report = verify_equilibrium(&c, &eq, 2000, 1e-3 * eq.profits.consumer.abs());
            assert!(
                report.is_equilibrium(),
                "K={k}: max deviation gain {}",
                report.max_gain()
            );
        }
    }

    #[test]
    fn equilibrium_holds_across_omegas() {
        for omega in [600.0, 1000.0, 1400.0] {
            let c = ctx(5, omega);
            let eq = solve_equilibrium(&c);
            let report = verify_equilibrium(&c, &eq, 2000, 1e-3 * eq.profits.consumer.abs());
            assert!(report.is_equilibrium(), "omega={omega}");
        }
    }

    #[test]
    fn perturbed_profile_is_not_an_equilibrium() {
        let c = ctx(5, 1000.0);
        let mut eq = solve_equilibrium(&c);
        // Corrupt the platform's price: someone must now gain by deviating.
        eq.collection_price *= 0.5;
        eq.sensing_times = all_seller_best_responses(&c, eq.collection_price);
        let report = verify_equilibrium(&c, &eq, 2000, 1e-6);
        assert!(!report.is_equilibrium());
        assert!(report.platform.gain() > 0.0);
    }

    #[test]
    fn deviation_gain_sign() {
        let d = Deviation {
            best_deviation_profit: 10.0,
            equilibrium_profit: 9.0,
            best_strategy: 1.0,
        };
        assert!((d.gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_max_gain_covers_sellers() {
        let c = ctx(4, 1000.0);
        let eq = solve_equilibrium(&c);
        let report = verify_equilibrium(&c, &eq, 500, 1e-2);
        assert!(report.max_gain() <= 1e-2 + 1e-9);
        assert_eq!(report.sellers.len(), 4);
    }
}
