//! The per-round game context: who was selected, with what learned
//! qualities, and under which economic parameters the game is played.

use cdt_types::{
    CdtError, PlatformCostParams, PriceBounds, Result, SellerCostParams, SellerId, ValuationParams,
    QUALITY_FLOOR,
};
use serde::{Deserialize, Serialize};

/// One selected seller as the game sees it: the platform's current quality
/// estimate `q̄_i^t` (floored away from zero, see [`QUALITY_FLOOR`]) and the
/// seller's cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectedSeller {
    /// Which seller this is.
    pub id: SellerId,
    /// Estimated quality `q̄_i^t ∈ [QUALITY_FLOOR, 1]`.
    pub quality: f64,
    /// Cost parameters `(a_i, b_i)`.
    pub cost: SellerCostParams,
}

impl SelectedSeller {
    /// Creates a selected seller, flooring the quality estimate into
    /// `[QUALITY_FLOOR, 1]` so that Stage-3 denominators `2 q̄_i a_i` stay
    /// bounded away from zero.
    #[must_use]
    pub fn new(id: SellerId, quality: f64, cost: SellerCostParams) -> Self {
        Self {
            id,
            quality: quality.clamp(QUALITY_FLOOR, 1.0),
            cost,
        }
    }
}

/// Everything needed to play one round's HS game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameContext {
    sellers: Vec<SelectedSeller>,
    /// Platform aggregation cost parameters `(θ, λ)`.
    pub platform_cost: PlatformCostParams,
    /// Consumer valuation parameter `ω`.
    pub valuation: ValuationParams,
    /// Bounds on the platform's collection price `p`.
    pub collection_price_bounds: PriceBounds,
    /// Bounds on the consumer's service price `p^J`.
    pub service_price_bounds: PriceBounds,
    /// Upper bound `T` on any seller's sensing time.
    pub max_sensing_time: f64,
}

impl GameContext {
    /// Creates a validated context.
    ///
    /// # Errors
    /// Returns [`CdtError::EmptySelection`] when no sellers were selected and
    /// [`CdtError::InvalidParameter`] when `T` is not positive.
    pub fn new(
        sellers: Vec<SelectedSeller>,
        platform_cost: PlatformCostParams,
        valuation: ValuationParams,
        collection_price_bounds: PriceBounds,
        service_price_bounds: PriceBounds,
        max_sensing_time: f64,
    ) -> Result<Self> {
        if sellers.is_empty() {
            return Err(CdtError::EmptySelection);
        }
        if max_sensing_time <= 0.0 || max_sensing_time.is_nan() {
            return Err(CdtError::invalid(
                "T",
                max_sensing_time,
                "max sensing time must be > 0",
            ));
        }
        Ok(Self {
            sellers,
            platform_cost,
            valuation,
            collection_price_bounds,
            service_price_bounds,
            max_sensing_time,
        })
    }

    /// The selected sellers (`K` of them), in selection order.
    #[must_use]
    pub fn sellers(&self) -> &[SelectedSeller] {
        &self.sellers
    }

    /// Consumes the context, handing back its seller buffer so callers that
    /// rebuild a context every round can recycle the allocation.
    #[must_use]
    pub fn into_sellers(self) -> Vec<SelectedSeller> {
        self.sellers
    }

    /// Number of selected sellers `K`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.sellers.len()
    }

    /// The overall mean estimated quality
    /// `q̄^t = (Σ q̄_i χ_i) / (Σ χ_i)` of the selected set (used in Eq. 10).
    #[must_use]
    pub fn mean_quality(&self) -> f64 {
        let sum: f64 = self.sellers.iter().map(|s| s.quality).sum();
        sum / self.sellers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seller(id: usize, q: f64) -> SelectedSeller {
        SelectedSeller::new(SellerId(id), q, SellerCostParams { a: 0.2, b: 0.3 })
    }

    fn ctx(sellers: Vec<SelectedSeller>) -> Result<GameContext> {
        GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
    }

    #[test]
    fn quality_is_floored_and_capped() {
        assert_eq!(seller(0, -0.5).quality, QUALITY_FLOOR);
        assert_eq!(seller(0, 0.0).quality, QUALITY_FLOOR);
        assert_eq!(seller(0, 2.0).quality, 1.0);
        assert_eq!(seller(0, 0.5).quality, 0.5);
    }

    #[test]
    fn empty_selection_rejected() {
        assert!(matches!(ctx(vec![]), Err(CdtError::EmptySelection)));
    }

    #[test]
    fn mean_quality_averages_selected() {
        let c = ctx(vec![seller(0, 0.2), seller(1, 0.8)]).unwrap();
        assert!((c.mean_quality() - 0.5).abs() < 1e-12);
        assert_eq!(c.k(), 2);
    }

    #[test]
    fn non_positive_t_rejected() {
        let bad = GameContext::new(
            vec![seller(0, 0.5)],
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            0.0,
        );
        assert!(bad.is_err());
    }
}
