//! The per-round game context: who was selected, with what learned
//! qualities, and under which economic parameters the game is played.

use cdt_types::{
    CdtError, PlatformCostParams, PriceBounds, Result, SellerCostParams, SellerId, ValuationParams,
    QUALITY_FLOOR,
};
use serde::{Deserialize, Serialize};

/// One selected seller as the game sees it: the platform's current quality
/// estimate `q̄_i^t` (floored away from zero, see [`QUALITY_FLOOR`]) and the
/// seller's cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectedSeller {
    /// Which seller this is.
    pub id: SellerId,
    /// Estimated quality `q̄_i^t ∈ [QUALITY_FLOOR, 1]`.
    pub quality: f64,
    /// Cost parameters `(a_i, b_i)`.
    pub cost: SellerCostParams,
}

impl SelectedSeller {
    /// Creates a selected seller, flooring the quality estimate into
    /// `[QUALITY_FLOOR, 1]` so that Stage-3 denominators `2 q̄_i a_i` stay
    /// bounded away from zero.
    #[must_use]
    pub fn new(id: SellerId, quality: f64, cost: SellerCostParams) -> Self {
        Self {
            id,
            quality: quality.clamp(QUALITY_FLOOR, 1.0),
            cost,
        }
    }
}

/// Everything needed to play one round's HS game.
///
/// Sellers are stored struct-of-arrays: four parallel flat vectors
/// (`ids`, `qualities`, `cost_a`, `cost_b`) instead of one
/// `Vec<SelectedSeller>`. The aggregate pass over `A, B, q̄` and the Stage-3
/// best-response sweep are then contiguous `f64` loops that LLVM can
/// auto-vectorize — the round loop runs them `N = 10⁵` times per
/// (policy × replication) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameContext {
    ids: Vec<SellerId>,
    qualities: Vec<f64>,
    cost_a: Vec<f64>,
    cost_b: Vec<f64>,
    /// Platform aggregation cost parameters `(θ, λ)`.
    pub platform_cost: PlatformCostParams,
    /// Consumer valuation parameter `ω`.
    pub valuation: ValuationParams,
    /// Bounds on the platform's collection price `p`.
    pub collection_price_bounds: PriceBounds,
    /// Bounds on the consumer's service price `p^J`.
    pub service_price_bounds: PriceBounds,
    /// Upper bound `T` on any seller's sensing time.
    pub max_sensing_time: f64,
}

impl GameContext {
    /// Creates a validated context.
    ///
    /// # Errors
    /// Returns [`CdtError::EmptySelection`] when no sellers were selected and
    /// [`CdtError::InvalidParameter`] when `T` is not positive.
    pub fn new(
        sellers: Vec<SelectedSeller>,
        platform_cost: PlatformCostParams,
        valuation: ValuationParams,
        collection_price_bounds: PriceBounds,
        service_price_bounds: PriceBounds,
        max_sensing_time: f64,
    ) -> Result<Self> {
        if sellers.is_empty() {
            return Err(CdtError::EmptySelection);
        }
        if max_sensing_time <= 0.0 || max_sensing_time.is_nan() {
            return Err(CdtError::invalid(
                "T",
                max_sensing_time,
                "max sensing time must be > 0",
            ));
        }
        let mut ctx = Self {
            ids: Vec::with_capacity(sellers.len()),
            qualities: Vec::with_capacity(sellers.len()),
            cost_a: Vec::with_capacity(sellers.len()),
            cost_b: Vec::with_capacity(sellers.len()),
            platform_cost,
            valuation,
            collection_price_bounds,
            service_price_bounds,
            max_sensing_time,
        };
        for s in sellers {
            ctx.push_seller(s);
        }
        Ok(ctx)
    }

    fn push_seller(&mut self, s: SelectedSeller) {
        self.ids.push(s.id);
        self.qualities.push(s.quality);
        self.cost_a.push(s.cost.a);
        self.cost_b.push(s.cost.b);
    }

    /// Replaces the seller columns in place, keeping the economic
    /// parameters (validated once, at construction) and the four vectors'
    /// allocations. The round loop rebuilds the context every round; this
    /// is its allocation- and revalidation-free path.
    ///
    /// # Errors
    /// Returns [`CdtError::EmptySelection`] when `sellers` yields nothing.
    pub fn refill_sellers<I>(&mut self, sellers: I) -> Result<()>
    where
        I: IntoIterator<Item = SelectedSeller>,
    {
        self.ids.clear();
        self.qualities.clear();
        self.cost_a.clear();
        self.cost_b.clear();
        for s in sellers {
            self.push_seller(s);
        }
        if self.ids.is_empty() {
            return Err(CdtError::EmptySelection);
        }
        Ok(())
    }

    /// The selected sellers (`K` of them), in selection order, materialized
    /// from the parallel columns.
    pub fn sellers(&self) -> impl ExactSizeIterator<Item = SelectedSeller> + '_ {
        self.ids
            .iter()
            .zip(&self.qualities)
            .zip(&self.cost_a)
            .zip(&self.cost_b)
            .map(|(((&id, &quality), &a), &b)| SelectedSeller {
                id,
                quality,
                cost: SellerCostParams { a, b },
            })
    }

    /// The `i`-th selected seller (selection order).
    ///
    /// # Panics
    /// Panics when `i >= k()`.
    #[must_use]
    pub fn seller(&self, i: usize) -> SelectedSeller {
        SelectedSeller {
            id: self.ids[i],
            quality: self.qualities[i],
            cost: SellerCostParams {
                a: self.cost_a[i],
                b: self.cost_b[i],
            },
        }
    }

    /// Selected seller ids, in selection order.
    #[must_use]
    pub fn seller_ids(&self) -> &[SellerId] {
        &self.ids
    }

    /// Estimated qualities `q̄_i^t`, parallel to [`GameContext::seller_ids`].
    #[must_use]
    pub fn qualities(&self) -> &[f64] {
        &self.qualities
    }

    /// Quadratic cost coefficients `a_i`, parallel to
    /// [`GameContext::seller_ids`].
    #[must_use]
    pub fn cost_as(&self) -> &[f64] {
        &self.cost_a
    }

    /// Linear cost coefficients `b_i`, parallel to
    /// [`GameContext::seller_ids`].
    #[must_use]
    pub fn cost_bs(&self) -> &[f64] {
        &self.cost_b
    }

    /// Number of selected sellers `K`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.ids.len()
    }

    /// The overall mean estimated quality
    /// `q̄^t = (Σ q̄_i χ_i) / (Σ χ_i)` of the selected set (used in Eq. 10).
    #[must_use]
    pub fn mean_quality(&self) -> f64 {
        let sum: f64 = self.qualities.iter().sum();
        sum / self.qualities.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seller(id: usize, q: f64) -> SelectedSeller {
        SelectedSeller::new(SellerId(id), q, SellerCostParams { a: 0.2, b: 0.3 })
    }

    fn ctx(sellers: Vec<SelectedSeller>) -> Result<GameContext> {
        GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
    }

    #[test]
    fn quality_is_floored_and_capped() {
        assert_eq!(seller(0, -0.5).quality, QUALITY_FLOOR);
        assert_eq!(seller(0, 0.0).quality, QUALITY_FLOOR);
        assert_eq!(seller(0, 2.0).quality, 1.0);
        assert_eq!(seller(0, 0.5).quality, 0.5);
    }

    #[test]
    fn empty_selection_rejected() {
        assert!(matches!(ctx(vec![]), Err(CdtError::EmptySelection)));
    }

    #[test]
    fn mean_quality_averages_selected() {
        let c = ctx(vec![seller(0, 0.2), seller(1, 0.8)]).unwrap();
        assert!((c.mean_quality() - 0.5).abs() < 1e-12);
        assert_eq!(c.k(), 2);
    }

    #[test]
    fn non_positive_t_rejected() {
        let bad = GameContext::new(
            vec![seller(0, 0.5)],
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            0.0,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn columns_round_trip_through_sellers() {
        let input = vec![seller(3, 0.4), seller(7, 0.9)];
        let c = ctx(input.clone()).unwrap();
        let back: Vec<SelectedSeller> = c.sellers().collect();
        assert_eq!(back, input);
        assert_eq!(c.seller(1), input[1]);
        assert_eq!(c.seller_ids(), &[SellerId(3), SellerId(7)]);
        assert_eq!(c.qualities(), &[0.4, 0.9]);
        assert_eq!(c.cost_as(), &[0.2, 0.2]);
        assert_eq!(c.cost_bs(), &[0.3, 0.3]);
    }

    #[test]
    fn refill_replaces_sellers_and_keeps_params() {
        let mut c = ctx(vec![seller(0, 0.2), seller(1, 0.8)]).unwrap();
        let rebuilt = ctx(vec![seller(5, 0.6)]).unwrap();
        c.refill_sellers([seller(5, 0.6)]).unwrap();
        assert_eq!(c, rebuilt, "refill must equal a fresh construction");
        assert!(matches!(
            c.refill_sellers(std::iter::empty()),
            Err(CdtError::EmptySelection)
        ));
    }
}
