//! # cdt-game
//!
//! The three-stage Hierarchical Stackelberg (HS) game of CMAB-HS
//! (An et al., ICDE 2021, Sec. II-C and III-B).
//!
//! Players, top-down:
//!
//! 1. **Consumer** (first-tier leader) picks the unit data-*service* price
//!    `p^J ∈ [p^J_min, p^J_max]` to maximize `Φ = φ(τ, q̄) − p^J Στ` (Eq. 9).
//! 2. **Platform** (second-tier leader) picks the unit data-*collection*
//!    price `p ∈ [p_min, p_max]` to maximize
//!    `Ω = (p^J − p) Στ − C^J(τ)` (Eq. 7).
//! 3. **Sellers** (followers) pick sensing times `τ_i ∈ [0, T]` to maximize
//!    `Ψ_i = p τ_i − C_i(τ_i, q̄_i)` (Eq. 5).
//!
//! Solved by backward induction with the paper's closed forms
//! (Theorems 14–16); [`numeric`] provides an independent golden-section
//! maximizer used to cross-validate every closed form, and [`verify`]
//! checks the Stackelberg-equilibrium inequalities of Def. 13 directly.
//!
//! # Example
//!
//! ```
//! use cdt_game::{GameContext, SelectedSeller, solve_equilibrium};
//! use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, SellerId, ValuationParams};
//!
//! let sellers = vec![
//!     SelectedSeller::new(SellerId(0), 0.8, SellerCostParams::new(0.3, 0.5).unwrap()),
//!     SelectedSeller::new(SellerId(1), 0.6, SellerCostParams::new(0.2, 0.4).unwrap()),
//! ];
//! let ctx = GameContext::new(
//!     sellers,
//!     PlatformCostParams::new(0.1, 1.0).unwrap(),
//!     ValuationParams::new(1000.0).unwrap(),
//!     PriceBounds::unbounded(),
//!     PriceBounds::unbounded(),
//!     f64::MAX,
//! )
//! .unwrap();
//! let eq = solve_equilibrium(&ctx);
//! assert!(eq.profits.consumer > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod best_response;
pub mod cache;
pub mod context;
pub mod equilibrium;
pub mod initial;
pub mod numeric;
pub mod profit;
pub mod sensitivity;
pub mod verify;
pub mod welfare;

pub use best_response::{
    consumer_best_response, platform_best_response, seller_best_response, Aggregates,
};
pub use cache::EquilibriumCache;
pub use context::{GameContext, SelectedSeller};
pub use equilibrium::{solve_equilibrium, solve_equilibrium_into, Profits, StackelbergSolution};
pub use initial::initial_round_strategy;
pub use profit::{consumer_profit, platform_profit, seller_profit};
pub use sensitivity::{sensitivities, Sensitivities};
pub use verify::{verify_equilibrium, DeviationReport};
pub use welfare::{efficient_allocation, social_welfare, welfare_report, WelfareReport};
