//! Equilibrium memoization across consecutive rounds.
//!
//! The CMAB loop re-solves the three-stage game every round, but once the
//! estimator's means settle the selected set and its `q̄` snapshot repeat
//! for long stretches — the game inputs are identical, so the Stackelberg
//! solution is too. [`EquilibriumCache`] keeps the previous round's
//! [`GameContext`] and skips the Stage-1/2/3 solve when the new context
//! compares equal, leaving the previously-solved strategy in place.
//!
//! The fast path is *exact*: contexts are compared field-for-field (no
//! tolerance), so a cache hit returns bit-for-bit the strategy a fresh
//! solve would produce.

use crate::context::GameContext;
use crate::equilibrium::{solve_equilibrium_into, StackelbergSolution};

/// Skips the equilibrium solve when the game context repeats verbatim.
///
/// One cache instance serves one lane of rounds (one policy run); the
/// counters feed the `cdt_obs_eq_cache_{hits,misses}_total` metrics.
#[derive(Debug, Clone, Default)]
pub struct EquilibriumCache {
    /// The context of the last solved round (buffer reused via
    /// `clone_from`, so steady-state rounds allocate nothing).
    prev: Option<GameContext>,
    /// Whether `prev` holds the context of a *solved* round. Initial
    /// rounds play the fixed exploration strategy without solving, so
    /// they invalidate rather than populate the cache.
    valid: bool,
    hits: u64,
    misses: u64,
}

impl EquilibriumCache {
    /// A cold cache: the first solve is always a miss.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the game for `ctx` into `out`, skipping the solve when `ctx`
    /// is bit-identical to the previously solved context (in which case
    /// `out` still holds that round's strategy and is left untouched).
    ///
    /// The caller must reuse the same `out` buffer across rounds of a lane
    /// for the hit path to be meaningful.
    pub fn solve_into(&mut self, ctx: &GameContext, out: &mut StackelbergSolution) {
        if self.valid && self.prev.as_ref() == Some(ctx) {
            self.hits += 1;
            return;
        }
        solve_equilibrium_into(ctx, out);
        match &mut self.prev {
            Some(prev) => prev.clone_from(ctx),
            slot => *slot = Some(ctx.clone()),
        }
        self.valid = true;
        self.misses += 1;
    }

    /// Marks the cached context stale (e.g. after an initial round whose
    /// strategy was not produced by a solve) without dropping its buffers.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Resets counters and invalidates the cache, keeping the allocated
    /// context buffer for reuse (arena-recycled scratch calls this).
    pub fn reset(&mut self) {
        self.valid = false;
        self.hits = 0;
        self.misses = 0;
    }

    /// Rounds that reused the cached equilibrium.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Rounds that ran the full Stage-1/2/3 solve.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SelectedSeller;
    use crate::equilibrium::solve_equilibrium;
    use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, SellerId, ValuationParams};

    fn ctx(quality: f64) -> GameContext {
        let sellers = vec![
            SelectedSeller::new(
                SellerId(0),
                quality,
                SellerCostParams::new(0.3, 0.5).unwrap(),
            ),
            SelectedSeller::new(SellerId(1), 0.6, SellerCostParams::new(0.2, 0.4).unwrap()),
        ];
        GameContext::new(
            sellers,
            PlatformCostParams::new(0.1, 1.0).unwrap(),
            ValuationParams::new(1000.0).unwrap(),
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap()
    }

    #[test]
    fn repeated_context_hits_and_preserves_solution() {
        let mut cache = EquilibriumCache::new();
        let c = ctx(0.8);
        let fresh = solve_equilibrium(&c);
        let mut out = StackelbergSolution::empty();
        cache.solve_into(&c, &mut out);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert_eq!(out, fresh);
        for _ in 0..3 {
            cache.solve_into(&c, &mut out);
        }
        assert_eq!((cache.hits(), cache.misses()), (3, 1));
        assert_eq!(out, fresh, "hit path must leave the solved strategy as-is");
    }

    #[test]
    fn changed_context_misses() {
        let mut cache = EquilibriumCache::new();
        let mut out = StackelbergSolution::empty();
        cache.solve_into(&ctx(0.8), &mut out);
        cache.solve_into(&ctx(0.9), &mut out);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(out, solve_equilibrium(&ctx(0.9)));
    }

    #[test]
    fn invalidate_forces_a_fresh_solve() {
        let mut cache = EquilibriumCache::new();
        let c = ctx(0.7);
        let mut out = StackelbergSolution::empty();
        cache.solve_into(&c, &mut out);
        cache.invalidate();
        cache.solve_into(&c, &mut out);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn reset_zeroes_counters() {
        let mut cache = EquilibriumCache::new();
        let c = ctx(0.7);
        let mut out = StackelbergSolution::empty();
        cache.solve_into(&c, &mut out);
        cache.solve_into(&c, &mut out);
        cache.reset();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        cache.solve_into(&c, &mut out);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }
}
