//! The initial-exploration round's incentive strategy
//! (Algorithm 1, steps 2–4).
//!
//! In round 1 the platform has no quality knowledge, so the HS game cannot
//! be played. The paper instead fixes:
//!
//! - every seller is selected and contributes a fixed time `τ⁰`;
//! - the platform pays the *highest* collection price `p¹* = p_max`
//!   (maximally encouraging participation);
//! - the consumer pays the *smallest* service price that keeps the
//!   platform's profit non-negative:
//!   `p^{J,1*} = argmin_{p^J} { Ω ≥ 0 }`.
//!
//! `Ω = (p^J − p)·Στ − C^J(Στ)` is linear and increasing in `p^J`, so the
//! argmin is the zero-profit price `p^J = p + C^J(Στ)/Στ`, clamped into the
//! consumer's bounds.

use crate::best_response::Aggregates;
use crate::context::GameContext;
use crate::equilibrium::{profits_at, StackelbergSolution};

/// Computes the initial-round strategy profile (all sellers selected at
/// sensing time `τ⁰`).
///
/// When the platform's price interval is unbounded above (no `p_max`
/// configured), the collection price falls back to the smallest price at
/// which *every* seller earns a non-negative profit at `τ⁰`:
/// `p = max_i q̄_i (a_i τ⁰ + b_i)` evaluated at the pessimistic quality
/// bound `q̄_i = 1` — i.e. `max_i (a_i τ⁰ + b_i)`.
#[must_use]
pub fn initial_round_strategy(ctx: &GameContext, tau0: f64) -> StackelbergSolution {
    let k = ctx.k();
    let sensing_times = vec![tau0; k];
    let total = tau0 * k as f64;

    let p_max = ctx.collection_price_bounds.max;
    let collection_price = if p_max.is_finite() && p_max < 1e100 {
        p_max
    } else {
        ctx.cost_as()
            .iter()
            .zip(ctx.cost_bs())
            .map(|(&a, &b)| a * tau0 + b)
            .fold(0.0, f64::max)
    };

    // Zero-profit service price for the platform (Ω is linear in p^J).
    let break_even = collection_price + ctx.platform_cost.cost(total) / total;
    let service_price = ctx.service_price_bounds.clamp(break_even);

    let profits = profits_at(ctx, service_price, collection_price, &sensing_times);
    StackelbergSolution {
        service_price,
        collection_price,
        seller_ids: ctx.seller_ids().to_vec(),
        sensing_times,
        profits,
        aggregates: Aggregates::from_context(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SelectedSeller;
    use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, SellerId, ValuationParams};

    fn ctx(p_max: f64) -> GameContext {
        let sellers = (0..3)
            .map(|i| {
                SelectedSeller::new(
                    SellerId(i),
                    0.5,
                    SellerCostParams {
                        a: 0.2 + 0.1 * i as f64,
                        b: 0.3,
                    },
                )
            })
            .collect();
        GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::new(0.0, p_max).unwrap(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap()
    }

    #[test]
    fn uses_p_max_when_bounded() {
        let s = initial_round_strategy(&ctx(5.0), 1.0);
        assert_eq!(s.collection_price, 5.0);
        assert_eq!(s.sensing_times, vec![1.0; 3]);
    }

    #[test]
    fn platform_profit_is_break_even() {
        let s = initial_round_strategy(&ctx(5.0), 1.0);
        assert!(
            s.profits.platform.abs() < 1e-9,
            "break-even pricing: Ω = {}",
            s.profits.platform
        );
    }

    #[test]
    fn sellers_profit_at_p_max() {
        // p_max = 5 ≫ marginal cost at τ⁰ = 1 ⇒ all sellers profit.
        let s = initial_round_strategy(&ctx(5.0), 1.0);
        for &psi in &s.profits.sellers {
            assert!(psi > 0.0);
        }
    }

    #[test]
    fn unbounded_price_falls_back_to_cost_cover() {
        let c = GameContext::new(
            vec![SelectedSeller::new(
                SellerId(0),
                0.5,
                SellerCostParams { a: 0.4, b: 0.3 },
            )],
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap();
        let s = initial_round_strategy(&c, 2.0);
        // p = a·τ⁰ + b = 0.4·2 + 0.3 = 1.1
        assert!((s.collection_price - 1.1).abs() < 1e-12);
        assert!(s.profits.sellers[0] >= 0.0);
    }

    #[test]
    fn paper_example_prices() {
        // Sec. III-D: 3 sellers, τ⁰ = 1, p_max = 5 ⇒ p¹* = 5 and
        // p^{J,1*} ensures Ω = 0. With θ, λ such that
        // C^J(3) = θ·9 + λ·3, p^J = 5 + (θ·9 + λ·3)/3. The paper reports
        // p^{J,1*} = 7.5 which corresponds to θ·3 + λ = 2.5
        // (e.g. θ = 0.5, λ = 1).
        let sellers = (0..3)
            .map(|i| SelectedSeller::new(SellerId(i), 0.5, SellerCostParams { a: 0.2, b: 0.3 }))
            .collect();
        let c = GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.5,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::new(0.0, 5.0).unwrap(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap();
        let s = initial_round_strategy(&c, 1.0);
        assert_eq!(s.collection_price, 5.0);
        assert!((s.service_price - 7.5).abs() < 1e-12);
    }
}
