//! Derivative-free scalar maximization.
//!
//! The closed-form best responses of Theorems 14–16 are cross-validated
//! against this independent golden-section maximizer in the unit tests and
//! in the `equilibrium_closed_vs_numeric` ablation bench. It is also used
//! for profit functions whose optimum the paper does not derive (e.g. the
//! consumer profit as a raw function of `p^J` when bounds are active).

/// Result of a scalar maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maximum {
    /// The maximizing argument.
    pub argmax: f64,
    /// The function value at [`Maximum::argmax`].
    pub value: f64,
}

/// Golden-section search for the maximum of a *unimodal* `f` on `[lo, hi]`.
///
/// Converges linearly with ratio `1/φ ≈ 0.618`; with `tol = 1e-9` and a
/// unit-length interval this takes ~45 evaluations. For non-unimodal `f`
/// the result is a local maximum; callers that need the global optimum on a
/// multi-modal profit (Fig. 3 of the paper) should use
/// [`grid_then_golden`].
///
/// # Panics
/// Panics if `lo > hi` or either bound is not finite.
pub fn golden_section_max<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, tol: f64) -> Maximum {
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    assert!(lo <= hi, "lo must be <= hi");
    const INV_PHI: f64 = 0.618_033_988_749_894_8; // (√5 − 1) / 2
    const INV_PHI2: f64 = 0.381_966_011_250_105_2; // 1 − 1/φ

    if hi - lo < tol {
        let mid = 0.5 * (lo + hi);
        return Maximum {
            argmax: mid,
            value: f(mid),
        };
    }

    let mut a = lo;
    let mut b = hi;
    let mut c = a + INV_PHI2 * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);

    while b - a > tol {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = a + INV_PHI2 * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let argmax = 0.5 * (a + b);
    Maximum {
        argmax,
        value: f(argmax),
    }
}

/// Global maximization of a possibly multi-modal scalar function: evaluate
/// `f` on a uniform grid of `grid_points`, then refine around the best grid
/// cell with golden-section search.
///
/// The consumer profit `Φ(Υ)` analysed in Theorem 16 has two stationary
/// points (Fig. 3); a ~1000-point grid separates them reliably for the
/// parameter ranges of the paper.
///
/// # Panics
/// Panics if `grid_points < 2` or bounds are not finite / ordered.
pub fn grid_then_golden<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    grid_points: usize,
    tol: f64,
) -> Maximum {
    assert!(grid_points >= 2, "need at least two grid points");
    assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
    let step = (hi - lo) / (grid_points - 1) as f64;
    let mut best_i = 0;
    let mut best_v = f64::NEG_INFINITY;
    for i in 0..grid_points {
        let x = lo + step * i as f64;
        let v = f(x);
        if v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    let a = lo + step * best_i.saturating_sub(1) as f64;
    let b = (lo + step * (best_i + 1) as f64).min(hi);
    golden_section_max(f, a, b, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_parabola_peak() {
        let m = golden_section_max(|x| -(x - 3.0) * (x - 3.0) + 7.0, 0.0, 10.0, 1e-9);
        assert!((m.argmax - 3.0).abs() < 1e-6);
        assert!((m.value - 7.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_maximum_is_found() {
        // Monotone increasing: the max sits at the right edge.
        let m = golden_section_max(|x| x, 0.0, 5.0, 1e-9);
        assert!((m.argmax - 5.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_interval() {
        let m = golden_section_max(|x| x * x, 2.0, 2.0, 1e-9);
        assert_eq!(m.argmax, 2.0);
        assert_eq!(m.value, 4.0);
    }

    #[test]
    fn log_linear_profit_shape() {
        // ω ln(1+x) − x peaks at x = ω − 1.
        let omega = 50.0;
        let m = golden_section_max(|x| omega * (1.0 + x).ln() - x, 0.0, 100.0, 1e-10);
        assert!((m.argmax - 49.0).abs() < 1e-5, "argmax {}", m.argmax);
    }

    #[test]
    fn grid_then_golden_escapes_local_max() {
        // Two humps: local max near x=1 (height 1), global near x=4 (height 2).
        let f = |x: f64| {
            let h1 = (-(x - 1.0) * (x - 1.0) / 0.1).exp();
            let h2 = 2.0 * (-(x - 4.0) * (x - 4.0) / 0.1).exp();
            h1 + h2
        };
        let m = grid_then_golden(f, 0.0, 5.0, 501, 1e-10);
        assert!((m.argmax - 4.0).abs() < 1e-4, "argmax {}", m.argmax);
        assert!((m.value - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "lo must be <= hi")]
    fn rejects_inverted_bounds() {
        let _ = golden_section_max(|x| x, 1.0, 0.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "bounds must be finite")]
    fn rejects_infinite_bounds() {
        let _ = golden_section_max(|x| x, 0.0, f64::INFINITY, 1e-9);
    }
}
