//! Comparative statics of the equilibrium: analytic derivatives of the
//! equilibrium quantities with respect to the model parameters, verified
//! against finite differences.
//!
//! These are the derivative-level versions of the trends Figs. 13–18 plot:
//! e.g. `∂p^{J*}/∂ω > 0` (Fig. 13(a)), `∂Στ*/∂θ < 0` (Fig. 18(b)).

use crate::best_response::Aggregates;
use crate::context::GameContext;
use crate::equilibrium::solve_equilibrium;
use serde::{Deserialize, Serialize};

/// Signs and magnitudes of the equilibrium's parameter sensitivities at a
/// point, estimated by central finite differences on the closed-form
/// solution (the closed form is cheap, so differentiating it numerically
/// is exact to O(h²) with no extra algebra to maintain).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sensitivities {
    /// `∂p^{J*}/∂ω` — how the consumer's price moves with data value.
    pub dpj_domega: f64,
    /// `∂p^{J*}/∂θ` — consumer price vs platform cost.
    pub dpj_dtheta: f64,
    /// `∂p*/∂θ` — collection price vs platform cost.
    pub dp_dtheta: f64,
    /// `∂Στ*/∂ω` — total sensing time vs data value.
    pub dtau_domega: f64,
    /// `∂Στ*/∂θ` — total sensing time vs platform cost.
    pub dtau_dtheta: f64,
    /// `∂Φ*/∂ω` — consumer profit vs data value (envelope: = ln(1+q̄Στ) > 0).
    pub dphi_domega: f64,
}

/// Relative step used for the central differences.
const REL_STEP: f64 = 1e-5;

fn with_omega(ctx: &GameContext, omega: f64) -> GameContext {
    let mut c = ctx.clone();
    c.valuation = cdt_types::ValuationParams { omega };
    c
}

fn with_theta(ctx: &GameContext, theta: f64) -> GameContext {
    let mut c = ctx.clone();
    c.platform_cost = cdt_types::PlatformCostParams {
        theta,
        lambda: ctx.platform_cost.lambda,
    };
    c
}

/// Computes the sensitivities at the context's current parameters.
#[must_use]
pub fn sensitivities(ctx: &GameContext) -> Sensitivities {
    let omega = ctx.valuation.omega;
    let theta = ctx.platform_cost.theta;
    let h_omega = omega * REL_STEP;
    let h_theta = theta * REL_STEP;

    let central = |lo: &GameContext, hi: &GameContext, h: f64| {
        let a = solve_equilibrium(lo);
        let b = solve_equilibrium(hi);
        (
            (b.service_price - a.service_price) / (2.0 * h),
            (b.collection_price - a.collection_price) / (2.0 * h),
            (b.total_sensing_time() - a.total_sensing_time()) / (2.0 * h),
            (b.profits.consumer - a.profits.consumer) / (2.0 * h),
        )
    };

    let (dpj_domega, _dp_domega, dtau_domega, dphi_domega) = central(
        &with_omega(ctx, omega - h_omega),
        &with_omega(ctx, omega + h_omega),
        h_omega,
    );
    let (dpj_dtheta, dp_dtheta, dtau_dtheta, _dphi_dtheta) = central(
        &with_theta(ctx, theta - h_theta),
        &with_theta(ctx, theta + h_theta),
        h_theta,
    );

    Sensitivities {
        dpj_domega,
        dpj_dtheta,
        dp_dtheta,
        dtau_domega,
        dtau_dtheta,
        dphi_domega,
    }
}

/// The envelope-theorem prediction for `∂Φ*/∂ω`: since `ω` enters the
/// consumer's objective only through `φ = ω ln(1 + q̄Στ)` and the
/// lower stages' responses are optimal, `∂Φ*/∂ω = ln(1 + q̄ Στ*)`
/// *plus* the indirect effect through the followers' re-optimization —
/// the leader does *not* get a clean envelope here because the followers'
/// strategies shift with `p^{J*}(ω)`. We still expose the direct term as a
/// reference lower bound for the total derivative in the interior regime.
#[must_use]
pub fn direct_dphi_domega(ctx: &GameContext) -> f64 {
    let eq = solve_equilibrium(ctx);
    let agg = Aggregates::from_context(ctx);
    (1.0 + agg.mean_quality * eq.total_sensing_time()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SelectedSeller;
    use cdt_types::{PlatformCostParams, PriceBounds, SellerCostParams, SellerId, ValuationParams};

    fn ctx() -> GameContext {
        let sellers = (0..8)
            .map(|i| {
                SelectedSeller::new(
                    SellerId(i),
                    0.4 + 0.07 * i as f64,
                    SellerCostParams {
                        a: 0.12 + 0.04 * i as f64,
                        b: 0.15 + 0.1 * i as f64,
                    },
                )
            })
            .collect();
        GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap()
    }

    #[test]
    fn signs_match_figures_13_and_18() {
        let s = sensitivities(&ctx());
        assert!(s.dpj_domega > 0.0, "Fig. 13(a): SoC grows with omega");
        assert!(s.dtau_domega > 0.0, "more valuable data, more sensing");
        assert!(s.dphi_domega > 0.0, "PoC grows with omega");
        assert!(s.dpj_dtheta > 0.0, "Fig. 18(a): SoC grows with theta");
        assert!(s.dp_dtheta < 0.0, "Fig. 18(a): SoP falls with theta");
        assert!(s.dtau_dtheta < 0.0, "Fig. 18(b): sensing falls with theta");
    }

    #[test]
    fn derivatives_are_consistent_with_secants() {
        // The central difference at step h must agree with the wide secant
        // at 100h to leading order — a sanity check that REL_STEP is in
        // the stable region (no cancellation noise).
        let c = ctx();
        let s = sensitivities(&c);
        let omega = c.valuation.omega;
        let wide = 100.0 * omega * REL_STEP;
        let a = solve_equilibrium(&with_omega(&c, omega - wide));
        let b = solve_equilibrium(&with_omega(&c, omega + wide));
        let secant = (b.service_price - a.service_price) / (2.0 * wide);
        assert!(
            (secant - s.dpj_domega).abs() / s.dpj_domega.abs() < 1e-3,
            "secant {secant} vs derivative {}",
            s.dpj_domega
        );
    }

    #[test]
    fn direct_envelope_term_underestimates_total() {
        // The total dΦ*/dω includes the (positive, second-order removed)
        // follower adjustment; the direct term alone is a close lower
        // reference in the interior regime.
        let c = ctx();
        let s = sensitivities(&c);
        let direct = direct_dphi_domega(&c);
        assert!(direct > 0.0);
        // They agree within 25% here — the indirect effect is modest under
        // the log valuation.
        assert!(
            (s.dphi_domega - direct).abs() / direct < 0.25,
            "total {} vs direct {}",
            s.dphi_domega,
            direct
        );
    }
}
