//! Closed-form best responses: Theorems 14–16 of the paper.
//!
//! Backward induction order: Stage 3 (sellers) → Stage 2 (platform) →
//! Stage 1 (consumer). Each stage's formula assumes the stages below play
//! their own best responses.
//!
//! ### Paper errata we resolve (verified against a numeric maximizer)
//!
//! 1. **`B`'s definition.** Theorem 15 defines `B = Σ b_i / (2 a_i)` while
//!    the statement of Theorem 16 re-lists `B = Σ b_i / (2 q̄_i a_i)`.
//!    Expanding Stage 3, `Σ τ_i* = Σ (p − q̄_i b_i)/(2 q̄_i a_i)
//!    = p·A − Σ b_i/(2 a_i)`, so `B = Σ b_i / (2 a_i)` is the consistent
//!    definition and is used throughout.
//! 2. **The sign of `B` in Theorem 15.** Differentiating
//!    `Ω(p) = (p^J − p)(pA − B) − θ(pA − B)² − λ(pA − B)` gives the unique
//!    stationary point
//!    `p* = (p^J A − (λA − 2θBA − B)) / (2A(1+θA))` — the final `B` enters
//!    with a *plus* in the numerator, where the paper prints a minus
//!    (`… − (λA − 2θBA + B) …`). The golden-section cross-check in this
//!    module's tests pins the correct sign: the printed formula misses the
//!    true maximizer by exactly `B / (A(1+θA))`.
//! 3. **`Λ` follows the corrected Theorem 15.** Substituting the corrected
//!    `p*` into `Στ = p*A − B` yields `Στ = Θ p^J − Λ` with
//!    `Λ = (λA + B) / (2(1+θA))` (the paper's printed
//!    `Λ = (λA − 2θBA + B)/(2(1+θA)) + B = (λA + 3B)/(2(1+θA))` is the
//!    image of its own typo'd Theorem 15). Theorem 16's expression for
//!    `p^{J*}` in terms of `Θ, Λ` is unchanged — its derivation only uses
//!    the structure `Φ(Υ) = ω ln(1 − q̄Υ) + Υ(Λ−Υ)/Θ`, which holds for the
//!    corrected `Λ`.

use crate::context::GameContext;
use cdt_types::SellerCostParams;
use serde::{Deserialize, Serialize};

/// The aggregate statistics of the selected-seller set that appear in
/// Theorems 15–16.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregates {
    /// `A = Σ_i 1 / (2 q̄_i a_i)` — the price-sensitivity of total sensing time.
    pub a: f64,
    /// `B = Σ_i b_i / (2 a_i)` — the fixed offset of total sensing time.
    pub b: f64,
    /// `q̄` — mean estimated quality of the selected set.
    pub mean_quality: f64,
    /// `Θ = A / (2 (1 + θA))` (Theorem 16).
    pub theta_cap: f64,
    /// `Λ = (λA + B) / (2(1 + θA))` (Theorem 16, with the corrected
    /// Theorem 15 substituted — see the module-level errata note).
    pub lambda_cap: f64,
}

impl Aggregates {
    /// Computes the aggregates for a game context.
    ///
    /// One fused pass over the context's parallel flat columns accumulates
    /// `A`, `B`, and `Σ q̄_i` together. By default each accumulator keeps
    /// its own left-to-right summation order, so the results are
    /// bit-identical to separate per-seller loops; under the process-wide
    /// fast-math mode (see [`cdt_types::lanes`]) the three accumulators
    /// reassociate at the configured lane width — deterministic per width,
    /// with the usual reassociation divergence bound.
    #[must_use]
    pub fn from_context(ctx: &GameContext) -> Self {
        Self::from_context_with(
            ctx,
            cdt_types::lanes::lane_width(),
            cdt_types::lanes::fast_math(),
        )
    }

    /// As [`Aggregates::from_context`], at an explicit `(width, fast_math)`
    /// configuration — the testable kernel that never reads process globals.
    #[must_use]
    pub fn from_context_with(ctx: &GameContext, width: usize, fast_math: bool) -> Self {
        let q = ctx.qualities();
        let ca = ctx.cost_as();
        let cb = ctx.cost_bs();
        let (a, b, q_sum) = if fast_math {
            match width {
                2 => fused_aggregate_sums::<2>(q, ca, cb),
                4 => fused_aggregate_sums::<4>(q, ca, cb),
                8 => fused_aggregate_sums::<8>(q, ca, cb),
                _ => fused_aggregate_sums_sequential(q, ca, cb),
            }
        } else {
            fused_aggregate_sums_sequential(q, ca, cb)
        };
        let theta = ctx.platform_cost.theta;
        let lambda = ctx.platform_cost.lambda;
        let denom = 2.0 * (1.0 + theta * a);
        let theta_cap = a / denom;
        let lambda_cap = (lambda * a + b) / denom;
        Self {
            a,
            b,
            mean_quality: q_sum / ctx.k() as f64,
            theta_cap,
            lambda_cap,
        }
    }

    /// Total *unclamped* sensing time `Σ τ_i* = p·A − B` the sellers would
    /// contribute at collection price `p` (can be negative for very low
    /// prices; the per-seller response clamps at zero).
    #[must_use]
    pub fn total_sensing_time_at(&self, collection_price: f64) -> f64 {
        collection_price * self.a - self.b
    }
}

/// The sequential fused `A` / `B` / `Σ q̄` pass — the bit-identity
/// reference (each accumulator sums strictly left to right).
fn fused_aggregate_sums_sequential(q: &[f64], ca: &[f64], cb: &[f64]) -> (f64, f64, f64) {
    let mut a = 0.0;
    let mut b = 0.0;
    let mut q_sum = 0.0;
    for ((&q, &ca), &cb) in q.iter().zip(ca).zip(cb) {
        a += 1.0 / (2.0 * q * ca);
        b += cb / (2.0 * ca);
        q_sum += q;
    }
    (a, b, q_sum)
}

/// The `W`-lane fused aggregate pass (fast-math only): each of the three
/// sums keeps `W` independent accumulator lanes over the full chunks, then
/// folds tail-first in the [`cdt_types::lanes::sum_reassociated`]
/// convention. Deterministic for a fixed `(W, input)`; diverges from the
/// sequential reference only once `k ≥ W`.
#[allow(clippy::needless_range_loop)] // `0..W` indexing keeps the W-lane shape visible to the autovectorizer
fn fused_aggregate_sums<const W: usize>(q: &[f64], ca: &[f64], cb: &[f64]) -> (f64, f64, f64) {
    let mut acc_a = [0.0f64; W];
    let mut acc_b = [0.0f64; W];
    let mut acc_q = [0.0f64; W];
    let mut q_chunks = q.chunks_exact(W);
    let mut a_chunks = ca.chunks_exact(W);
    let mut b_chunks = cb.chunks_exact(W);
    for ((qq, aa), bb) in (&mut q_chunks).zip(&mut a_chunks).zip(&mut b_chunks) {
        for j in 0..W {
            acc_a[j] += 1.0 / (2.0 * qq[j] * aa[j]);
            acc_b[j] += bb[j] / (2.0 * aa[j]);
            acc_q[j] += qq[j];
        }
    }
    let (mut a, mut b, mut q_sum) = fused_aggregate_sums_sequential(
        q_chunks.remainder(),
        a_chunks.remainder(),
        b_chunks.remainder(),
    );
    for j in 0..W {
        a += acc_a[j];
        b += acc_b[j];
        q_sum += acc_q[j];
    }
    (a, b, q_sum)
}

/// **Theorem 14 (Stage 3).** A seller's optimal sensing time at collection
/// price `p`:
///
/// `τ_i* = (p − q̄_i b_i) / (2 q̄_i a_i)`,
///
/// clamped into the feasible region `[0, max_sensing_time]` (Def. 3 requires
/// `τ ∈ [0, T]`; the unclamped formula is the unique stationary point of the
/// strictly concave `Ψ_i`, so clamping preserves optimality over the
/// interval).
#[must_use]
pub fn seller_best_response(
    collection_price: f64,
    quality: f64,
    cost: SellerCostParams,
    max_sensing_time: f64,
) -> f64 {
    let unclamped = (collection_price - quality * cost.b) / (2.0 * quality * cost.a);
    unclamped.clamp(0.0, max_sensing_time)
}

/// Stage-3 best responses for every selected seller, in selection order.
#[must_use]
pub fn all_seller_best_responses(ctx: &GameContext, collection_price: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(ctx.k());
    all_seller_best_responses_into(ctx, collection_price, &mut out);
    out
}

/// As [`all_seller_best_responses`], but writes into `out`, reusing its
/// capacity so the per-round equilibrium solve does not allocate.
pub fn all_seller_best_responses_into(
    ctx: &GameContext,
    collection_price: f64,
    out: &mut Vec<f64>,
) {
    all_seller_best_responses_width_into(
        ctx,
        collection_price,
        cdt_types::lanes::lane_width(),
        out,
    );
}

/// As [`all_seller_best_responses_into`], at an explicit lane `width`.
///
/// The Theorem 14 fill is **elementwise** (one `τ_i*` per seller, same
/// clamp-and-divide expression tree as [`seller_best_response`]), so every
/// width is bit-identical; the width only shapes the loop for the
/// autovectorizer. This variant exists so tests can pin that identity
/// without touching the process-wide lane configuration.
pub fn all_seller_best_responses_width_into(
    ctx: &GameContext,
    collection_price: f64,
    width: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.resize(ctx.k(), 0.0);
    let t = ctx.max_sensing_time;
    let (q, ca, cb) = (ctx.qualities(), ctx.cost_as(), ctx.cost_bs());
    match width {
        2 => tau_lane_fill::<2>(q, ca, cb, collection_price, t, out),
        4 => tau_lane_fill::<4>(q, ca, cb, collection_price, t, out),
        8 => tau_lane_fill::<8>(q, ca, cb, collection_price, t, out),
        _ => tau_lane_fill::<1>(q, ca, cb, collection_price, t, out),
    }
}

/// The Stage-3 fill at compile-time width `W`: `W` sellers per chunk
/// iteration, each `((p − q·b) / (2·q·a)).clamp(0, T)` — exactly the
/// [`seller_best_response`] expression tree, so the result is
/// width-invariant bit-for-bit.
#[allow(clippy::needless_range_loop)] // `0..W` indexing keeps the W-lane shape visible to the autovectorizer
fn tau_lane_fill<const W: usize>(
    q: &[f64],
    ca: &[f64],
    cb: &[f64],
    p: f64,
    t: f64,
    out: &mut [f64],
) {
    debug_assert_eq!(q.len(), out.len());
    let mut q_chunks = q.chunks_exact(W);
    let mut a_chunks = ca.chunks_exact(W);
    let mut b_chunks = cb.chunks_exact(W);
    let o_chunks = out.chunks_exact_mut(W);
    for (((qq, aa), bb), o) in (&mut q_chunks)
        .zip(&mut a_chunks)
        .zip(&mut b_chunks)
        .zip(o_chunks)
    {
        for j in 0..W {
            o[j] = ((p - qq[j] * bb[j]) / (2.0 * qq[j] * aa[j])).clamp(0.0, t);
        }
    }
    let done = q.len() - q_chunks.remainder().len();
    for i in done..q.len() {
        out[i] = seller_best_response(p, q[i], SellerCostParams { a: ca[i], b: cb[i] }, t);
    }
}

/// **Theorem 15 (Stage 2), sign-corrected.** The platform's optimal
/// collection price given the consumer's service price `p^J`:
///
/// `p* = (p^J A − (λA − 2θBA − B)) / (2A(1 + θA))`
///     `= (p^J A − λA + 2θBA + B) / (2A(1 + θA))`,
///
/// clamped into `[p_min, p_max]` (`Ω` is strictly concave in `p`, so the
/// clamp preserves optimality over the interval). See the module-level
/// errata note for why the last `B` enters with `+` rather than the
/// paper's printed `−`.
#[must_use]
pub fn platform_best_response(ctx: &GameContext, service_price: f64, agg: &Aggregates) -> f64 {
    let theta = ctx.platform_cost.theta;
    let lambda = ctx.platform_cost.lambda;
    let numer = service_price * agg.a - (lambda * agg.a - 2.0 * theta * agg.b * agg.a - agg.b);
    let unclamped = numer / (2.0 * agg.a * (1.0 + theta * agg.a));
    ctx.collection_price_bounds.clamp(unclamped)
}

/// **Theorem 16 (Stage 1).** The consumer's optimal service price:
///
/// `p^{J*} = (3 q̄ Λ + sqrt((q̄Λ − 2)² + 8 Θ ω q̄²) − 2) / (4 q̄ Θ)`,
///
/// clamped into `[p^J_min, p^J_max]`.
///
/// The formula selects the root `Υ₁` of the derivative numerator
/// `2q̄Υ² − (q̄Λ+2)Υ + (Λ − Θωq̄) = 0` with `Υ = Λ − Θ p^J = −Στ`; the
/// paper's monotonicity analysis (Fig. 3) shows `Υ₁` is the unique
/// maximizer on the feasible half-line `Υ < 0`.
#[must_use]
pub fn consumer_best_response(ctx: &GameContext, agg: &Aggregates) -> f64 {
    let q = agg.mean_quality;
    let lam = agg.lambda_cap;
    let th = agg.theta_cap;
    let omega = ctx.valuation.omega;
    let disc = (q * lam - 2.0) * (q * lam - 2.0) + 8.0 * th * omega * q * q;
    let unclamped = (3.0 * q * lam + disc.sqrt() - 2.0) / (4.0 * q * th);
    ctx.service_price_bounds.clamp(unclamped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SelectedSeller;
    use crate::numeric::{golden_section_max, grid_then_golden};
    use crate::profit::{consumer_profit, platform_profit, seller_profit};
    use cdt_types::{PlatformCostParams, PriceBounds, SellerId, ValuationParams};

    fn make_ctx(qualities: &[f64]) -> GameContext {
        let sellers = qualities
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                SelectedSeller::new(
                    SellerId(i),
                    q,
                    SellerCostParams {
                        a: 0.15 + 0.05 * i as f64,
                        b: 0.2 + 0.1 * i as f64,
                    },
                )
            })
            .collect();
        GameContext::new(
            sellers,
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 1000.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap()
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let ctx = make_ctx(&[0.5, 0.8]);
        let agg = Aggregates::from_context(&ctx);
        // A = 1/(2·0.5·0.15) + 1/(2·0.8·0.20)
        let a = 1.0 / 0.15 + 1.0 / 0.32;
        // B = 0.2/(2·0.15) + 0.3/(2·0.20)
        let b = 0.2 / 0.3 + 0.3 / 0.4;
        assert!((agg.a - a).abs() < 1e-12);
        assert!((agg.b - b).abs() < 1e-12);
        assert!((agg.mean_quality - 0.65).abs() < 1e-12);
    }

    #[test]
    fn theorem14_matches_numeric_maximizer() {
        let cost = SellerCostParams { a: 0.3, b: 0.5 };
        for (p, q) in [(1.0, 0.6), (2.5, 0.9), (0.8, 0.3)] {
            let closed = seller_best_response(p, q, cost, f64::MAX);
            let numeric = golden_section_max(|t| seller_profit(p, t, q, cost), 0.0, 100.0, 1e-10);
            assert!(
                (closed - numeric.argmax).abs() < 1e-5,
                "p={p} q={q}: closed {closed} vs numeric {}",
                numeric.argmax
            );
        }
    }

    #[test]
    fn theorem14_clamps_to_zero_when_price_below_reservation() {
        // p < q·b ⇒ negative stationary point ⇒ the seller opts out (τ = 0).
        let cost = SellerCostParams { a: 0.3, b: 2.0 };
        assert_eq!(seller_best_response(0.1, 0.9, cost, f64::MAX), 0.0);
    }

    #[test]
    fn theorem14_clamps_to_round_duration() {
        let cost = SellerCostParams { a: 0.01, b: 0.0 };
        // Huge price, tiny cost: unclamped optimum far above T = 2.
        assert_eq!(seller_best_response(100.0, 0.5, cost, 2.0), 2.0);
    }

    #[test]
    fn theorem15_matches_numeric_maximizer() {
        let ctx = make_ctx(&[0.5, 0.8, 0.7]);
        let agg = Aggregates::from_context(&ctx);
        for pj in [5.0, 10.0, 25.0] {
            let closed = platform_best_response(&ctx, pj, &agg);
            let numeric = golden_section_max(
                |p| {
                    let taus = all_seller_best_responses(&ctx, p);
                    platform_profit(&ctx, pj, p, &taus)
                },
                0.0,
                pj,
                1e-10,
            );
            assert!(
                (closed - numeric.argmax).abs() < 1e-4,
                "pJ={pj}: closed {closed} vs numeric {}",
                numeric.argmax
            );
        }
    }

    #[test]
    fn theorem16_matches_numeric_maximizer() {
        let ctx = make_ctx(&[0.5, 0.8, 0.7, 0.6]);
        let agg = Aggregates::from_context(&ctx);
        let closed = consumer_best_response(&ctx, &agg);
        let numeric = grid_then_golden(
            |pj| {
                let p = platform_best_response(&ctx, pj, &agg);
                let taus = all_seller_best_responses(&ctx, p);
                consumer_profit(&ctx, pj, &taus)
            },
            0.0,
            10.0 * closed,
            4001,
            1e-10,
        );
        assert!(
            (closed - numeric.argmax).abs() / closed < 1e-3,
            "closed {closed} vs numeric {}",
            numeric.argmax
        );
    }

    #[test]
    fn theorem16_clamps_to_bounds() {
        let mut ctx = make_ctx(&[0.5, 0.8]);
        let agg = Aggregates::from_context(&ctx);
        let interior = consumer_best_response(&ctx, &agg);
        ctx.service_price_bounds = PriceBounds::new(0.0, interior / 2.0).unwrap();
        assert_eq!(consumer_best_response(&ctx, &agg), interior / 2.0);
        ctx.service_price_bounds = PriceBounds::new(interior * 2.0, interior * 3.0).unwrap();
        assert_eq!(consumer_best_response(&ctx, &agg), interior * 2.0);
    }

    #[test]
    fn total_sensing_time_linear_in_price() {
        let ctx = make_ctx(&[0.5, 0.8]);
        let agg = Aggregates::from_context(&ctx);
        let p = 3.0;
        let taus = all_seller_best_responses(&ctx, p);
        let total: f64 = taus.iter().sum();
        assert!((agg.total_sensing_time_at(p) - total).abs() < 1e-9);
    }

    #[test]
    fn platform_response_increases_with_service_price() {
        let ctx = make_ctx(&[0.5, 0.8, 0.6]);
        let agg = Aggregates::from_context(&ctx);
        let p1 = platform_best_response(&ctx, 5.0, &agg);
        let p2 = platform_best_response(&ctx, 10.0, &agg);
        assert!(p2 > p1, "platform passes higher pJ through to sellers");
    }

    #[test]
    fn tau_fill_is_bit_identical_at_every_lane_width() {
        // 11 sellers: ragged tails at widths 2, 4, and 8. The fill is
        // elementwise, so every width must reproduce the width-1 bits,
        // including clamped sellers at both ends.
        let qualities: Vec<f64> = (0..11).map(|i| 0.15 + 0.07 * i as f64).collect();
        let ctx = make_ctx(&qualities);
        for p in [0.05, 1.0, 7.5] {
            let mut reference = Vec::new();
            all_seller_best_responses_width_into(&ctx, p, 1, &mut reference);
            let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            for w in [2usize, 4, 8] {
                let mut out = Vec::new();
                all_seller_best_responses_width_into(&ctx, p, w, &mut out);
                let out_bits: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
                assert_eq!(out_bits, ref_bits, "p={p} width={w}");
            }
            // And per-seller agreement with the Theorem 14 scalar formula.
            for (i, &tau) in reference.iter().enumerate() {
                let expect = seller_best_response(
                    p,
                    qualities[i],
                    SellerCostParams {
                        a: 0.15 + 0.05 * i as f64,
                        b: 0.2 + 0.1 * i as f64,
                    },
                    f64::MAX,
                );
                assert_eq!(tau.to_bits(), expect.to_bits(), "seller {i}");
            }
        }
    }

    #[test]
    fn deterministic_aggregates_are_width_invariant() {
        // fast_math = false ⇒ the fused pass stays sequential at any width.
        let qualities: Vec<f64> = (0..13).map(|i| 0.2 + 0.05 * i as f64).collect();
        let ctx = make_ctx(&qualities);
        let reference = Aggregates::from_context_with(&ctx, 1, false);
        for w in [2usize, 4, 8] {
            let agg = Aggregates::from_context_with(&ctx, w, false);
            assert_eq!(agg.a.to_bits(), reference.a.to_bits(), "width {w}");
            assert_eq!(agg.b.to_bits(), reference.b.to_bits(), "width {w}");
            assert_eq!(
                agg.lambda_cap.to_bits(),
                reference.lambda_cap.to_bits(),
                "width {w}"
            );
        }
    }

    #[test]
    fn fast_math_aggregates_diverge_within_bound_and_deterministically() {
        // k = 13 ≥ every width ⇒ the reassociated fold actually reorders.
        let qualities: Vec<f64> = (0..13).map(|i| 0.2 + 0.05 * i as f64).collect();
        let ctx = make_ctx(&qualities);
        let reference = Aggregates::from_context_with(&ctx, 1, false);
        for w in [2usize, 4, 8] {
            let fast = Aggregates::from_context_with(&ctx, w, true);
            let again = Aggregates::from_context_with(&ctx, w, true);
            assert_eq!(fast.a.to_bits(), again.a.to_bits(), "width {w}");
            assert_eq!(fast.b.to_bits(), again.b.to_bits(), "width {w}");
            // Relative reassociation drift stays near machine epsilon.
            for (f, r) in [
                (fast.a, reference.a),
                (fast.b, reference.b),
                (fast.mean_quality, reference.mean_quality),
            ] {
                assert!(
                    (f - r).abs() <= 1e-12 * r.abs().max(1.0),
                    "width {w}: {f} vs {r}"
                );
            }
        }
    }

    #[test]
    fn higher_omega_raises_consumer_price() {
        let lo = make_ctx(&[0.5, 0.8]);
        let mut hi = lo.clone();
        hi.valuation = ValuationParams { omega: 2000.0 };
        let pj_lo = consumer_best_response(&lo, &Aggregates::from_context(&lo));
        let pj_hi = consumer_best_response(&hi, &Aggregates::from_context(&hi));
        assert!(pj_hi > pj_lo, "more valuable data ⇒ higher offered price");
    }
}
