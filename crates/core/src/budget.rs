//! Budget-constrained trading — an extension of the paper's time-budgeted
//! job (`N` rounds) to a *monetary* budget.
//!
//! The paper's consumer buys `N` rounds outright; real procurement often
//! fixes a spend ceiling instead. [`BudgetedCmabHs`] wraps the mechanism
//! and stops as soon as the next round's payment would exceed the
//! remaining budget, giving the consumer a hard spend guarantee while the
//! round-level behaviour (UCB selection + Stackelberg pricing) is
//! unchanged — the related budgeted-CMAB line of work the paper cites
//! (`[25]`, `[33]`–`[35]`) motivates exactly this stopping rule.

use crate::ledger::{LedgerMode, TradingLedger};
use crate::mechanism::CmabHs;
use crate::round::RoundOutcome;
use cdt_quality::QualityObserver;
use cdt_types::{Result, SystemConfig};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Why a budgeted run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// All `N` configured rounds ran within budget.
    HorizonReached,
    /// The next round's payment would have exceeded the remaining budget.
    BudgetExhausted,
}

/// Result of a budget-constrained run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetedRun {
    /// The per-round ledger (Summary mode).
    pub ledger: TradingLedger,
    /// Total consumer spend (≤ budget).
    pub spent: f64,
    /// Why the run ended.
    pub stop_reason: StopReason,
}

/// CMAB-HS under a consumer spend ceiling.
pub struct BudgetedCmabHs {
    mechanism: CmabHs,
    budget: f64,
    spent: f64,
}

impl BudgetedCmabHs {
    /// Creates a budgeted mechanism.
    ///
    /// # Errors
    /// Propagates configuration errors; rejects a non-positive budget.
    pub fn new(config: SystemConfig, budget: f64) -> Result<Self> {
        if !(budget.is_finite() && budget > 0.0) {
            return Err(cdt_types::CdtError::invalid(
                "budget",
                budget,
                "must be finite and > 0",
            ));
        }
        Ok(Self {
            mechanism: CmabHs::new(config)?,
            budget,
            spent: 0.0,
        })
    }

    /// Remaining budget.
    #[must_use]
    pub fn remaining(&self) -> f64 {
        self.budget - self.spent
    }

    /// Runs until the horizon or the budget binds.
    ///
    /// Budget semantics: a round is *committed* before its stochastic data
    /// arrives, but its payment `p^J · Στ` is known at strategy time, so
    /// the mechanism peeks at the payment and refuses rounds it cannot
    /// afford. The consumer therefore never overspends.
    ///
    /// # Errors
    /// Propagates round-execution errors.
    pub fn run(
        &mut self,
        observer: &QualityObserver,
        rng: &mut dyn RngCore,
    ) -> Result<BudgetedRun> {
        self.run_with(observer, rng, |_| {})
    }

    /// As [`BudgetedCmabHs::run`], invoking `on_settled` for every round
    /// that actually settles within budget. The budget-rejected final
    /// round never reaches the callback — a journal written from it sees
    /// only the rounds the consumer paid for.
    ///
    /// # Errors
    /// Propagates round-execution errors.
    pub fn run_with<F: FnMut(&RoundOutcome)>(
        &mut self,
        observer: &QualityObserver,
        rng: &mut dyn RngCore,
        mut on_settled: F,
    ) -> Result<BudgetedRun> {
        let mut ledger = TradingLedger::new(LedgerMode::Summary);
        let mut stop_reason = StopReason::HorizonReached;
        while !self.mechanism.is_finished() {
            // Tentatively run the round; its payment is deterministic given
            // the estimator state, so we can roll forward and check.
            let outcome: RoundOutcome = self.mechanism.step(observer, rng)?;
            let payment = outcome.strategy.consumer_payment();
            if self.spent + payment > self.budget {
                // The round's data was collected but the consumer cannot
                // settle it; in a deployed system the platform would not
                // have dispatched it — we simply do not account it.
                stop_reason = StopReason::BudgetExhausted;
                break;
            }
            self.spent += payment;
            on_settled(&outcome);
            ledger.record(outcome);
        }
        Ok(BudgetedRun {
            ledger,
            spent: self.spent,
            stop_reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario(n: usize, seed: u64) -> (Scenario, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = Scenario::paper_defaults(12, 4, 5, n, &mut rng).unwrap();
        (s, rng)
    }

    #[test]
    fn generous_budget_reaches_horizon() {
        let (s, mut rng) = scenario(30, 1);
        let mut b = BudgetedCmabHs::new(s.config.clone(), 1e12).unwrap();
        let run = b.run(&s.observer(), &mut rng).unwrap();
        assert_eq!(run.stop_reason, StopReason::HorizonReached);
        assert_eq!(run.ledger.rounds(), 30);
        assert!(run.spent > 0.0);
    }

    #[test]
    fn tight_budget_stops_early_and_never_overspends() {
        let (s, mut rng) = scenario(500, 2);
        // First find a typical per-round payment, then set a ~10-round cap.
        let mut probe = BudgetedCmabHs::new(s.config.clone(), 1e12).unwrap();
        let full = probe.run(&s.observer(), &mut rng).unwrap();
        let per_round = full.spent / full.ledger.rounds() as f64;

        let (s2, mut rng2) = scenario(500, 2);
        let budget = per_round * 10.0;
        let mut b = BudgetedCmabHs::new(s2.config.clone(), budget).unwrap();
        let run = b.run(&s2.observer(), &mut rng2).unwrap();
        assert_eq!(run.stop_reason, StopReason::BudgetExhausted);
        assert!(
            run.spent <= budget + 1e-9,
            "overspent: {} > {budget}",
            run.spent
        );
        assert!(run.ledger.rounds() < 500);
        assert!(run.ledger.rounds() >= 2, "should afford a few rounds");
    }

    #[test]
    fn remaining_decreases_monotonically() {
        let (s, mut rng) = scenario(20, 3);
        let mut b = BudgetedCmabHs::new(s.config.clone(), 1e9).unwrap();
        let before = b.remaining();
        b.run(&s.observer(), &mut rng).unwrap();
        assert!(b.remaining() < before);
        // ulp(1e9) ≈ 1.2e-7 bounds the subtraction error at this scale.
        assert!((before - b.remaining() - b.spent).abs() < 1e-6);
    }

    #[test]
    fn settled_callback_sees_exactly_the_accounted_rounds() {
        let (s, mut rng) = scenario(500, 2);
        let mut probe = BudgetedCmabHs::new(s.config.clone(), 1e12).unwrap();
        let full = probe.run(&s.observer(), &mut rng).unwrap();
        let per_round = full.spent / full.ledger.rounds() as f64;

        let (s2, mut rng2) = scenario(500, 2);
        let mut b = BudgetedCmabHs::new(s2.config.clone(), per_round * 10.0).unwrap();
        let mut seen = Vec::new();
        let run = b
            .run_with(&s2.observer(), &mut rng2, |o| seen.push(o.round))
            .unwrap();
        assert_eq!(run.stop_reason, StopReason::BudgetExhausted);
        // The budget-rejected final round must not reach the callback.
        assert_eq!(seen.len(), run.ledger.rounds());
        for (i, round) in seen.iter().enumerate() {
            assert_eq!(round.index(), i);
        }
    }

    #[test]
    fn rejects_non_positive_budget() {
        let (s, _) = scenario(10, 4);
        assert!(BudgetedCmabHs::new(s.config.clone(), 0.0).is_err());
        assert!(BudgetedCmabHs::new(s.config.clone(), -5.0).is_err());
        assert!(BudgetedCmabHs::new(s.config, f64::INFINITY).is_err());
    }
}
