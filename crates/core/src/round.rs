//! One trading round: selection → incentive game → data collection →
//! learning (the loop body of Algorithm 1).

use cdt_bandit::SelectionPolicy;
use cdt_game::{
    initial_round_strategy, solve_equilibrium_into, GameContext, SelectedSeller,
    StackelbergSolution,
};
use cdt_obs::{
    EquilibriumEvent, NullObserver, ObservationEvent, PhaseTimer, RoundEndEvent, RoundObserver,
    SelectionEvent,
};
use cdt_quality::{ObservationMatrix, QualityObserver};
use cdt_types::{Result, Round, SellerId, SystemConfig};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::mem;

/// Everything that happened in one round of data trading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundOutcome {
    /// Which round this was.
    pub round: Round,
    /// The sellers selected this round (all `M` in round 0, `K` after).
    pub selected: Vec<SellerId>,
    /// The incentive strategy `⟨p^J, p, τ⟩` and the induced profits.
    pub strategy: StackelbergSolution,
    /// Realized revenue: the sum of all observed qualities
    /// `Σ_i Σ_l q_{i,l}^t` (Eq. 1's per-round contribution).
    pub observed_revenue: f64,
}

impl RoundOutcome {
    /// Number of sellers selected this round.
    #[must_use]
    pub fn selection_size(&self) -> usize {
        self.selected.len()
    }
}

/// Reusable buffers for the round hot path.
///
/// One round touches five growable buffers: the selection, the game-seller
/// list, the observation matrix, and the equilibrium solution's
/// sensing-time/profit vectors. A `RoundScratch` owns all of them so that
/// [`execute_round_into`] runs allocation-free after the first round —
/// essential when the evaluation loop executes `N = 10⁵` rounds per
/// (policy × replication) cell.
#[derive(Debug)]
pub struct RoundScratch {
    outcome: RoundOutcome,
    game_sellers: Vec<SelectedSeller>,
    observations: ObservationMatrix,
    /// Selection-score buffer, filled only when an enabled observer asks
    /// for the per-seller indices (never touched on the null path).
    scores: Vec<f64>,
}

impl RoundScratch {
    /// Fresh, empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self {
            outcome: RoundOutcome {
                round: Round(0),
                selected: Vec::new(),
                strategy: StackelbergSolution::empty(),
                observed_revenue: 0.0,
            },
            game_sellers: Vec::new(),
            observations: ObservationMatrix::empty(),
            scores: Vec::new(),
        }
    }

    /// The outcome written by the most recent [`execute_round_into`] call.
    #[must_use]
    pub fn outcome(&self) -> &RoundOutcome {
        &self.outcome
    }

    /// Consumes the scratch, handing out the last outcome.
    #[must_use]
    pub fn into_outcome(self) -> RoundOutcome {
        self.outcome
    }
}

impl Default for RoundScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Executes one complete round against a hidden environment:
///
/// 1. the policy selects sellers (Alg. 1 steps 2–3 / 7–10);
/// 2. the incentive strategy is determined — the fixed initial-round
///    profile in round 0 (steps 3–4), the Stackelberg equilibrium
///    otherwise (step 11);
/// 3. the selected sellers collect data at all `L` PoIs
///    ([`QualityObserver::observe_round`]);
/// 4. the policy learns from the observations (steps 5 / 12).
///
/// This free function is policy-generic so the evaluation engine can run
/// baselines (ε-first, random, optimal) through the *identical* trading
/// loop; [`crate::CmabHs`] wraps it with the paper's UCB policy.
///
/// # Errors
/// Propagates [`cdt_types::CdtError`] from game-context construction
/// (e.g. an empty selection).
pub fn execute_round(
    policy: &mut dyn SelectionPolicy,
    config: &SystemConfig,
    observer: &QualityObserver,
    round: Round,
    rng: &mut dyn RngCore,
) -> Result<RoundOutcome> {
    let mut scratch = RoundScratch::new();
    execute_round_into(policy, config, observer, round, rng, &mut scratch)?;
    Ok(scratch.into_outcome())
}

/// As [`execute_round`], but writes into `scratch`, reusing its buffers.
///
/// Draws from the RNG in exactly the same order and produces exactly the
/// same [`RoundOutcome`] as [`execute_round`]; after the first call on a
/// given `scratch` the round runs without heap allocation.
///
/// # Errors
/// Propagates [`cdt_types::CdtError`] from game-context construction
/// (e.g. an empty selection).
pub fn execute_round_into<'a>(
    policy: &mut dyn SelectionPolicy,
    config: &SystemConfig,
    observer: &QualityObserver,
    round: Round,
    rng: &mut dyn RngCore,
    scratch: &'a mut RoundScratch,
) -> Result<&'a RoundOutcome> {
    execute_round_observed_into(
        policy,
        config,
        observer,
        round,
        rng,
        scratch,
        &mut NullObserver,
    )
}

/// As [`execute_round_into`], but emits structured events to `obs` and
/// measures per-phase wall clock (selection / solve / observe).
///
/// Statically dispatched: with [`NullObserver`] (whose
/// [`RoundObserver::ENABLED`] is `false`) every event construction and
/// every clock read compiles away, leaving exactly the uninstrumented hot
/// path. Observer hooks run *between* phases and the timer re-arms after
/// each one, so hook time never pollutes phase measurements — and because
/// observers are passive (no RNG access), results are bit-identical with
/// any observer attached.
///
/// # Errors
/// Propagates [`cdt_types::CdtError`] from game-context construction
/// (e.g. an empty selection).
pub fn execute_round_observed_into<'a, O: RoundObserver>(
    policy: &mut dyn SelectionPolicy,
    config: &SystemConfig,
    observer: &QualityObserver,
    round: Round,
    rng: &mut dyn RngCore,
    scratch: &'a mut RoundScratch,
    obs: &mut O,
) -> Result<&'a RoundOutcome> {
    if O::ENABLED {
        obs.round_start(round);
    }
    let mut timer = PhaseTimer::start(O::ENABLED);

    policy.select_into(round, rng, &mut scratch.outcome.selected);
    let selection_ns = timer.lap();
    if O::ENABLED {
        scratch.scores.clear();
        scratch.scores.extend(
            scratch
                .outcome
                .selected
                .iter()
                .map(|&id| policy.selection_score(id)),
        );
        obs.selection(
            round,
            &SelectionEvent {
                selected: &scratch.outcome.selected,
                scores: &scratch.scores,
            },
        );
        timer.skip();
    }

    let mut game_sellers = mem::take(&mut scratch.game_sellers);
    game_sellers.clear();
    game_sellers.extend(
        scratch
            .outcome
            .selected
            .iter()
            .map(|&id| SelectedSeller::new(id, policy.game_quality(id), config.seller_cost(id))),
    );
    let ctx = GameContext::new(
        game_sellers,
        config.platform_cost,
        config.valuation,
        config.collection_price_bounds,
        config.service_price_bounds,
        config.job.round_duration,
    )?;

    if round.is_initial() {
        scratch.outcome.strategy = initial_round_strategy(&ctx, config.initial_sensing_time);
    } else {
        solve_equilibrium_into(&ctx, &mut scratch.outcome.strategy);
    }
    // Reclaim the seller buffer for the next round.
    scratch.game_sellers = ctx.into_sellers();
    let solve_ns = timer.lap();
    if O::ENABLED {
        let strategy = &scratch.outcome.strategy;
        obs.equilibrium(
            round,
            &EquilibriumEvent {
                service_price: strategy.service_price,
                collection_price: strategy.collection_price,
                sensing_times: &strategy.sensing_times,
                consumer_profit: strategy.profits.consumer,
                platform_profit: strategy.profits.platform,
                seller_profit: strategy.profits.total_seller(),
            },
        );
        timer.skip();
    }

    observer.observe_round_into(&scratch.outcome.selected, rng, &mut scratch.observations);
    scratch.outcome.observed_revenue = scratch.observations.total();
    policy.observe(round, &scratch.observations);
    let observe_ns = timer.lap();
    if O::ENABLED {
        obs.observation(
            round,
            &ObservationEvent {
                observed_revenue: scratch.outcome.observed_revenue,
                samples: scratch.observations.sellers().len() * scratch.observations.num_pois(),
            },
        );
        let strategy = &scratch.outcome.strategy;
        obs.round_end(
            round,
            &RoundEndEvent {
                observed_revenue: scratch.outcome.observed_revenue,
                consumer_profit: strategy.profits.consumer,
                platform_profit: strategy.profits.platform,
                seller_profit: strategy.profits.total_seller(),
                selection_ns,
                solve_ns,
                observe_ns,
            },
        );
    }

    scratch.outcome.round = round;
    Ok(&scratch.outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_bandit::{CmabUcbPolicy, RandomPolicy};
    use cdt_quality::SellerProfile;
    use cdt_quality::{BernoulliQuality, QualityObserver, SellerPopulation};
    use cdt_types::{JobSpec, SellerCostParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, k: usize, l: usize) -> (SystemConfig, QualityObserver) {
        let profiles: Vec<SellerProfile> = (0..m)
            .map(|i| SellerProfile {
                quality: cdt_quality::distribution::QualityModel::Bernoulli(BernoulliQuality::new(
                    0.2 + 0.6 * (i as f64 / m as f64),
                )),
                cost: SellerCostParams { a: 0.2, b: 0.3 },
            })
            .collect();
        let pop = SellerPopulation::from_profiles(profiles);
        let config = SystemConfig::builder()
            .job(JobSpec::new(l, 20, 1e6).unwrap())
            .sellers(m, k)
            .seller_costs(pop.cost_params())
            .collection_price_bounds(cdt_types::PriceBounds::new(0.0, 5.0).unwrap())
            .build()
            .unwrap();
        (config, QualityObserver::new(pop, l))
    }

    #[test]
    fn initial_round_selects_all_and_breaks_even() {
        let (config, observer) = setup(6, 2, 4);
        let mut policy = CmabUcbPolicy::new(6, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let out = execute_round(&mut policy, &config, &observer, Round(0), &mut rng).unwrap();
        assert_eq!(out.selection_size(), 6);
        assert_eq!(out.strategy.collection_price, 5.0);
        assert!(out.strategy.profits.platform.abs() < 1e-9);
        // Everyone contributes τ⁰ = 1.
        assert!(out.strategy.sensing_times.iter().all(|&t| t == 1.0));
    }

    #[test]
    fn later_rounds_select_k_and_play_equilibrium() {
        let (config, observer) = setup(6, 2, 4);
        let mut policy = CmabUcbPolicy::new(6, 2);
        let mut rng = StdRng::seed_from_u64(2);
        execute_round(&mut policy, &config, &observer, Round(0), &mut rng).unwrap();
        let out = execute_round(&mut policy, &config, &observer, Round(1), &mut rng).unwrap();
        assert_eq!(out.selection_size(), 2);
        assert!(out.strategy.service_price > out.strategy.collection_price);
        assert!(out.strategy.profits.consumer > 0.0);
    }

    #[test]
    fn observed_revenue_is_bounded_by_selection() {
        let (config, observer) = setup(5, 3, 4);
        let mut policy = RandomPolicy::new(5, 3);
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..10 {
            let out = execute_round(&mut policy, &config, &observer, Round(t), &mut rng).unwrap();
            let max = (out.selection_size() * 4) as f64; // K sellers × L PoIs × q ≤ 1
            assert!(out.observed_revenue >= 0.0 && out.observed_revenue <= max);
        }
    }

    #[test]
    fn execute_round_into_matches_execute_round() {
        let (config, observer) = setup(6, 2, 4);
        let mut owned_policy = CmabUcbPolicy::new(6, 2);
        let mut owned_rng = StdRng::seed_from_u64(9);
        let mut reused_policy = CmabUcbPolicy::new(6, 2);
        let mut reused_rng = StdRng::seed_from_u64(9);
        let mut scratch = RoundScratch::new();
        for t in 0..5 {
            let owned = execute_round(
                &mut owned_policy,
                &config,
                &observer,
                Round(t),
                &mut owned_rng,
            )
            .unwrap();
            let reused = execute_round_into(
                &mut reused_policy,
                &config,
                &observer,
                Round(t),
                &mut reused_rng,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(&owned, reused, "round {t} diverged");
        }
    }

    #[test]
    fn observed_round_is_bit_identical_and_emits_events() {
        use cdt_obs::{EventRecord, RecordingObserver};
        let (config, observer) = setup(6, 2, 4);
        let mut plain_policy = CmabUcbPolicy::new(6, 2);
        let mut plain_rng = StdRng::seed_from_u64(11);
        let mut plain_scratch = RoundScratch::new();
        let mut obs_policy = CmabUcbPolicy::new(6, 2);
        let mut obs_rng = StdRng::seed_from_u64(11);
        let mut obs_scratch = RoundScratch::new();
        let mut recorder = RecordingObserver::new("unit");
        for t in 0..4 {
            let plain = execute_round_into(
                &mut plain_policy,
                &config,
                &observer,
                Round(t),
                &mut plain_rng,
                &mut plain_scratch,
            )
            .unwrap()
            .clone();
            let observed = execute_round_observed_into(
                &mut obs_policy,
                &config,
                &observer,
                Round(t),
                &mut obs_rng,
                &mut obs_scratch,
                &mut recorder,
            )
            .unwrap();
            assert_eq!(&plain, observed, "round {t} diverged under observation");
        }
        // 5 events per round: start, selection, equilibrium, observation, end.
        assert_eq!(recorder.records.len(), 4 * 5);
        let selections: Vec<_> = recorder
            .records
            .iter()
            .filter(|r| matches!(r, EventRecord::Selection { .. }))
            .collect();
        assert_eq!(selections.len(), 4);
        match selections[1] {
            EventRecord::Selection {
                selected, scores, ..
            } => {
                assert_eq!(selected.len(), 2);
                assert_eq!(scores.len(), 2);
                // Post-sweep UCB indices are finite and ≥ the plain mean.
                assert!(scores.iter().all(|s| s.is_finite()));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn policy_learns_from_executed_rounds() {
        let (config, observer) = setup(4, 2, 8);
        let mut policy = CmabUcbPolicy::new(4, 2);
        let mut rng = StdRng::seed_from_u64(4);
        execute_round(&mut policy, &config, &observer, Round(0), &mut rng).unwrap();
        use cdt_bandit::SelectionPolicy as _;
        assert_eq!(policy.estimator().total_count(), 4 * 8);
    }
}
