//! One trading round: selection → incentive game → data collection →
//! learning (the loop body of Algorithm 1).

use cdt_bandit::SelectionPolicy;
use cdt_game::{initial_round_strategy, solve_equilibrium, GameContext, SelectedSeller, StackelbergSolution};
use cdt_quality::QualityObserver;
use cdt_types::{Result, Round, SellerId, SystemConfig};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Everything that happened in one round of data trading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundOutcome {
    /// Which round this was.
    pub round: Round,
    /// The sellers selected this round (all `M` in round 0, `K` after).
    pub selected: Vec<SellerId>,
    /// The incentive strategy `⟨p^J, p, τ⟩` and the induced profits.
    pub strategy: StackelbergSolution,
    /// Realized revenue: the sum of all observed qualities
    /// `Σ_i Σ_l q_{i,l}^t` (Eq. 1's per-round contribution).
    pub observed_revenue: f64,
}

impl RoundOutcome {
    /// Number of sellers selected this round.
    #[must_use]
    pub fn selection_size(&self) -> usize {
        self.selected.len()
    }
}

/// Executes one complete round against a hidden environment:
///
/// 1. the policy selects sellers (Alg. 1 steps 2–3 / 7–10);
/// 2. the incentive strategy is determined — the fixed initial-round
///    profile in round 0 (steps 3–4), the Stackelberg equilibrium
///    otherwise (step 11);
/// 3. the selected sellers collect data at all `L` PoIs
///    ([`QualityObserver::observe_round`]);
/// 4. the policy learns from the observations (steps 5 / 12).
///
/// This free function is policy-generic so the evaluation engine can run
/// baselines (ε-first, random, optimal) through the *identical* trading
/// loop; [`crate::CmabHs`] wraps it with the paper's UCB policy.
///
/// # Errors
/// Propagates [`cdt_types::CdtError`] from game-context construction
/// (e.g. an empty selection).
pub fn execute_round(
    policy: &mut dyn SelectionPolicy,
    config: &SystemConfig,
    observer: &QualityObserver,
    round: Round,
    rng: &mut dyn RngCore,
) -> Result<RoundOutcome> {
    let selected = policy.select(round, rng);

    let game_sellers: Vec<SelectedSeller> = selected
        .iter()
        .map(|&id| SelectedSeller::new(id, policy.game_quality(id), config.seller_cost(id)))
        .collect();
    let ctx = GameContext::new(
        game_sellers,
        config.platform_cost,
        config.valuation,
        config.collection_price_bounds,
        config.service_price_bounds,
        config.job.round_duration,
    )?;

    let strategy = if round.is_initial() {
        initial_round_strategy(&ctx, config.initial_sensing_time)
    } else {
        solve_equilibrium(&ctx)
    };

    let observations = observer.observe_round(&selected, rng);
    let observed_revenue = observations.total();
    policy.observe(round, &observations);

    Ok(RoundOutcome {
        round,
        selected,
        strategy,
        observed_revenue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_bandit::{CmabUcbPolicy, RandomPolicy};
    use cdt_quality::{BernoulliQuality, QualityObserver, SellerPopulation};
    use cdt_quality::{SellerProfile};
    use cdt_types::{JobSpec, SellerCostParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, k: usize, l: usize) -> (SystemConfig, QualityObserver) {
        let profiles: Vec<SellerProfile> = (0..m)
            .map(|i| SellerProfile {
                quality: cdt_quality::distribution::QualityModel::Bernoulli(
                    BernoulliQuality::new(0.2 + 0.6 * (i as f64 / m as f64)),
                ),
                cost: SellerCostParams {
                    a: 0.2,
                    b: 0.3,
                },
            })
            .collect();
        let pop = SellerPopulation::from_profiles(profiles);
        let config = SystemConfig::builder()
            .job(JobSpec::new(l, 20, 1e6).unwrap())
            .sellers(m, k)
            .seller_costs(pop.cost_params())
            .collection_price_bounds(cdt_types::PriceBounds::new(0.0, 5.0).unwrap())
            .build()
            .unwrap();
        (config, QualityObserver::new(pop, l))
    }

    #[test]
    fn initial_round_selects_all_and_breaks_even() {
        let (config, observer) = setup(6, 2, 4);
        let mut policy = CmabUcbPolicy::new(6, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let out = execute_round(&mut policy, &config, &observer, Round(0), &mut rng).unwrap();
        assert_eq!(out.selection_size(), 6);
        assert_eq!(out.strategy.collection_price, 5.0);
        assert!(out.strategy.profits.platform.abs() < 1e-9);
        // Everyone contributes τ⁰ = 1.
        assert!(out.strategy.sensing_times.iter().all(|&t| t == 1.0));
    }

    #[test]
    fn later_rounds_select_k_and_play_equilibrium() {
        let (config, observer) = setup(6, 2, 4);
        let mut policy = CmabUcbPolicy::new(6, 2);
        let mut rng = StdRng::seed_from_u64(2);
        execute_round(&mut policy, &config, &observer, Round(0), &mut rng).unwrap();
        let out = execute_round(&mut policy, &config, &observer, Round(1), &mut rng).unwrap();
        assert_eq!(out.selection_size(), 2);
        assert!(out.strategy.service_price > out.strategy.collection_price);
        assert!(out.strategy.profits.consumer > 0.0);
    }

    #[test]
    fn observed_revenue_is_bounded_by_selection() {
        let (config, observer) = setup(5, 3, 4);
        let mut policy = RandomPolicy::new(5, 3);
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..10 {
            let out = execute_round(&mut policy, &config, &observer, Round(t), &mut rng).unwrap();
            let max = (out.selection_size() * 4) as f64; // K sellers × L PoIs × q ≤ 1
            assert!(out.observed_revenue >= 0.0 && out.observed_revenue <= max);
        }
    }

    #[test]
    fn policy_learns_from_executed_rounds() {
        let (config, observer) = setup(4, 2, 8);
        let mut policy = CmabUcbPolicy::new(4, 2);
        let mut rng = StdRng::seed_from_u64(4);
        execute_round(&mut policy, &config, &observer, Round(0), &mut rng).unwrap();
        use cdt_bandit::SelectionPolicy as _;
        assert_eq!(policy.estimator().total_count(), 4 * 8);
    }
}
