//! One trading round: selection → incentive game → data collection →
//! learning (the loop body of Algorithm 1).
//!
//! The round body reports per-phase wall time through the passive
//! [`RoundObserver`] hooks; with span tracing enabled the observability
//! pipeline turns those same hook timings into `selection`/`solve`/
//! `observe` child spans of the round — this module never touches span or
//! trace state itself, so the hot path stays observer-gated only.

use cdt_bandit::{BatchSelectionPolicy, SelectionPolicy};
use cdt_game::{
    initial_round_strategy, EquilibriumCache, GameContext, SelectedSeller, StackelbergSolution,
};
use cdt_obs::{
    EquilibriumEvent, NullObserver, ObservationEvent, PhaseTimer, RoundEndEvent, RoundObserver,
    SelectionEvent,
};
use cdt_quality::{ObservationBatch, ObservationMatrix, QualityObserver};
use cdt_types::{Result, Round, SellerId, SystemConfig};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Whether a cached context's economic parameters still match the config —
/// the precondition for refilling the seller columns in place instead of
/// reconstructing (and revalidating) the context.
fn context_params_match(ctx: &GameContext, config: &SystemConfig) -> bool {
    ctx.platform_cost == config.platform_cost
        && ctx.valuation == config.valuation
        && ctx.collection_price_bounds == config.collection_price_bounds
        && ctx.service_price_bounds == config.service_price_bounds
        && ctx.max_sensing_time == config.job.round_duration
}

/// Everything that happened in one round of data trading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundOutcome {
    /// Which round this was.
    pub round: Round,
    /// The sellers selected this round (all `M` in round 0, `K` after).
    pub selected: Vec<SellerId>,
    /// The incentive strategy `⟨p^J, p, τ⟩` and the induced profits.
    pub strategy: StackelbergSolution,
    /// Realized revenue: the sum of all observed qualities
    /// `Σ_i Σ_l q_{i,l}^t` (Eq. 1's per-round contribution).
    pub observed_revenue: f64,
}

impl RoundOutcome {
    /// Number of sellers selected this round.
    #[must_use]
    pub fn selection_size(&self) -> usize {
        self.selected.len()
    }
}

/// Reusable buffers for the round hot path.
///
/// One round touches several growable buffers: the selection, the game
/// context's seller columns, the observation matrix, and the equilibrium
/// solution's sensing-time/profit vectors. A `RoundScratch` owns all of
/// them so that [`execute_round_into`] runs allocation-free after the first
/// round — essential when the evaluation loop executes `N = 10⁵` rounds per
/// (policy × replication) cell.
///
/// The scratch also carries the equilibrium fast path
/// ([`EquilibriumCache`]): the Stage-1/2/3 solve is a pure function of the
/// game context (no RNG), so when the selected set and the `q̄` snapshot
/// are unchanged from the previous round the previous solution — still
/// sitting in the outcome's strategy buffer — is bit-identical and the
/// solve is skipped entirely. This hits on every round for
/// oracle/frozen-mean policies and during ε-first exploitation.
#[derive(Debug)]
pub struct RoundScratch {
    outcome: RoundOutcome,
    /// The reusable game context: economic parameters validated once, the
    /// seller columns refilled in place each round.
    ctx: Option<GameContext>,
    /// The equilibrium fast path: previous solved context + hit/miss
    /// counters.
    cache: EquilibriumCache,
    observations: ObservationMatrix,
    /// Selection-score buffer, filled only when an enabled observer asks
    /// for the per-seller indices (never touched on the null path).
    scores: Vec<f64>,
}

impl RoundScratch {
    /// Fresh, empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self {
            outcome: RoundOutcome {
                round: Round(0),
                selected: Vec::new(),
                strategy: StackelbergSolution::empty(),
                observed_revenue: 0.0,
            },
            ctx: None,
            cache: EquilibriumCache::new(),
            observations: ObservationMatrix::empty(),
            scores: Vec::new(),
        }
    }

    /// Prepares an already-used scratch for a fresh run: invalidates the
    /// equilibrium cache and zeroes its counters while keeping every
    /// allocated buffer. A reset scratch behaves exactly like
    /// [`RoundScratch::new`] (all buffer contents are overwritten before
    /// being read), which is what lets worker arenas recycle it across
    /// jobs.
    pub fn reset(&mut self) {
        self.cache.reset();
    }

    /// The outcome written by the most recent [`execute_round_into`] call.
    #[must_use]
    pub fn outcome(&self) -> &RoundOutcome {
        &self.outcome
    }

    /// Consumes the scratch, handing out the last outcome.
    #[must_use]
    pub fn into_outcome(self) -> RoundOutcome {
        self.outcome
    }

    /// Rounds whose equilibrium solve was skipped because the game context
    /// was identical to the previous round's.
    #[must_use]
    pub fn eq_cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Rounds that ran the full Stage-1/2/3 solve.
    #[must_use]
    pub fn eq_cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Publishes the equilibrium-cache counters to the global metrics
    /// registry (`cdt_obs_eq_cache_{hits,misses}_total`). Call once per
    /// run loop; a no-op while no observability pipeline is installed.
    pub fn publish_eq_cache_metrics(&self) {
        publish_eq_cache_counters(self.cache.hits(), self.cache.misses());
    }
}

/// Publishes equilibrium-cache counters to the global metrics registry; a
/// no-op while no observability pipeline is installed.
fn publish_eq_cache_counters(hits: u64, misses: u64) {
    if !cdt_obs::is_enabled() {
        return;
    }
    let registry = cdt_obs::global();
    registry.add_counter("cdt_obs_eq_cache_hits_total", &[], hits);
    registry.add_counter("cdt_obs_eq_cache_misses_total", &[], misses);
}

impl Default for RoundScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Executes one complete round against a hidden environment:
///
/// 1. the policy selects sellers (Alg. 1 steps 2–3 / 7–10);
/// 2. the incentive strategy is determined — the fixed initial-round
///    profile in round 0 (steps 3–4), the Stackelberg equilibrium
///    otherwise (step 11);
/// 3. the selected sellers collect data at all `L` PoIs
///    ([`QualityObserver::observe_round`]);
/// 4. the policy learns from the observations (steps 5 / 12).
///
/// This free function is policy-generic so the evaluation engine can run
/// baselines (ε-first, random, optimal) through the *identical* trading
/// loop; [`crate::CmabHs`] wraps it with the paper's UCB policy.
///
/// # Errors
/// Propagates [`cdt_types::CdtError`] from game-context construction
/// (e.g. an empty selection).
pub fn execute_round(
    policy: &mut dyn SelectionPolicy,
    config: &SystemConfig,
    observer: &QualityObserver,
    round: Round,
    rng: &mut dyn RngCore,
) -> Result<RoundOutcome> {
    let mut scratch = RoundScratch::new();
    execute_round_into(policy, config, observer, round, rng, &mut scratch)?;
    Ok(scratch.into_outcome())
}

/// As [`execute_round`], but writes into `scratch`, reusing its buffers.
///
/// Draws from the RNG in exactly the same order and produces exactly the
/// same [`RoundOutcome`] as [`execute_round`]; after the first call on a
/// given `scratch` the round runs without heap allocation.
///
/// # Errors
/// Propagates [`cdt_types::CdtError`] from game-context construction
/// (e.g. an empty selection).
pub fn execute_round_into<'a>(
    policy: &mut dyn SelectionPolicy,
    config: &SystemConfig,
    observer: &QualityObserver,
    round: Round,
    rng: &mut dyn RngCore,
    scratch: &'a mut RoundScratch,
) -> Result<&'a RoundOutcome> {
    execute_round_observed_into(
        policy,
        config,
        observer,
        round,
        rng,
        scratch,
        &mut NullObserver,
    )
}

/// As [`execute_round_into`], but emits structured events to `obs` and
/// measures per-phase wall clock (selection / solve / observe).
///
/// Statically dispatched: with [`NullObserver`] (whose
/// [`RoundObserver::ENABLED`] is `false`) every event construction and
/// every clock read compiles away, leaving exactly the uninstrumented hot
/// path. Observer hooks run *between* phases and the timer re-arms after
/// each one, so hook time never pollutes phase measurements — and because
/// observers are passive (no RNG access), results are bit-identical with
/// any observer attached.
///
/// # Errors
/// Propagates [`cdt_types::CdtError`] from game-context construction
/// (e.g. an empty selection).
pub fn execute_round_observed_into<'a, O: RoundObserver>(
    policy: &mut dyn SelectionPolicy,
    config: &SystemConfig,
    observer: &QualityObserver,
    round: Round,
    rng: &mut dyn RngCore,
    scratch: &'a mut RoundScratch,
    obs: &mut O,
) -> Result<&'a RoundOutcome> {
    round_body(
        SerialActor(policy),
        config,
        observer,
        round,
        rng,
        &mut scratch.outcome,
        &mut scratch.ctx,
        &mut scratch.cache,
        &mut scratch.observations,
        &mut scratch.scores,
        obs,
    )?;
    Ok(&scratch.outcome)
}

/// The policy-facing surface of one round, lane-agnostic.
///
/// The serial path wires a [`SelectionPolicy`] straight through
/// ([`SerialActor`]); the batch path wires lane `b` of a
/// [`BatchSelectionPolicy`] ([`LaneActor`]). Both run the *same*
/// monomorphized [`round_body`], so the two paths share every float
/// expression tree and every RNG draw — bit-identity between them is by
/// construction, not by parallel maintenance.
trait RoundActor {
    fn select_into(&mut self, round: Round, rng: &mut dyn RngCore, out: &mut Vec<SellerId>);
    fn game_quality(&self, id: SellerId) -> f64;
    fn selection_score(&self, id: SellerId) -> f64;
    fn observe(&mut self, round: Round, observations: &ObservationMatrix);
}

/// A plain [`SelectionPolicy`] as a round actor.
struct SerialActor<'a>(&'a mut dyn SelectionPolicy);

impl RoundActor for SerialActor<'_> {
    fn select_into(&mut self, round: Round, rng: &mut dyn RngCore, out: &mut Vec<SellerId>) {
        self.0.select_into(round, rng, out);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        self.0.game_quality(id)
    }

    fn selection_score(&self, id: SellerId) -> f64 {
        self.0.selection_score(id)
    }

    fn observe(&mut self, round: Round, observations: &ObservationMatrix) {
        self.0.observe(round, observations);
    }
}

/// One lane of a [`BatchSelectionPolicy`] as a round actor.
struct LaneActor<'a>(&'a mut dyn BatchSelectionPolicy, usize);

impl RoundActor for LaneActor<'_> {
    fn select_into(&mut self, round: Round, rng: &mut dyn RngCore, out: &mut Vec<SellerId>) {
        self.0.select_into(self.1, round, rng, out);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        self.0.game_quality(self.1, id)
    }

    fn selection_score(&self, id: SellerId) -> f64 {
        self.0.selection_score(self.1, id)
    }

    fn observe(&mut self, round: Round, observations: &ObservationMatrix) {
        self.0.observe(self.1, round, observations);
    }
}

/// The loop body of Algorithm 1 over explicit state slots — the single
/// implementation behind [`execute_round_observed_into`] (serial) and
/// [`execute_batch_round_observed_into`] (one call per lane).
#[allow(clippy::too_many_arguments)]
fn round_body<A: RoundActor, O: RoundObserver>(
    mut actor: A,
    config: &SystemConfig,
    observer: &QualityObserver,
    round: Round,
    rng: &mut dyn RngCore,
    outcome: &mut RoundOutcome,
    ctx_slot: &mut Option<GameContext>,
    cache: &mut EquilibriumCache,
    observations: &mut ObservationMatrix,
    scores: &mut Vec<f64>,
    obs: &mut O,
) -> Result<()> {
    if O::ENABLED {
        obs.round_start(round);
    }
    let mut timer = PhaseTimer::start(O::ENABLED);

    actor.select_into(round, rng, &mut outcome.selected);
    let selection_ns = timer.lap();
    if O::ENABLED {
        scores.clear();
        scores.extend(outcome.selected.iter().map(|&id| actor.selection_score(id)));
        obs.selection(
            round,
            &SelectionEvent {
                selected: &outcome.selected,
                scores,
            },
        );
        timer.skip();
    }

    // Build the game context — in place when the slot already holds one
    // for the same economic parameters (validated once at construction),
    // from scratch otherwise.
    {
        let selected = &outcome.selected;
        let sellers = selected
            .iter()
            .map(|&id| SelectedSeller::new(id, actor.game_quality(id), config.seller_cost(id)));
        match ctx_slot {
            Some(ctx) if context_params_match(ctx, config) => ctx.refill_sellers(sellers)?,
            slot => {
                *slot = Some(GameContext::new(
                    sellers.collect(),
                    config.platform_cost,
                    config.valuation,
                    config.collection_price_bounds,
                    config.service_price_bounds,
                    config.job.round_duration,
                )?);
            }
        }
    }
    let ctx = ctx_slot.as_ref().expect("context was just built");

    let cached = if round.is_initial() {
        outcome.strategy = initial_round_strategy(ctx, config.initial_sensing_time);
        // The strategy buffer no longer holds an equilibrium solve.
        cache.invalidate();
        false
    } else {
        // Fast path inside: same selection, same q̄ snapshot, same
        // parameters ⇒ the previous round's solution (still in the
        // strategy buffer) is bit-identical and the solve is skipped.
        let hits_before = cache.hits();
        cache.solve_into(ctx, &mut outcome.strategy);
        cache.hits() != hits_before
    };
    let solve_ns = timer.lap();
    if O::ENABLED {
        let strategy = &outcome.strategy;
        obs.equilibrium(
            round,
            &EquilibriumEvent {
                service_price: strategy.service_price,
                collection_price: strategy.collection_price,
                sensing_times: &strategy.sensing_times,
                consumer_profit: strategy.profits.consumer,
                platform_profit: strategy.profits.platform,
                seller_profit: strategy.profits.total_seller(),
                cached,
            },
        );
        timer.skip();
    }

    observer.observe_round_into(&outcome.selected, rng, observations);
    outcome.observed_revenue = observations.total();
    actor.observe(round, observations);
    let observe_ns = timer.lap();
    if O::ENABLED {
        obs.observation(
            round,
            &ObservationEvent {
                observed_revenue: outcome.observed_revenue,
                samples: observations.sellers().len() * observations.num_pois(),
            },
        );
        let strategy = &outcome.strategy;
        obs.round_end(
            round,
            &RoundEndEvent {
                observed_revenue: outcome.observed_revenue,
                consumer_profit: strategy.profits.consumer,
                platform_profit: strategy.profits.platform,
                seller_profit: strategy.profits.total_seller(),
                selection_ns,
                solve_ns,
                observe_ns,
            },
        );
    }

    outcome.round = round;
    Ok(())
}

/// One lane's private round state inside a [`BatchScratch`]: outcome,
/// reusable game context, equilibrium cache, and score buffer.
#[derive(Debug)]
struct LaneCore {
    outcome: RoundOutcome,
    ctx: Option<GameContext>,
    cache: EquilibriumCache,
    scores: Vec<f64>,
}

impl LaneCore {
    fn new() -> Self {
        Self {
            outcome: RoundOutcome {
                round: Round(0),
                selected: Vec::new(),
                strategy: StackelbergSolution::empty(),
                observed_revenue: 0.0,
            },
            ctx: None,
            cache: EquilibriumCache::new(),
            scores: Vec::new(),
        }
    }
}

/// Reusable per-lane buffers for the lockstep batch runner: `B` lanes of
/// [`RoundScratch`]-equivalent state (outcome, game context, equilibrium
/// cache, score buffer) plus a stacked observation matrix.
///
/// Lane state is kept per-lane rather than interleaved because every slot
/// is either written before read each round (outcome, observations,
/// scores) or a genuine per-lane carry (context, cache) — only the
/// *learner* state inside a [`BatchSelectionPolicy`] profits from the SoA
/// `B×M` layout. Like [`RoundScratch`], a batch scratch grows on first use
/// and then recycles: [`execute_batch_round_observed_into`] runs
/// allocation-free once every lane's buffers have reached their working
/// size, and worker arenas hand the whole scratch from one finished job to
/// the next.
#[derive(Debug)]
pub struct BatchScratch {
    lanes: Vec<LaneCore>,
    observations: ObservationBatch,
    /// Scenario-cell identity per lane, set by cell-packing schedulers so
    /// observability (span attrs, per-cell demux) can tell which sweep
    /// cell each lane serves. Purely metadata: never read by the round
    /// body, so it cannot perturb results.
    cells: Vec<u64>,
}

impl BatchScratch {
    /// Fresh scratch with zero lanes; lanes are grown on demand.
    #[must_use]
    pub fn new() -> Self {
        Self {
            lanes: Vec::new(),
            observations: ObservationBatch::new(),
            cells: Vec::new(),
        }
    }

    /// Grows to at least `b` lanes; never shrinks (a wider earlier job's
    /// buffers stay warm for the next wide job).
    pub fn ensure_lanes(&mut self, b: usize) {
        while self.lanes.len() < b {
            self.lanes.push(LaneCore::new());
        }
        self.observations.ensure_lanes(b);
    }

    /// Number of lanes currently allocated.
    #[must_use]
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Prepares a recycled scratch for a fresh job: invalidates every
    /// lane's equilibrium cache and zeroes its counters while keeping all
    /// allocated buffers (see [`RoundScratch::reset`]).
    pub fn reset(&mut self) {
        for lane in &mut self.lanes {
            lane.cache.reset();
        }
        self.cells.clear();
    }

    /// Records the scenario-cell id each lane of the next job serves.
    /// Cleared by [`BatchScratch::reset`] so a recycled scratch never
    /// carries a previous job's cell identities.
    pub fn set_lane_cells(&mut self, cells: &[u64]) {
        self.cells.clear();
        self.cells.extend_from_slice(cells);
    }

    /// The scenario-cell ids recorded for the current job's lanes; empty
    /// when the caller is not a cell-packing scheduler.
    #[must_use]
    pub fn lane_cells(&self) -> &[u64] {
        &self.cells
    }

    /// Lane `b`'s outcome from the most recent batch round.
    #[must_use]
    pub fn outcome(&self, lane: usize) -> &RoundOutcome {
        &self.lanes[lane].outcome
    }

    /// Equilibrium-cache hits summed over all lanes.
    #[must_use]
    pub fn eq_cache_hits(&self) -> u64 {
        self.lanes.iter().map(|l| l.cache.hits()).sum()
    }

    /// Equilibrium-cache misses (full solves) summed over all lanes.
    #[must_use]
    pub fn eq_cache_misses(&self) -> u64 {
        self.lanes.iter().map(|l| l.cache.misses()).sum()
    }

    /// Publishes the summed equilibrium-cache counters to the global
    /// metrics registry; a no-op while no pipeline is installed.
    pub fn publish_eq_cache_metrics(&self) {
        publish_eq_cache_counters(self.eq_cache_hits(), self.eq_cache_misses());
    }
}

impl Default for BatchScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Executes one round of Algorithm 1 across `B` replication lanes in
/// lockstep: lane `b` runs against `envs[b]` with RNG stream `rngs[b]`,
/// observer `obs[b]`, and lane `b` of `policy`.
///
/// Each lane executes the *same* [`round_body`] as the serial
/// [`execute_round_observed_into`] path — same statement order, same float
/// expression trees, same RNG draw order — so lane `b`'s outcomes are
/// bit-for-bit identical to a standalone run of that replication at any
/// batch width. Lanes are independent (separate environments, RNG streams,
/// learner columns, and equilibrium caches); batching buys shared scratch,
/// shared policy matrices, and one scheduling unit per `B` replications.
///
/// # Errors
/// Propagates [`cdt_types::CdtError`] from any lane's game-context
/// construction; lanes after the failing one are not executed.
///
/// # Panics
/// Panics if `rngs` or `obs` disagree with `envs` on length, or if
/// `policy` has fewer lanes than `envs`.
pub fn execute_batch_round_observed_into<R: RngCore, O: RoundObserver>(
    policy: &mut dyn BatchSelectionPolicy,
    envs: &[(&SystemConfig, &QualityObserver)],
    round: Round,
    rngs: &mut [R],
    scratch: &mut BatchScratch,
    obs: &mut [O],
) -> Result<()> {
    let b = envs.len();
    assert_eq!(rngs.len(), b, "one RNG stream per lane");
    assert_eq!(obs.len(), b, "one observer per lane");
    assert!(
        policy.num_lanes() >= b,
        "batch policy covers {} lanes but {} environments were given",
        policy.num_lanes(),
        b
    );
    scratch.ensure_lanes(b);
    let BatchScratch {
        lanes,
        observations,
        ..
    } = scratch;
    for (lane, &(config, observer)) in envs.iter().enumerate() {
        let core = &mut lanes[lane];
        round_body(
            LaneActor(&mut *policy, lane),
            config,
            observer,
            round,
            &mut rngs[lane],
            &mut core.outcome,
            &mut core.ctx,
            &mut core.cache,
            observations.lane_mut(lane),
            &mut core.scores,
            &mut obs[lane],
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_bandit::{CmabUcbPolicy, RandomPolicy};
    use cdt_quality::SellerProfile;
    use cdt_quality::{BernoulliQuality, QualityObserver, SellerPopulation};
    use cdt_types::{JobSpec, SellerCostParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, k: usize, l: usize) -> (SystemConfig, QualityObserver) {
        let profiles: Vec<SellerProfile> = (0..m)
            .map(|i| SellerProfile {
                quality: cdt_quality::distribution::QualityModel::Bernoulli(BernoulliQuality::new(
                    0.2 + 0.6 * (i as f64 / m as f64),
                )),
                cost: SellerCostParams { a: 0.2, b: 0.3 },
            })
            .collect();
        let pop = SellerPopulation::from_profiles(profiles);
        let config = SystemConfig::builder()
            .job(JobSpec::new(l, 20, 1e6).unwrap())
            .sellers(m, k)
            .seller_costs(pop.cost_params())
            .collection_price_bounds(cdt_types::PriceBounds::new(0.0, 5.0).unwrap())
            .build()
            .unwrap();
        (config, QualityObserver::new(pop, l))
    }

    #[test]
    fn initial_round_selects_all_and_breaks_even() {
        let (config, observer) = setup(6, 2, 4);
        let mut policy = CmabUcbPolicy::new(6, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let out = execute_round(&mut policy, &config, &observer, Round(0), &mut rng).unwrap();
        assert_eq!(out.selection_size(), 6);
        assert_eq!(out.strategy.collection_price, 5.0);
        assert!(out.strategy.profits.platform.abs() < 1e-9);
        // Everyone contributes τ⁰ = 1.
        assert!(out.strategy.sensing_times.iter().all(|&t| t == 1.0));
    }

    #[test]
    fn later_rounds_select_k_and_play_equilibrium() {
        let (config, observer) = setup(6, 2, 4);
        let mut policy = CmabUcbPolicy::new(6, 2);
        let mut rng = StdRng::seed_from_u64(2);
        execute_round(&mut policy, &config, &observer, Round(0), &mut rng).unwrap();
        let out = execute_round(&mut policy, &config, &observer, Round(1), &mut rng).unwrap();
        assert_eq!(out.selection_size(), 2);
        assert!(out.strategy.service_price > out.strategy.collection_price);
        assert!(out.strategy.profits.consumer > 0.0);
    }

    #[test]
    fn observed_revenue_is_bounded_by_selection() {
        let (config, observer) = setup(5, 3, 4);
        let mut policy = RandomPolicy::new(5, 3);
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..10 {
            let out = execute_round(&mut policy, &config, &observer, Round(t), &mut rng).unwrap();
            let max = (out.selection_size() * 4) as f64; // K sellers × L PoIs × q ≤ 1
            assert!(out.observed_revenue >= 0.0 && out.observed_revenue <= max);
        }
    }

    #[test]
    fn execute_round_into_matches_execute_round() {
        let (config, observer) = setup(6, 2, 4);
        let mut owned_policy = CmabUcbPolicy::new(6, 2);
        let mut owned_rng = StdRng::seed_from_u64(9);
        let mut reused_policy = CmabUcbPolicy::new(6, 2);
        let mut reused_rng = StdRng::seed_from_u64(9);
        let mut scratch = RoundScratch::new();
        for t in 0..5 {
            let owned = execute_round(
                &mut owned_policy,
                &config,
                &observer,
                Round(t),
                &mut owned_rng,
            )
            .unwrap();
            let reused = execute_round_into(
                &mut reused_policy,
                &config,
                &observer,
                Round(t),
                &mut reused_rng,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(&owned, reused, "round {t} diverged");
        }
    }

    #[test]
    fn observed_round_is_bit_identical_and_emits_events() {
        use cdt_obs::{EventRecord, RecordingObserver};
        let (config, observer) = setup(6, 2, 4);
        let mut plain_policy = CmabUcbPolicy::new(6, 2);
        let mut plain_rng = StdRng::seed_from_u64(11);
        let mut plain_scratch = RoundScratch::new();
        let mut obs_policy = CmabUcbPolicy::new(6, 2);
        let mut obs_rng = StdRng::seed_from_u64(11);
        let mut obs_scratch = RoundScratch::new();
        let mut recorder = RecordingObserver::new("unit");
        for t in 0..4 {
            let plain = execute_round_into(
                &mut plain_policy,
                &config,
                &observer,
                Round(t),
                &mut plain_rng,
                &mut plain_scratch,
            )
            .unwrap()
            .clone();
            let observed = execute_round_observed_into(
                &mut obs_policy,
                &config,
                &observer,
                Round(t),
                &mut obs_rng,
                &mut obs_scratch,
                &mut recorder,
            )
            .unwrap();
            assert_eq!(&plain, observed, "round {t} diverged under observation");
        }
        // 5 events per round: start, selection, equilibrium, observation, end.
        assert_eq!(recorder.records.len(), 4 * 5);
        let selections: Vec<_> = recorder
            .records
            .iter()
            .filter(|r| matches!(r, EventRecord::Selection { .. }))
            .collect();
        assert_eq!(selections.len(), 4);
        match selections[1] {
            EventRecord::Selection {
                selected, scores, ..
            } => {
                assert_eq!(selected.len(), 2);
                assert_eq!(scores.len(), 2);
                // Post-sweep UCB indices are finite and ≥ the plain mean.
                assert!(scores.iter().all(|s| s.is_finite()));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn frozen_mean_policy_solves_once_per_distinct_selection() {
        use cdt_bandit::OraclePolicy;
        let (config, observer) = setup(6, 2, 4);
        let mut policy = OraclePolicy::new(observer.population().expected_qualities(), 2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = RoundScratch::new();
        let n = 20;
        for t in 0..n {
            execute_round_into(
                &mut policy,
                &config,
                &observer,
                Round(t),
                &mut rng,
                &mut scratch,
            )
            .unwrap();
        }
        // Round 0 plays the initial strategy (no solve); round 1 solves;
        // every later round reuses it — the oracle's selection and game
        // qualities never change.
        assert_eq!(scratch.eq_cache_misses(), 1);
        assert_eq!(scratch.eq_cache_hits(), n - 2);
    }

    #[test]
    fn cached_equilibrium_is_bit_identical_to_fresh_solve() {
        use cdt_bandit::OraclePolicy;
        let (config, observer) = setup(6, 2, 4);
        let mut cached_policy = OraclePolicy::new(observer.population().expected_qualities(), 2);
        let mut cached_rng = StdRng::seed_from_u64(13);
        let mut scratch = RoundScratch::new();
        let mut fresh_policy = OraclePolicy::new(observer.population().expected_qualities(), 2);
        let mut fresh_rng = StdRng::seed_from_u64(13);
        for t in 0..8 {
            let cached = execute_round_into(
                &mut cached_policy,
                &config,
                &observer,
                Round(t),
                &mut cached_rng,
                &mut scratch,
            )
            .unwrap()
            .clone();
            // execute_round uses a one-shot scratch, so it can never hit
            // the cache — every round is a fresh solve.
            let fresh = execute_round(
                &mut fresh_policy,
                &config,
                &observer,
                Round(t),
                &mut fresh_rng,
            )
            .unwrap();
            assert_eq!(cached, fresh, "round {t} diverged under caching");
        }
        assert!(scratch.eq_cache_hits() > 0, "fast path never engaged");
    }

    #[test]
    fn learning_policy_misses_cache_when_means_move() {
        let (config, observer) = setup(6, 2, 4);
        let mut policy = CmabUcbPolicy::new(6, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut scratch = RoundScratch::new();
        for t in 0..6 {
            execute_round_into(
                &mut policy,
                &config,
                &observer,
                Round(t),
                &mut rng,
                &mut scratch,
            )
            .unwrap();
        }
        // UCB updates its means every round, so the q̄ snapshot (and often
        // the selection) changes and the cache must not serve stale solves.
        assert_eq!(scratch.eq_cache_hits() + scratch.eq_cache_misses(), 5);
        assert!(scratch.eq_cache_misses() >= 1);
    }

    #[test]
    fn batch_rounds_are_bit_identical_to_serial() {
        use cdt_bandit::BatchCmabUcb;
        let (config, observer) = setup(6, 2, 4);
        let (b, rounds) = (3usize, 12usize);

        // Serial reference: one policy + RNG stream + scratch per
        // replication, exactly as the existing evaluation loop runs them.
        let mut serial_policies: Vec<CmabUcbPolicy> =
            (0..b).map(|_| CmabUcbPolicy::new(6, 2)).collect();
        let mut serial_rngs: Vec<StdRng> = (0..b)
            .map(|l| StdRng::seed_from_u64(40 + l as u64))
            .collect();
        let mut serial_scratch: Vec<RoundScratch> = (0..b).map(|_| RoundScratch::new()).collect();

        let mut batch_policy = BatchCmabUcb::new(b, 6, 2);
        let mut batch_rngs: Vec<StdRng> = (0..b)
            .map(|l| StdRng::seed_from_u64(40 + l as u64))
            .collect();
        let mut batch = BatchScratch::new();
        let mut null_obs = vec![NullObserver; b];
        let envs: Vec<(&SystemConfig, &QualityObserver)> =
            (0..b).map(|_| (&config, &observer)).collect();

        for t in 0..rounds {
            execute_batch_round_observed_into(
                &mut batch_policy,
                &envs,
                Round(t),
                &mut batch_rngs,
                &mut batch,
                &mut null_obs,
            )
            .unwrap();
            for lane in 0..b {
                let serial = execute_round_into(
                    &mut serial_policies[lane],
                    &config,
                    &observer,
                    Round(t),
                    &mut serial_rngs[lane],
                    &mut serial_scratch[lane],
                )
                .unwrap();
                assert_eq!(
                    serial,
                    batch.outcome(lane),
                    "lane {lane} round {t} diverged"
                );
            }
        }
    }

    #[test]
    fn batch_scratch_aggregates_lane_equilibrium_caches() {
        use cdt_bandit::{LanePolicies, OraclePolicy};
        let (config, observer) = setup(6, 2, 4);
        let (b, n) = (2usize, 10usize);
        let lanes: Vec<Box<dyn SelectionPolicy>> = (0..b)
            .map(|_| {
                Box::new(OraclePolicy::new(
                    observer.population().expected_qualities(),
                    2,
                )) as Box<dyn SelectionPolicy>
            })
            .collect();
        let mut policy = LanePolicies::new(lanes);
        let mut rngs: Vec<StdRng> = (0..b)
            .map(|l| StdRng::seed_from_u64(60 + l as u64))
            .collect();
        let mut scratch = BatchScratch::new();
        let mut null_obs = vec![NullObserver; b];
        let envs: Vec<(&SystemConfig, &QualityObserver)> =
            (0..b).map(|_| (&config, &observer)).collect();
        for t in 0..n {
            execute_batch_round_observed_into(
                &mut policy,
                &envs,
                Round(t),
                &mut rngs,
                &mut scratch,
                &mut null_obs,
            )
            .unwrap();
        }
        // Per lane: round 0 plays the initial strategy (no solve), round 1
        // solves, every later round reuses the cached solution.
        assert_eq!(scratch.eq_cache_misses(), b as u64);
        assert_eq!(scratch.eq_cache_hits(), (b * (n - 2)) as u64);
        // reset() keeps the lanes but zeroes the cache counters.
        scratch.reset();
        assert_eq!(scratch.num_lanes(), b);
        assert_eq!(scratch.eq_cache_hits() + scratch.eq_cache_misses(), 0);
    }

    #[test]
    fn policy_learns_from_executed_rounds() {
        let (config, observer) = setup(4, 2, 8);
        let mut policy = CmabUcbPolicy::new(4, 2);
        let mut rng = StdRng::seed_from_u64(4);
        execute_round(&mut policy, &config, &observer, Round(0), &mut rng).unwrap();
        use cdt_bandit::SelectionPolicy as _;
        assert_eq!(policy.estimator().total_count(), 4 * 8);
    }
}
