//! # cdt-core
//!
//! The **CMAB-HS** crowdsensing data trading mechanism of
//! *"Crowdsensing Data Trading based on Combinatorial Multi-Armed Bandit
//! and Stackelberg Game"* (An, Xiao, Liu, Xie, Zhou — ICDE 2021).
//!
//! This crate is the paper's primary contribution assembled from the
//! workspace substrates:
//!
//! - seller selection: the extended-UCB CMAB policy
//!   ([`cdt_bandit::CmabUcbPolicy`], Eq. 19 / Algorithm 1 steps 7–10);
//! - incentive strategy: the three-stage hierarchical Stackelberg game
//!   ([`cdt_game::solve_equilibrium`], Theorems 14–16 / step 11);
//! - the initial exploration round (steps 2–5);
//! - a per-round trading ledger with revenues, strategies, payments, and
//!   profits.
//!
//! # Quickstart
//!
//! ```
//! use cdt_core::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A ready-made paper-default scenario: M sellers, K selected per
//! // round, L PoIs, N rounds.
//! let mut rng = StdRng::seed_from_u64(42);
//! let scenario = Scenario::paper_defaults(20, 5, 4, 50, &mut rng).unwrap();
//! let mut mechanism = CmabHs::new(scenario.config.clone()).unwrap();
//! let observer = scenario.observer();
//! let ledger = mechanism.run_to_completion(&observer, &mut rng).unwrap();
//! assert_eq!(ledger.rounds(), 50);
//! assert!(ledger.total_observed_revenue() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod budget;
pub mod ledger;
pub mod mechanism;
pub mod round;
pub mod scenario;

pub use budget::{BudgetedCmabHs, BudgetedRun, StopReason};
pub use ledger::{LedgerMode, TradingLedger};
pub use mechanism::CmabHs;
pub use round::{
    execute_batch_round_observed_into, execute_round, execute_round_into,
    execute_round_observed_into, BatchScratch, RoundOutcome, RoundScratch,
};
pub use scenario::Scenario;

// Observability surface: downstream users implement `RoundObserver` (or use
// the built-in recorder/pipeline observers) against the `*_observed_*` entry
// points above; `NullObserver` is the statically disabled default.
pub use cdt_obs::{NullObserver, RecordingObserver, RoundObserver};

/// Convenient re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::ledger::{LedgerMode, TradingLedger};
    pub use crate::mechanism::CmabHs;
    pub use crate::round::{execute_round, execute_round_into, RoundOutcome, RoundScratch};
    pub use crate::scenario::Scenario;
    pub use cdt_bandit::{
        CmabUcbPolicy, EpsilonFirstPolicy, OraclePolicy, RandomPolicy, SelectionPolicy,
    };
    pub use cdt_game::{solve_equilibrium, GameContext, SelectedSeller, StackelbergSolution};
    pub use cdt_quality::{QualityObserver, SellerPopulation};
    pub use cdt_types::{
        JobSpec, PlatformCostParams, PriceBounds, Round, SellerCostParams, SellerId, SystemConfig,
        ValuationParams,
    };
}
