//! The CMAB-HS mechanism — Algorithm 1 of the paper, end to end.

use crate::ledger::{LedgerMode, TradingLedger};
use crate::round::{
    execute_round, execute_round_into, execute_round_observed_into, RoundOutcome, RoundScratch,
};
use cdt_bandit::CmabUcbPolicy;
use cdt_obs::{NullObserver, RoundObserver};
use cdt_quality::QualityObserver;
use cdt_types::{CdtError, Result, Round, SystemConfig};
use rand::RngCore;

/// The CMAB-HS data trading mechanism.
///
/// Owns the platform-side state — the extended-UCB selection policy and the
/// round counter — and runs the trading loop of Algorithm 1 against a
/// hidden environment ([`QualityObserver`]):
///
/// - **round 0**: select all `M` sellers at the fixed initial strategy
///   (`τ⁰`, `p_max`, break-even `p^J`), observe, learn;
/// - **rounds 1..N**: select the top-`K` sellers by UCB, play the
///   three-stage Stackelberg game for `⟨p^{J*}, p*, τ*⟩`, observe, learn.
pub struct CmabHs {
    config: SystemConfig,
    policy: CmabUcbPolicy,
    next_round: Round,
}

impl CmabHs {
    /// Creates a mechanism for a validated system configuration.
    ///
    /// # Errors
    /// Currently infallible for a validated [`SystemConfig`] but returns
    /// `Result` to keep room for cross-validation of config against future
    /// policy options.
    pub fn new(config: SystemConfig) -> Result<Self> {
        let policy = CmabUcbPolicy::new(config.m(), config.k());
        Ok(Self {
            config,
            policy,
            next_round: Round::FIRST,
        })
    }

    /// The system configuration this mechanism runs.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The round the next [`CmabHs::step`] will execute.
    #[must_use]
    pub fn next_round(&self) -> Round {
        self.next_round
    }

    /// Read access to the mechanism's UCB policy (estimates, indices).
    #[must_use]
    pub fn policy(&self) -> &CmabUcbPolicy {
        &self.policy
    }

    /// `true` once all `N` configured rounds have run.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.next_round.index() >= self.config.n()
    }

    /// Executes the next round.
    ///
    /// # Errors
    /// Returns [`CdtError::HorizonExhausted`] after the `N`-th round, and
    /// propagates game-construction errors.
    pub fn step(
        &mut self,
        observer: &QualityObserver,
        rng: &mut dyn RngCore,
    ) -> Result<RoundOutcome> {
        if self.is_finished() {
            return Err(CdtError::HorizonExhausted { n: self.config.n() });
        }
        let outcome = execute_round(
            &mut self.policy,
            &self.config,
            observer,
            self.next_round,
            rng,
        )?;
        self.next_round = self.next_round.next();
        Ok(outcome)
    }

    /// Executes the next round into reusable scratch buffers (the
    /// allocation-free hot path; same RNG stream and results as
    /// [`CmabHs::step`]).
    ///
    /// # Errors
    /// Returns [`CdtError::HorizonExhausted`] after the `N`-th round, and
    /// propagates game-construction errors.
    pub fn step_into<'a>(
        &mut self,
        observer: &QualityObserver,
        rng: &mut dyn RngCore,
        scratch: &'a mut RoundScratch,
    ) -> Result<&'a RoundOutcome> {
        self.step_observed_into(observer, rng, scratch, &mut NullObserver)
    }

    /// As [`CmabHs::step_into`], but emits structured round events to `obs`
    /// (statically dispatched; [`NullObserver`] compiles to the plain path).
    ///
    /// # Errors
    /// Returns [`CdtError::HorizonExhausted`] after the `N`-th round, and
    /// propagates game-construction errors.
    pub fn step_observed_into<'a, O: RoundObserver>(
        &mut self,
        observer: &QualityObserver,
        rng: &mut dyn RngCore,
        scratch: &'a mut RoundScratch,
        obs: &mut O,
    ) -> Result<&'a RoundOutcome> {
        if self.is_finished() {
            return Err(CdtError::HorizonExhausted { n: self.config.n() });
        }
        let outcome = execute_round_observed_into(
            &mut self.policy,
            &self.config,
            observer,
            self.next_round,
            rng,
            scratch,
            obs,
        )?;
        self.next_round = self.next_round.next();
        Ok(outcome)
    }

    /// Runs all remaining rounds into a full ledger.
    ///
    /// # Errors
    /// Propagates the first round error encountered.
    pub fn run_to_completion(
        &mut self,
        observer: &QualityObserver,
        rng: &mut dyn RngCore,
    ) -> Result<TradingLedger> {
        self.run_with_mode(observer, rng, LedgerMode::Full)
    }

    /// Runs all remaining rounds, controlling what the ledger retains.
    ///
    /// # Errors
    /// Propagates the first round error encountered.
    pub fn run_with_mode(
        &mut self,
        observer: &QualityObserver,
        rng: &mut dyn RngCore,
        mode: LedgerMode,
    ) -> Result<TradingLedger> {
        self.run_with_mode_observed(observer, rng, mode, &mut NullObserver)
    }

    /// As [`CmabHs::run_with_mode`], but emits structured round events to
    /// `obs` for every round executed.
    ///
    /// # Errors
    /// Propagates the first round error encountered.
    pub fn run_with_mode_observed<O: RoundObserver>(
        &mut self,
        observer: &QualityObserver,
        rng: &mut dyn RngCore,
        mode: LedgerMode,
        obs: &mut O,
    ) -> Result<TradingLedger> {
        let mut ledger = TradingLedger::new(mode);
        match mode {
            // Full mode keeps every outcome: step through scratch and clone
            // the outcome out (with the NullObserver this is the historical
            // ownership path in all but name — one clone per kept round
            // either way).
            LedgerMode::Full => {
                let mut scratch = RoundScratch::new();
                while !self.is_finished() {
                    let outcome = self.step_observed_into(observer, rng, &mut scratch, obs)?;
                    ledger.record(outcome.clone());
                }
                scratch.publish_eq_cache_metrics();
            }
            // Summary mode discards outcomes: run allocation-free.
            LedgerMode::Summary => {
                let mut scratch = RoundScratch::new();
                while !self.is_finished() {
                    let outcome = self.step_observed_into(observer, rng, &mut scratch, obs)?;
                    ledger.record_ref(outcome);
                }
                scratch.publish_eq_cache_metrics();
            }
        }
        Ok(ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario(m: usize, k: usize, l: usize, n: usize, seed: u64) -> (Scenario, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = Scenario::paper_defaults(m, k, l, n, &mut rng).unwrap();
        (s, rng)
    }

    #[test]
    fn runs_the_configured_horizon() {
        let (s, mut rng) = scenario(10, 3, 4, 25, 1);
        let mut mech = CmabHs::new(s.config.clone()).unwrap();
        let ledger = mech.run_to_completion(&s.observer(), &mut rng).unwrap();
        assert_eq!(ledger.rounds(), 25);
        assert!(mech.is_finished());
    }

    #[test]
    fn first_round_selects_all_then_k() {
        let (s, mut rng) = scenario(8, 2, 4, 5, 2);
        let mut mech = CmabHs::new(s.config.clone()).unwrap();
        let obs = s.observer();
        let r0 = mech.step(&obs, &mut rng).unwrap();
        assert_eq!(r0.selection_size(), 8);
        let r1 = mech.step(&obs, &mut rng).unwrap();
        assert_eq!(r1.selection_size(), 2);
    }

    #[test]
    fn stepping_past_horizon_errors() {
        let (s, mut rng) = scenario(5, 2, 3, 2, 3);
        let mut mech = CmabHs::new(s.config.clone()).unwrap();
        let obs = s.observer();
        mech.step(&obs, &mut rng).unwrap();
        mech.step(&obs, &mut rng).unwrap();
        assert!(matches!(
            mech.step(&obs, &mut rng),
            Err(CdtError::HorizonExhausted { n: 2 })
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let (s, mut rng) = scenario(10, 3, 4, 30, seed);
            let mut mech = CmabHs::new(s.config.clone()).unwrap();
            let ledger = mech.run_to_completion(&s.observer(), &mut rng).unwrap();
            (
                ledger.total_observed_revenue(),
                ledger.total_consumer_profit(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn mechanism_learns_qualities() {
        let (s, mut rng) = scenario(10, 3, 10, 400, 5);
        let mut mech = CmabHs::new(s.config.clone()).unwrap();
        let obs = s.observer();
        mech.run_with_mode(&obs, &mut rng, LedgerMode::Summary)
            .unwrap();
        // After 400 rounds the UCB estimates of the true top-K sellers
        // should be close to their true qualities.
        use cdt_bandit::SelectionPolicy as _;
        let truth = s.population.expected_qualities();
        let ranking = s.population.ranking_by_true_quality();
        for &id in ranking.iter().take(3) {
            let est = mech.policy().estimator().mean(id);
            assert!(
                (est - truth[id.index()]).abs() < 0.05,
                "seller {id}: est {est} vs true {}",
                truth[id.index()]
            );
        }
    }

    #[test]
    fn all_parties_profit_over_the_run() {
        let (s, mut rng) = scenario(12, 4, 5, 40, 6);
        let mut mech = CmabHs::new(s.config.clone()).unwrap();
        let ledger = mech.run_to_completion(&s.observer(), &mut rng).unwrap();
        assert!(ledger.total_consumer_profit() > 0.0);
        assert!(ledger.total_platform_profit() >= -1e-9);
        assert!(ledger.total_seller_profit() > 0.0);
    }
}
