//! Ready-made experiment scenarios: a hidden seller population paired with
//! the matching system configuration.
//!
//! Two constructors cover the paper's two setup styles:
//! - [`Scenario::paper_defaults`] — the Table II parameter recipe with a
//!   synthetic population;
//! - [`Scenario::from_dataset`] — candidate sellers derived from a
//!   (synthetic) Chicago taxi trace, qualities attached per the paper's
//!   own synthetic recipe.

use cdt_quality::{QualityObserver, SellerPopulation};
use cdt_trace::Dataset;
use cdt_types::{JobSpec, PriceBounds, Result, SystemConfig};
use rand::Rng;

/// Default observation-noise scale for the truncated-Gaussian quality
/// model (the paper does not state σ; 0.1 reproduces its convergence
/// behaviour at the reported horizons).
pub const DEFAULT_NOISE_SIGMA: f64 = 0.1;

/// A complete, self-consistent experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The validated system configuration (`M`, `K`, `L`, `N`, costs,
    /// valuation, price bounds).
    pub config: SystemConfig,
    /// The hidden ground truth the platform must learn.
    pub population: SellerPopulation,
}

impl Scenario {
    /// Builds a scenario with the paper's Table II defaults:
    /// `q_i ~ U[0,1]` with truncated-Gaussian noise, `a_i ∈ [0.1, 0.5]`,
    /// `b_i ∈ [0.1, 1]`, `θ = 0.1`, `λ = 1`, `ω = 1000`, and wide price
    /// bounds (`p ∈ [0, 10]`, `p^J ∈ [0, 100]`) that leave the interior
    /// equilibrium unclipped at these scales.
    ///
    /// # Errors
    /// Propagates configuration validation errors (e.g. `K > M`).
    pub fn paper_defaults<R: Rng + ?Sized>(
        m: usize,
        k: usize,
        l: usize,
        n: usize,
        rng: &mut R,
    ) -> Result<Self> {
        let population = SellerPopulation::generate_paper_defaults(m, DEFAULT_NOISE_SIGMA, rng);
        Self::from_population(population, k, l, n)
    }

    /// Builds a scenario around an explicit population.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn from_population(
        population: SellerPopulation,
        k: usize,
        l: usize,
        n: usize,
    ) -> Result<Self> {
        let m = population.len();
        let config = SystemConfig::builder()
            .job(JobSpec::new(l, n, 1e6).unwrap().with_description(
                "long-term location-sensitive data collection (paper Table II defaults)",
            ))
            .sellers(m, k)
            .seller_costs(population.cost_params())
            .collection_price_bounds(PriceBounds::new(0.0, 10.0)?)
            .service_price_bounds(PriceBounds::new(0.0, 100.0)?)
            .build()?;
        Ok(Self { config, population })
    }

    /// Builds a scenario from a taxi-trace dataset: the dataset's derived
    /// sellers become the candidate pool (`M = dataset.m()`), `L` is the
    /// dataset's PoI count, and qualities/costs follow the paper's
    /// synthetic recipe (the trace has no quality data — see DESIGN.md).
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn from_dataset<R: Rng + ?Sized>(
        dataset: &Dataset,
        k: usize,
        n: usize,
        rng: &mut R,
    ) -> Result<Self> {
        let population =
            SellerPopulation::generate_paper_defaults(dataset.m(), DEFAULT_NOISE_SIGMA, rng);
        Self::from_population(population, k, dataset.l(), n)
    }

    /// The hidden environment for this scenario.
    #[must_use]
    pub fn observer(&self) -> QualityObserver {
        QualityObserver::new(self.population.clone(), self.config.l())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_trace::TraceConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_defaults_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = Scenario::paper_defaults(30, 5, 10, 100, &mut rng).unwrap();
        assert_eq!(s.config.m(), 30);
        assert_eq!(s.config.k(), 5);
        assert_eq!(s.config.l(), 10);
        assert_eq!(s.config.n(), 100);
        assert_eq!(s.population.len(), 30);
    }

    #[test]
    fn rejects_k_above_m() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(Scenario::paper_defaults(3, 5, 10, 100, &mut rng).is_err());
    }

    #[test]
    fn from_dataset_uses_derived_pool() {
        let mut rng = StdRng::seed_from_u64(3);
        let dataset = Dataset::build(&TraceConfig::small(), 5, 40, &mut rng);
        let s = Scenario::from_dataset(&dataset, 4, 50, &mut rng).unwrap();
        assert_eq!(s.config.m(), dataset.m());
        assert_eq!(s.config.l(), 5);
    }

    #[test]
    fn observer_matches_scenario_dimensions() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = Scenario::paper_defaults(10, 2, 7, 10, &mut rng).unwrap();
        let obs = s.observer();
        assert_eq!(obs.num_pois(), 7);
        assert_eq!(obs.population().len(), 10);
    }
}
