//! The trading ledger: per-round and cumulative accounting of revenues,
//! strategies, payments, and profits.
//!
//! Long-horizon experiments run up to `N = 2·10⁵` rounds; storing every
//! [`RoundOutcome`] is convenient for analysis but unnecessary for sweeps,
//! so the ledger supports two modes.

use crate::round::RoundOutcome;
use serde::{Deserialize, Serialize};

/// What the ledger retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LedgerMode {
    /// Keep every [`RoundOutcome`] (examples, small-N analysis).
    Full,
    /// Keep only cumulative aggregates (long-horizon sweeps).
    Summary,
}

/// Cumulative and (optionally) per-round trading records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradingLedger {
    mode: LedgerMode,
    outcomes: Vec<RoundOutcome>,
    rounds: usize,
    total_observed_revenue: f64,
    total_consumer_profit: f64,
    total_platform_profit: f64,
    total_seller_profit: f64,
    total_consumer_payment: f64,
    total_seller_payment: f64,
}

impl TradingLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new(mode: LedgerMode) -> Self {
        Self {
            mode,
            outcomes: Vec::new(),
            rounds: 0,
            total_observed_revenue: 0.0,
            total_consumer_profit: 0.0,
            total_platform_profit: 0.0,
            total_seller_profit: 0.0,
            total_consumer_payment: 0.0,
            total_seller_payment: 0.0,
        }
    }

    /// Records one round, taking ownership (no clone in either mode).
    pub fn record(&mut self, outcome: RoundOutcome) {
        self.accumulate(&outcome);
        if self.mode == LedgerMode::Full {
            self.outcomes.push(outcome);
        }
    }

    /// Records one round by reference. In [`LedgerMode::Summary`] this never
    /// clones — the hot evaluation loop hands in the same reused
    /// [`crate::RoundScratch`] outcome every round; only [`LedgerMode::Full`]
    /// pays for a clone to retain the round.
    pub fn record_ref(&mut self, outcome: &RoundOutcome) {
        self.accumulate(outcome);
        if self.mode == LedgerMode::Full {
            self.outcomes.push(outcome.clone());
        }
    }

    fn accumulate(&mut self, outcome: &RoundOutcome) {
        self.rounds += 1;
        self.total_observed_revenue += outcome.observed_revenue;
        self.total_consumer_profit += outcome.strategy.profits.consumer;
        self.total_platform_profit += outcome.strategy.profits.platform;
        self.total_seller_profit += outcome.strategy.profits.total_seller();
        self.total_consumer_payment += outcome.strategy.consumer_payment();
        self.total_seller_payment += outcome.strategy.seller_payment();
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// All stored outcomes (empty in [`LedgerMode::Summary`]).
    #[must_use]
    pub fn outcomes(&self) -> &[RoundOutcome] {
        &self.outcomes
    }

    /// Total realized revenue `Σ_t Σ_i Σ_l q_{i,l}^t χ_i^t` (Eq. 1).
    #[must_use]
    pub fn total_observed_revenue(&self) -> f64 {
        self.total_observed_revenue
    }

    /// Cumulative consumer profit (Σ PoC).
    #[must_use]
    pub fn total_consumer_profit(&self) -> f64 {
        self.total_consumer_profit
    }

    /// Cumulative platform profit (Σ PoP).
    #[must_use]
    pub fn total_platform_profit(&self) -> f64 {
        self.total_platform_profit
    }

    /// Cumulative profit over all selected sellers (Σ PoS).
    #[must_use]
    pub fn total_seller_profit(&self) -> f64 {
        self.total_seller_profit
    }

    /// Cumulative payments from the consumer to the platform.
    #[must_use]
    pub fn total_consumer_payment(&self) -> f64 {
        self.total_consumer_payment
    }

    /// Cumulative payments from the platform to sellers.
    #[must_use]
    pub fn total_seller_payment(&self) -> f64 {
        self.total_seller_payment
    }

    /// Mean per-round consumer profit.
    #[must_use]
    pub fn mean_consumer_profit(&self) -> f64 {
        self.per_round(self.total_consumer_profit)
    }

    /// Mean per-round platform profit.
    #[must_use]
    pub fn mean_platform_profit(&self) -> f64 {
        self.per_round(self.total_platform_profit)
    }

    /// Mean per-round total seller profit.
    #[must_use]
    pub fn mean_seller_profit(&self) -> f64 {
        self.per_round(self.total_seller_profit)
    }

    fn per_round(&self, total: f64) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            total / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_game::{Aggregates, GameContext, Profits, SelectedSeller, StackelbergSolution};
    use cdt_types::{
        PlatformCostParams, PriceBounds, Round, SellerCostParams, SellerId, ValuationParams,
    };

    fn outcome(round: usize, revenue: f64, consumer: f64) -> RoundOutcome {
        let ctx = GameContext::new(
            vec![SelectedSeller::new(
                SellerId(0),
                0.5,
                SellerCostParams { a: 0.2, b: 0.3 },
            )],
            PlatformCostParams {
                theta: 0.1,
                lambda: 1.0,
            },
            ValuationParams { omega: 10.0 },
            PriceBounds::unbounded(),
            PriceBounds::unbounded(),
            f64::MAX,
        )
        .unwrap();
        RoundOutcome {
            round: Round(round),
            selected: vec![SellerId(0)],
            strategy: StackelbergSolution {
                service_price: 2.0,
                collection_price: 1.0,
                sensing_times: vec![3.0],
                seller_ids: vec![SellerId(0)],
                profits: Profits {
                    consumer,
                    platform: 0.5,
                    sellers: vec![0.25],
                },
                aggregates: Aggregates::from_context(&ctx),
            },
            observed_revenue: revenue,
        }
    }

    #[test]
    fn full_mode_stores_outcomes() {
        let mut l = TradingLedger::new(LedgerMode::Full);
        l.record(outcome(0, 4.0, 1.0));
        l.record(outcome(1, 6.0, 3.0));
        assert_eq!(l.rounds(), 2);
        assert_eq!(l.outcomes().len(), 2);
        assert!((l.total_observed_revenue() - 10.0).abs() < 1e-12);
        assert!((l.total_consumer_profit() - 4.0).abs() < 1e-12);
        assert!((l.mean_consumer_profit() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_mode_discards_outcomes_but_keeps_totals() {
        let mut l = TradingLedger::new(LedgerMode::Summary);
        for t in 0..100 {
            l.record(outcome(t, 1.0, 0.5));
        }
        assert_eq!(l.rounds(), 100);
        assert!(l.outcomes().is_empty());
        assert!((l.total_observed_revenue() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn payments_accumulate() {
        let mut l = TradingLedger::new(LedgerMode::Summary);
        l.record(outcome(0, 1.0, 1.0));
        // consumer payment = pJ·Στ = 2·3 = 6; seller payment = p·Στ = 3.
        assert!((l.total_consumer_payment() - 6.0).abs() < 1e-12);
        assert!((l.total_seller_payment() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_means_are_zero() {
        let l = TradingLedger::new(LedgerMode::Full);
        assert_eq!(l.mean_consumer_profit(), 0.0);
        assert_eq!(l.mean_platform_profit(), 0.0);
        assert_eq!(l.mean_seller_profit(), 0.0);
    }
}
