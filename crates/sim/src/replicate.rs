//! Multi-seed replication: run the same (scenario-shape, policy) cell
//! across independent seeds and report mean ± confidence interval.
//!
//! The paper plots single-run curves; a credible open-source evaluation
//! harness should quantify run-to-run variance, so the `repro` numbers can
//! be read with error bars.

use crate::cells::{run_cells, CellJob};
use crate::policy_spec::PolicySpec;
use crate::report::Table;
use crate::runner::RunResult;
use cdt_core::Scenario;
use cdt_types::{mix_seed, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Mean and spread of one scalar metric across replications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Replicated {
    /// Sample mean across replications.
    pub mean: f64,
    /// Sample (Bessel-corrected) standard deviation.
    pub std_dev: f64,
    /// Number of replications.
    pub n: usize,
}

impl Replicated {
    fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            // An explicit zero-count value instead of a 0/0 = NaN mean.
            return Self {
                mean: 0.0,
                std_dev: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        Self {
            mean,
            std_dev: var.sqrt(),
            n,
        }
    }

    /// Half-width of the ~95% normal confidence interval
    /// (`1.96 · s / √n`; exact small-sample t-quantiles are overkill for a
    /// simulation harness).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// Replicated metrics of one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedRun {
    /// The policy's display label.
    pub name: String,
    /// Expected revenue across replications.
    pub expected_revenue: Replicated,
    /// Regret across replications.
    pub regret: Replicated,
    /// Mean per-round consumer profit across replications.
    pub mean_consumer_profit: Replicated,
}

/// Runs each policy `replications` times on freshly generated scenarios of
/// the same shape (`m`, `k`, `l`, `n`), with both the hidden population
/// and the run randomness re-seeded per replication.
///
/// Seeds are derived with [`mix_seed`] (scenario `rep`:
/// `mix_seed(base_seed, rep)`; run: `mix_seed(scenario_seed, 1 + policy)`),
/// so no two (replication, policy) RNG streams can collide the way the old
/// additive `base + rep·7919` / `seed + i + 1` scheme could.
///
/// The (replication × policy) grid is emitted as one [`CellJob`] stream
/// into the cell-packing scheduler ([`run_cells`]): with `--batch` at 1
/// the cells fan out one per pool job (the historical serial path); above
/// 1 each policy's replications bucket together by shape and pack into
/// lockstep jobs of up to that many lanes. Every job owns its seed and
/// keeps the exact serial round body, so the result is bit-for-bit
/// identical at any thread count, chunk size, batch width, or lane width.
///
/// # Errors
/// Propagates scenario-construction and run errors.
pub fn replicate(
    m: usize,
    k: usize,
    l: usize,
    n: usize,
    specs: &[PolicySpec],
    replications: usize,
    base_seed: u64,
) -> Result<Vec<ReplicatedRun>> {
    // Scenario generation is cheap relative to an N-round run: build all
    // replication scenarios up front, then fan the expensive cells out.
    let scenarios = (0..replications)
        .map(|rep| {
            let mut rng = StdRng::seed_from_u64(mix_seed(base_seed, rep as u64));
            Scenario::paper_defaults(m, k, l, n, &mut rng)
        })
        .collect::<Result<Vec<_>>>()?;

    // One job per (replication × policy) cell, laid out cell-major
    // (`rep * specs.len() + i`); each replication is its own scenario
    // cell. `run_cells` returns the grid in exactly that job order.
    let mut jobs: Vec<CellJob> = Vec::with_capacity(replications * specs.len());
    for (rep, scenario) in scenarios.iter().enumerate() {
        for (i, &spec) in specs.iter().enumerate() {
            jobs.push(CellJob {
                cell: rep as u64,
                scenario,
                spec,
                seed: mix_seed(mix_seed(base_seed, rep as u64), 1 + i as u64),
            });
        }
    }
    let results: Vec<RunResult> = run_cells(&jobs, &[])?;

    Ok(specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            // Cell (rep, i) landed at index rep * specs.len() + i.
            let samples = |metric: fn(&crate::runner::RunResult) -> f64| -> Vec<f64> {
                (0..replications)
                    .map(|rep| metric(&results[rep * specs.len() + i]))
                    .collect()
            };
            ReplicatedRun {
                name: spec.label(),
                expected_revenue: Replicated::from_samples(&samples(|r| r.expected_revenue)),
                regret: Replicated::from_samples(&samples(|r| r.regret)),
                mean_consumer_profit: Replicated::from_samples(&samples(|r| {
                    r.mean_consumer_profit
                })),
            }
        })
        .collect())
}

/// Renders replicated runs as a table with ±95% CI columns.
#[must_use]
pub fn replication_table(title: &str, runs: &[ReplicatedRun]) -> Table {
    let mut t = Table::new(
        title,
        vec![
            "policy".into(),
            "revenue mean".into(),
            "revenue ±95%".into(),
            "regret mean".into(),
            "regret ±95%".into(),
            "PoC mean".into(),
            "PoC ±95%".into(),
        ],
    );
    for r in runs {
        t.push_labeled_row(
            r.name.clone(),
            vec![
                r.expected_revenue.mean,
                r.expected_revenue.ci95_half_width(),
                r.regret.mean,
                r.regret.ci95_half_width(),
                r.mean_consumer_profit.mean,
                r.mean_consumer_profit.ci95_half_width(),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_statistics() {
        let r = Replicated::from_samples(&[1.0, 2.0, 3.0]);
        assert!((r.mean - 2.0).abs() < 1e-12);
        assert!((r.std_dev - 1.0).abs() < 1e-12);
        assert!((r.ci95_half_width() - 1.96 / 3.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_samples_yield_zero_count_not_nan() {
        let r = Replicated::from_samples(&[]);
        assert_eq!(r.n, 0);
        assert_eq!(r.mean, 0.0);
        assert_eq!(r.std_dev, 0.0);
        assert_eq!(r.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let r = Replicated::from_samples(&[5.0]);
        assert_eq!(r.std_dev, 0.0);
        assert_eq!(r.ci95_half_width(), 0.0);
    }

    #[test]
    fn replication_orders_policies_consistently() {
        let runs = replicate(
            16,
            4,
            4,
            150,
            &[PolicySpec::Optimal, PolicySpec::CmabHs, PolicySpec::Random],
            4,
            99,
        )
        .unwrap();
        assert_eq!(runs.len(), 3);
        // Mean ordering must be robust across the replications.
        assert!(runs[0].expected_revenue.mean >= runs[1].expected_revenue.mean);
        assert!(runs[1].expected_revenue.mean > runs[2].expected_revenue.mean);
        // Optimal's regret is identically zero ⇒ zero variance.
        assert!(runs[0].regret.mean.abs() < 1e-9);
        assert!(runs[0].regret.std_dev.abs() < 1e-9);
        // Random's regret varies across seeds.
        assert!(runs[2].regret.std_dev > 0.0);
    }

    #[test]
    fn table_renders_all_policies() {
        let runs = replicate(10, 3, 3, 60, &[PolicySpec::Random], 2, 5).unwrap();
        let t = replication_table("replications", &runs);
        assert_eq!(t.rows.len(), 1);
        assert!(t.to_string().contains("random"));
    }
}
