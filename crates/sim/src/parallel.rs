//! Deterministic parallel job execution for the evaluation engine.
//!
//! Every evaluation workload in this crate is a grid of independent jobs —
//! (replication × policy) cells in [`crate::replicate`], one job per policy
//! in [`crate::compare_policies`], one per sweep point in `experiments/*` —
//! and every job owns its RNG stream via a `u64` seed. That makes
//! parallelism *trivially deterministic*: the jobs are computed in any
//! order on any number of threads, but the results are gathered **by job
//! index**, so the output is bit-for-bit identical to the serial path.
//!
//! Built on [`std::thread::scope`] only — no extra dependencies (the
//! workspace's approved offline set is pinned in DESIGN.md §6). Work is
//! distributed by an atomic cursor (work stealing), so a slow cell (e.g.
//! the largest `M` of a sweep) does not stall the other workers.
//!
//! Thread-count resolution, from most to least specific:
//!
//! 1. the process-wide override set by [`set_thread_override`]
//!    (wired to the `--threads` CLI flag);
//! 2. the `CDT_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 short-circuits to an in-order loop on the calling
//! thread — exactly today's serial code path, with no worker threads
//! spawned at all.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the engine's thread count for this process (`Some(n)` with
/// `n ≥ 1`), or clears the override (`None`) so [`configured_threads`]
/// falls back to `CDT_THREADS` / the machine's parallelism.
///
/// # Panics
/// Panics on `Some(0)`.
pub fn set_thread_override(threads: Option<usize>) {
    if let Some(n) = threads {
        assert!(n >= 1, "thread count must be at least 1");
        THREAD_OVERRIDE.store(n, Ordering::Relaxed);
    } else {
        THREAD_OVERRIDE.store(0, Ordering::Relaxed);
    }
}

/// Parses a `CDT_THREADS`-style value; `None` for anything that is not a
/// positive integer.
fn parse_thread_count(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The number of worker threads evaluation fan-outs will use (override >
/// `CDT_THREADS` > available parallelism; always ≥ 1).
#[must_use]
pub fn configured_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden != 0 {
        return overridden;
    }
    if let Some(n) = std::env::var("CDT_THREADS")
        .ok()
        .as_deref()
        .and_then(parse_thread_count)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` worker threads, returning the
/// results **in item order** — bit-for-bit identical to the serial
/// `items.iter().enumerate().map(..)` as long as each job is a pure
/// function of `(index, item)`.
///
/// `threads <= 1` (or fewer than two items) runs the exact serial path on
/// the calling thread. A panic in any job is propagated to the caller.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let workers = threads.min(n);
    let cursor = AtomicUsize::new(0);
    let mut gathered: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => gathered.push(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Place results by job index so scheduling order never matters.
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, r) in gathered.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every job index is claimed exactly once"))
        .collect()
}

/// As [`parallel_map`] for fallible jobs: returns the first error in *item*
/// order (deterministic regardless of which job failed first in time).
///
/// # Errors
/// Returns the error of the lowest-indexed failing job.
pub fn try_parallel_map<T, R, F, E>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    parallel_map(items, threads, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_in_order() {
        let items: Vec<usize> = (0..97).collect();
        let serial: Vec<usize> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i * 1000 + x * x)
            .collect();
        for threads in [1, 2, 4, 16] {
            let par = parallel_map(&items, threads, |i, &x| i * 1000 + x * x);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_items() {
        let items = [7usize, 8];
        assert_eq!(parallel_map(&items, 64, |_, &x| x + 1), vec![8, 9]);
    }

    #[test]
    fn empty_and_single_item() {
        let empty: [usize; 0] = [];
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[42usize], 8, |i, &x| (i, x)), vec![(0, 42)]);
    }

    #[test]
    fn try_variant_returns_lowest_index_error() {
        let items: Vec<usize> = (0..50).collect();
        let res: Result<Vec<usize>, usize> =
            try_parallel_map(&items, 4, |i, &x| if x % 10 == 3 { Err(i) } else { Ok(x) });
        assert_eq!(
            res.unwrap_err(),
            3,
            "first error in item order, not time order"
        );
    }

    #[test]
    fn try_variant_collects_all_oks() {
        let items: Vec<usize> = (0..20).collect();
        let res: Result<Vec<usize>, ()> = try_parallel_map(&items, 4, |_, &x| Ok(x * 2));
        assert_eq!(res.unwrap(), (0..20).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn job_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(&[1usize, 2, 3], 2, |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn parse_thread_count_accepts_positive_integers_only() {
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 12 "), Some(12));
        assert_eq!(parse_thread_count("0"), None);
        assert_eq!(parse_thread_count("-3"), None);
        assert_eq!(parse_thread_count("many"), None);
        assert_eq!(parse_thread_count(""), None);
    }

    #[test]
    fn override_takes_precedence_and_clears() {
        // Serialized with a lock-free dance: this test owns the global
        // override for its duration; other tests here never set it.
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }
}
