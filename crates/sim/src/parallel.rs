//! Deterministic parallel job execution for the evaluation engine.
//!
//! Every evaluation workload in this crate is a grid of independent jobs —
//! (replication × policy) cells in [`crate::replicate`], one job per policy
//! in [`crate::compare_policies`], one per sweep point in `experiments/*` —
//! and every job owns its RNG stream via a `u64` seed. That makes
//! parallelism *trivially deterministic*: the jobs are computed in any
//! order on any number of threads, but the results are gathered **by job
//! index**, so the output is bit-for-bit identical to the serial path.
//!
//! Built on [`std::thread::scope`] only — no extra dependencies (the
//! workspace's approved offline set is pinned in DESIGN.md §6). Work is
//! distributed by an atomic cursor (work stealing), so a slow cell (e.g.
//! the largest `M` of a sweep) does not stall the other workers.
//!
//! The cursor hands out *adaptive chunks* rather than single jobs
//! (guided self-scheduling): each claim takes
//! `max(1, remaining / (workers × 4))` consecutive jobs, so sweeps with
//! many tiny points (per-point game solves) pay one atomic RMW per chunk
//! instead of per job, while the claims shrink toward single jobs near the
//! tail to keep the load balanced. Results are still gathered **by job
//! index**, so any chunk size is bit-identical. `CDT_CHUNK`/`--chunk`
//! (via [`set_chunk_override`]) pin a fixed chunk size instead — `1`
//! reproduces the PR-1 job-at-a-time claiming exactly.
//!
//! Thread-count resolution, from most to least specific:
//!
//! 1. the process-wide override set by [`set_thread_override`]
//!    (wired to the `--threads` CLI flag);
//! 2. the `CDT_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 short-circuits to an in-order loop on the calling
//! thread — exactly today's serial code path, with no worker threads
//! spawned at all.

use cdt_obs::LatencyHistogram;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the engine's thread count for this process (`Some(n)` with
/// `n ≥ 1`), or clears the override (`None`) so [`configured_threads`]
/// falls back to `CDT_THREADS` / the machine's parallelism.
///
/// # Panics
/// Panics on `Some(0)`.
pub fn set_thread_override(threads: Option<usize>) {
    if let Some(n) = threads {
        assert!(n >= 1, "thread count must be at least 1");
        THREAD_OVERRIDE.store(n, Ordering::Relaxed);
    } else {
        THREAD_OVERRIDE.store(0, Ordering::Relaxed);
    }
}

/// Parses a `CDT_THREADS`-style value; `None` for anything that is not a
/// positive integer.
fn parse_thread_count(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The number of worker threads evaluation fan-outs will use (override >
/// `CDT_THREADS` > available parallelism; always ≥ 1).
#[must_use]
pub fn configured_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden != 0 {
        return overridden;
    }
    let fallback = || {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("CDT_THREADS") {
        Ok(raw) => match parse_thread_count(&raw) {
            Some(n) => n,
            // A set-but-invalid CDT_THREADS used to be silently ignored;
            // surface it once (the counter in the metrics registry still
            // ticks on every resolution through the bad value).
            None => {
                let threads = fallback();
                cdt_obs::warn_once(
                    "cdt-threads-invalid",
                    &format!(
                        "ignoring invalid CDT_THREADS value {raw:?} \
                         (expected a positive integer); using {threads} thread(s)"
                    ),
                );
                threads
            }
        },
        Err(_) => fallback(),
    }
}

/// Process-wide chunk-size override; 0 means "not set" (adaptive chunks).
static CHUNK_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the pool's cursor-claim chunk size for this process (`Some(n)` with
/// `n ≥ 1`; `1` reproduces job-at-a-time claiming), or clears the override
/// (`None`) so [`configured_chunk`] falls back to `CDT_CHUNK` / adaptive
/// chunking. Any chunk size is bit-identical — results are gathered by job
/// index.
///
/// # Panics
/// Panics on `Some(0)`.
pub fn set_chunk_override(chunk: Option<usize>) {
    if let Some(n) = chunk {
        assert!(n >= 1, "chunk size must be at least 1");
        CHUNK_OVERRIDE.store(n, Ordering::Relaxed);
    } else {
        CHUNK_OVERRIDE.store(0, Ordering::Relaxed);
    }
}

/// Parses a `CDT_CHUNK`-style value; `None` for anything that is not a
/// positive integer.
fn parse_chunk(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Resolves a raw `CDT_CHUNK` value, warning once on invalid input —
/// mirroring the `CDT_THREADS` validation. `None` means adaptive chunking.
fn resolve_chunk(raw: Option<&str>) -> Option<usize> {
    let raw = raw?;
    match parse_chunk(raw) {
        Some(n) => Some(n),
        None => {
            cdt_obs::warn_once(
                "cdt-chunk-invalid",
                &format!(
                    "ignoring invalid CDT_CHUNK value {raw:?} \
                     (expected a positive integer); using adaptive chunks"
                ),
            );
            None
        }
    }
}

/// The fixed cursor-claim chunk size, if any (override > `CDT_CHUNK`);
/// `None` selects adaptive chunking (`max(1, remaining / (workers × 4))`).
#[must_use]
pub fn configured_chunk() -> Option<usize> {
    let overridden = CHUNK_OVERRIDE.load(Ordering::Relaxed);
    if overridden != 0 {
        return Some(overridden);
    }
    let env = std::env::var("CDT_CHUNK").ok();
    resolve_chunk(env.as_deref())
}

/// Process-wide lockstep batch-width override; 0 means "not set".
static BATCH_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the lockstep replication batch width for this process (`Some(b)`
/// with `b ≥ 1`; `1` keeps the serial one-replication-per-job path), or
/// clears the override (`None`) so [`configured_batch`] falls back to
/// `CDT_BATCH` / the default of 1. Any batch width is bit-identical — each
/// lane keeps its own seed-derived RNG stream and runs the exact serial
/// round body.
///
/// # Panics
/// Panics on `Some(0)`.
pub fn set_batch_override(batch: Option<usize>) {
    if let Some(b) = batch {
        assert!(b >= 1, "batch width must be at least 1");
        BATCH_OVERRIDE.store(b, Ordering::Relaxed);
    } else {
        BATCH_OVERRIDE.store(0, Ordering::Relaxed);
    }
}

/// Parses a `CDT_BATCH`-style value; `None` for anything that is not a
/// positive integer.
fn parse_batch(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&b| b >= 1)
}

/// Resolves a raw `CDT_BATCH` value, warning once on invalid input —
/// mirroring the `CDT_THREADS` / `CDT_CHUNK` validation. `None` means the
/// unbatched default.
fn resolve_batch(raw: Option<&str>) -> Option<usize> {
    let raw = raw?;
    match parse_batch(raw) {
        Some(b) => Some(b),
        None => {
            cdt_obs::warn_once(
                "cdt-batch-invalid",
                &format!(
                    "ignoring invalid CDT_BATCH value {raw:?} \
                     (expected a positive integer); running unbatched"
                ),
            );
            None
        }
    }
}

/// The lockstep replication batch width (override > `CDT_BATCH` > 1).
/// `1` means the classic one-replication-per-job path; `b > 1` groups up
/// to `b` same-shape replications into one lockstep job.
#[must_use]
pub fn configured_batch() -> usize {
    let overridden = BATCH_OVERRIDE.load(Ordering::Relaxed);
    if overridden != 0 {
        return overridden;
    }
    let env = std::env::var("CDT_BATCH").ok();
    resolve_batch(env.as_deref()).unwrap_or(1)
}

/// Process-wide lane-width override; 0 means "not set".
static LANES_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide fast-math override; 0 = not set, 1 = forced off,
/// 2 = forced on.
static FAST_MATH_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the lane width the chunked column kernels run at (`Some(w)` with
/// `w` in [`cdt_types::lanes::SUPPORTED_LANE_WIDTHS`]; `1` is the scalar
/// reference shape), or clears the override (`None`) so
/// [`configured_lanes`] falls back to `CDT_LANES` / the default width. Any
/// lane width is bit-identical on the default (non-fast-math) path. The
/// resolved configuration is pushed into [`cdt_types::lanes`] immediately.
///
/// # Panics
/// Panics on an unsupported width.
pub fn set_lanes_override(width: Option<usize>) {
    if let Some(w) = width {
        assert!(
            cdt_types::lanes::is_supported_lane_width(w),
            "lane width must be one of {:?}",
            cdt_types::lanes::SUPPORTED_LANE_WIDTHS
        );
        LANES_OVERRIDE.store(w, Ordering::Relaxed);
    } else {
        LANES_OVERRIDE.store(0, Ordering::Relaxed);
    }
    sync_lane_config();
}

/// Forces fast-math on or off for this process (`Some(on)`), or clears the
/// override (`None`) so [`configured_fast_math`] falls back to
/// `CDT_FAST_MATH` / the off default. The resolved configuration is pushed
/// into [`cdt_types::lanes`] immediately.
pub fn set_fast_math_override(on: Option<bool>) {
    let encoded = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FAST_MATH_OVERRIDE.store(encoded, Ordering::Relaxed);
    sync_lane_config();
}

/// Parses a `CDT_LANES`-style value; `None` for anything that is not a
/// supported lane width.
fn parse_lanes(raw: &str) -> Option<usize> {
    raw.trim()
        .parse::<usize>()
        .ok()
        .filter(|&w| cdt_types::lanes::is_supported_lane_width(w))
}

/// Resolves a raw `CDT_LANES` value, warning once on invalid input —
/// mirroring the `CDT_THREADS` / `CDT_CHUNK` validation. `None` means the
/// default lane width.
fn resolve_lanes(raw: Option<&str>) -> Option<usize> {
    let raw = raw?;
    match parse_lanes(raw) {
        Some(w) => Some(w),
        None => {
            cdt_obs::warn_once(
                "cdt-lanes-invalid",
                &format!(
                    "ignoring invalid CDT_LANES value {raw:?} (expected one of {:?}); \
                     using the default width {}",
                    cdt_types::lanes::SUPPORTED_LANE_WIDTHS,
                    cdt_types::lanes::DEFAULT_LANE_WIDTH
                ),
            );
            None
        }
    }
}

/// The lane width the column kernels run at (override > `CDT_LANES` >
/// [`cdt_types::lanes::DEFAULT_LANE_WIDTH`]).
#[must_use]
pub fn configured_lanes() -> usize {
    let overridden = LANES_OVERRIDE.load(Ordering::Relaxed);
    if overridden != 0 {
        return overridden;
    }
    let env = std::env::var("CDT_LANES").ok();
    resolve_lanes(env.as_deref()).unwrap_or(cdt_types::lanes::DEFAULT_LANE_WIDTH)
}

/// Parses a `CDT_FAST_MATH`-style value; `None` for anything that is not a
/// recognized boolean spelling.
fn parse_fast_math(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// Resolves a raw `CDT_FAST_MATH` value, warning once on invalid input.
/// `None` means the deterministic default (fast-math off).
fn resolve_fast_math(raw: Option<&str>) -> Option<bool> {
    let raw = raw?;
    match parse_fast_math(raw) {
        Some(on) => Some(on),
        None => {
            cdt_obs::warn_once(
                "cdt-fast-math-invalid",
                &format!(
                    "ignoring invalid CDT_FAST_MATH value {raw:?} \
                     (expected 1/true/on or 0/false/off); keeping fast-math off"
                ),
            );
            None
        }
    }
}

/// Whether fast-math (reassociated lane reductions) is enabled
/// (override > `CDT_FAST_MATH` > off).
#[must_use]
pub fn configured_fast_math() -> bool {
    match FAST_MATH_OVERRIDE.load(Ordering::Relaxed) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    let env = std::env::var("CDT_FAST_MATH").ok();
    resolve_fast_math(env.as_deref()).unwrap_or(false)
}

/// Process-wide engine-routing override; 0 = not set, 1 = forced off,
/// 2 = forced on (same encoding as [`FAST_MATH_OVERRIDE`]).
static ENGINE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide gather-window override in µs, stored as `value + 1`;
/// 0 means "not set" (a stored 1 encodes a genuine 0 µs window, which is
/// valid and means "dispatch immediately").
static ENGINE_GATHER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Routes cell streams through the resident [`crate::engine`] runtime
/// (`Some(true)`, wired to `--engine`), forces the per-call pool
/// (`Some(false)`), or clears the override (`None`) so
/// [`configured_engine`] falls back to `CDT_ENGINE` / the off default.
/// Either way results are bit-identical — the engine is a scheduling
/// change only; the per-call path stays available as the identity oracle.
pub fn set_engine_override(on: Option<bool>) {
    let encoded = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    ENGINE_OVERRIDE.store(encoded, Ordering::Relaxed);
}

/// Parses a `CDT_ENGINE`-style value; `None` for anything that is not a
/// recognized boolean spelling (same spellings as `CDT_FAST_MATH`).
fn parse_engine(raw: &str) -> Option<bool> {
    parse_fast_math(raw)
}

/// Resolves a raw `CDT_ENGINE` value, warning once on invalid input.
/// `None` means the default (per-call pool; engine off).
fn resolve_engine(raw: Option<&str>) -> Option<bool> {
    let raw = raw?;
    match parse_engine(raw) {
        Some(on) => Some(on),
        None => {
            cdt_obs::warn_once(
                "cdt-engine-invalid",
                &format!(
                    "ignoring invalid CDT_ENGINE value {raw:?} \
                     (expected 1/true/on or 0/false/off); using the per-call pool"
                ),
            );
            None
        }
    }
}

/// Whether cell streams route through the resident engine runtime
/// (override > `CDT_ENGINE` > off).
#[must_use]
pub fn configured_engine() -> bool {
    match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    let env = std::env::var("CDT_ENGINE").ok();
    resolve_engine(env.as_deref()).unwrap_or(false)
}

/// Pins the engine's gather window in microseconds (`Some(us)`; `0` is
/// valid and dispatches immediately), or clears the override (`None`) so
/// [`configured_engine_gather_us`] falls back to `CDT_ENGINE_GATHER_US` /
/// [`crate::settings::SimSettings::DEFAULT_ENGINE_GATHER_US`]. The window
/// only trades latency against cross-request packing opportunity — any
/// value is bit-identical.
pub fn set_engine_gather_override(us: Option<u64>) {
    match us {
        // Stored off-by-one so an explicit 0 µs survives the 0 = "unset"
        // encoding; clamp instead of wrapping on a (nonsensical) usize::MAX.
        Some(us) => {
            let encoded = usize::try_from(us).unwrap_or(usize::MAX).saturating_add(1);
            ENGINE_GATHER_OVERRIDE.store(encoded, Ordering::Relaxed);
        }
        None => ENGINE_GATHER_OVERRIDE.store(0, Ordering::Relaxed),
    }
}

/// Parses a `CDT_ENGINE_GATHER_US`-style value; `None` for anything that
/// is not a non-negative integer (0 is valid: dispatch immediately).
fn parse_engine_gather(raw: &str) -> Option<u64> {
    raw.trim().parse::<u64>().ok()
}

/// Resolves a raw `CDT_ENGINE_GATHER_US` value, warning once on invalid
/// input. `None` means the default window.
fn resolve_engine_gather(raw: Option<&str>) -> Option<u64> {
    let raw = raw?;
    match parse_engine_gather(raw) {
        Some(us) => Some(us),
        None => {
            cdt_obs::warn_once(
                "cdt-engine-gather-invalid",
                &format!(
                    "ignoring invalid CDT_ENGINE_GATHER_US value {raw:?} \
                     (expected a non-negative integer, microseconds); using the default window of {} us",
                    crate::settings::SimSettings::DEFAULT_ENGINE_GATHER_US
                ),
            );
            None
        }
    }
}

/// The engine's gather window in microseconds (override >
/// `CDT_ENGINE_GATHER_US` >
/// [`crate::settings::SimSettings::DEFAULT_ENGINE_GATHER_US`]).
#[must_use]
pub fn configured_engine_gather_us() -> u64 {
    let overridden = ENGINE_GATHER_OVERRIDE.load(Ordering::Relaxed);
    if overridden != 0 {
        return (overridden - 1) as u64;
    }
    let env = std::env::var("CDT_ENGINE_GATHER_US").ok();
    resolve_engine_gather(env.as_deref())
        .unwrap_or(crate::settings::SimSettings::DEFAULT_ENGINE_GATHER_US)
}

/// Pushes the resolved lane configuration ([`configured_lanes`],
/// [`configured_fast_math`]) into the process-wide [`cdt_types::lanes`]
/// state the column kernels read.
///
/// Called automatically by [`set_lanes_override`] /
/// [`set_fast_math_override`]; binaries that rely purely on the
/// environment (`CDT_LANES` / `CDT_FAST_MATH`) call it once at startup.
/// Library code never calls it implicitly, so tests that drive
/// [`cdt_types::lanes`] directly are not clobbered mid-run.
pub fn sync_lane_config() {
    cdt_types::lanes::set_lane_width(Some(configured_lanes()));
    cdt_types::lanes::set_fast_math(configured_fast_math());
}

/// Per-worker introspection accumulated locally and published to the
/// global metrics registry once per `parallel_map` call (never per job).
#[derive(Default)]
struct PoolWorkerStats {
    jobs: u64,
    /// Cursor claims made by this worker (one per chunk).
    chunks: u64,
    /// Non-contiguous cursor claims: how often another worker raced this
    /// one on the shared cursor between two of its own claims.
    steals: u64,
    busy_ns: u64,
    job_ns: LatencyHistogram,
    /// Distribution of claimed chunk sizes (log₂ buckets, unit = jobs).
    chunk_size: LatencyHistogram,
}

impl PoolWorkerStats {
    fn publish(&self, worker: usize, wall_ns: u64) {
        let registry = cdt_obs::global();
        let label = worker.to_string();
        let labels: [(&str, &str); 1] = [("worker", &label)];
        registry.add_counter("cdt_obs_pool_worker_jobs_total", &labels, self.jobs);
        registry.add_counter("cdt_obs_pool_worker_chunks_total", &labels, self.chunks);
        registry.add_counter("cdt_obs_pool_worker_steals_total", &labels, self.steals);
        registry.add_counter("cdt_obs_pool_worker_busy_ns_total", &labels, self.busy_ns);
        registry.add_counter(
            "cdt_obs_pool_worker_idle_ns_total",
            &labels,
            wall_ns.saturating_sub(self.busy_ns),
        );
        registry.merge_histogram("cdt_obs_pool_job_ns", &[], &self.job_ns);
        registry.merge_histogram("cdt_obs_pool_chunk_size", &[], &self.chunk_size);
    }
}

/// Maps `f` over `items` on up to `threads` worker threads, returning the
/// results **in item order** — bit-for-bit identical to the serial
/// `items.iter().enumerate().map(..)` as long as each job is a pure
/// function of `(index, item)`.
///
/// `threads <= 1` (or fewer than two items) runs the exact serial path on
/// the calling thread. A panic in any job is propagated to the caller.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let workers = threads.min(n);
    let cursor = AtomicUsize::new(0);
    let fixed_chunk = configured_chunk();
    // One relaxed atomic load per parallel_map call; all per-job
    // instrumentation below is gated behind this local bool, so the
    // uninstrumented path pays a predictable branch and nothing else.
    let instrument = cdt_obs::is_enabled();
    if instrument {
        cdt_obs::global().set_gauge("cdt_obs_pool_threads", &[], workers as f64);
    }
    // With span tracing on, the whole fan-out gets one `pool` span
    // (parented to the caller's scope); workers re-enter it so run spans
    // created inside jobs chain back to the fan-out that scheduled them,
    // and each cursor claim becomes a `chunk` child span.
    let pool_span = cdt_obs::active_trace().map(|trace| {
        (
            trace,
            cdt_obs::span::next_span_id(),
            cdt_obs::span::current_scope(),
            cdt_obs::span::now_ns(),
        )
    });
    // Watchdog liveness: workers register their slot and tick progress
    // once per cursor claim; passive (atomics only), results unchanged.
    let watch = cdt_obs::health::watchdog_active();
    let mut gathered: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cursor = &cursor;
                let f = &f;
                let pool_span = &pool_span;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let worker_start = instrument.then(Instant::now);
                    let mut stats = PoolWorkerStats::default();
                    let mut last_end: Option<usize> = None;
                    let _pool_scope = pool_span
                        .as_ref()
                        .map(|&(_, id, _, _)| cdt_obs::span::enter_scope(id));
                    let mut chunk_spans: Vec<cdt_obs::SpanRecord> = Vec::new();
                    if watch {
                        cdt_obs::health::worker_begin(w);
                    }
                    loop {
                        // Guided self-scheduling: claim a chunk sized to the
                        // *remaining* work so early claims amortize the atomic
                        // RMW and late claims shrink toward single jobs. The
                        // probe load is advisory only — fetch_add decides.
                        let want = match fixed_chunk {
                            Some(c) => c,
                            None => {
                                let probe = cursor.load(Ordering::Relaxed);
                                if probe >= n {
                                    break;
                                }
                                ((n - probe) / (workers * 4)).max(1)
                            }
                        }
                        .min(n);
                        let start = cursor.fetch_add(want, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + want).min(n);
                        if watch {
                            cdt_obs::health::worker_progress(w);
                        }
                        if instrument {
                            // A worker's claims are contiguous unless another
                            // worker raced the cursor in between — the
                            // work-stealing/contention signal.
                            if last_end.is_some_and(|prev| start != prev) {
                                stats.steals += 1;
                            }
                            last_end = Some(end);
                            stats.chunks += 1;
                            stats.chunk_size.record_ns((end - start) as u64);
                            let chunk_start = pool_span.as_ref().map(|_| cdt_obs::span::now_ns());
                            for i in start..end {
                                let job_start = Instant::now();
                                local.push((i, f(i, &items[i])));
                                let ns = u64::try_from(job_start.elapsed().as_nanos())
                                    .unwrap_or(u64::MAX);
                                stats.jobs += 1;
                                stats.busy_ns = stats.busy_ns.saturating_add(ns);
                                stats.job_ns.record_ns(ns);
                            }
                            if let (Some(&(trace, pool_id, _, _)), Some(c0)) =
                                (pool_span.as_ref(), chunk_start)
                            {
                                chunk_spans.push(
                                    cdt_obs::SpanRecord::new(
                                        trace,
                                        cdt_obs::span::next_span_id(),
                                        Some(pool_id),
                                        "chunk",
                                        c0,
                                        cdt_obs::span::now_ns().saturating_sub(c0),
                                    )
                                    .with_worker(w as u64)
                                    .with_chunk((end - start) as u64),
                                );
                            }
                        } else {
                            for i in start..end {
                                local.push((i, f(i, &items[i])));
                            }
                        }
                    }
                    if watch {
                        cdt_obs::health::worker_end(w);
                    }
                    if !chunk_spans.is_empty() {
                        cdt_obs::publish_spans(&chunk_spans);
                    }
                    if let Some(start) = worker_start {
                        let wall = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        stats.publish(w, wall);
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => gathered.push(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    if let Some((trace, id, parent, start_ns)) = pool_span {
        let mut record = cdt_obs::SpanRecord::new(
            trace,
            id,
            parent,
            "pool",
            start_ns,
            cdt_obs::span::now_ns().saturating_sub(start_ns),
        );
        if let Some(c) = fixed_chunk {
            record = record.with_chunk(c as u64);
        }
        cdt_obs::publish_spans(&[record]);
    }

    // Place results by job index so scheduling order never matters.
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, r) in gathered.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every job index is claimed exactly once"))
        .collect()
}

/// As [`parallel_map`] for fallible jobs: returns the first error in *item*
/// order (deterministic regardless of which job failed first in time).
///
/// # Errors
/// Returns the error of the lowest-indexed failing job.
pub fn try_parallel_map<T, R, F, E>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    parallel_map(items, threads, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_in_order() {
        let items: Vec<usize> = (0..97).collect();
        let serial: Vec<usize> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i * 1000 + x * x)
            .collect();
        for threads in [1, 2, 4, 16] {
            let par = parallel_map(&items, threads, |i, &x| i * 1000 + x * x);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_items() {
        let items = [7usize, 8];
        assert_eq!(parallel_map(&items, 64, |_, &x| x + 1), vec![8, 9]);
    }

    #[test]
    fn empty_and_single_item() {
        let empty: [usize; 0] = [];
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[42usize], 8, |i, &x| (i, x)), vec![(0, 42)]);
    }

    #[test]
    fn try_variant_returns_lowest_index_error() {
        let items: Vec<usize> = (0..50).collect();
        let res: Result<Vec<usize>, usize> =
            try_parallel_map(&items, 4, |i, &x| if x % 10 == 3 { Err(i) } else { Ok(x) });
        assert_eq!(
            res.unwrap_err(),
            3,
            "first error in item order, not time order"
        );
    }

    #[test]
    fn try_variant_collects_all_oks() {
        let items: Vec<usize> = (0..20).collect();
        let res: Result<Vec<usize>, ()> = try_parallel_map(&items, 4, |_, &x| Ok(x * 2));
        assert_eq!(res.unwrap(), (0..20).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn job_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(&[1usize, 2, 3], 2, |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_metrics_appear_when_pipeline_installed() {
        // The pool publishes per-worker stats only while a pipeline is
        // installed; results stay identical either way.
        let items: Vec<u64> = (0..40).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();

        cdt_obs::uninstall();
        assert_eq!(parallel_map(&items, 4, |_, &x| x * 3), expect);

        cdt_obs::install(cdt_obs::ObsConfig::default()).unwrap();
        let before: u64 = (0..4)
            .map(|w| {
                cdt_obs::global().counter_value(
                    "cdt_obs_pool_worker_jobs_total",
                    &[("worker", &w.to_string())],
                )
            })
            .sum();
        assert_eq!(parallel_map(&items, 4, |_, &x| x * 3), expect);
        let after: u64 = (0..4)
            .map(|w| {
                cdt_obs::global().counter_value(
                    "cdt_obs_pool_worker_jobs_total",
                    &[("worker", &w.to_string())],
                )
            })
            .sum();
        cdt_obs::uninstall();
        // ≥, not ==: other tests in this binary may drive the pool (and the
        // global registry) concurrently.
        assert!(after - before >= items.len() as u64, "{before} -> {after}");
    }

    #[test]
    fn parse_thread_count_accepts_positive_integers_only() {
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 12 "), Some(12));
        assert_eq!(parse_thread_count("0"), None);
        assert_eq!(parse_thread_count("-3"), None);
        assert_eq!(parse_thread_count("many"), None);
        assert_eq!(parse_thread_count(""), None);
    }

    #[test]
    fn override_takes_precedence_and_clears() {
        // Serialized with a lock-free dance: this test owns the global
        // override for its duration; other tests here never set it.
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn parse_chunk_accepts_positive_integers_only() {
        assert_eq!(parse_chunk("8"), Some(8));
        assert_eq!(parse_chunk(" 1 "), Some(1));
        assert_eq!(parse_chunk("0"), None);
        assert_eq!(parse_chunk("-2"), None);
        assert_eq!(parse_chunk("huge"), None);
        assert_eq!(parse_chunk(""), None);
    }

    #[test]
    fn resolve_chunk_warns_once_and_falls_back_to_adaptive() {
        assert_eq!(resolve_chunk(None), None);
        assert_eq!(resolve_chunk(Some("16")), Some(16));
        // Invalid values fall back to adaptive chunking (None) and tick the
        // warning counter (which counts even without an installed pipeline).
        let labels: [(&str, &str); 1] = [("kind", "cdt-chunk-invalid")];
        let before = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert_eq!(resolve_chunk(Some("nope")), None);
        let after = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn parse_batch_accepts_positive_integers_only() {
        assert_eq!(parse_batch("4"), Some(4));
        assert_eq!(parse_batch(" 2 "), Some(2));
        assert_eq!(parse_batch("0"), None);
        assert_eq!(parse_batch("-1"), None);
        assert_eq!(parse_batch("wide"), None);
        assert_eq!(parse_batch(""), None);
    }

    #[test]
    fn resolve_batch_warns_once_and_falls_back_to_unbatched() {
        assert_eq!(resolve_batch(None), None);
        assert_eq!(resolve_batch(Some("8")), Some(8));
        let labels: [(&str, &str); 1] = [("kind", "cdt-batch-invalid")];
        let before = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert_eq!(resolve_batch(Some("nope")), None);
        let after = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn parse_lanes_accepts_supported_widths_only() {
        assert_eq!(parse_lanes("4"), Some(4));
        assert_eq!(parse_lanes(" 8 "), Some(8));
        assert_eq!(parse_lanes("1"), Some(1));
        assert_eq!(parse_lanes("3"), None);
        assert_eq!(parse_lanes("0"), None);
        assert_eq!(parse_lanes("-4"), None);
        assert_eq!(parse_lanes("wide"), None);
        assert_eq!(parse_lanes(""), None);
    }

    #[test]
    fn resolve_lanes_warns_once_and_falls_back_to_default() {
        assert_eq!(resolve_lanes(None), None);
        assert_eq!(resolve_lanes(Some("2")), Some(2));
        let labels: [(&str, &str); 1] = [("kind", "cdt-lanes-invalid")];
        let before = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert_eq!(resolve_lanes(Some("16")), None);
        let after = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn parse_fast_math_accepts_boolean_spellings_only() {
        for on in ["1", "true", "on", "yes", " TRUE "] {
            assert_eq!(parse_fast_math(on), Some(true), "{on:?}");
        }
        for off in ["0", "false", "off", "no", " False "] {
            assert_eq!(parse_fast_math(off), Some(false), "{off:?}");
        }
        for bad in ["", "2", "fast", "maybe"] {
            assert_eq!(parse_fast_math(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn resolve_fast_math_warns_once_and_stays_off() {
        assert_eq!(resolve_fast_math(None), None);
        assert_eq!(resolve_fast_math(Some("on")), Some(true));
        assert_eq!(resolve_fast_math(Some("off")), Some(false));
        let labels: [(&str, &str); 1] = [("kind", "cdt-fast-math-invalid")];
        let before = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert_eq!(resolve_fast_math(Some("turbo")), None);
        let after = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn parse_engine_accepts_boolean_spellings_only() {
        for on in ["1", "true", "on", "yes", " ON "] {
            assert_eq!(parse_engine(on), Some(true), "{on:?}");
        }
        for off in ["0", "false", "off", "no"] {
            assert_eq!(parse_engine(off), Some(false), "{off:?}");
        }
        for bad in ["", "2", "resident", "maybe"] {
            assert_eq!(parse_engine(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn resolve_engine_warns_once_and_stays_off() {
        assert_eq!(resolve_engine(None), None);
        assert_eq!(resolve_engine(Some("on")), Some(true));
        assert_eq!(resolve_engine(Some("off")), Some(false));
        let labels: [(&str, &str); 1] = [("kind", "cdt-engine-invalid")];
        let before = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert_eq!(resolve_engine(Some("resident")), None);
        let after = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn engine_override_takes_precedence_and_clears() {
        // This test owns the engine override for its duration; other tests
        // in this module never set it.
        set_engine_override(Some(true));
        assert!(configured_engine());
        set_engine_override(Some(false));
        assert!(!configured_engine());
        set_engine_override(None);
        // With no override and (normally) no CDT_ENGINE set, the engine
        // defaults to off.
        if std::env::var("CDT_ENGINE").is_err() {
            assert!(!configured_engine());
        }
    }

    #[test]
    fn parse_engine_gather_accepts_non_negative_integers_only() {
        assert_eq!(parse_engine_gather("150"), Some(150));
        assert_eq!(parse_engine_gather(" 0 "), Some(0));
        assert_eq!(parse_engine_gather("-5"), None);
        assert_eq!(parse_engine_gather("fast"), None);
        assert_eq!(parse_engine_gather(""), None);
    }

    #[test]
    fn resolve_engine_gather_warns_once_and_falls_back_to_default() {
        assert_eq!(resolve_engine_gather(None), None);
        assert_eq!(resolve_engine_gather(Some("250")), Some(250));
        let labels: [(&str, &str); 1] = [("kind", "cdt-engine-gather-invalid")];
        let before = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert_eq!(resolve_engine_gather(Some("soon")), None);
        let after = cdt_obs::global().counter_value("cdt_obs_warnings_total", &labels);
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn engine_gather_override_preserves_explicit_zero_and_clears() {
        // This test owns the gather override for its duration.
        set_engine_gather_override(Some(0));
        assert_eq!(configured_engine_gather_us(), 0, "explicit 0 us survives");
        set_engine_gather_override(Some(750));
        assert_eq!(configured_engine_gather_us(), 750);
        set_engine_gather_override(None);
        if std::env::var("CDT_ENGINE_GATHER_US").is_err() {
            assert_eq!(
                configured_engine_gather_us(),
                crate::settings::SimSettings::DEFAULT_ENGINE_GATHER_US
            );
        }
    }

    #[test]
    fn chunk_sizes_are_bit_identical_and_override_clears() {
        // One test owns the global chunk override for its duration (other
        // tests here never set it). Gather-by-index makes the chunk size
        // invisible to the output; pin that across fixed sizes spanning
        // "smaller than n/threads" through "one chunk swallows everything",
        // plus the adaptive default.
        let items: Vec<usize> = (0..103).collect();
        let serial: Vec<usize> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i * 7 + x * x)
            .collect();
        for chunk in [1usize, 2, 5, 64, 1024] {
            set_chunk_override(Some(chunk));
            assert_eq!(configured_chunk(), Some(chunk));
            for threads in [2, 4, 16] {
                let par = parallel_map(&items, threads, |i, &x| i * 7 + x * x);
                assert_eq!(par, serial, "chunk = {chunk}, threads = {threads}");
            }
        }
        set_chunk_override(None);
        // With no override and (normally) no CDT_CHUNK, resolution falls
        // through to the environment; either way the override is gone.
        assert_ne!(configured_chunk(), Some(1024));
        let par = parallel_map(&items, 4, |i, &x| i * 7 + x * x);
        assert_eq!(par, serial, "adaptive chunking");
    }
}
