//! # cdt-sim
//!
//! The evaluation engine for CMAB-HS: runs the paper's comparison
//! algorithms through the identical trading loop, accounts revenue /
//! regret / per-party profits, sweeps parameters, and regenerates the data
//! series behind every figure of the paper's evaluation (Sec. V).
//!
//! Layout:
//! - [`settings`]: the Table II simulation grid and defaults;
//! - [`policy_spec`]: declarative policy construction
//!   ([`PolicySpec::CmabHs`], [`PolicySpec::EpsilonFirst`], …);
//! - [`runner`]: one policy × one scenario → a [`RunResult`] with
//!   checkpointed revenue/regret/profit series;
//! - [`compare`]: many policies on a common scenario;
//! - [`report`]: plain-text tables and CSV export;
//! - [`experiments`]: one module per paper figure (7–18).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod compare;
pub mod experiments;
pub mod policy_spec;
pub mod replicate;
pub mod report;
pub mod runner;
pub mod settings;

pub use compare::{compare_policies, ComparisonResult};
pub use policy_spec::PolicySpec;
pub use replicate::{replicate, replication_table, Replicated, ReplicatedRun};
pub use report::{Series, Table};
pub use runner::{run_policy, Checkpoint, RunResult};
pub use settings::SimSettings;
