//! # cdt-sim
//!
//! The evaluation engine for CMAB-HS: runs the paper's comparison
//! algorithms through the identical trading loop, accounts revenue /
//! regret / per-party profits, sweeps parameters, and regenerates the data
//! series behind every figure of the paper's evaluation (Sec. V).
//!
//! Layout:
//! - [`settings`]: the Table II simulation grid and defaults;
//! - [`policy_spec`]: declarative policy construction
//!   ([`PolicySpec::CmabHs`], [`PolicySpec::EpsilonFirst`], …);
//! - [`runner`]: one policy × one scenario → a [`RunResult`] with
//!   checkpointed revenue/regret/profit series;
//! - [`parallel`]: the deterministic job pool every fan-out runs on
//!   (`--threads` / `CDT_THREADS`; results gathered by job index, so
//!   output is bit-for-bit identical to the serial path);
//! - [`batch`]: the lockstep replication runner (`--batch` / `CDT_BATCH`):
//!   up to `B` same-shape replications advance round-by-round through one
//!   job with SoA policy state, each lane bit-identical to its serial run;
//! - [`arena`]: per-worker scratch arenas recycling round/batch scratch
//!   buffers across consecutive jobs on a thread;
//! - [`cells`]: the cell-packing scheduler — a whole sweep grid flattened
//!   into [`cells::CellJob`]s, bucketed by lockstep-compatible shape, and
//!   packed into batches of up to `--batch` lanes with ragged tails
//!   coalesced across cells;
//! - [`engine`]: the opt-in resident runtime (`--engine` / `CDT_ENGINE`):
//!   persistent workers parked on a condvar-backed submission queue, with
//!   cross-request cell packing behind a short gather window
//!   (`--engine-gather-us`) and warm scratch arenas across submissions;
//! - [`compare`]: many policies on a common scenario;
//! - [`report`]: plain-text tables and CSV export;
//! - [`experiments`]: one module per paper figure (7–18).
//!
//! Observability: [`runner::run_policy`] consults the globally installed
//! `cdt_obs` pipeline, so installing one (`cdt_obs::install`) instruments
//! every experiment and comparison without changing any signature; the
//! job pool in [`parallel`] publishes per-worker introspection to the same
//! registry while a pipeline is active.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod arena;
pub mod batch;
pub mod cells;
pub mod compare;
pub mod engine;
pub mod experiments;
pub mod parallel;
pub mod policy_spec;
pub mod replicate;
pub mod report;
pub mod runner;
pub mod settings;

pub use arena::{arena_counters, with_batch_scratch, with_round_scratch};
pub use batch::{run_policy_batch, run_policy_batch_observed};
pub use cells::{
    pack_cells, run_cells, run_cells_observed, run_point_cells, CellJob, CellPackStats,
    PackedGroup, ShapeKey,
};
pub use compare::{compare_policies, compare_policies_grid, ComparisonResult};
pub use engine::{Engine, SubmitHandle};
pub use parallel::{
    configured_batch, configured_chunk, configured_engine, configured_engine_gather_us,
    configured_fast_math, configured_lanes, configured_threads, parallel_map, set_batch_override,
    set_chunk_override, set_engine_gather_override, set_engine_override, set_fast_math_override,
    set_lanes_override, set_thread_override, sync_lane_config, try_parallel_map,
};
pub use policy_spec::PolicySpec;
pub use replicate::{replicate, replication_table, Replicated, ReplicatedRun};
pub use report::{Series, Table};
pub use runner::{run_policy, run_policy_observed, Checkpoint, RunResult};
pub use settings::SimSettings;
