//! Plain-text tables and CSV export for experiment results.
//!
//! The benchmark harness prints the same rows/series the paper's figures
//! plot; EXPERIMENTS.md records them next to the paper's qualitative
//! claims.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One cell of a report table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// A numeric value, rendered with adaptive precision.
    Num(f64),
    /// A text label.
    Text(String),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => write!(f, "{s}"),
            Cell::Num(x) => {
                let a = x.abs();
                if *x == 0.0 {
                    write!(f, "0")
                } else if !(1e-3..1e6).contains(&a) {
                    write!(f, "{x:.3e}")
                } else if a >= 100.0 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x:.4}")
                }
            }
        }
    }
}

/// A titled table with a header row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (printed above the grid).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row of numbers.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row.into_iter().map(Cell::Num).collect());
    }

    /// Appends a row whose first cell is a label and the rest numbers.
    ///
    /// # Panics
    /// Panics if `1 + values.len()` differs from the header width.
    pub fn push_labeled_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len() + 1, self.columns.len(), "row width mismatch");
        let mut row = vec![Cell::Text(label.into())];
        row.extend(values.into_iter().map(Cell::Num));
        self.rows.push(row);
    }

    /// Appends a row of text cells.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_text_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row.into_iter().map(Cell::Text).collect());
    }

    /// CSV rendering (header + rows, comma-separated, numbers at full
    /// precision).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .map(|c| match c {
                    Cell::Num(x) => format!("{x}"),
                    Cell::Text(s) => s.replace(',', ";"),
                })
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compute column widths over header + rendered cells.
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::to_string).collect())
            .collect();
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// A named 1-D data series (one curve of a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (e.g. `"CMAB-HS"`).
    pub name: String,
    /// X values.
    pub x: Vec<f64>,
    /// Y values, parallel to `x`.
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series.
    ///
    /// # Panics
    /// Panics if `x` and `y` lengths differ.
    #[must_use]
    pub fn new(name: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series lengths differ");
        Self {
            name: name.into(),
            x,
            y,
        }
    }

    /// Collects several same-x series into a table with one column per
    /// series.
    ///
    /// # Panics
    /// Panics if the series do not share identical x grids.
    #[must_use]
    pub fn tabulate(title: impl Into<String>, x_name: &str, series: &[Series]) -> Table {
        let mut columns = vec![x_name.to_owned()];
        columns.extend(series.iter().map(|s| s.name.clone()));
        let mut table = Table::new(title, columns);
        if let Some(first) = series.first() {
            for s in series {
                assert_eq!(s.x, first.x, "series x grids differ");
            }
            for (i, &x) in first.x.iter().enumerate() {
                let mut row = vec![x];
                row.extend(series.iter().map(|s| s.y[i]));
                table.push_row(row);
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_display_aligns_columns() {
        let mut t = Table::new("demo", vec!["x".into(), "value".into()]);
        t.push_row(vec![1.0, 123.456]);
        t.push_row(vec![2.0, 0.5]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("value"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_round_numbers_full_precision() {
        let mut t = Table::new("demo", vec!["x".into()]);
        t.push_row(vec![0.1234567890123]);
        assert!(t.to_csv().contains("0.1234567890123"));
    }

    #[test]
    fn csv_escapes_commas_in_text() {
        let mut t = Table::new("demo", vec!["label".into()]);
        t.push_text_row(vec!["a,b".into()]);
        assert!(t.to_csv().contains("a;b"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = Table::new("demo", vec!["a".into(), "b".into()]);
        t.push_row(vec![1.0]);
    }

    #[test]
    fn labeled_rows() {
        let mut t = Table::new("demo", vec!["algo".into(), "rev".into()]);
        t.push_labeled_row("CMAB-HS", vec![42.0]);
        assert!(t.to_string().contains("CMAB-HS"));
    }

    #[test]
    fn tabulate_merges_series() {
        let a = Series::new("a", vec![1.0, 2.0], vec![10.0, 20.0]);
        let b = Series::new("b", vec![1.0, 2.0], vec![30.0, 40.0]);
        let t = Series::tabulate("fig", "n", &[a, b]);
        assert_eq!(t.columns, vec!["n", "a", "b"]);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "series x grids differ")]
    fn tabulate_rejects_mismatched_grids() {
        let a = Series::new("a", vec![1.0], vec![10.0]);
        let b = Series::new("b", vec![2.0], vec![30.0]);
        let _ = Series::tabulate("fig", "n", &[a, b]);
    }

    #[test]
    fn cell_formatting_adapts() {
        assert_eq!(Cell::Num(0.0).to_string(), "0");
        assert_eq!(Cell::Num(1234567.0).to_string(), "1.235e6");
        assert_eq!(Cell::Num(0.00001).to_string(), "1.000e-5");
        assert_eq!(Cell::Num(123.4).to_string(), "123.4");
        assert_eq!(Cell::Num(1.5).to_string(), "1.5000");
    }
}
