//! Lockstep batched policy runs: `B` replications of the same scenario
//! shape advance round-by-round through one job.
//!
//! [`run_policy_batch`] is the batch counterpart of
//! [`crate::runner::run_policy`]: lane `b` runs `spec` on `scenarios[b]`
//! with its own RNG stream from `seeds[b]`, and every lane's [`RunResult`]
//! is bit-for-bit what the serial runner would produce for that
//! (scenario, seed) pair — the engine executes the identical round body
//! per lane ([`execute_batch_round_observed_into`]), and the accounting
//! below mirrors the serial loop statement-for-statement. Batching buys
//! shared policy matrices (SoA estimator state), shared scratch, and one
//! scheduling unit per `B` replications.

use crate::policy_spec::PolicySpec;
use crate::runner::{Checkpoint, RunResult};
use cdt_bandit::RegretAccountant;
use cdt_core::{
    execute_batch_round_observed_into, BatchScratch, NullObserver, RoundObserver, Scenario,
};
use cdt_obs::PhaseTimer;
use cdt_quality::{QualityObserver, SellerPopulation};
use cdt_types::{Result, Round, SystemConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-lane metric accumulators, mirroring the serial runner's locals.
struct LaneAccount {
    accountant: RegretAccountant,
    consumer_profit: f64,
    platform_profit: f64,
    seller_profit: f64,
    observed_revenue: f64,
    snapshots: Vec<Checkpoint>,
    next_checkpoint: usize,
}

/// Runs `spec` on every lane's scenario in lockstep, one lane per
/// (scenario, seed) pair, reusing `scratch` across calls.
///
/// Consults the globally installed observability pipeline exactly like
/// [`crate::runner::run_policy`] (one per-run observer per lane, labeled
/// `"{policy}/seed{seed}"`).
///
/// # Errors
/// Propagates round-execution errors.
///
/// # Panics
/// Panics if `seeds` and `scenarios` disagree on length, if `scenarios`
/// is empty, or if the scenarios disagree on shape (`m`, `k`, `n`).
pub fn run_policy_batch(
    scenarios: &[&Scenario],
    spec: PolicySpec,
    seeds: &[u64],
    checkpoints: &[usize],
    scratch: &mut BatchScratch,
) -> Result<Vec<RunResult>> {
    // With span tracing on, the whole lockstep call becomes one
    // `lane_group` span: `lane` carries the active SIMD lane width,
    // `batch` the lane count, `chunk` the pinned pool chunk (if any).
    // Entering its scope here makes every per-lane run span a child.
    let group = cdt_obs::active_trace().map(|trace| {
        let id = cdt_obs::span::next_span_id();
        (
            trace,
            id,
            cdt_obs::span::current_scope(),
            cdt_obs::span::now_ns(),
            cdt_obs::span::enter_scope(id),
        )
    });
    let result = run_policy_batch_dispatch(scenarios, spec, seeds, checkpoints, scratch);
    if let Some((trace, id, parent, start_ns, guard)) = group {
        drop(guard);
        let dur_ns = cdt_obs::span::now_ns().saturating_sub(start_ns);
        let mut record =
            cdt_obs::SpanRecord::new(trace, id, parent, "lane_group", start_ns, dur_ns)
                .with_lane(cdt_types::lanes::lane_width() as u64)
                .with_batch(seeds.len() as u64);
        if let Some(c) = crate::parallel::configured_chunk() {
            record = record.with_chunk(c as u64);
        }
        // Cell-packed groups carry their sweep-cell identity: a uniform
        // group tags the lane_group span itself; a mixed (ragged-tail
        // coalesced) group emits one `cell` child span per distinct cell
        // over the group interval, with `batch` = that cell's lane count.
        // Children cover the parent's full interval, so the flame
        // telescope identity (Σ signed exclusive == root inclusive) is
        // preserved for any mix.
        let mut records = Vec::with_capacity(1);
        let lane_cells = scratch.lane_cells();
        if !lane_cells.is_empty() {
            let first = lane_cells[0];
            if lane_cells.iter().all(|&c| c == first) {
                record = record.with_cell(first);
            } else {
                let mut per_cell: Vec<(u64, u64)> = Vec::new();
                for &cell in lane_cells {
                    match per_cell.iter_mut().find(|(c, _)| *c == cell) {
                        Some((_, lanes)) => *lanes += 1,
                        None => per_cell.push((cell, 1)),
                    }
                }
                for (cell, lanes) in per_cell {
                    records.push(
                        cdt_obs::SpanRecord::new(
                            trace,
                            cdt_obs::span::next_span_id(),
                            Some(id),
                            "cell",
                            start_ns,
                            dur_ns,
                        )
                        .with_cell(cell)
                        .with_batch(lanes),
                    );
                }
            }
        }
        records.push(record);
        cdt_obs::publish_spans(&records);
    }
    result
}

/// The observer-resolution half of [`run_policy_batch`], split out so the
/// span bookkeeping above wraps every return path exactly once.
fn run_policy_batch_dispatch(
    scenarios: &[&Scenario],
    spec: PolicySpec,
    seeds: &[u64],
    checkpoints: &[usize],
    scratch: &mut BatchScratch,
) -> Result<Vec<RunResult>> {
    if cdt_obs::is_enabled() {
        let mut lane_obs = Vec::with_capacity(seeds.len());
        for seed in seeds {
            let label = format!("{}/seed{seed}", spec.label());
            match cdt_obs::observer_for_run(&label) {
                Some(obs) => lane_obs.push(obs),
                None => break,
            }
        }
        if lane_obs.len() == seeds.len() {
            return run_policy_batch_observed(
                scenarios,
                spec,
                seeds,
                checkpoints,
                scratch,
                &mut lane_obs,
            );
        }
    }
    let mut null = vec![NullObserver; seeds.len()];
    run_policy_batch_observed(scenarios, spec, seeds, checkpoints, scratch, &mut null)
}

/// As [`run_policy_batch`], but with one caller-supplied observer per
/// lane. Observers are passive: for any observers this returns the exact
/// per-lane results of the serial [`crate::runner::run_policy`], bit for
/// bit.
///
/// # Errors
/// Propagates round-execution errors.
///
/// # Panics
/// As [`run_policy_batch`], plus if `obs` disagrees on length.
pub fn run_policy_batch_observed<O: RoundObserver>(
    scenarios: &[&Scenario],
    spec: PolicySpec,
    seeds: &[u64],
    checkpoints: &[usize],
    scratch: &mut BatchScratch,
    obs: &mut [O],
) -> Result<Vec<RunResult>> {
    let b = scenarios.len();
    assert!(b > 0, "at least one lane");
    assert_eq!(seeds.len(), b, "one seed per lane");
    assert_eq!(obs.len(), b, "one observer per lane");
    let (m, k, n) = {
        let c = &scenarios[0].config;
        (c.m(), c.k(), c.n())
    };
    for s in scenarios {
        assert!(
            s.config.m() == m && s.config.k() == k && s.config.n() == n,
            "lockstep lanes must share the scenario shape"
        );
    }

    let populations: Vec<&SellerPopulation> = scenarios.iter().map(|s| &s.population).collect();
    let mut policy = spec.build_batch(m, k, n, &populations);
    // Thread sweep-cell identity (metadata only) into the batch policy so
    // diagnostics can attribute lanes to the cells they serve.
    if !scratch.lane_cells().is_empty() {
        policy.set_lane_cells(scratch.lane_cells());
    }
    let observers: Vec<QualityObserver> = scenarios.iter().map(|s| s.observer()).collect();
    let envs: Vec<(&SystemConfig, &QualityObserver)> = scenarios
        .iter()
        .zip(&observers)
        .map(|(s, o)| (&s.config, o))
        .collect();
    let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();

    let mut lanes: Vec<LaneAccount> = scenarios
        .iter()
        .map(|s| LaneAccount {
            accountant: RegretAccountant::new(s.population.expected_qualities(), k, s.config.l()),
            consumer_profit: 0.0,
            platform_profit: 0.0,
            seller_profit: 0.0,
            observed_revenue: 0.0,
            snapshots: Vec::with_capacity(checkpoints.len() + 1),
            next_checkpoint: 0,
        })
        .collect();

    scratch.ensure_lanes(b);
    for t in 0..n {
        execute_batch_round_observed_into(
            policy.as_mut(),
            &envs,
            Round(t),
            &mut rngs,
            scratch,
            obs,
        )?;
        for (lane, acct) in lanes.iter_mut().enumerate() {
            let outcome = scratch.outcome(lane);
            let mut timer = PhaseTimer::start(O::ENABLED);
            acct.accountant.record(&outcome.selected);
            acct.consumer_profit += outcome.strategy.profits.consumer;
            acct.platform_profit += outcome.strategy.profits.platform;
            acct.seller_profit += outcome.strategy.profits.total_seller();
            acct.observed_revenue += outcome.observed_revenue;

            let done = t + 1;
            let due = acct.next_checkpoint < checkpoints.len()
                && checkpoints[acct.next_checkpoint] == done;
            if due || done == n {
                acct.snapshots.push(Checkpoint {
                    rounds: done,
                    expected_revenue: acct.accountant.expected_revenue(),
                    regret: acct.accountant.regret(),
                    consumer_profit: acct.consumer_profit,
                    platform_profit: acct.platform_profit,
                    seller_profit: acct.seller_profit,
                });
                while acct.next_checkpoint < checkpoints.len()
                    && checkpoints[acct.next_checkpoint] <= done
                {
                    acct.next_checkpoint += 1;
                }
            }
            if O::ENABLED {
                obs[lane].regret(Round(t), acct.accountant.regret(), timer.lap());
            }
        }
    }
    scratch.publish_eq_cache_metrics();

    Ok(lanes
        .into_iter()
        .map(|acct| RunResult {
            name: spec.label(),
            rounds: n,
            observed_revenue: acct.observed_revenue,
            expected_revenue: acct.accountant.expected_revenue(),
            regret: acct.accountant.regret(),
            mean_consumer_profit: acct.consumer_profit / n as f64,
            mean_platform_profit: acct.platform_profit / n as f64,
            mean_seller_profit: acct.seller_profit / (n as f64 * k as f64),
            checkpoints: acct.snapshots,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_policy;

    fn scenarios(count: usize, base_seed: u64) -> Vec<Scenario> {
        (0..count)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(base_seed + i as u64);
                Scenario::paper_defaults(14, 3, 4, 80, &mut rng).unwrap()
            })
            .collect()
    }

    #[test]
    fn batched_lanes_match_serial_runs_bit_for_bit() {
        let owned = scenarios(3, 11);
        let lanes: Vec<&Scenario> = owned.iter().collect();
        let seeds = [101u64, 202, 303];
        for spec in [
            PolicySpec::CmabHs,
            PolicySpec::Optimal,
            PolicySpec::EpsilonFirst(0.2),
            PolicySpec::Random,
        ] {
            let serial: Vec<RunResult> = owned
                .iter()
                .zip(seeds)
                .map(|(s, seed)| run_policy(s, spec, seed, &[20, 50]).unwrap())
                .collect();
            let mut scratch = BatchScratch::new();
            let batched = run_policy_batch(&lanes, spec, &seeds, &[20, 50], &mut scratch).unwrap();
            assert_eq!(serial, batched, "{} diverged", spec.label());
        }
    }

    #[test]
    fn recycled_scratch_stays_bit_identical() {
        let owned = scenarios(2, 23);
        let lanes: Vec<&Scenario> = owned.iter().collect();
        let seeds = [7u64, 9];
        let spec = PolicySpec::CmabHs;
        let mut scratch = BatchScratch::new();
        let first = run_policy_batch(&lanes, spec, &seeds, &[], &mut scratch).unwrap();
        // Same job on the recycled (reset) scratch: identical output.
        scratch.reset();
        let again = run_policy_batch(&lanes, spec, &seeds, &[], &mut scratch).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    #[should_panic(expected = "share the scenario shape")]
    fn mismatched_shapes_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Scenario::paper_defaults(10, 2, 3, 50, &mut rng).unwrap();
        let b = Scenario::paper_defaults(12, 2, 3, 50, &mut rng).unwrap();
        let mut scratch = BatchScratch::new();
        let _ = run_policy_batch(&[&a, &b], PolicySpec::Random, &[1, 2], &[], &mut scratch);
    }
}
