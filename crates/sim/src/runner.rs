//! Runs one policy through the full trading loop against a scenario,
//! with checkpointed metric series.

use crate::policy_spec::PolicySpec;
use cdt_bandit::RegretAccountant;
use cdt_core::{execute_round_observed_into, NullObserver, RoundObserver, Scenario};
use cdt_obs::PhaseTimer;
use cdt_types::{Result, Round};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A snapshot of the cumulative metrics after a given number of rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Rounds completed when the snapshot was taken.
    pub rounds: usize,
    /// Cumulative *expected* revenue (true-quality units, Eq. 1).
    pub expected_revenue: f64,
    /// Cumulative expected regret against the optimal policy (Eq. 34).
    pub regret: f64,
    /// Cumulative consumer profit.
    pub consumer_profit: f64,
    /// Cumulative platform profit.
    pub platform_profit: f64,
    /// Cumulative total seller profit.
    pub seller_profit: f64,
}

/// Full result of one policy run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The policy's display label.
    pub name: String,
    /// Rounds executed (`N`).
    pub rounds: usize,
    /// Total *observed* (sampled) revenue.
    pub observed_revenue: f64,
    /// Total expected revenue (regret accounting units).
    pub expected_revenue: f64,
    /// Final cumulative regret (Eq. 34).
    pub regret: f64,
    /// Mean per-round consumer profit (PoC).
    pub mean_consumer_profit: f64,
    /// Mean per-round platform profit (PoP).
    pub mean_platform_profit: f64,
    /// Mean per-round per-*seller* profit (PoS(s) as plotted in Fig. 12(c):
    /// total seller profit / rounds / K).
    pub mean_seller_profit: f64,
    /// Metric snapshots at the requested checkpoints (plus the final round).
    pub checkpoints: Vec<Checkpoint>,
}

impl RunResult {
    /// The checkpoint taken at exactly `rounds`, if any.
    #[must_use]
    pub fn checkpoint_at(&self, rounds: usize) -> Option<&Checkpoint> {
        self.checkpoints.iter().find(|c| c.rounds == rounds)
    }
}

/// Runs `spec` on `scenario` for the configured horizon with its own
/// RNG stream derived from `seed`.
///
/// `checkpoints` is a sorted list of round counts at which to snapshot the
/// cumulative metrics (useful to read one long run as a "revenue vs N"
/// curve for horizon-oblivious policies). The final round is always
/// snapshotted.
///
/// # Errors
/// Propagates round-execution errors.
pub fn run_policy(
    scenario: &Scenario,
    spec: PolicySpec,
    seed: u64,
    checkpoints: &[usize],
) -> Result<RunResult> {
    // One choke point for observability: every experiment, replication grid,
    // and CLI command funnels through here, so consulting the globally
    // installed pipeline in this one place instruments them all. With no
    // pipeline installed this is a single relaxed atomic load and the run
    // proceeds on the statically disabled NullObserver path. With span
    // tracing on, the pipeline observer returned here also synthesizes the
    // causal `run` → `round` → phase span tree for this run (parented to
    // whatever pool/lane-group scope is active on this thread).
    if cdt_obs::is_enabled() {
        let label = format!("{}/seed{seed}", spec.label());
        if let Some(mut obs) = cdt_obs::observer_for_run(&label) {
            return run_policy_observed(scenario, spec, seed, checkpoints, &mut obs);
        }
    }
    run_policy_observed(scenario, spec, seed, checkpoints, &mut NullObserver)
}

/// As [`run_policy`], but emits structured round events (including the
/// `regret` hook with [account-phase] timing) to `obs`.
///
/// Observers are passive: for any observer this returns the exact
/// [`RunResult`] of [`run_policy`], bit for bit.
///
/// [account-phase]: cdt_obs::Phase::Account
///
/// # Errors
/// Propagates round-execution errors.
pub fn run_policy_observed<O: RoundObserver>(
    scenario: &Scenario,
    spec: PolicySpec,
    seed: u64,
    checkpoints: &[usize],
    obs: &mut O,
) -> Result<RunResult> {
    let config = &scenario.config;
    let (m, k, n) = (config.m(), config.k(), config.n());
    let mut policy = spec.build(m, k, n, &scenario.population);
    let observer = scenario.observer();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut accountant =
        RegretAccountant::new(scenario.population.expected_qualities(), k, config.l());
    let mut consumer_profit = 0.0;
    let mut platform_profit = 0.0;
    let mut seller_profit = 0.0;
    let mut observed_revenue = 0.0;
    let mut snapshots = Vec::with_capacity(checkpoints.len() + 1);
    let mut next_checkpoint = 0usize;

    // The round scratch comes from the per-worker arena: consecutive runs
    // on the same thread recycle one scratch's buffers instead of
    // re-growing them per run. A recycled scratch is reset, so results are
    // bit-identical to a fresh `RoundScratch::new()`.
    crate::arena::with_round_scratch(|scratch| -> Result<()> {
        for t in 0..n {
            let outcome = execute_round_observed_into(
                policy.as_mut(),
                config,
                &observer,
                Round(t),
                &mut rng,
                scratch,
                obs,
            )?;
            let mut timer = PhaseTimer::start(O::ENABLED);
            accountant.record(&outcome.selected);
            consumer_profit += outcome.strategy.profits.consumer;
            platform_profit += outcome.strategy.profits.platform;
            seller_profit += outcome.strategy.profits.total_seller();
            observed_revenue += outcome.observed_revenue;

            let done = t + 1;
            let due = next_checkpoint < checkpoints.len() && checkpoints[next_checkpoint] == done;
            if due || done == n {
                snapshots.push(Checkpoint {
                    rounds: done,
                    expected_revenue: accountant.expected_revenue(),
                    regret: accountant.regret(),
                    consumer_profit,
                    platform_profit,
                    seller_profit,
                });
                while next_checkpoint < checkpoints.len() && checkpoints[next_checkpoint] <= done {
                    next_checkpoint += 1;
                }
            }
            if O::ENABLED {
                obs.regret(Round(t), accountant.regret(), timer.lap());
            }
        }
        scratch.publish_eq_cache_metrics();
        Ok(())
    })?;

    Ok(RunResult {
        name: spec.label(),
        rounds: n,
        observed_revenue,
        expected_revenue: accountant.expected_revenue(),
        regret: accountant.regret(),
        mean_consumer_profit: consumer_profit / n as f64,
        mean_platform_profit: platform_profit / n as f64,
        mean_seller_profit: seller_profit / (n as f64 * k as f64),
        checkpoints: snapshots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn scenario(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        Scenario::paper_defaults(20, 4, 5, 120, &mut rng).unwrap()
    }

    #[test]
    fn run_produces_final_checkpoint() {
        let s = scenario(1);
        let r = run_policy(&s, PolicySpec::CmabHs, 99, &[]).unwrap();
        assert_eq!(r.rounds, 120);
        assert_eq!(r.checkpoints.len(), 1);
        assert_eq!(r.checkpoints[0].rounds, 120);
        assert!(r.observed_revenue > 0.0);
    }

    #[test]
    fn checkpoints_are_monotone() {
        let s = scenario(2);
        let r = run_policy(&s, PolicySpec::CmabHs, 99, &[30, 60, 90]).unwrap();
        assert_eq!(r.checkpoints.len(), 4);
        for w in r.checkpoints.windows(2) {
            assert!(w[1].rounds > w[0].rounds);
            assert!(w[1].expected_revenue >= w[0].expected_revenue);
        }
    }

    #[test]
    fn optimal_policy_has_near_zero_regret_after_round_zero() {
        let s = scenario(3);
        let r = run_policy(&s, PolicySpec::Optimal, 99, &[]).unwrap();
        // Optimal selects S* in every round ⇒ regret exactly 0.
        assert!(r.regret.abs() < 1e-9, "regret = {}", r.regret);
    }

    #[test]
    fn random_policy_has_positive_regret() {
        let s = scenario(4);
        let r = run_policy(&s, PolicySpec::Random, 99, &[]).unwrap();
        assert!(r.regret > 0.0);
    }

    #[test]
    fn cmab_beats_random_in_revenue() {
        let s = scenario(5);
        let cmab = run_policy(&s, PolicySpec::CmabHs, 99, &[]).unwrap();
        let random = run_policy(&s, PolicySpec::Random, 99, &[]).unwrap();
        assert!(cmab.expected_revenue > random.expected_revenue);
        assert!(cmab.regret < random.regret);
    }

    #[test]
    fn identical_seed_identical_result() {
        let s = scenario(6);
        let a = run_policy(&s, PolicySpec::CmabHs, 42, &[50]).unwrap();
        let b = run_policy(&s, PolicySpec::CmabHs, 42, &[50]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn observed_run_matches_plain_run_bit_for_bit() {
        let s = scenario(8);
        let plain = run_policy(&s, PolicySpec::CmabHs, 7, &[40]).unwrap();
        let mut rec = cdt_obs::RecordingObserver::new("runner-unit");
        let observed = run_policy_observed(&s, PolicySpec::CmabHs, 7, &[40], &mut rec).unwrap();
        assert_eq!(plain, observed);
        // 6 events per round: start, selection, equilibrium, observation,
        // round_end, regret.
        assert_eq!(rec.records.len(), plain.rounds * 6);
    }

    #[test]
    fn checkpoint_at_finds_snapshots() {
        let s = scenario(7);
        let r = run_policy(&s, PolicySpec::Random, 1, &[30]).unwrap();
        assert!(r.checkpoint_at(30).is_some());
        assert!(r.checkpoint_at(31).is_none());
    }
}
