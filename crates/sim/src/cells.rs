//! Shape-bucketed scenario-cell batching: one job stream for a whole
//! sweep grid, packed into lockstep SoA mega-batches.
//!
//! The lockstep engine ([`crate::batch::run_policy_batch`]) accelerates
//! *replications of one cell*: every lane must share the scenario shape
//! `(M, K, N)` and run the same policy, because one SoA policy matrix and
//! one [`BatchScratch`](cdt_core::BatchScratch) serve all lanes. A sweep
//! grid (regret vs. `K`/`M`/`N`, a policy-comparison matrix, replications
//! of each point) is *many* cells — historically each looped serially
//! through its own pool fan-out, paying per-cell scheduling, arena
//! warm-up, and a serial ragged remainder per cell.
//!
//! This module flattens the whole sweep into one stream of [`CellJob`]s
//! and lets a planner ([`pack_cells`]) bucket them by lockstep-compatible
//! shape ([`ShapeKey`]) and pack each bucket into batches of up to
//! `--batch` lanes. Two properties matter:
//!
//! - **Ragged-tail coalescing.** Jobs from *different* cells that share a
//!   `ShapeKey` (e.g. the replications of every grid point of a
//!   fixed-shape sweep) interleave into full batch groups: a bucket has at
//!   most one underfilled tail group, instead of one per cell.
//! - **Bit identity.** Packing is a scheduling change only. Each job keeps
//!   its own seed-derived RNG stream and the exact serial round body (the
//!   lockstep engine's per-lane contract), and results demux back to their
//!   job index — so [`run_cells`] output is bit-for-bit the per-cell
//!   serial path at any batch × chunk × threads × lanes combination.
//!
//! Cell identity travels with the lanes as pure metadata
//! ([`cdt_core::BatchScratch::set_lane_cells`] →
//! [`cdt_bandit::BatchSelectionPolicy::set_lane_cells`]), so span tracing
//! tags `lane_group` spans (and per-cell `cell` child spans) with the
//! sweep cell each lane served, and the registry counts packing
//! efficiency (`cdt_obs_cell_batches_total`, `cdt_obs_cell_lanes_total`,
//! and the `cdt_obs_cell_batch_lanes` occupancy histogram).
//!
//! # ShapeKey compatibility rules
//!
//! Two jobs may share a lockstep batch iff their [`ShapeKey`]s are equal:
//! same seller count `M`, same selection size `K`, same horizon `N`, and
//! the same [`PolicySpec`] *value* (including parameters — an
//! `EpsilonFirst(0.1)` lane cannot ride with `EpsilonFirst(0.5)`, because
//! one policy instance drives all lanes). The POI count `L` and the
//! hidden populations may differ per lane: the engine keeps those
//! per-lane. Single-round equilibrium solves (the ω/θ parameter sweeps)
//! have no lockstep form at all — no bandit state advances round to
//! round — so they fan out as point cells ([`run_point_cells`]) on the
//! same deterministic pool.

use crate::batch::run_policy_batch;
use crate::policy_spec::PolicySpec;
use crate::runner::{run_policy, RunResult};
use cdt_core::Scenario;
use cdt_obs::LatencyHistogram;
use cdt_types::Result;

/// One schedulable unit of a sweep: run `spec` on `scenario` with `seed`.
///
/// `cell` names the sweep cell the job belongs to (grid point,
/// replication, …) — it is demux/observability metadata only and never
/// influences the run itself.
#[derive(Debug, Clone, Copy)]
pub struct CellJob<'a> {
    /// The sweep cell this job belongs to (caller-defined numbering).
    pub cell: u64,
    /// The scenario the job runs against.
    pub scenario: &'a Scenario,
    /// The policy to run.
    pub spec: PolicySpec,
    /// The job's own RNG seed (bit-identity contract: one stream per job).
    pub seed: u64,
}

/// The lockstep-compatibility key: jobs may share a batch group iff their
/// keys are equal (see the module docs for the rules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeKey {
    /// Seller count `M`.
    pub m: usize,
    /// Selection size `K`.
    pub k: usize,
    /// Horizon `N` (rounds).
    pub n: usize,
    /// The exact policy value (parameters included).
    pub spec: PolicySpec,
}

impl ShapeKey {
    /// The key of one job.
    #[must_use]
    pub fn of(job: &CellJob<'_>) -> Self {
        let c = &job.scenario.config;
        Self {
            m: c.m(),
            k: c.k(),
            n: c.n(),
            spec: job.spec,
        }
    }
}

/// One planned lockstep batch: up to `--batch` job indices sharing a
/// [`ShapeKey`].
#[derive(Debug, Clone, PartialEq)]
pub struct PackedGroup {
    /// The shared shape of every lane in this group.
    pub key: ShapeKey,
    /// Indices into the caller's job slice, in job order.
    pub jobs: Vec<usize>,
}

impl PackedGroup {
    /// How many distinct sweep cells this group's lanes serve (> 1 means
    /// the group coalesced ragged tails across cells).
    #[must_use]
    pub fn distinct_cells(&self, jobs: &[CellJob<'_>]) -> usize {
        let mut seen: Vec<u64> = Vec::with_capacity(self.jobs.len());
        for &ix in &self.jobs {
            let cell = jobs[ix].cell;
            if !seen.contains(&cell) {
                seen.push(cell);
            }
        }
        seen.len()
    }
}

/// Plans the lockstep batches for a job stream: buckets jobs by
/// [`ShapeKey`] (first-seen bucket order, job order within a bucket) and
/// chunks each bucket into groups of at most `batch` lanes.
///
/// Every job index appears in exactly one group. Bucketing is a
/// deterministic linear scan (no hashing — [`PolicySpec`] carries `f64`
/// parameters), so the plan is a pure function of `(jobs, batch)`.
///
/// # Panics
/// Panics if `batch == 0`.
#[must_use]
pub fn pack_cells(jobs: &[CellJob<'_>], batch: usize) -> Vec<PackedGroup> {
    assert!(batch >= 1, "batch width must be at least 1");
    let mut buckets: Vec<(ShapeKey, Vec<usize>)> = Vec::new();
    for (ix, job) in jobs.iter().enumerate() {
        let key = ShapeKey::of(job);
        match buckets.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(ix),
            None => buckets.push((key, vec![ix])),
        }
    }
    buckets
        .into_iter()
        .flat_map(|(key, members)| {
            members
                .chunks(batch)
                .map(|chunk| PackedGroup {
                    key,
                    jobs: chunk.to_vec(),
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Packing efficiency of one [`run_cells_observed`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellPackStats {
    /// Total jobs (lanes) executed.
    pub lanes: usize,
    /// Lockstep batch groups dispatched (equals `lanes` on the unbatched
    /// path).
    pub groups: usize,
    /// Groups whose lanes served more than one distinct sweep cell
    /// (coalesced ragged tails).
    pub coalesced_groups: usize,
    /// Mean lanes per group (`lanes / groups`; 1.0 means no packing win).
    pub mean_occupancy: f64,
}

/// Runs a job stream through the cell-packing scheduler; results return
/// in job order, bit-for-bit identical to running each job serially.
///
/// With [`crate::parallel::configured_batch`] `<= 1` the jobs fan out
/// one-per-job over the deterministic pool, exactly the historical
/// per-cell serial path. Above 1, [`pack_cells`] plans lockstep groups of
/// up to that many lanes and each group runs through
/// [`run_policy_batch`] on a recycled worker-arena scratch.
///
/// # Errors
/// Propagates the first job error in job order.
pub fn run_cells(jobs: &[CellJob<'_>], checkpoints: &[usize]) -> Result<Vec<RunResult>> {
    run_cells_observed(jobs, checkpoints).map(|(results, _)| results)
}

/// As [`run_cells`], additionally reporting the packing-efficiency stats
/// that the registry counters summarize.
///
/// # Errors
/// Propagates the first job error in job order.
pub fn run_cells_observed(
    jobs: &[CellJob<'_>],
    checkpoints: &[usize],
) -> Result<(Vec<RunResult>, CellPackStats)> {
    if crate::parallel::configured_engine() {
        // Opt-in resident runtime (`--engine` / `CDT_ENGINE`): the jobs
        // join the persistent workers' shared submission queue, where they
        // may pack into lockstep batches with *concurrent* submissions.
        // Bit-identical either way — the engine is a scheduling change
        // only, and this per-call path remains the identity oracle.
        return crate::engine::global().submit_observed(jobs, checkpoints);
    }

    let threads = crate::parallel::configured_threads();
    let batch = crate::parallel::configured_batch();

    if batch <= 1 {
        // The historical per-cell serial path: one pool job per cell job
        // (run_policy recycles its RoundScratch through the worker arena).
        let results = crate::parallel::try_parallel_map(jobs, threads, |_, job| {
            run_policy(job.scenario, job.spec, job.seed, checkpoints)
        })?;
        let lanes = jobs.len();
        let stats = CellPackStats {
            lanes,
            groups: lanes,
            coalesced_groups: 0,
            mean_occupancy: if lanes == 0 { 0.0 } else { 1.0 },
        };
        return Ok((results, stats));
    }

    let groups = pack_cells(jobs, batch);
    let grouped = crate::parallel::try_parallel_map(&groups, threads, |_, group| {
        let lanes: Vec<&Scenario> = group.jobs.iter().map(|&ix| jobs[ix].scenario).collect();
        let seeds: Vec<u64> = group.jobs.iter().map(|&ix| jobs[ix].seed).collect();
        let cells: Vec<u64> = group.jobs.iter().map(|&ix| jobs[ix].cell).collect();
        crate::arena::with_batch_scratch(|scratch| {
            // The arena reset the recycled scratch (clearing any previous
            // job's cell metadata); record this group's cells so spans and
            // the batch policy can attribute lanes to sweep cells.
            scratch.set_lane_cells(&cells);
            run_policy_batch(&lanes, group.key.spec, &seeds, checkpoints, scratch)
        })
    })?;

    // Demux: scatter each group's lane results back to their job indices.
    let mut slots: Vec<Option<RunResult>> =
        std::iter::repeat_with(|| None).take(jobs.len()).collect();
    for (group, lane_results) in groups.iter().zip(grouped) {
        for (&ix, result) in group.jobs.iter().zip(lane_results) {
            debug_assert!(slots[ix].is_none(), "job {ix} produced twice");
            slots[ix] = Some(result);
        }
    }
    let results: Vec<RunResult> = slots
        .into_iter()
        .map(|slot| slot.expect("every job is packed into exactly one group"))
        .collect();

    let stats = CellPackStats {
        lanes: jobs.len(),
        groups: groups.len(),
        coalesced_groups: groups.iter().filter(|g| g.distinct_cells(jobs) > 1).count(),
        mean_occupancy: if groups.is_empty() {
            0.0
        } else {
            jobs.len() as f64 / groups.len() as f64
        },
    };
    if cdt_obs::is_enabled() && !groups.is_empty() {
        let registry = cdt_obs::global();
        registry.add_counter("cdt_obs_cell_batches_total", &[], groups.len() as u64);
        registry.add_counter("cdt_obs_cell_lanes_total", &[], jobs.len() as u64);
        registry.add_counter(
            "cdt_obs_cell_coalesced_batches_total",
            &[],
            stats.coalesced_groups as u64,
        );
        // Lane-occupancy histogram: one sample per group, unit = lanes.
        let mut occupancy = LatencyHistogram::default();
        for group in &groups {
            occupancy.record_ns(group.jobs.len() as u64);
        }
        registry.merge_histogram("cdt_obs_cell_batch_lanes", &[], &occupancy);
    }
    Ok((results, stats))
}

/// Fans point cells — jobs with no lockstep form, e.g. the single-round
/// equilibrium solves of the ω/θ parameter sweeps — over the
/// deterministic pool at [`crate::parallel::configured_threads`].
///
/// Results return in item order (bit-identical at any thread count);
/// `--batch` does not apply because a point cell has no round loop to
/// advance in lockstep (see the module docs on ShapeKey compatibility).
///
/// # Errors
/// Propagates the first cell error in item order.
pub fn run_point_cells<T, R, F>(items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R> + Sync,
{
    let threads = crate::parallel::configured_threads();
    crate::parallel::try_parallel_map(items, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario(seed: u64, m: usize, k: usize, n: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        Scenario::paper_defaults(m, k, 4, n, &mut rng).unwrap()
    }

    #[test]
    fn packing_preserves_every_job_exactly_once() {
        let a = scenario(1, 10, 2, 30);
        let b = scenario(2, 12, 3, 30);
        // 5 jobs of shape A interleaved with 3 of shape B.
        let jobs: Vec<CellJob> = (0..8)
            .map(|i| CellJob {
                cell: i / 2,
                scenario: if i % 3 == 0 { &b } else { &a },
                spec: PolicySpec::CmabHs,
                seed: 100 + i,
            })
            .collect();
        for batch in [1usize, 2, 3, 8, 100] {
            let groups = pack_cells(&jobs, batch);
            let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.jobs.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..jobs.len()).collect::<Vec<_>>(), "batch={batch}");
            for group in &groups {
                assert!(group.jobs.len() <= batch);
                for &ix in &group.jobs {
                    assert_eq!(ShapeKey::of(&jobs[ix]), group.key);
                }
            }
        }
    }

    #[test]
    fn ragged_tails_coalesce_across_cells() {
        let s = scenario(3, 10, 2, 30);
        // Three cells of 3 same-shape jobs each; batch 2 packs 9 jobs into
        // ⌈9/2⌉ = 5 groups — the per-cell loop would have needed 6 (one
        // ragged tail per cell instead of one per bucket).
        let jobs: Vec<CellJob> = (0..9)
            .map(|i| CellJob {
                cell: i / 3,
                scenario: &s,
                spec: PolicySpec::Random,
                seed: i,
            })
            .collect();
        let groups = pack_cells(&jobs, 2);
        assert_eq!(groups.len(), 5);
        assert!(
            groups.iter().any(|g| g.distinct_cells(&jobs) > 1),
            "no group coalesced lanes from different cells"
        );
    }

    #[test]
    fn mixed_policy_jobs_never_share_a_group() {
        let s = scenario(4, 10, 2, 30);
        let jobs: Vec<CellJob> = [
            PolicySpec::EpsilonFirst(0.1),
            PolicySpec::EpsilonFirst(0.5),
            PolicySpec::EpsilonFirst(0.1),
        ]
        .iter()
        .enumerate()
        .map(|(i, &spec)| CellJob {
            cell: i as u64,
            scenario: &s,
            spec,
            seed: i as u64,
        })
        .collect();
        let groups = pack_cells(&jobs, 8);
        // ε = 0.1 and ε = 0.5 are different ShapeKeys even though the
        // policy *kind* matches: one instance drives all lanes.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].jobs, vec![0, 2]);
        assert_eq!(groups[1].jobs, vec![1]);
    }

    #[test]
    fn empty_job_stream_is_fine() {
        assert!(pack_cells(&[], 4).is_empty());
        let (results, stats) = run_cells_observed(&[], &[]).unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.groups, 0);
        assert_eq!(stats.mean_occupancy, 0.0);
    }
}
