//! Extension experiment: non-stationary qualities (Def. 3's Remark made
//! concrete) — abrupt quality drift, dynamic regret, and the SW-UCB
//! extension vs the paper's stationary CMAB-HS.
//!
//! Setup: at round `N/2` the bottom half of the sellers (by initial
//! quality) swaps expected qualities with the top half. A stationary
//! estimator then keeps selecting the stale top-K; the sliding-window
//! policy re-converges. Regret here is *dynamic*: measured against the
//! per-round true top-K.

use super::Scale;
use crate::report::{Series, Table};
use cdt_bandit::{CmabUcbPolicy, RandomPolicy, SelectionPolicy, SlidingWindowUcbPolicy};
use cdt_quality::{DriftModel, DriftingObserver, SellerPopulation};
use cdt_types::{Result, Round, SellerId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the drift experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of sellers `M`.
    pub m: usize,
    /// Selection size `K`.
    pub k: usize,
    /// Number of PoIs `L`.
    pub l: usize,
    /// Horizon `N` (the change point is `N/2`).
    pub n: usize,
    /// SW-UCB window, in observations.
    pub window: usize,
    /// Master seed.
    pub seed: u64,
    /// Number of checkpoints along the horizon.
    pub checkpoints: usize,
}

/// The drift-experiment configuration for a scale.
#[must_use]
pub fn config(scale: Scale) -> Config {
    match scale {
        Scale::Paper => Config {
            m: 100,
            k: 10,
            l: 10,
            n: 20_000,
            window: 400,
            seed: 20210419,
            checkpoints: 20,
        },
        Scale::Test => Config {
            m: 20,
            k: 4,
            l: 4,
            n: 1_000,
            window: 80,
            seed: 20210419,
            checkpoints: 10,
        },
    }
}

/// Builds the abrupt-swap drifting observer: seller `i`'s post-change mean
/// is the pre-change mean of seller `M−1−i` in the quality ranking.
fn drifting_observer(cfg: &Config) -> DriftingObserver {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let population = SellerPopulation::generate_paper_defaults(cfg.m, 0.1, &mut rng);
    let ranking = population.ranking_by_true_quality();
    let truth = population.expected_qualities();
    // mirrored[i] = quality of the seller mirrored across the ranking.
    let mut mirrored = vec![0.0; cfg.m];
    for (pos, &id) in ranking.iter().enumerate() {
        let partner = ranking[cfg.m - 1 - pos];
        mirrored[id.index()] = truth[partner.index()];
    }
    let drifts = (0..cfg.m)
        .map(|i| DriftModel::Abrupt {
            at_round: cfg.n / 2,
            new_mean: mirrored[i],
        })
        .collect();
    DriftingObserver::new(population, drifts, 0.1, cfg.l)
}

/// Runs one policy against the drifting environment, returning dynamic
/// regret at each checkpoint.
fn run_dynamic(
    policy: &mut dyn SelectionPolicy,
    observer: &DriftingObserver,
    cfg: &Config,
    seed: u64,
) -> Vec<(usize, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let step = (cfg.n / cfg.checkpoints).max(1);
    let mut regret = 0.0;
    let mut out = Vec::with_capacity(cfg.checkpoints);
    let mut selected = Vec::with_capacity(cfg.k);
    for t in 0..cfg.n {
        let round = Round(t);
        policy.select_into(round, &mut rng, &mut selected);
        let selected_sum: f64 = selected.iter().map(|&id| observer.mean_at(id, round)).sum();
        let optimal = observer.optimal_quality_sum_at(round, cfg.k);
        regret += (optimal - selected_sum) * cfg.l as f64;
        let observations = observer.observe_round(round, &selected, &mut rng);
        policy.observe(round, &observations);
        if (t + 1) % step == 0 || t + 1 == cfg.n {
            out.push((t + 1, regret));
        }
    }
    out
}

/// A per-round "dynamic oracle" that tracks the drifting truth.
struct DynamicOracle<'a> {
    observer: &'a DriftingObserver,
    k: usize,
    estimator: cdt_bandit::QualityEstimator,
}

impl SelectionPolicy for DynamicOracle<'_> {
    fn name(&self) -> String {
        "dynamic-optimal".into()
    }

    fn select(&mut self, round: Round, _rng: &mut dyn rand::RngCore) -> Vec<SellerId> {
        cdt_bandit::top_k_by_score(&self.observer.means_at(round), self.k)
    }

    fn observe(&mut self, _round: Round, observations: &cdt_quality::ObservationMatrix) {
        self.estimator.update_round(observations);
    }

    fn game_quality(&self, id: SellerId) -> f64 {
        self.estimator.mean(id)
    }

    fn estimator(&self) -> &cdt_bandit::QualityEstimator {
        &self.estimator
    }
}

/// Runs the experiment: dynamic regret of CMAB-HS (stationary), SW-UCB,
/// the dynamic oracle, and random.
///
/// # Errors
/// Currently infallible; `Result` for registry uniformity.
pub fn run(cfg: &Config) -> Result<Vec<Table>> {
    let observer = drifting_observer(cfg);

    // Four independent (policy, seed) jobs over the shared drifting truth.
    // Each job constructs its own policy and owns its RNG stream
    // (`cfg.seed + 1 + i`, matching the serial ordering), so the fan-out is
    // bit-for-bit identical to running the policies in sequence.
    let names = [
        "dynamic-optimal",
        "SW-UCB",
        "CMAB-HS (stationary)",
        "random",
    ];
    let jobs: Vec<usize> = (0..names.len()).collect();
    let threads = crate::parallel::configured_threads();
    let curves = crate::parallel::parallel_map(&jobs, threads, |_, &i| {
        let mut policy: Box<dyn SelectionPolicy + '_> = match i {
            0 => Box::new(DynamicOracle {
                observer: &observer,
                k: cfg.k,
                estimator: cdt_bandit::QualityEstimator::new(cfg.m),
            }),
            1 => Box::new(SlidingWindowUcbPolicy::new(cfg.m, cfg.k, cfg.window)),
            2 => Box::new(CmabUcbPolicy::new(cfg.m, cfg.k)),
            _ => Box::new(RandomPolicy::new(cfg.m, cfg.k)),
        };
        run_dynamic(policy.as_mut(), &observer, cfg, cfg.seed + 1 + i as u64)
    });
    let runs: Vec<(String, Vec<(usize, f64)>)> =
        names.iter().map(|n| (*n).to_string()).zip(curves).collect();

    let x: Vec<f64> = runs[0].1.iter().map(|&(t, _)| t as f64).collect();
    let series: Vec<Series> = runs
        .iter()
        .map(|(name, points)| {
            Series::new(
                name.clone(),
                x.clone(),
                points.iter().map(|&(_, r)| r).collect(),
            )
        })
        .collect();
    Ok(vec![Series::tabulate(
        format!(
            "Extension: dynamic regret under abrupt quality swap at round {}",
            cfg.n / 2
        ),
        "rounds",
        &series,
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;

    fn col(t: &Table, i: usize) -> Vec<f64> {
        t.rows
            .iter()
            .map(|r| match &r[i] {
                Cell::Num(x) => *x,
                Cell::Text(_) => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn sw_ucb_beats_stationary_cmab_under_drift() {
        let cfg = config(Scale::Test);
        let tables = run(&cfg).unwrap();
        let t = &tables[0];
        // Columns: rounds, dynamic-optimal, SW-UCB, CMAB-HS, random.
        let sw = col(t, 2);
        let cmab = col(t, 3);
        let random = col(t, 4);
        let last = sw.len() - 1;
        assert!(
            sw[last] < cmab[last],
            "SW-UCB {} should beat stationary CMAB-HS {} under drift",
            sw[last],
            cmab[last]
        );
        assert!(sw[last] < random[last]);
    }

    #[test]
    fn drift_hurts_stationary_cmab_more_than_sw_ucb_after_change_point() {
        let cfg = config(Scale::Test);
        let tables = run(&cfg).unwrap();
        let t = &tables[0];
        let rounds = col(t, 0);
        let sw = col(t, 2);
        let cmab = col(t, 3);
        let mid = rounds
            .iter()
            .position(|&r| r as usize >= cfg.n / 2)
            .unwrap();
        let last = rounds.len() - 1;
        // Regret *accumulated after the swap*: the stationary estimator
        // keeps averaging stale pre-swap evidence, the windowed one
        // forgets it.
        let cmab_post = cmab[last] - cmab[mid];
        let sw_post = sw[last] - sw[mid];
        assert!(
            cmab_post > 1.5 * sw_post,
            "post-drift regret: stationary {cmab_post} vs SW-UCB {sw_post}"
        );
    }

    #[test]
    fn dynamic_oracle_has_least_regret() {
        let cfg = config(Scale::Test);
        let tables = run(&cfg).unwrap();
        let t = &tables[0];
        let oracle = col(t, 1);
        for c in 2..=4 {
            let other = col(t, c);
            assert!(oracle.last().unwrap() <= other.last().unwrap());
        }
    }
}
