//! Figures 9 & 10: total revenue, regret, and Δ-profits as the candidate
//! pool `M` grows (`N = 10⁵`, `K = 10` at paper scale).
//!
//! The populations are *nested*: the `M`-seller pool is the first `M`
//! profiles of one master population, mirroring the paper's "choose M
//! taxis as satisfied sellers" from a fixed 300-taxi trace.
//!
//! The grid rides the cell-packing scheduler via
//! [`compare_policies_grid`] — one `CellJob` per (M-cell × policy) pair;
//! `M` is part of the ShapeKey, so each pool size buckets separately.

use super::Scale;
use crate::compare::{compare_policies_grid, ComparisonResult};
use crate::policy_spec::PolicySpec;
use crate::report::{Series, Table};
use crate::settings::SimSettings;
use cdt_core::Scenario;
use cdt_quality::{SellerPopulation, SellerProfile};
use cdt_types::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the `M` sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// The `M` values to sweep.
    pub m_grid: Vec<usize>,
    /// Selection size `K`.
    pub k: usize,
    /// Number of PoIs `L`.
    pub l: usize,
    /// Rounds per run `N`.
    pub n: usize,
    /// Policies to compare.
    pub policies: Vec<PolicySpec>,
    /// Master seed.
    pub seed: u64,
}

/// The sweep configuration for a scale.
#[must_use]
pub fn config(scale: Scale) -> Config {
    let s = SimSettings::paper_defaults();
    match scale {
        Scale::Paper => Config {
            m_grid: SimSettings::m_grid(),
            k: s.k,
            l: s.l,
            n: s.n,
            policies: PolicySpec::paper_set(),
            seed: s.seed,
        },
        Scale::Test => Config {
            m_grid: vec![10, 20, 30],
            k: 4,
            l: 4,
            n: 250,
            policies: PolicySpec::paper_set(),
            seed: s.seed,
        },
    }
}

/// Result of the `M` sweep.
#[derive(Debug, Clone)]
pub struct VsMResult {
    /// The swept `M` values.
    pub m_grid: Vec<usize>,
    /// Policy labels.
    pub labels: Vec<String>,
    /// One comparison per grid point.
    pub comparisons: Vec<ComparisonResult>,
}

/// Runs the sweep.
///
/// # Errors
/// Propagates run errors.
pub fn run(cfg: &Config) -> Result<VsMResult> {
    let max_m = *cfg.m_grid.iter().max().expect("non-empty grid");
    let master = SellerPopulation::generate_paper_defaults(
        max_m,
        cdt_core::scenario::DEFAULT_NOISE_SIGMA,
        &mut StdRng::seed_from_u64(cfg.seed),
    );
    let labels = cfg.policies.iter().map(PolicySpec::label).collect();
    let scenarios = cfg
        .m_grid
        .iter()
        .map(|&m| {
            let profiles: Vec<SellerProfile> = master.iter().take(m).map(|(_, p)| *p).collect();
            Scenario::from_population(
                SellerPopulation::from_profiles(profiles),
                cfg.k,
                cfg.l,
                cfg.n,
            )
        })
        .collect::<Result<Vec<_>>>()?;
    let seeds: Vec<u64> = (0..cfg.m_grid.len())
        .map(|i| cfg.seed.wrapping_add(2000 * i as u64))
        .collect();
    let comparisons = compare_policies_grid(&scenarios, &cfg.policies, &seeds, &[])?;
    Ok(VsMResult {
        m_grid: cfg.m_grid.clone(),
        labels,
        comparisons,
    })
}

impl VsMResult {
    fn x(&self) -> Vec<f64> {
        self.m_grid.iter().map(|&m| m as f64).collect()
    }

    /// Fig. 9: total revenue and regret vs `M`.
    #[must_use]
    pub fn figure9(&self) -> Vec<Table> {
        let mut revenue = Vec::new();
        let mut regret = Vec::new();
        for label in &self.labels {
            let rev = self
                .comparisons
                .iter()
                .map(|c| c.run(label).expect("label exists").expected_revenue)
                .collect();
            let reg = self
                .comparisons
                .iter()
                .map(|c| c.run(label).expect("label exists").regret)
                .collect();
            revenue.push(Series::new(label.clone(), self.x(), rev));
            regret.push(Series::new(label.clone(), self.x(), reg));
        }
        vec![
            Series::tabulate("Fig. 9(a): total revenue vs M", "M", &revenue),
            Series::tabulate("Fig. 9(b): regret vs M", "M", &regret),
        ]
    }

    /// Fig. 10: Δ-PoC, Δ-PoP, Δ-PoS(s) vs `M`.
    #[must_use]
    pub fn figure10(&self) -> Vec<Table> {
        let non_optimal: Vec<&String> = self.labels.iter().filter(|l| *l != "optimal").collect();
        let make = |f: &dyn Fn(&ComparisonResult, &str) -> f64, title: &str| {
            let series: Vec<Series> = non_optimal
                .iter()
                .map(|label| {
                    let y = self.comparisons.iter().map(|c| f(c, label)).collect();
                    Series::new((*label).clone(), self.x(), y)
                })
                .collect();
            Series::tabulate(title, "M", &series)
        };
        vec![
            make(
                &|c, l| c.delta_poc(l).expect("optimal present"),
                "Fig. 10(a): Δ-PoC vs M",
            ),
            make(
                &|c, l| c.delta_pop(l).expect("optimal present"),
                "Fig. 10(b): Δ-PoP vs M",
            ),
            make(
                &|c, l| c.delta_pos(l).expect("optimal present"),
                "Fig. 10(c): Δ-PoS(s) vs M",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learners_beat_random_across_m() {
        let r = run(&config(Scale::Test)).unwrap();
        for c in &r.comparisons {
            assert!(
                c.run("CMAB-HS").unwrap().expected_revenue
                    > c.run("random").unwrap().expected_revenue
            );
        }
    }

    #[test]
    fn revenue_is_relatively_stable_in_m() {
        // Fig. 9's claim: revenue "keeps stable and grows very slightly"
        // as M increases — the top-K dominates. Allow generous slack at
        // test scale; the point is no order-of-magnitude drift.
        let r = run(&config(Scale::Test)).unwrap();
        let revs: Vec<f64> = r
            .comparisons
            .iter()
            .map(|c| c.run("optimal").unwrap().expected_revenue)
            .collect();
        let min = revs.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let max = revs.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(max / min < 2.0, "optimal revenue swings too much: {revs:?}");
    }

    #[test]
    fn figure_tables_cover_grid() {
        let r = run(&config(Scale::Test)).unwrap();
        for t in r.figure9().iter().chain(r.figure10().iter()) {
            assert_eq!(t.rows.len(), 3);
        }
    }
}
