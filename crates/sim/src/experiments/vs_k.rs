//! Figures 11 & 12: total revenue, regret, and average per-round profits
//! as the selection size `K` grows (`M = 300`, `N = 10⁵` at paper scale).
//!
//! The grid rides the cell-packing scheduler via
//! [`compare_policies_grid`]: every (K-cell × policy) pair becomes one
//! `CellJob`, so with `--batch` above 1 same-shape jobs share lockstep
//! batch groups (each K is its own shape bucket — `K` is part of the
//! ShapeKey).

use super::Scale;
use crate::compare::{compare_policies_grid, ComparisonResult};
use crate::policy_spec::PolicySpec;
use crate::report::{Series, Table};
use crate::settings::SimSettings;
use cdt_core::Scenario;
use cdt_quality::SellerPopulation;
use cdt_types::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the `K` sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of sellers `M`.
    pub m: usize,
    /// The `K` values to sweep.
    pub k_grid: Vec<usize>,
    /// Number of PoIs `L`.
    pub l: usize,
    /// Rounds per run `N`.
    pub n: usize,
    /// Policies to compare.
    pub policies: Vec<PolicySpec>,
    /// Master seed.
    pub seed: u64,
}

/// The sweep configuration for a scale.
#[must_use]
pub fn config(scale: Scale) -> Config {
    let s = SimSettings::paper_defaults();
    match scale {
        Scale::Paper => Config {
            m: s.m,
            k_grid: SimSettings::k_grid(),
            l: s.l,
            n: s.n,
            policies: PolicySpec::paper_set(),
            seed: s.seed,
        },
        Scale::Test => Config {
            m: 30,
            k_grid: vec![3, 6, 9],
            l: 4,
            n: 250,
            policies: PolicySpec::paper_set(),
            seed: s.seed,
        },
    }
}

/// Result of the `K` sweep.
#[derive(Debug, Clone)]
pub struct VsKResult {
    /// The swept `K` values.
    pub k_grid: Vec<usize>,
    /// Policy labels.
    pub labels: Vec<String>,
    /// One comparison per grid point.
    pub comparisons: Vec<ComparisonResult>,
}

/// Runs the sweep (one shared population; only `K` varies).
///
/// # Errors
/// Propagates run errors.
pub fn run(cfg: &Config) -> Result<VsKResult> {
    let population = SellerPopulation::generate_paper_defaults(
        cfg.m,
        cdt_core::scenario::DEFAULT_NOISE_SIGMA,
        &mut StdRng::seed_from_u64(cfg.seed),
    );
    let labels = cfg.policies.iter().map(PolicySpec::label).collect();
    let scenarios = cfg
        .k_grid
        .iter()
        .map(|&k| Scenario::from_population(population.clone(), k, cfg.l, cfg.n))
        .collect::<Result<Vec<_>>>()?;
    let seeds: Vec<u64> = (0..cfg.k_grid.len())
        .map(|i| cfg.seed.wrapping_add(3000 * i as u64))
        .collect();
    let comparisons = compare_policies_grid(&scenarios, &cfg.policies, &seeds, &[])?;
    Ok(VsKResult {
        k_grid: cfg.k_grid.clone(),
        labels,
        comparisons,
    })
}

impl VsKResult {
    fn x(&self) -> Vec<f64> {
        self.k_grid.iter().map(|&k| k as f64).collect()
    }

    fn series(&self, f: impl Fn(&ComparisonResult, &str) -> f64) -> Vec<Series> {
        self.labels
            .iter()
            .map(|label| {
                let y = self.comparisons.iter().map(|c| f(c, label)).collect();
                Series::new(label.clone(), self.x(), y)
            })
            .collect()
    }

    /// Fig. 11: total revenue and regret vs `K`.
    #[must_use]
    pub fn figure11(&self) -> Vec<Table> {
        let revenue = self.series(|c, l| c.run(l).expect("label exists").expected_revenue);
        let regret = self.series(|c, l| c.run(l).expect("label exists").regret);
        vec![
            Series::tabulate("Fig. 11(a): total revenue vs K", "K", &revenue),
            Series::tabulate("Fig. 11(b): regret vs K", "K", &regret),
        ]
    }

    /// Fig. 12: average per-round PoC, PoP, and per-seller PoS(s) vs `K`.
    #[must_use]
    pub fn figure12(&self) -> Vec<Table> {
        let poc = self.series(|c, l| c.run(l).expect("label exists").mean_consumer_profit);
        let pop = self.series(|c, l| c.run(l).expect("label exists").mean_platform_profit);
        let pos = self.series(|c, l| c.run(l).expect("label exists").mean_seller_profit);
        vec![
            Series::tabulate("Fig. 12(a): average PoC vs K", "K", &poc),
            Series::tabulate("Fig. 12(b): average PoP vs K", "K", &pop),
            Series::tabulate("Fig. 12(c): average PoS(s) vs K", "K", &pos),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revenue_increases_with_k() {
        let r = run(&config(Scale::Test)).unwrap();
        for label in &r.labels {
            let revs: Vec<f64> = r
                .comparisons
                .iter()
                .map(|c| c.run(label).unwrap().expected_revenue)
                .collect();
            assert!(
                revs.windows(2).all(|w| w[1] > w[0]),
                "{label}: revenue vs K not increasing: {revs:?}"
            );
        }
    }

    #[test]
    fn per_seller_profit_decreases_with_k() {
        // Fig. 12(c): "average PoS(s) achieved in each round decreases
        // dramatically along with the increase of K".
        let r = run(&config(Scale::Test)).unwrap();
        let pos: Vec<f64> = r
            .comparisons
            .iter()
            .map(|c| c.run("optimal").unwrap().mean_seller_profit)
            .collect();
        assert!(
            pos.windows(2).all(|w| w[1] < w[0]),
            "PoS(s) vs K not decreasing: {pos:?}"
        );
    }

    #[test]
    fn regret_grows_with_k_for_learners() {
        let r = run(&config(Scale::Test)).unwrap();
        let regs: Vec<f64> = r
            .comparisons
            .iter()
            .map(|c| c.run("random").unwrap().regret)
            .collect();
        assert!(
            regs.windows(2).all(|w| w[1] > w[0]),
            "random regret vs K not increasing: {regs:?}"
        );
    }
}
