//! One module per figure of the paper's evaluation (Sec. V-B).
//!
//! | Module | Paper figures | What it sweeps |
//! |---|---|---|
//! | [`vs_n`] | Fig. 7, Fig. 8 | total rounds `N` |
//! | [`vs_m`] | Fig. 9, Fig. 10 | number of sellers `M` |
//! | [`vs_k`] | Fig. 11, Fig. 12 | selection size `K` |
//! | [`game_curves`] | Fig. 13(a,b), Fig. 14 | strategy deviations in one round |
//! | [`param_sweeps`] | Fig. 15–18 | seller cost `a_6` and platform cost `θ` |
//! | [`nonstationary`] | extension (no paper figure) | dynamic regret under quality drift |
//!
//! Every experiment is pure data-in/data-out: it returns [`Table`]s ready
//! for printing (the `repro` binary) or CSV export. Each has a
//! `paper_scale()` and a `test_scale()` configuration; the shapes the
//! integration tests assert hold at both scales.

pub mod game_curves;
pub mod nonstationary;
pub mod param_sweeps;
pub mod vs_k;
pub mod vs_m;
pub mod vs_n;

use crate::report::Table;
use crate::settings::SimSettings;
use cdt_types::Result;

/// Experiment scale: the paper's full workload or a CI-friendly reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Table II parameters (minutes of compute in release mode).
    Paper,
    /// ~1000× smaller (sub-second; same qualitative shapes).
    Test,
}

/// Runs one named experiment and returns its tables.
///
/// Known ids: `table2`, `fig7`, `fig8`, `fig9`, `fig10`, `fig11`, `fig12`,
/// `fig13`, `fig14`, `fig15`, `fig16`, `fig17`, `fig18`, plus the extension
/// experiments `nonstat` (dynamic regret under quality drift) and
/// `replicate` (multi-seed comparison with 95% confidence intervals).
///
/// # Errors
/// Returns a config error for unknown ids and propagates run errors.
pub fn run_experiment(id: &str, scale: Scale) -> Result<Vec<Table>> {
    match id {
        "table2" => Ok(vec![SimSettings::table2()]),
        "fig7" => Ok(vs_n::run(&vs_n::config(scale))?.figure7()),
        "fig8" => Ok(vs_n::run(&vs_n::config(scale))?.figure8()),
        "fig9" => Ok(vs_m::run(&vs_m::config(scale))?.figure9()),
        "fig10" => Ok(vs_m::run(&vs_m::config(scale))?.figure10()),
        "fig11" => Ok(vs_k::run(&vs_k::config(scale))?.figure11()),
        "fig12" => Ok(vs_k::run(&vs_k::config(scale))?.figure12()),
        "fig13" => game_curves::figure13(scale),
        "fig14" => game_curves::figure14(scale),
        "fig15" => param_sweeps::figure15(scale),
        "fig16" => param_sweeps::figure16(scale),
        "fig17" => param_sweeps::figure17(scale),
        "fig18" => param_sweeps::figure18(scale),
        "nonstat" => nonstationary::run(&nonstationary::config(scale)),
        "replicate" => {
            // Error-bar companion to the single-run figures: the paper's
            // comparison at the default shape, across independent seeds.
            let (m, k, l, n, reps) = match scale {
                Scale::Paper => (300, 10, 10, 10_000, 10),
                Scale::Test => (20, 4, 4, 150, 3),
            };
            let runs = crate::replicate::replicate(
                m,
                k,
                l,
                n,
                &crate::policy_spec::PolicySpec::paper_set(),
                reps,
                20_210_419,
            )?;
            Ok(vec![crate::replicate::replication_table(
                &format!("Policy comparison, {reps} seeds (M={m}, K={k}, L={l}, N={n})"),
                &runs,
            )])
        }
        other => Err(cdt_types::CdtError::config(format!(
            "unknown experiment id `{other}`"
        ))),
    }
}

/// All known experiment ids, in paper order.
#[must_use]
pub fn all_experiment_ids() -> Vec<&'static str> {
    vec![
        "table2",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "nonstat",
        "replicate",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_rejected() {
        assert!(run_experiment("fig99", Scale::Test).is_err());
    }

    #[test]
    fn table2_runs_instantly() {
        let tables = run_experiment("table2", Scale::Test).unwrap();
        assert_eq!(tables.len(), 1);
    }

    #[test]
    fn id_list_covers_every_figure() {
        let ids = all_experiment_ids();
        for f in 7..=18 {
            assert!(ids.contains(&format!("fig{f}").as_str()), "fig{f} missing");
        }
    }
}
