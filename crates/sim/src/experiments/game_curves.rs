//! Figures 13 & 14: profit landscapes of the single-round HS game.
//!
//! "Since the decision-making process is similar in every round, we
//! randomly select one round to evaluate the profit and strategy of
//! individual participant" (Sec. V-B-2, with `K = 10`). Here the round's
//! selected set is the true top-K of a seeded paper-default population —
//! exactly what a converged CMAB-HS round selects.

use super::Scale;
use crate::report::{Series, Table};
use cdt_game::{
    best_response::all_seller_best_responses, equilibrium::profits_at, platform_best_response,
    solve_equilibrium, Aggregates, GameContext, SelectedSeller,
};
use cdt_quality::SellerPopulation;
use cdt_types::{PlatformCostParams, PriceBounds, Result, ValuationParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which sellers the paper singles out in Figs. 13(b)–16: sellers 3, 6, 8
/// (1-based within the selected set).
pub const TRACKED_SELLERS: [usize; 3] = [2, 5, 7];

/// Builds the representative round's game context: the top-`K` sellers of
/// a seeded population, with `q̄` at the truth (converged estimates).
///
/// # Errors
/// Propagates context-construction errors.
pub fn round_context(scale: Scale, omega: f64, theta: f64) -> Result<GameContext> {
    let (m, k) = match scale {
        Scale::Paper => (300, 10),
        Scale::Test => (300, 10), // the single-round game is already cheap
    };
    let population = SellerPopulation::generate_paper_defaults(
        m,
        cdt_core::scenario::DEFAULT_NOISE_SIGMA,
        &mut StdRng::seed_from_u64(20210419),
    );
    let ranking = population.ranking_by_true_quality();
    let sellers: Vec<SelectedSeller> = ranking
        .iter()
        .take(k)
        .map(|&id| {
            let p = population.profile(id);
            SelectedSeller::new(id, p.expected_quality(), p.cost)
        })
        .collect();
    GameContext::new(
        sellers,
        PlatformCostParams::new(theta, 1.0)?,
        ValuationParams::new(omega)?,
        PriceBounds::unbounded(),
        PriceBounds::unbounded(),
        f64::MAX,
    )
}

fn pj_grid(points: usize, hi: f64) -> Vec<f64> {
    (1..=points)
        .map(|i| hi * i as f64 / points as f64)
        .collect()
}

/// Consumer profit at a *deviating* `p^J` with the lower stages
/// best-responding (the curve of Fig. 13).
fn profits_at_pj(ctx: &GameContext, pj: f64) -> cdt_game::Profits {
    let agg = Aggregates::from_context(ctx);
    let p = platform_best_response(ctx, pj, &agg);
    let taus = all_seller_best_responses(ctx, p);
    profits_at(ctx, pj, p, &taus)
}

/// Fig. 13(a): PoC vs `p^J` for ω ∈ {600, 800, 1000, 1200, 1400};
/// Fig. 13(b): PoC, PoP, PoS-3/6/8 vs `p^J` at ω = 1000.
///
/// # Errors
/// Propagates context-construction errors.
pub fn figure13(scale: Scale) -> Result<Vec<Table>> {
    let points = match scale {
        Scale::Paper => 80,
        Scale::Test => 20,
    };
    let grid = pj_grid(points, 40.0);
    let x = grid.clone();
    let threads = crate::parallel::configured_threads();

    // (a) one PoC curve per omega — one pure job per omega, so the fan-out
    // is trivially bit-identical to the serial loop.
    let omegas = [600.0, 800.0, 1000.0, 1200.0, 1400.0];
    let poc_curves = crate::parallel::try_parallel_map(&omegas, threads, |_, &omega| {
        let ctx = round_context(scale, omega, 0.1)?;
        let y: Vec<f64> = grid
            .iter()
            .map(|&pj| profits_at_pj(&ctx, pj).consumer)
            .collect();
        Ok(Series::new(format!("omega={omega}"), x.clone(), y))
    })?;

    // (b) all parties at omega = 1000, one pure job per grid point.
    let ctx = round_context(scale, 1000.0, 0.1)?;
    let profiles: Vec<cdt_game::Profits> =
        crate::parallel::parallel_map(&grid, threads, |_, &pj| profits_at_pj(&ctx, pj));
    let mut party_curves = vec![
        Series::new(
            "PoC",
            x.clone(),
            profiles.iter().map(|p| p.consumer).collect(),
        ),
        Series::new(
            "PoP",
            x.clone(),
            profiles.iter().map(|p| p.platform).collect(),
        ),
    ];
    for &s in &TRACKED_SELLERS {
        party_curves.push(Series::new(
            format!("PoS-{}", s + 1),
            x.clone(),
            profiles.iter().map(|p| p.sellers[s]).collect(),
        ));
    }

    Ok(vec![
        Series::tabulate(
            "Fig. 13(a): PoC vs p^J for varying omega",
            "p^J",
            &poc_curves,
        ),
        Series::tabulate(
            "Fig. 13(b): PoC, PoP, PoS(s) vs p^J (omega = 1000)",
            "p^J",
            &party_curves,
        ),
    ])
}

/// Fig. 14: deviate seller 6's sensing time around the equilibrium while
/// `SoC` and `SoP` stay fixed at their optima; PoC/PoP find interior
/// maxima, PoS-6 moves, PoS-3/PoS-8 stay flat.
///
/// # Errors
/// Propagates context-construction errors.
pub fn figure14(scale: Scale) -> Result<Vec<Table>> {
    let points = match scale {
        Scale::Paper => 60,
        Scale::Test => 15,
    };
    let ctx = round_context(scale, 1000.0, 0.1)?;
    let eq = solve_equilibrium(&ctx);
    let tracked = TRACKED_SELLERS[1]; // seller 6 (index 5)
    let tau6_star = eq.sensing_times[tracked];

    let grid: Vec<f64> = (0..=points)
        .map(|i| 3.0 * tau6_star * i as f64 / points as f64)
        .collect();

    // Pure per-point deviation profits; fanned out over the grid.
    let threads = crate::parallel::configured_threads();
    let profiles = crate::parallel::parallel_map(&grid, threads, |_, &tau6| {
        let mut taus = eq.sensing_times.clone();
        taus[tracked] = tau6;
        profits_at(&ctx, eq.service_price, eq.collection_price, &taus)
    });
    let mut poc = Vec::with_capacity(grid.len());
    let mut pop = Vec::with_capacity(grid.len());
    let mut pos: Vec<Vec<f64>> = vec![Vec::with_capacity(grid.len()); TRACKED_SELLERS.len()];
    for p in &profiles {
        poc.push(p.consumer);
        pop.push(p.platform);
        for (j, &s) in TRACKED_SELLERS.iter().enumerate() {
            pos[j].push(p.sellers[s]);
        }
    }

    let mut curves = vec![
        Series::new("PoC", grid.clone(), poc),
        Series::new("PoP", grid.clone(), pop),
    ];
    for (j, &s) in TRACKED_SELLERS.iter().enumerate() {
        curves.push(Series::new(
            format!("PoS-{}", s + 1),
            grid.clone(),
            pos[j].clone(),
        ));
    }
    Ok(vec![Series::tabulate(
        "Fig. 14: profits vs SoS-6 (tau of seller 6; prices fixed at the SE)",
        "tau_6",
        &curves,
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13a_poc_is_single_peaked_and_orders_by_omega() {
        let tables = figure13(Scale::Test).unwrap();
        let t = &tables[0];
        // Columns: p^J, omega=600 … omega=1400.
        let peak_value = |col: usize| {
            t.rows
                .iter()
                .map(|r| match &r[col] {
                    crate::report::Cell::Num(x) => *x,
                    crate::report::Cell::Text(_) => unreachable!(),
                })
                .fold(f64::NEG_INFINITY, f64::max)
        };
        // Larger omega ⇒ larger peak PoC (Fig. 13(a)'s claim).
        let peaks: Vec<f64> = (1..=5).map(peak_value).collect();
        assert!(
            peaks.windows(2).all(|w| w[1] > w[0]),
            "peak PoC should grow with omega: {peaks:?}"
        );
    }

    #[test]
    fn fig13b_pop_increases_in_pj() {
        let tables = figure13(Scale::Test).unwrap();
        let t = &tables[1];
        let col = |row: &Vec<crate::report::Cell>, i: usize| match &row[i] {
            crate::report::Cell::Num(x) => *x,
            crate::report::Cell::Text(_) => unreachable!(),
        };
        // PoP (column 2) continually increases with p^J (Fig. 13(b)).
        let pops: Vec<f64> = t.rows.iter().map(|r| col(r, 2)).collect();
        assert!(
            pops.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "PoP not increasing: {pops:?}"
        );
    }

    #[test]
    fn fig14_only_tracked_seller_profit_moves() {
        let tables = figure14(Scale::Test).unwrap();
        let t = &tables[0];
        let col = |row: &Vec<crate::report::Cell>, i: usize| match &row[i] {
            crate::report::Cell::Num(x) => *x,
            crate::report::Cell::Text(_) => unreachable!(),
        };
        // Columns: tau_6, PoC, PoP, PoS-3, PoS-6, PoS-8.
        let pos3: Vec<f64> = t.rows.iter().map(|r| col(r, 3)).collect();
        let pos6: Vec<f64> = t.rows.iter().map(|r| col(r, 4)).collect();
        let pos8: Vec<f64> = t.rows.iter().map(|r| col(r, 5)).collect();
        assert!(pos3.windows(2).all(|w| (w[1] - w[0]).abs() < 1e-9));
        assert!(pos8.windows(2).all(|w| (w[1] - w[0]).abs() < 1e-9));
        let spread = pos6.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - pos6.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(spread > 1e-6, "PoS-6 must vary with its own tau");
    }

    #[test]
    fn fig14_pos6_peaks_at_equilibrium_tau() {
        let ctx = round_context(Scale::Test, 1000.0, 0.1).unwrap();
        let eq = solve_equilibrium(&ctx);
        let tracked = TRACKED_SELLERS[1];
        let tau_star = eq.sensing_times[tracked];
        let s = ctx.seller(tracked);
        let at = |tau: f64| cdt_game::seller_profit(eq.collection_price, tau, s.quality, s.cost);
        assert!(at(tau_star) >= at(tau_star * 0.8));
        assert!(at(tau_star) >= at(tau_star * 1.2));
    }
}
