//! Figures 7 & 8: total revenue, regret, and Δ-profits as the number of
//! rounds `N` grows (`M = 300`, `K = 10` at paper scale).
//!
//! ε-first is horizon-aware (its exploration phase is `εN` rounds), so each
//! grid point is a fresh run for every policy rather than a checkpoint of
//! one long run.
//!
//! The grid rides the cell-packing scheduler via
//! [`compare_policies_grid`] — one `CellJob` per (N-cell × policy) pair;
//! `N` is part of the ShapeKey, so each horizon buckets separately.

use super::Scale;
use crate::compare::{compare_policies_grid, ComparisonResult};
use crate::policy_spec::PolicySpec;
use crate::report::{Series, Table};
use crate::settings::SimSettings;
use cdt_core::Scenario;
use cdt_quality::SellerPopulation;
use cdt_types::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the `N` sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of sellers `M`.
    pub m: usize,
    /// Selection size `K`.
    pub k: usize,
    /// Number of PoIs `L`.
    pub l: usize,
    /// The `N` values to sweep.
    pub n_grid: Vec<usize>,
    /// Policies to compare.
    pub policies: Vec<PolicySpec>,
    /// Master seed.
    pub seed: u64,
}

/// The sweep configuration for a scale.
#[must_use]
pub fn config(scale: Scale) -> Config {
    let s = SimSettings::paper_defaults();
    match scale {
        Scale::Paper => Config {
            m: s.m,
            k: s.k,
            l: s.l,
            n_grid: SimSettings::n_grid(),
            policies: PolicySpec::paper_set(),
            seed: s.seed,
        },
        Scale::Test => Config {
            m: 30,
            k: 5,
            l: 4,
            n_grid: vec![50, 150, 400],
            policies: PolicySpec::paper_set(),
            seed: s.seed,
        },
    }
}

/// Result of the `N` sweep: one comparison per grid point over a shared
/// population.
#[derive(Debug, Clone)]
pub struct VsNResult {
    /// The swept `N` values.
    pub n_grid: Vec<usize>,
    /// Policy labels, in run order.
    pub labels: Vec<String>,
    /// `comparisons[i]` is the multi-policy result at `n_grid[i]`.
    pub comparisons: Vec<ComparisonResult>,
}

/// Runs the sweep.
///
/// # Errors
/// Propagates run errors.
pub fn run(cfg: &Config) -> Result<VsNResult> {
    // One hidden population shared by every grid point, so curves vary only
    // through the horizon.
    let population = SellerPopulation::generate_paper_defaults(
        cfg.m,
        cdt_core::scenario::DEFAULT_NOISE_SIGMA,
        &mut StdRng::seed_from_u64(cfg.seed),
    );
    let labels = cfg.policies.iter().map(PolicySpec::label).collect();
    let scenarios = cfg
        .n_grid
        .iter()
        .map(|&n| Scenario::from_population(population.clone(), cfg.k, cfg.l, n))
        .collect::<Result<Vec<_>>>()?;
    let seeds: Vec<u64> = (0..cfg.n_grid.len())
        .map(|i| cfg.seed.wrapping_add(1000 * i as u64))
        .collect();
    let comparisons = compare_policies_grid(&scenarios, &cfg.policies, &seeds, &[])?;
    Ok(VsNResult {
        n_grid: cfg.n_grid.clone(),
        labels,
        comparisons,
    })
}

impl VsNResult {
    fn series_over_n(&self, f: impl Fn(&ComparisonResult, &str) -> f64) -> Vec<Series> {
        let x: Vec<f64> = self.n_grid.iter().map(|&n| n as f64).collect();
        self.labels
            .iter()
            .map(|label| {
                let y = self.comparisons.iter().map(|c| f(c, label)).collect();
                Series::new(label.clone(), x.clone(), y)
            })
            .collect()
    }

    /// Fig. 7: total (expected) revenue and regret vs `N`.
    #[must_use]
    pub fn figure7(&self) -> Vec<Table> {
        let revenue = self.series_over_n(|c, l| c.run(l).expect("label exists").expected_revenue);
        let regret = self.series_over_n(|c, l| c.run(l).expect("label exists").regret);
        vec![
            Series::tabulate("Fig. 7(a): total revenue vs N", "N", &revenue),
            Series::tabulate("Fig. 7(b): regret vs N", "N", &regret),
        ]
    }

    /// Fig. 8: Δ-PoC, Δ-PoP, Δ-PoS(s) vs `N` (the optimal policy is the
    /// reference, so it is excluded from the curves).
    #[must_use]
    pub fn figure8(&self) -> Vec<Table> {
        let non_optimal: Vec<&String> = self.labels.iter().filter(|l| *l != "optimal").collect();
        let x: Vec<f64> = self.n_grid.iter().map(|&n| n as f64).collect();
        let make = |f: &dyn Fn(&ComparisonResult, &str) -> f64, title: &str| {
            let series: Vec<Series> = non_optimal
                .iter()
                .map(|label| {
                    let y = self.comparisons.iter().map(|c| f(c, label)).collect();
                    Series::new((*label).clone(), x.clone(), y)
                })
                .collect();
            Series::tabulate(title, "N", &series)
        };
        vec![
            make(
                &|c, l| c.delta_poc(l).expect("optimal present"),
                "Fig. 8(a): Δ-PoC vs N",
            ),
            make(
                &|c, l| c.delta_pop(l).expect("optimal present"),
                "Fig. 8(b): Δ-PoP vs N",
            ),
            make(
                &|c, l| c.delta_pos(l).expect("optimal present"),
                "Fig. 8(c): Δ-PoS(s) vs N",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_figure7() {
        let r = run(&config(Scale::Test)).unwrap();
        // Revenue grows with N for every policy.
        for label in &r.labels {
            let revs: Vec<f64> = r
                .comparisons
                .iter()
                .map(|c| c.run(label).unwrap().expected_revenue)
                .collect();
            assert!(
                revs.windows(2).all(|w| w[1] > w[0]),
                "{label} revenue not increasing: {revs:?}"
            );
        }
        // Learners beat random at the longest horizon.
        let last = r.comparisons.last().unwrap();
        assert!(
            last.run("CMAB-HS").unwrap().expected_revenue
                > last.run("random").unwrap().expected_revenue
        );
    }

    #[test]
    fn delta_profits_shrink_with_n_for_cmab() {
        let r = run(&config(Scale::Test)).unwrap();
        let first = r.comparisons.first().unwrap().delta_poc("CMAB-HS").unwrap();
        let last = r.comparisons.last().unwrap().delta_poc("CMAB-HS").unwrap();
        assert!(
            last.abs() < first.abs() + 1e-9,
            "Δ-PoC should shrink: {first} → {last}"
        );
    }

    #[test]
    fn tables_have_grid_rows() {
        let r = run(&config(Scale::Test)).unwrap();
        for t in r.figure7().iter().chain(r.figure8().iter()) {
            assert_eq!(t.rows.len(), 3);
        }
    }
}
