//! Figures 15–18: single-round equilibrium profits and strategies as one
//! seller's cost (`a_6`) or the platform's cost (`θ`) varies.

use super::game_curves::{round_context, TRACKED_SELLERS};
use super::Scale;
use crate::report::{Series, Table};
use cdt_game::{solve_equilibrium, GameContext, SelectedSeller, StackelbergSolution};
use cdt_types::{Result, SellerCostParams};

fn grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

fn points(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 50,
        Scale::Test => 12,
    }
}

/// Rebuilds the context with seller 6's quadratic cost coefficient set to
/// `a6`, then solves the equilibrium.
fn solve_with_a6(base: &GameContext, a6: f64) -> StackelbergSolution {
    let tracked = TRACKED_SELLERS[1];
    let sellers: Vec<SelectedSeller> = base
        .sellers()
        .enumerate()
        .map(|(i, s)| {
            if i == tracked {
                SelectedSeller::new(s.id, s.quality, SellerCostParams { a: a6, b: s.cost.b })
            } else {
                s
            }
        })
        .collect();
    let ctx = GameContext::new(
        sellers,
        base.platform_cost,
        base.valuation,
        base.collection_price_bounds,
        base.service_price_bounds,
        base.max_sensing_time,
    )
    .expect("same shape as a valid context");
    solve_equilibrium(&ctx)
}

/// The `a_6` sweep used by Figs. 15 & 16 (the paper plots `a_6` from ~0
/// to 5; we start slightly above 0 to respect `a > 0`).
///
/// These are *point cells* for the cell scheduler: a single-round
/// equilibrium solve has no round loop to advance in lockstep, so the
/// sweep fans out one solve per cell ([`crate::cells::run_point_cells`])
/// instead of packing lanes — see the ShapeKey compatibility rules in
/// [`crate::cells`].
fn a6_solutions(scale: Scale) -> Result<(Vec<f64>, Vec<StackelbergSolution>)> {
    let base = round_context(scale, 1000.0, 0.1)?;
    let xs = grid(0.05, 5.0, points(scale));
    let sols = crate::cells::run_point_cells(&xs, |_, &a| Ok(solve_with_a6(&base, a)))?;
    Ok((xs, sols))
}

/// The `θ` sweep used by Figs. 17 & 18 (point cells, as [`a6_solutions`]).
fn theta_solutions(scale: Scale) -> Result<(Vec<f64>, Vec<StackelbergSolution>)> {
    let xs = grid(0.05, 1.0, points(scale));
    let sols = crate::cells::run_point_cells(&xs, |_, &theta| {
        Ok(solve_equilibrium(&round_context(scale, 1000.0, theta)?))
    })?;
    Ok((xs, sols))
}

fn profit_tables(title: &str, x_name: &str, xs: &[f64], sols: &[StackelbergSolution]) -> Table {
    let mut curves = vec![
        Series::new(
            "PoC",
            xs.to_vec(),
            sols.iter().map(|s| s.profits.consumer).collect(),
        ),
        Series::new(
            "PoP",
            xs.to_vec(),
            sols.iter().map(|s| s.profits.platform).collect(),
        ),
    ];
    for &i in &TRACKED_SELLERS {
        curves.push(Series::new(
            format!("PoS-{}", i + 1),
            xs.to_vec(),
            sols.iter().map(|s| s.profits.sellers[i]).collect(),
        ));
    }
    Series::tabulate(title, x_name, &curves)
}

fn price_table(title: &str, x_name: &str, xs: &[f64], sols: &[StackelbergSolution]) -> Table {
    let curves = vec![
        Series::new(
            "SoC (p^J*)",
            xs.to_vec(),
            sols.iter().map(|s| s.service_price).collect(),
        ),
        Series::new(
            "SoP (p*)",
            xs.to_vec(),
            sols.iter().map(|s| s.collection_price).collect(),
        ),
    ];
    Series::tabulate(title, x_name, &curves)
}

fn sensing_table(title: &str, x_name: &str, xs: &[f64], sols: &[StackelbergSolution]) -> Table {
    let mut curves = Vec::new();
    for &i in &TRACKED_SELLERS {
        curves.push(Series::new(
            format!("SoS-{} (tau*)", i + 1),
            xs.to_vec(),
            sols.iter().map(|s| s.sensing_times[i]).collect(),
        ));
    }
    curves.push(Series::new(
        "mean SoS(s)",
        xs.to_vec(),
        sols.iter()
            .map(|s| s.total_sensing_time() / s.sensing_times.len() as f64)
            .collect(),
    ));
    Series::tabulate(title, x_name, &curves)
}

/// Fig. 15: PoC, PoP, PoS-3/6/8 vs seller 6's cost parameter `a_6`.
///
/// # Errors
/// Propagates context-construction errors.
pub fn figure15(scale: Scale) -> Result<Vec<Table>> {
    let (xs, sols) = a6_solutions(scale)?;
    Ok(vec![profit_tables(
        "Fig. 15: profits vs a_6",
        "a_6",
        &xs,
        &sols,
    )])
}

/// Fig. 16(a,b): strategies (prices; sensing times) vs `a_6`.
///
/// # Errors
/// Propagates context-construction errors.
pub fn figure16(scale: Scale) -> Result<Vec<Table>> {
    let (xs, sols) = a6_solutions(scale)?;
    Ok(vec![
        price_table("Fig. 16(a): SoC and SoP vs a_6", "a_6", &xs, &sols),
        sensing_table("Fig. 16(b): SoS(s) vs a_6", "a_6", &xs, &sols),
    ])
}

/// Fig. 17: PoC, PoP, PoS(s) vs the platform cost parameter `θ`.
///
/// # Errors
/// Propagates context-construction errors.
pub fn figure17(scale: Scale) -> Result<Vec<Table>> {
    let (xs, sols) = theta_solutions(scale)?;
    Ok(vec![profit_tables(
        "Fig. 17: profits vs theta",
        "theta",
        &xs,
        &sols,
    )])
}

/// Fig. 18(a,b): strategies (prices; sensing times) vs `θ`.
///
/// # Errors
/// Propagates context-construction errors.
pub fn figure18(scale: Scale) -> Result<Vec<Table>> {
    let (xs, sols) = theta_solutions(scale)?;
    Ok(vec![
        price_table("Fig. 18(a): SoC and SoP vs theta", "theta", &xs, &sols),
        sensing_table("Fig. 18(b): SoS(s) vs theta", "theta", &xs, &sols),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &Table, i: usize) -> Vec<f64> {
        t.rows
            .iter()
            .map(|r| match &r[i] {
                crate::report::Cell::Num(x) => *x,
                crate::report::Cell::Text(_) => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn fig15_shapes() {
        let t = &figure15(Scale::Test).unwrap()[0];
        // Columns: a_6, PoC, PoP, PoS-3, PoS-6, PoS-8.
        let poc = col(t, 1);
        let pos6 = col(t, 4);
        let pos3 = col(t, 3);
        // PoC and PoS-6 decline as seller 6 gets costlier.
        assert!(poc.first().unwrap() > poc.last().unwrap());
        assert!(pos6.first().unwrap() > pos6.last().unwrap());
        // …while the *other* sellers benefit (Fig. 15's crossover claim).
        assert!(pos3.first().unwrap() < pos3.last().unwrap());
        // And the decline flattens: early drop ≫ late drop.
        let early = poc[0] - poc[1];
        let late = poc[poc.len() - 2] - poc[poc.len() - 1];
        assert!(
            early > late,
            "PoC decline should level off: {early} vs {late}"
        );
    }

    #[test]
    fn fig16_prices_rise_with_a6() {
        let tables = figure16(Scale::Test).unwrap();
        let prices = &tables[0];
        let soc = col(prices, 1);
        let sop = col(prices, 2);
        // "the consumer and the platform need to raise prices when seller
        // 6's cost increases" (Sec. V-B-2).
        assert!(soc.last().unwrap() > soc.first().unwrap());
        assert!(sop.last().unwrap() > sop.first().unwrap());
        // Seller 6's sensing time collapses while others' track prices up.
        let sens = &tables[1];
        let sos6 = col(sens, 2);
        assert!(sos6.first().unwrap() > sos6.last().unwrap());
        let sos3 = col(sens, 1);
        assert!(sos3.last().unwrap() > sos3.first().unwrap());
    }

    #[test]
    fn fig17_profits_fall_with_theta() {
        let t = &figure17(Scale::Test).unwrap()[0];
        // PoC and every PoS-i decline sharply then flatten (Fig. 17).
        for c in [1, 3, 4, 5] {
            let v = col(t, c);
            assert!(
                v.first().unwrap() > v.last().unwrap(),
                "{} should decline in theta: {v:?}",
                t.columns[c]
            );
            let early = v[0] - v[1];
            let late = v[v.len() - 2] - v[v.len() - 1];
            assert!(early > late, "{} should flatten", t.columns[c]);
        }
        // PoP: the paper plots a mild decline; in our (sign-corrected)
        // equilibrium the consumer's rising p^J almost exactly compensates
        // the platform's growing cost, so PoP is flat within ~3% — assert
        // that narrow band rather than strict monotonicity.
        let pop = col(t, 2);
        let max = pop.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let min = pop.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(
            (max - min) / max < 0.03,
            "PoP should stay within a narrow band: {pop:?}"
        );
    }

    #[test]
    fn fig18_shapes() {
        let tables = figure18(Scale::Test).unwrap();
        // SoC rises (consumer compensates the platform) while SoP falls
        // (platform squeezes sellers), Sec. V-B-2.
        let prices = &tables[0];
        let soc = col(prices, 1);
        let sop = col(prices, 2);
        assert!(soc.last().unwrap() > soc.first().unwrap(), "SoC: {soc:?}");
        assert!(sop.last().unwrap() < sop.first().unwrap(), "SoP: {sop:?}");
        // Sellers reduce sensing time as p falls.
        let sens = &tables[1];
        let mean_sos = col(sens, sens.columns.len() - 1);
        assert!(mean_sos.last().unwrap() < mean_sos.first().unwrap());
    }
}
