//! Multi-policy comparison on a shared scenario.
//!
//! Each policy gets its own RNG stream (derived from the base seed and its
//! position) over the *same* hidden population, mirroring how the paper
//! compares algorithms on one data trace.

use crate::cells::{run_cells, CellJob};
use crate::policy_spec::PolicySpec;
use crate::report::Table;
use crate::runner::RunResult;
use cdt_core::Scenario;
use cdt_types::Result;
use serde::{Deserialize, Serialize};

/// Results of running several policies on one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonResult {
    /// One result per requested policy, in request order.
    pub runs: Vec<RunResult>,
}

impl ComparisonResult {
    /// The run with the given label.
    #[must_use]
    pub fn run(&self, name: &str) -> Option<&RunResult> {
        self.runs.iter().find(|r| r.name == name)
    }

    /// The optimal run, if present (needed for the Δ-profit metrics).
    #[must_use]
    pub fn optimal(&self) -> Option<&RunResult> {
        self.run("optimal")
    }

    /// Δ-PoC for one run: the optimal algorithm's mean per-round consumer
    /// profit minus this run's (Sec. V-B's "difference of profit between
    /// the optimal and each other algorithm in each round on average").
    ///
    /// Returns `None` when the comparison lacks an optimal run.
    #[must_use]
    pub fn delta_poc(&self, name: &str) -> Option<f64> {
        Some(self.optimal()?.mean_consumer_profit - self.run(name)?.mean_consumer_profit)
    }

    /// Δ-PoP (platform analogue of [`ComparisonResult::delta_poc`]).
    #[must_use]
    pub fn delta_pop(&self, name: &str) -> Option<f64> {
        Some(self.optimal()?.mean_platform_profit - self.run(name)?.mean_platform_profit)
    }

    /// Δ-PoS(s) (per-seller analogue of [`ComparisonResult::delta_poc`]).
    #[must_use]
    pub fn delta_pos(&self, name: &str) -> Option<f64> {
        Some(self.optimal()?.mean_seller_profit - self.run(name)?.mean_seller_profit)
    }

    /// Summary table: one row per policy with revenue, regret, and mean
    /// profits.
    #[must_use]
    pub fn summary_table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            vec![
                "policy".into(),
                "expected revenue".into(),
                "observed revenue".into(),
                "regret".into(),
                "mean PoC".into(),
                "mean PoP".into(),
                "mean PoS(s)".into(),
            ],
        );
        for r in &self.runs {
            t.push_labeled_row(
                r.name.clone(),
                vec![
                    r.expected_revenue,
                    r.observed_revenue,
                    r.regret,
                    r.mean_consumer_profit,
                    r.mean_platform_profit,
                    r.mean_seller_profit,
                ],
            );
        }
        t
    }
}

/// Runs every policy in `specs` on `scenario`, emitting one [`CellJob`]
/// per policy into the cell-packing scheduler ([`run_cells`]). Each job
/// owns its seed (`base_seed + index`), so the result is bit-for-bit
/// identical at any thread count, batch width, chunk size, or lane width.
///
/// # Errors
/// Propagates the first run error encountered (in policy order).
pub fn compare_policies(
    scenario: &Scenario,
    specs: &[PolicySpec],
    base_seed: u64,
    checkpoints: &[usize],
) -> Result<ComparisonResult> {
    let jobs: Vec<CellJob> = specs
        .iter()
        .enumerate()
        .map(|(j, &spec)| CellJob {
            cell: 0,
            scenario,
            spec,
            seed: base_seed.wrapping_add(j as u64),
        })
        .collect();
    let runs = run_cells(&jobs, checkpoints)?;
    Ok(ComparisonResult { runs })
}

/// Runs every policy on every scenario of a sweep grid by flattening the
/// full (sweep-cell × policy) matrix into one [`CellJob`] stream for the
/// cell-packing scheduler. `seeds[i]` is the base seed of cell `i`;
/// policy `j` runs with `seeds[i] + j`, exactly like [`compare_policies`],
/// so the output is bit-for-bit identical to calling `compare_policies`
/// once per cell serially — but a slow cell (e.g. the largest `M` of a
/// sweep) no longer blocks the rest of the grid, and with `--batch` above
/// 1 same-shape jobs from *different* cells share lockstep batch groups
/// (ragged tails coalesce instead of each cell running a serial
/// remainder).
///
/// # Errors
/// Propagates the first run error in (cell, policy) order.
///
/// # Panics
/// Panics unless `scenarios` and `seeds` have equal lengths.
pub fn compare_policies_grid(
    scenarios: &[Scenario],
    specs: &[PolicySpec],
    seeds: &[u64],
    checkpoints: &[usize],
) -> Result<Vec<ComparisonResult>> {
    assert_eq!(scenarios.len(), seeds.len(), "one seed per grid cell");
    let jobs: Vec<CellJob> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(c, scenario)| {
            specs.iter().enumerate().map(move |(j, &spec)| CellJob {
                cell: c as u64,
                scenario,
                spec,
                seed: seeds[c].wrapping_add(j as u64),
            })
        })
        .collect();
    let mut runs = run_cells(&jobs, checkpoints)?.into_iter();
    // Jobs were laid out cell-major, so chunks of specs.len() rebuild the
    // per-cell comparisons in order.
    Ok(scenarios
        .iter()
        .map(|_| ComparisonResult {
            runs: runs.by_ref().take(specs.len()).collect(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn scenario() -> Scenario {
        let mut rng = StdRng::seed_from_u64(11);
        Scenario::paper_defaults(24, 4, 5, 300, &mut rng).unwrap()
    }

    #[test]
    fn paper_ordering_holds_at_test_scale() {
        let s = scenario();
        let cmp = compare_policies(&s, &PolicySpec::paper_set(), 7, &[]).unwrap();
        let optimal = cmp.run("optimal").unwrap();
        let cmab = cmp.run("CMAB-HS").unwrap();
        let random = cmp.run("random").unwrap();
        // Revenue: optimal ≥ CMAB-HS > random (Fig. 7's ordering).
        assert!(optimal.expected_revenue >= cmab.expected_revenue);
        assert!(cmab.expected_revenue > random.expected_revenue);
        // Regret: optimal ≈ 0 < CMAB-HS < random.
        assert!(optimal.regret.abs() < 1e-9);
        assert!(cmab.regret < random.regret);
    }

    #[test]
    fn delta_metrics_are_nonnegative_for_learners() {
        let s = scenario();
        let cmp = compare_policies(&s, &PolicySpec::paper_set(), 7, &[]).unwrap();
        // Learning is never better than clairvoyance on average (up to
        // quality-estimation noise in the game profits; allow tiny slack).
        for name in ["CMAB-HS", "random"] {
            let d = cmp.delta_poc(name).unwrap();
            assert!(d > -1.0, "Δ-PoC({name}) = {d}");
        }
        assert!(cmp.delta_poc("CMAB-HS").unwrap() < cmp.delta_poc("random").unwrap());
    }

    #[test]
    fn missing_optimal_yields_none() {
        let s = scenario();
        let cmp = compare_policies(&s, &[PolicySpec::Random], 7, &[]).unwrap();
        assert!(cmp.delta_poc("random").is_none());
        assert!(cmp.optimal().is_none());
    }

    #[test]
    fn summary_table_has_one_row_per_policy() {
        let s = scenario();
        let cmp = compare_policies(&s, &[PolicySpec::CmabHs, PolicySpec::Random], 7, &[]).unwrap();
        let t = cmp.summary_table("demo");
        assert_eq!(t.rows.len(), 2);
    }
}
