//! Declarative policy construction, so experiments can name their
//! comparison set as data.

use cdt_bandit::{
    BatchCmabUcb, BatchSelectionPolicy, CmabUcbPolicy, CucbPolicy, EpsilonFirstPolicy,
    EpsilonGreedyPolicy, LanePolicies, OraclePolicy, RandomPolicy, SelectionPolicy, ThompsonPolicy,
};
use cdt_quality::SellerPopulation;
use serde::{Deserialize, Serialize};

/// A policy to instantiate for a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// The paper's CMAB-HS UCB policy.
    CmabHs,
    /// CMAB-HS with an overridden exploration weight (ablation of the
    /// `K + 1` factor in Eq. 19).
    CmabHsWithWeight(f64),
    /// The clairvoyant optimal policy.
    Optimal,
    /// ε-first with the given exploration fraction.
    EpsilonFirst(f64),
    /// ε-greedy with the given per-round exploration probability.
    EpsilonGreedy(f64),
    /// Uniform random selection.
    Random,
    /// Gaussian Thompson sampling.
    Thompson,
    /// Classical CUCB (Chen et al.).
    Cucb,
}

impl PolicySpec {
    /// The paper's comparison set (Sec. V-A): optimal, CMAB-HS, ε-first at
    /// the two extreme ε values the paper reports, random.
    #[must_use]
    pub fn paper_set() -> Vec<PolicySpec> {
        vec![
            PolicySpec::Optimal,
            PolicySpec::CmabHs,
            PolicySpec::EpsilonFirst(0.1),
            PolicySpec::EpsilonFirst(0.5),
            PolicySpec::Random,
        ]
    }

    /// Instantiates the policy for a scenario of `m` sellers, selection
    /// size `k`, horizon `n`, over the given hidden `population` (only the
    /// oracle reads it).
    #[must_use]
    pub fn build(
        &self,
        m: usize,
        k: usize,
        n: usize,
        population: &SellerPopulation,
    ) -> Box<dyn SelectionPolicy> {
        match *self {
            PolicySpec::CmabHs => Box::new(CmabUcbPolicy::new(m, k)),
            PolicySpec::CmabHsWithWeight(w) => {
                Box::new(CmabUcbPolicy::new(m, k).with_exploration_weight(w))
            }
            PolicySpec::Optimal => Box::new(OraclePolicy::new(population.expected_qualities(), k)),
            PolicySpec::EpsilonFirst(eps) => Box::new(EpsilonFirstPolicy::new(m, k, n, eps)),
            PolicySpec::EpsilonGreedy(eps) => Box::new(EpsilonGreedyPolicy::new(m, k, eps)),
            PolicySpec::Random => Box::new(RandomPolicy::new(m, k)),
            PolicySpec::Thompson => Box::new(ThompsonPolicy::new(m, k)),
            PolicySpec::Cucb => Box::new(CucbPolicy::new(m, k)),
        }
    }

    /// Instantiates the policy across `populations.len()` lockstep
    /// replication lanes (lane `b` sees `populations[b]` as its hidden
    /// population).
    ///
    /// CMAB-HS variants use the SoA [`BatchCmabUcb`] (estimator state as
    /// flat `B×M` matrices); every other policy batches via
    /// [`LanePolicies`], one [`Self::build`] instance per lane. Both forms
    /// are bit-identical per lane to the serial [`Self::build`] policy.
    #[must_use]
    pub fn build_batch(
        &self,
        m: usize,
        k: usize,
        n: usize,
        populations: &[&SellerPopulation],
    ) -> Box<dyn BatchSelectionPolicy> {
        let b = populations.len();
        match *self {
            PolicySpec::CmabHs => Box::new(BatchCmabUcb::new(b, m, k)),
            PolicySpec::CmabHsWithWeight(w) => {
                Box::new(BatchCmabUcb::new(b, m, k).with_exploration_weight(w))
            }
            _ => Box::new(LanePolicies::new(
                populations
                    .iter()
                    .map(|pop| self.build(m, k, n, pop))
                    .collect(),
            )),
        }
    }

    /// Stable display label (matches the paper's legends).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            PolicySpec::CmabHs => "CMAB-HS".into(),
            PolicySpec::CmabHsWithWeight(w) => format!("CMAB-HS(w={w})"),
            PolicySpec::Optimal => "optimal".into(),
            PolicySpec::EpsilonFirst(e) => format!("{e}-first"),
            PolicySpec::EpsilonGreedy(e) => format!("{e}-greedy"),
            PolicySpec::Random => "random".into(),
            PolicySpec::Thompson => "thompson".into(),
            PolicySpec::Cucb => "CUCB".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdt_quality::{BernoulliQuality, SellerProfile};
    use cdt_types::SellerCostParams;

    fn population(m: usize) -> SellerPopulation {
        SellerPopulation::from_profiles(
            (0..m)
                .map(|i| SellerProfile {
                    quality: cdt_quality::distribution::QualityModel::Bernoulli(
                        BernoulliQuality::new((i as f64 + 1.0) / (m as f64 + 1.0)),
                    ),
                    cost: SellerCostParams { a: 0.2, b: 0.3 },
                })
                .collect(),
        )
    }

    #[test]
    fn paper_set_matches_section_5a() {
        let labels: Vec<String> = PolicySpec::paper_set().iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec!["optimal", "CMAB-HS", "0.1-first", "0.5-first", "random"]
        );
    }

    #[test]
    fn build_produces_working_policies() {
        use cdt_types::Round;
        use rand::{rngs::StdRng, SeedableRng};
        let pop = population(6);
        let mut rng = StdRng::seed_from_u64(1);
        for spec in [
            PolicySpec::CmabHs,
            PolicySpec::CmabHsWithWeight(1.0),
            PolicySpec::Optimal,
            PolicySpec::EpsilonFirst(0.2),
            PolicySpec::EpsilonGreedy(0.2),
            PolicySpec::Random,
            PolicySpec::Thompson,
            PolicySpec::Cucb,
        ] {
            let mut p = spec.build(6, 2, 100, &pop);
            let sel = p.select(Round(1), &mut rng);
            assert!(!sel.is_empty(), "{} selected nothing", spec.label());
        }
    }

    #[test]
    fn oracle_uses_population_truth() {
        let pop = population(4);
        let p = PolicySpec::Optimal.build(4, 1, 10, &pop);
        // Highest quality is the last profile.
        assert!((p.game_quality(cdt_types::SellerId(3)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn labels_are_unique() {
        let set = PolicySpec::paper_set();
        let labels: std::collections::HashSet<String> = set.iter().map(PolicySpec::label).collect();
        assert_eq!(labels.len(), set.len());
    }
}
