//! Per-worker scratch arenas: recycle round/batch scratch buffers across
//! consecutive jobs on the same thread.
//!
//! Every evaluation job (one policy run, or one lockstep batch of
//! replications) needs a scratch whose buffers grow to a working size
//! within a few rounds and then stay flat. Jobs on the same worker thread
//! almost always share a shape, so instead of allocating a fresh scratch
//! per job, each thread keeps one [`RoundScratch`] and one [`BatchScratch`]
//! in a thread-local slot: a job takes the slot's scratch (resetting its
//! equilibrium caches and counters — see [`RoundScratch::reset`]), runs,
//! and puts it back. Results are bit-identical to a fresh scratch because
//! a reset scratch behaves exactly like a new one; reuse only skips the
//! re-growing of buffers.
//!
//! The per-call pool's workers are scoped threads that die at the end of
//! each `parallel_map` call, so their slots provide *intra-call* reuse
//! (one allocation per worker per call instead of one per job); the
//! calling thread's slot additionally persists across calls. The resident
//! engine runtime ([`crate::engine`]) goes further: its workers are
//! persistent OS threads, so the same thread-local slots survive *between
//! submissions* and a warm engine's hit rate approaches 100% — each
//! worker pays exactly one miss in its lifetime per scratch kind. Claims
//! are counted
//! process-wide — [`arena_counters`] — and published to the metrics
//! registry (`cdt_obs_pool_arena_{hits,misses}_total`) while a pipeline is
//! installed, so `--obs-summary` shows how much allocation the arena
//! avoided.

use cdt_core::{BatchScratch, RoundScratch};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static ROUND_SLOT: RefCell<Option<RoundScratch>> = const { RefCell::new(None) };
    static BATCH_SLOT: RefCell<Option<BatchScratch>> = const { RefCell::new(None) };
}

/// Jobs that received a recycled scratch (process-wide, all threads).
static ARENA_HITS: AtomicU64 = AtomicU64::new(0);
/// Jobs that had to allocate a fresh scratch.
static ARENA_MISSES: AtomicU64 = AtomicU64::new(0);

fn record_claim(hit: bool) {
    let cell = if hit { &ARENA_HITS } else { &ARENA_MISSES };
    cell.fetch_add(1, Ordering::Relaxed);
    if cdt_obs::is_enabled() {
        let family = if hit {
            "cdt_obs_pool_arena_hits_total"
        } else {
            "cdt_obs_pool_arena_misses_total"
        };
        cdt_obs::global().add_counter(family, &[], 1);
    }
}

/// Runs `f` with this thread's recycled [`RoundScratch`] (reset, so `f`
/// sees the exact behavior of a fresh scratch), allocating one only on the
/// thread's first claim. The scratch returns to the slot afterwards; on
/// panic it is dropped and the next claim allocates fresh.
pub fn with_round_scratch<R>(f: impl FnOnce(&mut RoundScratch) -> R) -> R {
    let recycled = ROUND_SLOT.with(|slot| slot.borrow_mut().take());
    let mut scratch = match recycled {
        Some(mut s) => {
            s.reset();
            record_claim(true);
            s
        }
        None => {
            record_claim(false);
            RoundScratch::new()
        }
    };
    let result = f(&mut scratch);
    ROUND_SLOT.with(|slot| *slot.borrow_mut() = Some(scratch));
    result
}

/// As [`with_round_scratch`], for the lockstep batch runner's
/// [`BatchScratch`] (lanes grown by earlier jobs stay warm — see
/// [`BatchScratch::ensure_lanes`]).
pub fn with_batch_scratch<R>(f: impl FnOnce(&mut BatchScratch) -> R) -> R {
    let recycled = BATCH_SLOT.with(|slot| slot.borrow_mut().take());
    let mut scratch = match recycled {
        Some(mut s) => {
            s.reset();
            record_claim(true);
            s
        }
        None => {
            record_claim(false);
            BatchScratch::new()
        }
    };
    let result = f(&mut scratch);
    BATCH_SLOT.with(|slot| *slot.borrow_mut() = Some(scratch));
    result
}

/// Process-wide arena claim counters as `(hits, misses)`: how many jobs
/// received a recycled scratch vs. had to allocate one.
#[must_use]
pub fn arena_counters() -> (u64, u64) {
    (
        ARENA_HITS.load(Ordering::Relaxed),
        ARENA_MISSES.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_slot_recycles_on_second_claim() {
        // First claim on a fresh thread allocates; the second recycles.
        // Run on a dedicated thread so other tests' claims on this
        // thread-local can't interfere.
        std::thread::spawn(|| {
            let (h0, m0) = arena_counters();
            with_round_scratch(|_| ());
            with_round_scratch(|scratch| {
                assert_eq!(scratch.eq_cache_hits() + scratch.eq_cache_misses(), 0);
            });
            let (h1, m1) = arena_counters();
            assert!(m1 > m0, "first claim must miss");
            assert!(h1 > h0, "second claim must hit");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn batch_slot_keeps_lanes_warm() {
        std::thread::spawn(|| {
            with_batch_scratch(|scratch| scratch.ensure_lanes(3));
            with_batch_scratch(|scratch| {
                assert_eq!(scratch.num_lanes(), 3, "recycled lanes stay allocated");
            });
        })
        .join()
        .unwrap();
    }
}
