//! The paper's simulation settings (Table II) as data.

use serde::{Deserialize, Serialize};

/// One point of the Table II parameter space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSettings {
    /// Number of rounds `N`.
    pub n: usize,
    /// Number of candidate sellers `M`.
    pub m: usize,
    /// Number of selected sellers per round `K`.
    pub k: usize,
    /// Number of PoIs `L`.
    pub l: usize,
    /// Consumer valuation parameter `ω`.
    pub omega: f64,
    /// Platform cost parameters `(θ, λ)`.
    pub theta: f64,
    /// Platform linear cost parameter `λ`.
    pub lambda: f64,
    /// Master seed for reproducibility.
    pub seed: u64,
}

impl Default for SimSettings {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

impl SimSettings {
    /// Default gather window for the resident engine runtime
    /// ([`crate::engine`]), in microseconds: how long a non-saturated
    /// submission queue waits for concurrent submissions to share a
    /// lockstep batch before dispatching. Long enough for back-to-back
    /// submitters to coalesce, short enough to be invisible next to a
    /// replication's runtime; override with `--engine-gather-us` /
    /// `CDT_ENGINE_GATHER_US`.
    pub const DEFAULT_ENGINE_GATHER_US: u64 = 150;

    /// Table II bold defaults: `N = 10⁵`, `M = 300`, `K = 10`, `L = 10`,
    /// `ω = 1000`, `θ = 0.1`, `λ = 1`.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            n: 100_000,
            m: 300,
            k: 10,
            l: 10,
            omega: 1000.0,
            theta: 0.1,
            lambda: 1.0,
            seed: 20210419, // ICDE 2021 conference start date
        }
    }

    /// A reduced-scale variant for tests and CI (same shape, ~1000× less
    /// work). The qualitative orderings the integration tests assert
    /// (CMAB-HS ≈ optimal ≫ random, etc.) already hold at this scale.
    #[must_use]
    pub fn test_scale() -> Self {
        Self {
            n: 400,
            m: 30,
            k: 5,
            l: 4,
            ..Self::paper_defaults()
        }
    }

    /// The Table II sweep grid for the number of rounds `N`
    /// (×10³: 5, 40, 80, 100, 120, 160, 200).
    #[must_use]
    pub fn n_grid() -> Vec<usize> {
        vec![5_000, 40_000, 80_000, 100_000, 120_000, 160_000, 200_000]
    }

    /// The Table II sweep grid for the number of sellers `M`.
    #[must_use]
    pub fn m_grid() -> Vec<usize> {
        vec![50, 100, 150, 200, 250, 300]
    }

    /// The Table II sweep grid for the selection size `K`.
    #[must_use]
    pub fn k_grid() -> Vec<usize> {
        vec![10, 20, 30, 40, 50, 60]
    }

    /// The Table II sweep grid for the valuation parameter `ω`.
    #[must_use]
    pub fn omega_grid() -> Vec<f64> {
        vec![600.0, 800.0, 1000.0, 1200.0, 1400.0]
    }

    /// Renders Table II itself (parameter name → values, defaults bold in
    /// the paper, marked with `*` here).
    #[must_use]
    pub fn table2() -> crate::report::Table {
        let mut t = crate::report::Table::new(
            "Table II: simulation settings",
            vec!["parameter".into(), "values".into()],
        );
        t.push_text_row(vec![
            "number of rounds N".into(),
            "5, 40, 80, 100*, 120, 160, 200 (x10^3)".into(),
        ]);
        t.push_text_row(vec![
            "number of sellers M".into(),
            "50, 100, 150, 200, 250, 300*".into(),
        ]);
        t.push_text_row(vec![
            "number of selected sellers K".into(),
            "10*, 20, 30, 40, 50, 60".into(),
        ]);
        t.push_text_row(vec![
            "valuation parameter omega".into(),
            "600, 800, 1000*, 1200, 1400".into(),
        ]);
        t.push_text_row(vec![
            "cost parameter theta, lambda".into(),
            "[0.1, 1] (0.1*), [0.5, 2] (1*)".into(),
        ]);
        t.push_text_row(vec![
            "cost parameters a, b".into(),
            "[0.1, 0.5], [0.1, 1]".into(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2_bold_values() {
        let s = SimSettings::paper_defaults();
        assert_eq!(s.n, 100_000);
        assert_eq!(s.m, 300);
        assert_eq!(s.k, 10);
        assert_eq!(s.l, 10);
        assert_eq!(s.omega, 1000.0);
        assert_eq!(s.theta, 0.1);
        assert_eq!(s.lambda, 1.0);
    }

    #[test]
    fn grids_match_table2() {
        assert_eq!(SimSettings::n_grid().len(), 7);
        assert_eq!(SimSettings::m_grid(), vec![50, 100, 150, 200, 250, 300]);
        assert_eq!(SimSettings::k_grid(), vec![10, 20, 30, 40, 50, 60]);
        assert_eq!(SimSettings::omega_grid().len(), 5);
    }

    #[test]
    fn grids_contain_the_defaults() {
        let s = SimSettings::paper_defaults();
        assert!(SimSettings::n_grid().contains(&s.n));
        assert!(SimSettings::m_grid().contains(&s.m));
        assert!(SimSettings::k_grid().contains(&s.k));
        assert!(SimSettings::omega_grid().contains(&s.omega));
    }

    #[test]
    fn table2_renders() {
        let t = SimSettings::table2();
        let text = t.to_string();
        assert!(text.contains("simulation settings"));
        assert!(text.contains("number of sellers M"));
    }
}
